"""Ablations of the SPEAR design choices DESIGN.md calls out.

Each ablation sweeps one hardware knob on a representative gainer (mcf)
and records the resulting speedup curve.  These are not in the paper; they
quantify the design decisions its Section 3 makes by fiat (half-IFQ
trigger threshold, issue-width/2 extraction, one-cycle live-in copies,
p-thread issue priority, live-in drain policy).
"""

import dataclasses

from repro.core import BASELINE, SPEAR_128
from repro.harness import TextTable
from repro.memory import MemoryHierarchy
from repro.pipeline import TimingSimulator

from .conftest import emit, once

WORKLOAD = "mcf"


def _speedup(runner, config) -> float:
    art = runner.artifacts(WORKLOAD)
    base = runner.run(WORKLOAD, BASELINE)
    sim = TimingSimulator(art.eval_trace, config, art.binary.table,
                          MemoryHierarchy(latencies=config.latencies),
                          warmup=art.warmup_trace)
    return sim.run().ipc / base.ipc


def _sweep(runner, name, values, **field_of):
    rows = []
    for v in values:
        cfg = dataclasses.replace(SPEAR_128, name=f"{name}={v}",
                                  **{k: v for k in field_of})
        rows.append((v, _speedup(runner, cfg)))
    return rows


def test_ablation_trigger_threshold(benchmark, runner, out_dir):
    """Paper §3.2 uses half the IFQ 'empirically'."""
    def run():
        return _sweep(runner, "trigger-occ", [0.0, 0.25, 0.5, 0.75, 1.0],
                      trigger_occupancy_fraction=None)
    rows = once(benchmark, run)
    t = TextTable("Ablation — trigger occupancy threshold (mcf)",
                  ["occupancy fraction", "speedup vs baseline"])
    for v, s in rows:
        t.add_row(v, s)
    by_frac = dict(rows)
    # triggering needs a reasonably deep queue, but demanding a full one
    # must not be catastrophically worse than the paper's half
    assert by_frac[0.5] > 1.1
    emit(out_dir, "ablation_trigger_threshold", t.render())


def test_ablation_extract_width(benchmark, runner, out_dir):
    """Paper §3.2 fixes extraction at issue_width/2 = 4."""
    def run():
        return _sweep(runner, "extract", [1, 2, 4, 8], extract_width=None)
    rows = once(benchmark, run)
    t = TextTable("Ablation — PE extraction width (mcf)",
                  ["extract width", "speedup vs baseline"])
    for v, s in rows:
        t.add_row(v, s)
    by_w = dict(rows)
    assert by_w[4] >= by_w[1] - 0.02, "wider extraction should not hurt"
    emit(out_dir, "ablation_extract_width", t.render())


def test_ablation_livein_copy_cost(benchmark, runner, out_dir):
    """Paper §3.2 assumes one cycle per live-in copy."""
    def run():
        return _sweep(runner, "copy", [0, 1, 4, 16, 64],
                      livein_copy_cycles=None)
    rows = once(benchmark, run)
    t = TextTable("Ablation — live-in copy cycles per register (mcf)",
                  ["cycles per copy", "speedup vs baseline"])
    for v, s in rows:
        t.add_row(v, s)
    by_c = dict(rows)
    assert by_c[1] >= by_c[64] - 0.02, "expensive copies must not help"
    emit(out_dir, "ablation_livein_copy", t.render())


def test_ablation_pthread_priority(benchmark, runner, out_dir):
    """Paper §3.3 gives the p-thread issue priority."""
    def run():
        pri = _speedup(runner, dataclasses.replace(SPEAR_128, name="pri"))
        nopri = _speedup(runner, dataclasses.replace(
            SPEAR_128, name="nopri", pthread_priority=False))
        return pri, nopri
    pri, nopri = once(benchmark, run)
    t = TextTable("Ablation — p-thread issue priority (mcf)",
                  ["priority", "speedup vs baseline"])
    t.add_row("on (paper)", pri)
    t.add_row("off", nopri)
    emit(out_dir, "ablation_priority", t.render())


def test_ablation_drain_policy(benchmark, runner, out_dir):
    """DESIGN.md §6: the literal full-ROB drain starves extraction."""
    def run():
        out = {}
        for policy in ("livein", "none", "full"):
            out[policy] = _speedup(runner, dataclasses.replace(
                SPEAR_128, name=f"drain-{policy}", drain_policy=policy))
        return out
    by_policy = once(benchmark, run)
    t = TextTable("Ablation — live-in drain policy (mcf)",
                  ["policy", "speedup vs baseline"])
    for k, v in by_policy.items():
        t.add_row(k, v)
    assert by_policy["livein"] > by_policy["full"], \
        "the literal full drain should underperform (DESIGN.md §6)"
    emit(out_dir, "ablation_drain_policy", t.render())


def test_ablation_wrong_path_model(benchmark, runner, out_dir):
    """DESIGN.md §2: wrong-path handling feeds the trigger logic."""
    def run():
        out = {}
        for mode in ("reconverge", "bubbles", "stall"):
            out[mode] = _speedup(runner, dataclasses.replace(
                SPEAR_128, name=f"wp-{mode}", wrong_path=mode))
        return out
    by_mode = once(benchmark, run)
    t = TextTable("Ablation — wrong-path fetch model (mcf)",
                  ["model", "speedup vs baseline"])
    for k, v in by_mode.items():
        t.add_row(k, v)
    assert by_mode["reconverge"] >= by_mode["stall"], \
        "starving the IFQ at mispredicts should cost pre-execution coverage"
    emit(out_dir, "ablation_wrong_path", t.render())


def test_ablation_chaining_triggers(benchmark, runner, out_dir):
    """Chaining triggers (Collins et al., related work): a finished
    p-thread may hand off to a dormant d-load regardless of occupancy."""
    def run():
        plain = _speedup(runner, dataclasses.replace(
            SPEAR_128, name="no-chain"))
        chained = _speedup(runner, dataclasses.replace(
            SPEAR_128, name="chain", chaining=True))
        # chaining matters most when the occupancy gate binds
        strict = dataclasses.replace(
            SPEAR_128, name="strict", trigger_occupancy_fraction=0.9)
        strict_plain = _speedup(runner, strict)
        strict_chained = _speedup(runner, dataclasses.replace(
            strict, name="strict-chain", chaining=True))
        return plain, chained, strict_plain, strict_chained
    plain, chained, strict_plain, strict_chained = once(benchmark, run)
    t = TextTable("Ablation — chaining triggers (mcf)",
                  ["configuration", "speedup vs baseline"])
    t.add_row("half-IFQ gate, no chaining (paper)", plain)
    t.add_row("half-IFQ gate, chaining", chained)
    t.add_row("0.9-IFQ gate, no chaining", strict_plain)
    t.add_row("0.9-IFQ gate, chaining", strict_chained)
    assert strict_chained >= strict_plain - 0.02
    emit(out_dir, "ablation_chaining", t.render())


def test_ablation_region_policy(benchmark, runner, out_dir):
    """Region selection (the paper's future work: 'more algorithms on the
    region selection can improve the p-thread performance')."""
    from repro.compiler import SlicerConfig
    from repro.harness import ExperimentRunner

    def run():
        out = {}
        for policy in ("innermost", "budget", "outermost"):
            r = ExperimentRunner(
                slicer_config=SlicerConfig(region_policy=policy))
            base = r.run(WORKLOAD, BASELINE)
            spear = r.run(WORKLOAD, SPEAR_128)
            out[policy] = spear.ipc / base.ipc
        return out
    by_policy = once(benchmark, run)
    t = TextTable("Ablation — prefetching-range region policy (mcf)",
                  ["policy", "speedup vs baseline"])
    for k, v in by_policy.items():
        t.add_row(k, v)
    assert all(v > 0.9 for v in by_policy.values())
    emit(out_dir, "ablation_region_policy", t.render())
