"""Motivation experiment — the paper's Section 1 claim, measured.

"Traditional prefetching methods strongly rely on the predictability of
memory access patterns and often fail when faced with irregular patterns."

Compares the baseline, baseline + next-line prefetcher, baseline + stride
prefetcher (Chen-Baer RPT), and SPEAR-128 on three regular-access and
three irregular-access benchmarks.  Shape: the table-based prefetchers do
well on the regular group and poorly on the irregular one; pre-execution
helps both."""

from repro.harness import (IRREGULAR_WORKLOADS, REGULAR_WORKLOADS,
                           arithmetic_mean, motivation)

from .conftest import emit, once


def test_motivation_traditional_vs_preexecution(benchmark, runner, out_dir):
    res = once(benchmark, lambda: motivation(runner))

    def mean_over(workloads, config_name):
        return arithmetic_mean([r[config_name] for r in res.rows
                                if r["workload"] in workloads])

    stride_regular = mean_over(REGULAR_WORKLOADS, "baseline+stride")
    stride_irregular = mean_over(IRREGULAR_WORKLOADS, "baseline+stride")
    by_wl = {r["workload"]: r for r in res.rows}

    # stride prefetching works on streams...
    assert stride_regular > 1.2
    # ...but fades on irregular patterns (mcf's arc streams still give it
    # a partial win — real mixes do — so compare the *means*)...
    assert stride_irregular < stride_regular
    # ...and on the purely data-dependent chase it is helpless while
    # pre-execution still delivers:
    pointer = by_wl["pointer"]
    assert pointer["baseline+stride"] < 1.08
    assert pointer["SPEAR-128"] > pointer["baseline+stride"]

    emit(out_dir, "motivation", res.table(
        "Motivation — traditional prefetching vs speculative pre-execution"
    ).render())
