"""Table 3 — effect of the longer IFQ (SPEAR-256 / SPEAR-128 ratio,
branch hit ratio, IPB), side by side with the paper's values.

Shape: high-branch-hit workloads benefit most from the deeper queue
(paper: matrix, 0.9942 hit, 1.45x); at least one low-hit workload fails to
benefit (paper: update 0.94x, tr 0.99x — ours: fft and gzip dip below 1)."""

from repro.harness import table3

from .conftest import emit, once


def test_table3_longer_ifq(benchmark, runner, out_dir):
    t = once(benchmark, lambda: table3(runner))
    ratios = {row[0]: row[1] for row in t.rows}

    assert ratios["matrix"] > 1.1, "matrix is the deep-IFQ winner"
    assert min(ratios.values()) < 1.005, \
        "some benchmark must fail to benefit from the longer IFQ"
    assert max(ratios.values()) == ratios["matrix"] or \
        max(ratios.values()) < 1.5

    emit(out_dir, "table3", t.render())
