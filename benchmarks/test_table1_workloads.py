"""Table 1 — benchmark suite and simulated instruction counts."""

from repro.harness import table1

from .conftest import emit, once


def test_table1_benchmark_suite(benchmark, runner, out_dir):
    t = once(benchmark, lambda: table1(runner))
    assert len(t.rows) == 15
    # every benchmark produced a non-trivial trace
    for row in t.rows:
        assert row[3] > 10_000       # trace instrs
        assert row[4] > 0            # loads
    emit(out_dir, "table1", t.render())
