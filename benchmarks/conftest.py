"""Shared benchmark infrastructure.

One full-scale :class:`ExperimentRunner` is shared by every benchmark
module so that (workload x config) simulations run exactly once no matter
how many figures need them.  Each figure/table benchmark renders its result
to stdout and to ``benchmarks/out/`` so EXPERIMENTS.md can quote actuals.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness import ExperimentRunner

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def emit(out_dir: Path, name: str, text: str) -> None:
    """Print a result table and persist it for the experiment log."""
    print()
    print(text)
    (out_dir / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
