"""Differential fuzzing campaign — corpus-wide SPEAR behaviour.

Runs the standard seed-0 campaign through the parallel engine and
persists its (byte-deterministic) triage for EXPERIMENTS.md.  The
campaign size is modest here so the benchmark pass stays tractable;
``repro fuzz run --seed 0 --count 1000`` reproduces the full corpus
with identical per-program verdicts (each verdict depends only on its
own cell).
"""

import os

from repro.fuzz import CampaignSpec, run_campaign

from .conftest import emit, once

COUNT = int(os.environ.get("FUZZ_BENCH_COUNT", "200"))


def test_fuzz_campaign_triage(benchmark, runner, out_dir):
    spec = CampaignSpec(seed=0, count=COUNT)
    result = once(benchmark, lambda: run_campaign(spec, runner,
                                                  journaled=False))
    assert result.failed == []
    assert result.report.counts["divergence"] == 0
    assert result.report.total == COUNT
    emit(out_dir, "fuzz_campaign",
         f"$ repro fuzz run --seed 0 --count {COUNT}\n"
         + result.report.render())
