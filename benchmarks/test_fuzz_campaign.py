"""Differential fuzzing campaign — corpus-wide SPEAR behaviour.

Runs the standard seed-0 campaign through the parallel engine and
persists its (byte-deterministic) triage for EXPERIMENTS.md.  The
campaign size is modest here so the benchmark pass stays tractable;
``repro fuzz run --seed 0 --count 1000`` reproduces the full corpus
with identical per-program verdicts (each verdict depends only on its
own cell).
"""

import os

from repro.fuzz import (CampaignSpec, GuidedCampaignSpec, coverage_map,
                        run_campaign, run_guided_campaign)

from .conftest import emit, once

COUNT = int(os.environ.get("FUZZ_BENCH_COUNT", "200"))


def test_fuzz_campaign_triage(benchmark, runner, out_dir):
    spec = CampaignSpec(seed=0, count=COUNT)
    result = once(benchmark, lambda: run_campaign(spec, runner,
                                                  journaled=False))
    assert result.failed == []
    assert result.report.counts["divergence"] == 0
    assert result.report.total == COUNT
    emit(out_dir, "fuzz_campaign",
         f"$ repro fuzz run --seed 0 --count {COUNT}\n"
         + result.report.render())


def test_fuzz_guided_vs_blind_coverage(benchmark, runner, out_dir):
    """Equal-budget coverage comparison: the scheduled arm palette must
    hit strictly more distinct behaviour bins than the blind
    default-dials campaign (the point of coverage guidance)."""
    blind_spec = CampaignSpec(seed=0, count=COUNT, sweep_every=0)
    guided_spec = GuidedCampaignSpec(seed=0, count=COUNT, batch=25,
                                     sweep_every=0)

    def run_both():
        blind = run_campaign(blind_spec, runner, journaled=False)
        guided = run_guided_campaign(guided_spec, runner, journaled=False)
        return blind, guided

    blind, guided = once(benchmark, run_both)
    assert blind.failed == [] and guided.failed == []
    blind_cov = coverage_map(blind.verdicts)
    assert guided.coverage.distinct > blind_cov.distinct, (
        f"guided coverage ({guided.coverage.distinct}) must beat blind "
        f"({blind_cov.distinct}) at equal budget")
    lines = [
        f"$ repro fuzz coverage --seed 0 --count {COUNT}   # blind",
        f"$ repro fuzz coverage --guided --seed 0 --count {COUNT} "
        f"--batch 25",
        "",
        f"{'campaign':<10} {'programs':>9} {'distinct bins':>14} "
        f"{'facets':>7}",
        f"{'blind':<10} {blind_cov.total:>9} {blind_cov.distinct:>14} "
        f"{len(blind_cov.facets()):>7}",
        f"{'guided':<10} {guided.coverage.total:>9} "
        f"{guided.coverage.distinct:>14} "
        f"{len(guided.coverage.facets()):>7}",
        "",
        guided.render_allocations(),
    ]
    emit(out_dir, "fuzz_coverage", "\n".join(lines))
