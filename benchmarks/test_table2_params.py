"""Table 2 — simulation parameters of the evaluated machines."""

from repro.core import PAPER_CONFIGS
from repro.harness import table2

from .conftest import emit, once


def test_table2_simulation_parameters(benchmark, runner, out_dir):
    tables = once(benchmark,
                  lambda: {name: table2(cfg)
                           for name, cfg in PAPER_CONFIGS.items()})
    text = "\n\n".join(t.render() for t in tables.values())
    # paper Table 2 anchor values
    spear128 = tables["SPEAR-128"].render()
    assert "bimodal (2048)" in spear128
    assert "ALU x 4, MUL/DIV x 1" in spear128
    emit(out_dir, "table2", text)
