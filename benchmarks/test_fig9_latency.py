"""Figure 9 — long-latency tolerance.

Six benchmarks (pointer, update, nbh, dm, mcf, vpr) swept over memory
latencies {40..200} / L2 {4..20}.  Paper: at the longest latency the
baseline loses 48.5% of its shortest-latency IPC while SPEAR-128/256 lose
only 39.7% / 38.4% — pre-execution flattens the degradation curve."""

from repro.harness import figure9

from .conftest import emit, once


def test_fig9_latency_tolerance(benchmark, runner, out_dir):
    res = once(benchmark, lambda: figure9(runner))

    base_deg = res.degradation("baseline")
    s128_deg = res.degradation("SPEAR-128")
    s256_deg = res.degradation("SPEAR-256")

    # the paper's headline shape: SPEAR tolerates long latencies better
    assert base_deg > s128_deg
    assert base_deg > s256_deg

    # IPC is monotonically non-increasing in latency for every series
    for series in res.ipc.values():
        for vals in series.values():
            assert all(a >= b * 0.999 for a, b in zip(vals, vals[1:]))

    # SPEAR stays above baseline at the longest latency point
    ahead = sum(1 for s in res.ipc.values()
                if s["SPEAR-256"][-1] >= s["baseline"][-1])
    assert ahead >= 5, "SPEAR should beat baseline at long latency nearly everywhere"

    emit(out_dir, "figure9", res.table().render())
