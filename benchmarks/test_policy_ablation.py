"""The adaptive trigger-policy ablation (docs/adaptive-policy.md).

One full fixed-vs-adaptive sweep over the 15 evaluated benchmarks plus
the promoted ``fz*`` fuzz finds: per-workload speedup under each trigger
policy, the operating point the epoch controller converged to, and the
fill-timeliness movement that explains it.  The adaptive-epoch geomean
can never fall below fixed by construction (epoch 0 *is* the fixed run
and a move is adopted only when IPC does not drop), so the assertion
here pins an invariant, not a tuning outcome.
"""

from repro.harness import ablate_policy

from .conftest import emit, once


def test_policy_ablation(benchmark, runner, out_dir):
    result = once(benchmark, lambda: ablate_policy(runner))
    table = result.table()
    fixed = result.geomean("fixed")
    epoch = result.geomean("adaptive-epoch")
    phase = result.geomean("adaptive-phase")
    assert epoch >= fixed, (epoch, fixed)
    # Per-workload, too: adaptive-epoch never loses to fixed.
    for row in result.rows:
        assert row["adaptive-epoch"] >= row["fixed"] - 1e-12, row
    # The in-run controller has no reject-and-rerun safety net; hold it
    # to "never loses more than 2% geomean" instead.
    assert phase >= fixed - 0.02, (phase, fixed)
    emit(out_dir, "ablation_policy", table.render())
