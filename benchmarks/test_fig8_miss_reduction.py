"""Figure 8 — L1 data-cache miss reduction from pre-execution.

Paper: SPEAR-256 removes 19.7% of misses on average, best case art
(-38.8%).  Shape: most benchmarks see fewer main-thread misses, streaming
workloads (art-class) see the largest reductions, and nothing gets
dramatically worse."""

from repro.harness import figure8

from .conftest import emit, once


def test_fig8_miss_reduction(benchmark, runner, out_dir):
    res = once(benchmark, lambda: figure8(runner))

    mean256 = res.mean_reduction("SPEAR-256")
    assert mean256 > 0.10, "pre-execution must remove misses on average"

    reductions = {r["workload"]: r["SPEAR-256"] for r in res.rows}
    # art-class streaming gets top-tier reductions (paper's best case)
    assert reductions["art"] > mean256 * 0.8
    # pollution never explodes the miss count
    assert all(r > -0.25 for r in reductions.values())
    # benchmarks with (near) zero misses see no change
    for r in res.rows:
        if r["base"] == 0:
            assert r["m256"] == 0

    emit(out_dir, "figure8", res.table().render())
