"""Figure 7 — dedicated functional units (SPEAR.sf models).

Paper: +18.9% / +26.3% mean for sf-128 / sf-256 (vs +12.7% / +20.1%
shared).  Shape: the sf models are at least as fast as their shared
counterparts on average (dedicated resources can only remove contention)."""

from repro.harness import figure7

from .conftest import emit, once


def test_fig7_dedicated_fus(benchmark, runner, out_dir):
    res = once(benchmark, lambda: figure7(runner))
    means = res.mean_speedups

    assert means["SPEAR.sf-128"] >= means["SPEAR-128"] * 0.99
    assert means["SPEAR.sf-256"] >= means["SPEAR-256"] * 0.99
    assert means["SPEAR.sf-256"] > means["SPEAR.sf-128"]

    # per-workload: sf never loses much to shared (same hardware + more FUs)
    for row in res.rows:
        assert row["SPEAR.sf-128"] > row["SPEAR-128"] - 0.05

    emit(out_dir, "figure7", res.table(
        "Figure 7 — normalized IPC including dedicated-FU models").render())
