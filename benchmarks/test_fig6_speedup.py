"""Figure 6 — normalized IPC of baseline vs SPEAR-128 vs SPEAR-256.

Paper: mean +12.7% (128) / +20.1% (256); best case mcf (+87.6%); tr,
field, fft and gzip degrade slightly (-1% .. -6.2%).

Shape assertions (DESIGN.md §5): both SPEAR models gain on average, the
256-entry IFQ gains more, mcf is the top gainer, and the four published
non-gainers stay at or below a few percent.
"""

from repro.harness import figure6

from .conftest import emit, once

FLAT_OR_LOSS = {"tr", "field", "fft", "gzip"}


def test_fig6_normalized_ipc(benchmark, runner, out_dir):
    res = once(benchmark, lambda: figure6(runner))

    means = res.mean_speedups
    assert means["SPEAR-128"] > 1.05
    assert means["SPEAR-256"] > means["SPEAR-128"]

    best_wl, best_speedup = res.best("SPEAR-256")
    gainers = {r["workload"]: r["SPEAR-256"] for r in res.rows}
    assert gainers["mcf"] > 1.25, "mcf must gain substantially"
    assert best_wl not in FLAT_OR_LOSS

    for wl in FLAT_OR_LOSS:
        assert gainers[wl] < 1.15, f"{wl} should be flat-to-slightly-negative"

    emit(out_dir, "figure6", res.table(
        "Figure 6 — normalized IPC (baseline / SPEAR-128 / SPEAR-256)"
    ).render())
