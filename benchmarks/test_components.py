"""Component microbenchmarks: raw speed of each substrate.

These are genuine pytest-benchmark timing loops (multiple rounds) over the
hot paths: functional interpretation, cache access, predictor update, and
the cycle loop of the timing model.
"""

import numpy as np

from repro.branch import BimodalPredictor
from repro.core import BASELINE, SPEAR_128
from repro.functional import FunctionalSimulator, run_program
from repro.isa import ProgramBuilder
from repro.memory import Cache, CacheConfig, MemoryHierarchy
from repro.pipeline import simulate

from tests.conftest import build_gather_program


def _alu_loop(iters):
    b = ProgramBuilder("aluloop")
    b.li("r3", iters)
    b.li("r2", 0)
    with b.loop_down("r3"):
        b.addi("r2", "r2", 1)
        b.xor("r4", "r2", "r3")
    b.halt()
    return b.build()


def test_functional_simulator_throughput(benchmark):
    prog = _alu_loop(5000)

    def run():
        sim = FunctionalSimulator(prog)
        sim.run(100_000)
        return sim.instret

    instret = benchmark(run)
    assert instret > 10_000


def test_functional_simulator_tracing_overhead(benchmark):
    prog = _alu_loop(5000)
    trace = benchmark(lambda: run_program(prog, max_instructions=100_000))
    assert len(trace) > 10_000


def test_cache_access_throughput(benchmark):
    cache = Cache(CacheConfig("L1", sets=256, ways=4, block_bytes=32))
    rng = np.random.default_rng(0)
    addrs = [int(a) for a in rng.integers(0, 1 << 20, size=20_000)]

    def run():
        for a in addrs:
            cache.access(a)
        return cache.stats.accesses

    assert benchmark(run) > 0


def test_hierarchy_access_throughput(benchmark):
    mem = MemoryHierarchy()
    rng = np.random.default_rng(0)
    addrs = [int(a) for a in rng.integers(0, 1 << 22, size=20_000)]

    def run():
        for now, a in enumerate(addrs):
            mem.access(a, now=now)
        return mem.thread_stats[0].accesses

    assert benchmark(run) > 0


def test_bimodal_predictor_throughput(benchmark):
    p = BimodalPredictor(2048)
    rng = np.random.default_rng(0)
    pattern = [(int(pc), bool(t)) for pc, t in zip(
        rng.integers(0, 4096, size=20_000), rng.random(20_000) < 0.8)]

    def run():
        for pc, taken in pattern:
            p.predict_and_update(pc, taken)
        return p.stats.lookups

    assert benchmark(run) > 0


def test_timing_model_cycle_throughput_baseline(benchmark):
    prog = build_gather_program(seed=2, iters=600)
    trace = run_program(prog, max_instructions=20_000)
    res = benchmark(lambda: simulate(trace, BASELINE))
    assert res.stats.committed == len(trace)


def test_timing_model_cycle_throughput_spear(benchmark, runner):
    art = runner.artifacts("mcf")

    def run():
        from repro.memory import MemoryHierarchy as MH
        from repro.pipeline import TimingSimulator
        sim = TimingSimulator(art.eval_trace, SPEAR_128, art.binary.table,
                              MH(latencies=SPEAR_128.latencies),
                              warmup=art.warmup_trace)
        return sim.run()

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.stats.committed == len(art.eval_trace)


def test_spear_compiler_throughput(benchmark):
    from repro.compiler import compile_spear
    train = build_gather_program(seed=9, iters=2000)

    def run():
        binary, report, _ = compile_spear(train,
                                          max_profile_instructions=25_000)
        return report

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.dloads >= 1
