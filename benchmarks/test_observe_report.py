"""Observability sections of EXPERIMENTS.md — fill timeliness, the
baseline-vs-SPEAR timeline diff, and the per-thread interval series.

Not figures of the paper, but measurements of its mechanism: *where* in
a run the speedup lives and whether pre-execution caused it.  The tables
emitted here are the same ones ``repro report`` renders, so EXPERIMENTS.md
quotes tool output rather than hand-edited text."""

from repro.core import SPEAR_128
from repro.harness import (diff_table, per_thread_table, suite_diff,
                           suite_table, timeline_diff, timeliness)
from repro.harness.experiments import EVAL_WORKLOADS

from .conftest import emit, once

REPORT_WORKLOAD = "ll4"


def test_timeliness(benchmark, runner, out_dir):
    res = once(benchmark, lambda: timeliness(runner))

    for r in res.rows:
        # The classification is a partition: every fill is exactly one of
        # timely / late / unused.
        assert r["timely"] + r["late"] + r["unused"] == r["fills"]
        assert r["fills"] >= 0 and r["redundant"] >= 0

    emit(out_dir, "timeliness", res.table().render())


def test_timeline_diff(benchmark, runner, out_dir):
    diff = once(benchmark,
                lambda: timeline_diff(runner, REPORT_WORKLOAD))

    # The alignment invariant: the cumulative win equals the end-to-end
    # cycle gap exactly (interpolation error cancels at the final row).
    assert diff.total_cycles_saved == diff.base_cycles - diff.model_cycles
    assert diff.speedup > 1.0, "SPEAR must win on the pointer-chase kernel"
    # The win must be witnessed by pre-execution activity, not variance.
    s = diff.attribution_summary()
    assert s["pre-execution"] >= 1
    assert diff.attributed_fraction > 0.5

    emit(out_dir, "timeline_diff", diff_table(diff).render())


def test_per_thread_series(benchmark, runner, out_dir):
    traced = once(benchmark,
                  lambda: runner.run_traced(REPORT_WORKLOAD, SPEAR_128))

    tl = traced.result.timeline
    names = [t["name"] for t in tl["per_thread"]]
    assert names == ["main", "pthread"]
    pthread = tl["per_thread"][1]["samples"]
    assert sum(s["completed"] for s in pthread) == \
        traced.result.stats.spear.pthread_instrs

    emit(out_dir, "per_thread",
         per_thread_table(traced, REPORT_WORKLOAD).render())


def test_suite(benchmark, runner, out_dir):
    suite = once(benchmark, lambda: suite_diff(runner))

    assert [r["workload"] for r in suite.rows] == list(EVAL_WORKLOADS)
    # The exact aggregate invariant EXPERIMENTS.md quotes: every speedup
    # is the raw cycle ratio and the geomean is their exact product
    # raised to 1/n (suite_diff validates, this re-checks the published
    # object).
    assert suite.validate() is suite
    assert suite.geomean_speedup > 1.0, \
        "SPEAR-128 must win the suite on geomean"

    emit(out_dir, "suite", suite_table(suite).render())
