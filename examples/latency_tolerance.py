#!/usr/bin/env python
"""Figure 9 in miniature: how SPEAR flattens the memory-latency cliff.

Sweeps one workload across the paper's five latency configurations and
prints an ASCII degradation curve for baseline vs SPEAR.

Run:  python examples/latency_tolerance.py [workload]   (default: pointer)
"""

import sys

from repro import BASELINE, SPEAR_128, SPEAR_256, ExperimentRunner
from repro.memory import FIG9_LATENCIES


def bar(value: float, scale: float, width: int = 44) -> str:
    n = int(round(value / scale * width)) if scale else 0
    return "#" * max(1, n)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "pointer"
    runner = ExperimentRunner()
    configs = (BASELINE, SPEAR_128, SPEAR_256)

    print(f"== latency tolerance: {workload} ==\n")
    series = {c.name: [] for c in configs}
    for lat in FIG9_LATENCIES:
        for c in configs:
            series[c.name].append(runner.run(workload, c, lat).ipc)

    peak = max(max(v) for v in series.values())
    for i, lat in enumerate(FIG9_LATENCIES):
        print(f"memory latency {lat.memory:3d} / L2 {lat.l2:2d}:")
        for c in configs:
            ipc = series[c.name][i]
            print(f"  {c.name:12s} {ipc:6.3f}  {bar(ipc, peak)}")
        print()

    print("IPC retained at the longest latency (vs the shortest):")
    for c in configs:
        vals = series[c.name]
        print(f"  {c.name:12s} {vals[-1] / vals[0]:6.1%}")
    print("\nThe paper reports the baseline losing 48.5% while SPEAR-128/256 "
          "lose only 39.7%/38.4% —\npre-execution keeps feeding the caches "
          "while the main thread stalls.")


if __name__ == "__main__":
    main()
