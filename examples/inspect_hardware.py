#!/usr/bin/env python
"""Look inside the SPEAR hardware while it runs.

Runs one workload under SPEAR-128 and reports the machinery the paper's
Section 3 describes: trigger outcomes, P-thread Extractor activity,
live-in copy costs, p-thread execution volume, and where the front end
spent its stalls — the observability layer of the timing model.

Run:  python examples/inspect_hardware.py [workload]   (default: vpr)
"""

import sys

from repro import BASELINE, SPEAR_128, ExperimentRunner


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "vpr"
    runner = ExperimentRunner()
    art = runner.artifacts(workload)
    res = runner.run(workload, SPEAR_128)
    base = runner.run(workload, BASELINE)
    s = res.stats
    sp = s.spear

    print(f"== SPEAR-128 internals: {workload} ==\n")
    print(f"annotation: {len(art.binary.table)} p-thread(s), "
          f"{len(art.binary.table.marked_pcs)} marked static instructions, "
          f"mean slice {art.binary.table.mean_slice_size:.1f}")

    print("\n-- trigger logic (paper §3.2) --")
    print(f"  d-load sightings that triggered : {sp.triggers}")
    print(f"  suppressed (IFQ below half-full): {sp.triggers_suppressed}")
    print(f"  blocked (mode already running)  : {sp.triggers_blocked}")
    print(f"  modes completed / aborted       : "
          f"{sp.modes_completed} / {sp.modes_aborted}")
    print(f"  live-in copy cycles             : {sp.livein_copy_cycles}")
    print(f"  drain wait cycles               : {sp.drain_wait_cycles}")

    print("\n-- P-thread Extractor --")
    print(f"  instructions extracted          : {sp.extracted}")
    print(f"  of which loads                  : {sp.pthread_loads}")
    print(f"  extraction stalls (RUU full)    : {sp.extraction_stall_ruu_full}")
    print(f"  cycles in pre-execution mode    : {sp.cycles_in_mode} "
          f"({sp.cycles_in_mode / s.cycles:.1%} of runtime)")

    print("\n-- front end --")
    print(f"  avg IFQ occupancy               : {s.avg_ifq_occupancy:.1f} / 128")
    print(f"  branch hit ratio                : {s.branch_hit_ratio:.4f}")
    print(f"  fetch stall cycles (mispredict) : {s.fetch_stall_mispredict}")
    print(f"  decode stalls (RUU full / IFQ empty): "
          f"{s.decode_stall_ruu_full} / {s.decode_stall_empty_ifq}")

    print("\n-- memory system --")
    main_t, pt = res.memory["threads"]
    print(f"  main thread: {main_t['accesses']} accesses, "
          f"{main_t['l1_misses']} L1 misses, "
          f"{main_t['delayed_hits']} merged into in-flight fills")
    print(f"  p-thread   : {pt['accesses']} accesses, "
          f"{pt['l1_misses']} L1 misses (prefetches it started)")
    print(f"  baseline main-thread misses     : {base.main_l1_misses}")

    print(f"\nIPC {base.ipc:.3f} -> {res.ipc:.3f} "
          f"({res.ipc / base.ipc:.3f}x)")


if __name__ == "__main__":
    main()
