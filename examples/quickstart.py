#!/usr/bin/env python
"""Quickstart: compile one benchmark with the SPEAR compiler and compare
the baseline superscalar against both SPEAR IFQ sizes.

Run:  python examples/quickstart.py [workload]   (default: mcf)
"""

import sys

from repro import BASELINE, SPEAR_128, SPEAR_256, ExperimentRunner


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    runner = ExperimentRunner()

    print(f"== SPEAR quickstart: {workload} ==\n")
    art = runner.artifacts(workload)
    print(art.compile_report.render())
    print()

    base = runner.run(workload, BASELINE)
    print(f"{'model':14s} {'IPC':>7s} {'speedup':>9s} {'L1 misses':>10s} "
          f"{'triggers':>9s} {'p-instrs':>9s}")
    for config in (BASELINE, SPEAR_128, SPEAR_256):
        res = runner.run(workload, config)
        print(f"{config.name:14s} {res.ipc:7.3f} "
              f"{res.ipc / base.ipc:8.3f}x {res.main_l1_misses:10d} "
              f"{res.stats.spear.triggers:9d} "
              f"{res.stats.spear.pthread_instrs:9d}")

    r256 = runner.run(workload, SPEAR_256)
    saved = base.main_l1_misses - r256.main_l1_misses
    if base.main_l1_misses:
        print(f"\nSPEAR-256 removed {saved} of {base.main_l1_misses} "
              f"main-thread L1 misses "
              f"({saved / base.main_l1_misses:.1%}).")


if __name__ == "__main__":
    main()
