#!/usr/bin/env python
"""Author your own kernel against the public API.

Builds a B-tree-search-style workload from scratch with
:class:`ProgramBuilder` (it is not one of the bundled 15 benchmarks), runs
the full SPEAR compiler on it, and measures pre-execution on the paper's
machine models.  Demonstrates the whole toolchain without the workload
registry.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro.compiler import compile_spear
from repro.core import BASELINE, SPEAR_128, SPEAR_256
from repro.functional import run_program
from repro.memory import MemoryHierarchy
from repro.pipeline import TimingSimulator

FANOUT = 8           # children per node
LEVELS = 5           # tree depth walked per lookup
NODES = 1 << 15      # 32K nodes x 8 B = 256 KiB... per level array
LOOKUPS = 4000


def build_tree_search(seed: int):
    """Each lookup descends LEVELS levels; the child pointer is read from
    a per-level array (data-dependent descent, like a B-tree search)."""
    from repro.isa import ProgramBuilder

    rng = np.random.default_rng(seed)
    b = ProgramBuilder("btree", mem_bytes=32 << 20)
    level_bases = []
    for _ in range(LEVELS):
        children = rng.integers(0, NODES, size=NODES).astype(np.int64)
        level_bases.append(b.alloc(NODES, init=children))
    keys = rng.integers(0, NODES, size=LOOKUPS).astype(np.int64)
    keys_base = b.alloc(LOOKUPS, init=keys)

    for i, base in enumerate(level_bases):
        b.li(f"r{20 + i}", base)
    b.li("r4", keys_base)
    b.li("r9", 0)
    b.li("r3", LOOKUPS)
    with b.loop_down("r3"):
        b.lw("r10", "r4", 0)              # the key seeds the descent
        for i in range(LEVELS):
            b.slli("r5", "r10", 3)
            b.add("r5", "r5", f"r{20 + i}")
            b.lw("r10", "r5", 0)          # child pointer (delinquent)
        b.add("r9", "r9", "r10")
        b.addi("r4", "r4", 8)
    b.halt()
    return b.build()


def main() -> None:
    print("== custom workload: data-dependent tree search ==\n")
    train = build_tree_search(seed=17)
    evalp = build_tree_search(seed=3)

    binary, report, _ = compile_spear(train, evalp)
    print(report.render())

    warm, measure = 40_000, 60_000
    full = run_program(evalp, max_instructions=warm + measure)
    warmup, trace = full.entries[:warm], full.entries[warm:]
    from repro.functional import Trace
    trace = Trace(trace, program_name="btree")

    print(f"\n{'model':12s} {'IPC':>7s} {'speedup':>9s} {'L1 misses':>10s}")
    results = {}
    for config in (BASELINE, SPEAR_128, SPEAR_256):
        sim = TimingSimulator(trace, config, binary.table,
                              MemoryHierarchy(latencies=config.latencies),
                              warmup=warmup)
        results[config.name] = res = sim.run()
        base_ipc = results["baseline"].ipc
        print(f"{config.name:12s} {res.ipc:7.3f} {res.ipc / base_ipc:8.3f}x "
              f"{res.main_l1_misses:10d}")

    print("\nNote the serial descent: within one lookup the p-thread cannot "
          "beat the pointer chain,\nbut lookups are independent, so deeper "
          "IFQ lookahead still converts to memory parallelism.")


if __name__ == "__main__":
    main()
