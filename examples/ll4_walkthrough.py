#!/usr/bin/env python
"""Figure 1 walk-through: Lawrence Livermore Loop 4.

Reproduces the paper's working example end to end:

1. show the LL4 inner loop as a SPISA binary,
2. profile it and identify the delinquent load (``y[j]``),
3. print the backward slice the hybrid slicer constructs — the p-thread —
   with its live-in registers and loop region,
4. run baseline vs SPEAR and show the pre-execution effect.

Run:  python examples/ll4_walkthrough.py
"""

from repro import BASELINE, SPEAR_128, ExperimentRunner
from repro.isa import disassemble


def main() -> None:
    runner = ExperimentRunner()
    art = runner.artifacts("ll4")
    program = art.binary.program

    print("== (a) the LL4 kernel, compiled to SPISA ==\n")
    print(disassemble(program))

    print("\n== (b) profiling finds the delinquent load ==\n")
    print(art.compile_report.render())

    print("\n== (c) the constructed p-thread(s) ==\n")
    for pthread in art.binary.table:
        ins = program.instructions[pthread.dload_pc]
        print(f"d-load @ pc {pthread.dload_pc}: {ins.render()}")
        print(f"  region head pc: {pthread.region_head}   "
              f"d-cycle: {pthread.d_cycle:.1f}   "
              f"profile misses: {pthread.miss_count}")
        print(f"  live-ins copied at trigger: "
              f"{[f'r{r}' if r < 32 else f'f{r - 32}' for r in pthread.live_ins]}")
        print("  backward slice (the p-thread):")
        for pc in sorted(pthread.slice_pcs):
            marker = "  <-- delinquent load" if pc == pthread.dload_pc else ""
            print(f"    {pc:4d}: {program.instructions[pc].render()}{marker}")
        print()

    print("== (d) pre-execution effect ==\n")
    base = runner.run("ll4", BASELINE)
    spear = runner.run("ll4", SPEAR_128)
    print(f"baseline   IPC {base.ipc:.3f}   L1 misses {base.main_l1_misses}")
    print(f"SPEAR-128  IPC {spear.ipc:.3f}   L1 misses {spear.main_l1_misses}"
          f"   ({spear.ipc / base.ipc:.3f}x, "
          f"{spear.stats.spear.triggers} triggers)")


if __name__ == "__main__":
    main()
