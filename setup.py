"""Legacy shim so editable installs work in offline environments where the
`wheel` package (needed by PEP 660 editable builds) is unavailable:

    pip install -e . --no-build-isolation
"""

from setuptools import setup

setup()
