"""Command-line interface."""

import pytest

from repro.cli import main


SCALE = ["--scale", "0.2"]


class TestList:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("pointer", "mcf", "art", "ll4"):
            assert name in out


class TestCompile:
    def test_report_printed(self, capsys):
        assert main(["compile", "pointer", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "SPEAR compile report" in out
        assert "delinquent load" in out

    def test_binary_saved(self, capsys, tmp_path):
        path = tmp_path / "p.json"
        assert main(["compile", "pointer", "-o", str(path), *SCALE]) == 0
        assert path.exists()
        from repro.core import SpearBinary
        assert len(SpearBinary.load(path).table) > 0


class TestDisasm:
    def test_annotated(self, capsys):
        assert main(["disasm", "pointer", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "p-thread" in out
        assert "\nD " in out     # at least one d-load flagged
        assert "lw" in out


class TestRun:
    def test_summary(self, capsys):
        assert main(["run", "pointer", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "ipc" in out and "triggers" in out

    def test_unknown_config(self, capsys):
        assert main(["run", "pointer", "--config", "SPEAR-512", *SCALE]) == 2

    def test_baseline_config(self, capsys):
        assert main(["run", "pointer", "--config", "baseline", *SCALE]) == 0


class TestCompare:
    def test_all_models(self, capsys):
        assert main(["compare", "pointer", *SCALE]) == 0
        out = capsys.readouterr().out
        for model in ("baseline", "SPEAR-128", "SPEAR-256",
                      "SPEAR.sf-128", "SPEAR.sf-256"):
            assert model in out


class TestAnalyze:
    def test_trigger_analysis(self, capsys):
        assert main(["analyze", "pointer", *SCALE]) == 0
        assert "Trigger-point analysis" in capsys.readouterr().out


class TestAnalyzeTimeline:
    def test_timeline_table(self, capsys):
        assert main(["analyze", "pointer", "--timeline", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out
        assert "ipc" in out
        assert "fills" in out

    def test_interval_flag(self, capsys):
        assert main(["analyze", "pointer", "--timeline",
                     "--interval", "500", *SCALE]) == 0
        assert "500" in capsys.readouterr().out


class TestTrace:
    def test_jsonl_on_stdout(self, capsys):
        assert main(["trace", "pointer", "--kinds", "mode", *SCALE]) == 0
        cap = capsys.readouterr()
        from repro.observe import TraceEvent
        lines = cap.out.splitlines()
        assert lines
        events = [TraceEvent.from_json(ln) for ln in lines]
        assert all(e.kind == "mode" for e in events)
        assert "events" in cap.err   # summary goes to stderr

    def test_output_file(self, capsys, tmp_path):
        path = tmp_path / "t.jsonl"
        assert main(["trace", "pointer", "--kinds", "commit",
                     "--cycles", "0:2000", "-o", str(path), *SCALE]) == 0
        from repro.observe import TraceEvent
        events = [TraceEvent.from_json(ln)
                  for ln in path.read_text().splitlines()]
        assert events
        assert all(e.kind == "commit" and e.cycle <= 2000 for e in events)

    def test_unknown_kind_rejected(self, capsys):
        assert main(["trace", "pointer", "--kinds", "bogus", *SCALE]) == 2
        assert "kind" in capsys.readouterr().err

    def test_bad_cycle_range_rejected(self, capsys):
        assert main(["trace", "pointer", "--cycles", "oops", *SCALE]) == 2

    def test_filters_reuse_one_cached_trace(self, capsys):
        # Two differently-filtered invocations share one cached capture.
        assert main(["trace", "pointer", "--kinds", "mode", *SCALE]) == 0
        capsys.readouterr()
        assert main(["trace", "pointer", "--kinds", "extract",
                     "--thread", "1", *SCALE]) == 0
        capsys.readouterr()


class TestTraceStream:
    def test_stream_writes_jsonl_during_run(self, capsys, tmp_path):
        path = tmp_path / "stream.jsonl"
        assert main(["trace", "pointer", "--stream", str(path),
                     *SCALE]) == 0
        err = capsys.readouterr().err
        assert "streamed" in err
        from repro.observe import TraceEvent
        lines = path.read_text().splitlines()
        assert lines
        events = [TraceEvent.from_json(ln) for ln in lines]
        assert f"{len(events)} events" in err
        cycles = [e.cycle for e in events]
        assert cycles == sorted(cycles)

    def test_stream_respects_kind_filter(self, capsys, tmp_path):
        path = tmp_path / "stream.jsonl"
        assert main(["trace", "pointer", "--stream", str(path),
                     "--kinds", "commit", *SCALE]) == 0
        from repro.observe import TraceEvent
        events = [TraceEvent.from_json(ln)
                  for ln in path.read_text().splitlines()]
        assert events
        assert all(e.kind == "commit" for e in events)

    @pytest.mark.parametrize("extra", [["--cycles", "0:100"],
                                       ["--thread", "1"],
                                       ["-o", "x.jsonl"]])
    def test_stream_incompatible_with_view_filters(self, capsys, tmp_path,
                                                   extra):
        path = tmp_path / "stream.jsonl"
        assert main(["trace", "pointer", "--stream", str(path),
                     *extra, *SCALE]) == 2
        assert "incompatible" in capsys.readouterr().err


class TestReport:
    def test_report_markdown_on_stdout(self, capsys):
        assert main(["report", "pointer", *SCALE]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# repro report — pointer: baseline vs "
                              "SPEAR-128")
        assert "## Per-interval attribution" in out
        assert "## Per-thread series" in out
        assert "## Fill timeliness" in out
        assert "<svg " in out

    def test_config_aliases(self, capsys):
        assert main(["report", "pointer", "--baseline", "base",
                     "--model", "spear", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "baseline vs SPEAR-128" in out

    def test_unknown_model_rejected(self, capsys):
        assert main(["report", "pointer", "--model", "bogus", *SCALE]) == 2
        assert "unknown" in capsys.readouterr().err.lower()

    def test_output_and_svg_files(self, capsys, tmp_path):
        md = tmp_path / "r.md"
        svg = tmp_path / "r.svg"
        assert main(["report", "pointer", "-o", str(md),
                     "--svg", str(svg), *SCALE]) == 0
        cap = capsys.readouterr()
        assert cap.out == ""   # everything went to the files
        assert md.read_text().startswith("# repro report")
        assert svg.read_text().startswith("<svg ")

    def test_serial_and_parallel_byte_identical(self, monkeypatch,
                                                capsys, tmp_path):
        # Separate cache dirs force both invocations to compute from
        # scratch — identical bytes must come from determinism, not from
        # the second run reading the first one's cache.
        out_a = tmp_path / "serial.md"
        out_b = tmp_path / "jobs2.md"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-a"))
        assert main(["report", "pointer", "-o", str(out_a), *SCALE]) == 0
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-b"))
        assert main(["report", "pointer", "-o", str(out_b),
                     "--jobs", "2", *SCALE]) == 0
        capsys.readouterr()
        assert out_a.read_bytes() == out_b.read_bytes()


class TestSuiteReport:
    SMALL = ["--scale", "0.05"]

    def test_suite_markdown_on_stdout(self, capsys):
        assert main(["report", "pointer", "matrix", "--suite",
                     *self.SMALL]) == 0
        cap = capsys.readouterr()
        assert cap.out.startswith("# repro suite report — baseline vs "
                                  "SPEAR-128")
        assert "geomean" in cap.out
        assert "| pointer |" in cap.out and "| matrix |" in cap.out
        assert "run report:" in cap.err   # stats never pollute stdout

    def test_workload_count_enforced_without_suite(self, capsys):
        assert main(["report", *SCALE]) == 2
        assert main(["report", "pointer", "matrix", *SCALE]) == 2
        assert "--suite" in capsys.readouterr().err

    def test_suite_serial_vs_jobs2_byte_identical(self, monkeypatch,
                                                  capsys, tmp_path):
        # Separate cache dirs: identical bytes must come from
        # determinism, not from shared spilled payloads.
        args = ["report", "pointer", "matrix", "mcf", "--suite",
                *self.SMALL]
        md_a, svg_a = tmp_path / "a.md", tmp_path / "a.svg"
        md_b, svg_b = tmp_path / "b.md", tmp_path / "b.svg"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-a"))
        assert main([*args, "-o", str(md_a), "--svg", str(svg_a)]) == 0
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-b"))
        assert main([*args, "-o", str(md_b), "--svg", str(svg_b),
                     "--jobs", "2"]) == 0
        assert capsys.readouterr().out == ""
        assert md_a.read_bytes() == md_b.read_bytes()
        assert svg_a.read_bytes() == svg_b.read_bytes()

    def test_suite_crash_then_resume_byte_identical(self, monkeypatch,
                                                    capsys, tmp_path):
        args = ["report", "pointer", "matrix", "mcf", "--suite",
                *self.SMALL]
        ref_md, ref_svg = tmp_path / "ref.md", tmp_path / "ref.svg"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ref"))
        assert main([*args, "-o", str(ref_md), "--svg", str(ref_svg)]) == 0

        # One cell crashes its worker on every attempt: the run degrades
        # to serial, records that cell failed, and its workload is
        # dropped from the (partial) document.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "work"))
        monkeypatch.setenv("REPRO_FAULTS", "crash:cell=3:times=0")
        partial = tmp_path / "partial.md"
        assert main([*args, "-o", str(partial), "--jobs", "2",
                     "--retries", "0"]) == 1
        assert partial.read_bytes() != ref_md.read_bytes()

        # Resume heals the run: completed traced cells restore from the
        # journal + cache, only the crashed cell re-simulates, and the
        # finished document is byte-identical to the uninterrupted one.
        monkeypatch.delenv("REPRO_FAULTS")
        out_md, out_svg = tmp_path / "out.md", tmp_path / "out.svg"
        assert main([*args, "-o", str(out_md), "--svg", str(out_svg),
                     "--resume", "--jobs", "1"]) == 0
        err = capsys.readouterr().err
        assert "resumed" in err
        assert out_md.read_bytes() == ref_md.read_bytes()
        assert out_svg.read_bytes() == ref_svg.read_bytes()


class TestFiguresAndTables:
    def test_figure6_subset(self, capsys):
        assert main(["figure", "6", "pointer", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "run report:" in out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "12", *SCALE]) == 2

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        assert "IFQ size" in capsys.readouterr().out

    def test_table1_subset(self, capsys):
        assert main(["table", "1", "pointer", *SCALE]) == 0
        assert "benchmark suite" in capsys.readouterr().out

    def test_table_unknown(self, capsys):
        assert main(["table", "9", *SCALE]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestRobustnessFlags:
    def test_resume_rerun_restores_from_journal(self, capsys):
        assert main(["figure", "6", "pointer", *SCALE, "--jobs", "1"]) == 0
        capsys.readouterr()
        assert main(["figure", "6", "pointer", *SCALE, "--jobs", "1",
                     "--resume"]) == 0
        assert "resumed" in capsys.readouterr().out

    def test_fail_fast_flag_accepted(self, capsys):
        assert main(["figure", "6", "pointer", *SCALE, "--jobs", "1",
                     "--fail-fast", "--retries", "0"]) == 0

    def test_invalid_fault_spec_rejected(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULTS", "explode:everything")
        assert main(["list"]) == 2
        assert "REPRO_FAULTS" in capsys.readouterr().err

    def test_keep_going_failure_exits_nonzero(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULTS", "fail:cell=0:times=0")
        assert main(["figure", "6", "pointer", *SCALE, "--jobs", "1",
                     "--retries", "0"]) == 1
        assert "FAILED" in capsys.readouterr().out


class TestJournalCommand:
    def test_show_empty_dir(self, capsys):
        assert main(["journal", "show"]) == 0
        assert "no run journals" in capsys.readouterr().out

    def test_list_and_dump_after_run(self, capsys):
        assert main(["figure", "6", "pointer", *SCALE, "--jobs", "1"]) == 0
        capsys.readouterr()
        assert main(["journal", "show"]) == 0
        listing = capsys.readouterr().out
        assert "figure6" in listing
        run_id = listing.splitlines()[-1].split()[0]
        assert main(["journal", "show", run_id]) == 0
        dump = capsys.readouterr().out
        assert '"event": "start"' in dump and '"status": "ok"' in dump

    def test_unknown_run_prefix(self, capsys):
        assert main(["journal", "show", "zzzzzz"]) == 2


class TestFuzz:
    CAMPAIGN = ["fuzz", "run", "--seed", "71", "--count", "3",
                "--dials", "mem_words=512;target_instructions=600",
                "--sweep-every", "0", "--jobs", "1"]

    def test_run_prints_deterministic_triage(self, capsys):
        assert main(self.CAMPAIGN) == 0
        first = capsys.readouterr().out
        assert "fuzz triage — 3 program(s)" in first
        assert "divergence" in first
        assert main(self.CAMPAIGN) == 0
        assert capsys.readouterr().out == first

    def test_run_strict_is_clean(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        assert main([*self.CAMPAIGN, "--strict", "-o", str(out)]) == 0
        capsys.readouterr()
        import json as _json
        doc = _json.loads(out.read_text())
        assert doc["total"] == 3
        assert doc["counts"]["divergence"] == 0

    def test_triage_emits_json(self, capsys):
        args = list(self.CAMPAIGN)
        args[1] = "triage"
        assert main(args) == 0
        import json as _json
        doc = _json.loads(capsys.readouterr().out)
        assert doc["total"] == 3

    def test_show_prints_spec(self, capsys):
        assert main(["fuzz", "show", "fuzz:v1:71:0"]) == 0
        out = capsys.readouterr().out
        assert "statement(s)" in out
        assert '"version": 1' in out

    def test_show_resolves_promoted_kernels(self, capsys):
        assert main(["fuzz", "show", "fzsrl"]) == 0
        assert "3 statement(s)" in capsys.readouterr().out

    def test_shrink_refuses_clean_kernel(self, capsys):
        assert main(["fuzz", "shrink",
                     "fuzz:v1:71:0:mem_words=512;target_instructions=600"]
                    ) == 1
        assert "nothing to shrink" in capsys.readouterr().err

    def test_shrink_without_target_is_usage_error(self, capsys):
        assert main(["fuzz", "shrink"]) == 2

    def test_bad_dials_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "run", "--count", "1", "--dials", "warp=9"])
