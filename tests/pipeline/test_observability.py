"""Tracer/sampler wiring in the timing model, stream determinism, and the
stats-accounting fixes the observability layer exposed (dormant-trigger
chaining, decode-stall attribution)."""

import dataclasses

import pytest

from repro.core import PThread, PThreadTable, SPEAR_128, BASELINE
from repro.functional import Trace, TraceEntry
from repro.isa import OpClass
from repro.memory import MemoryHierarchy
from repro.observe import (COMMIT, DECODE, EXTRACT, MISPREDICT, MODE,
                           IntervalSampler, RingBufferSink, serialize_events)
from repro.pipeline import TimingSimulator

INT_ALU = int(OpClass.INT_ALU)
LOAD = int(OpClass.LOAD)


def alu(pc, srcs=(), dst=-1):
    return TraceEntry(pc, INT_ALU, tuple(srcs), dst, -1, False,
                      False, False, False, False)


def load(pc, addr, dst, srcs=()):
    return TraceEntry(pc, LOAD, tuple(srcs), dst, addr, False,
                      True, False, False, False)


def gather_like_trace(iters=200):
    entries = []
    for i in range(iters):
        entries.append(load(0, 0x10000 + 8 * i, dst=4, srcs=(1,)))
        entries.append(alu(1, srcs=(4,), dst=5))
        entries.append(alu(2, srcs=(5,), dst=6))
        entries.append(load(3, 0x400000 + 4096 * (i * 17 % 997), dst=7,
                            srcs=(6,)))
        entries.append(alu(4, srcs=(7, 9), dst=9))
        entries.append(alu(5, srcs=(1,), dst=1))
    return Trace(entries, program_name="synthetic-gather")


def table_for():
    t = PThreadTable()
    t.add(PThread(dload_pc=3, slice_pcs=frozenset((0, 1, 2, 3)),
                  live_ins=(1,)))
    return t


def traced_run(trace, config=SPEAR_128, table=None, interval=None):
    sink = RingBufferSink(capacity=None)
    sampler = IntervalSampler(interval) if interval else None
    sim = TimingSimulator(trace, config, table,
                          MemoryHierarchy(latencies=config.latencies),
                          tracer=sink, sampler=sampler)
    return sim.run(), sink


class TestTracerWiring:
    def test_event_counts_match_stats(self):
        res, sink = traced_run(gather_like_trace(), table=table_for())
        events = sink.events()
        by_kind = {}
        for e in events:
            by_kind[e.kind] = by_kind.get(e.kind, 0) + 1
        assert by_kind[COMMIT] == res.stats.committed
        assert by_kind[DECODE] == res.stats.decoded
        assert by_kind[EXTRACT] == res.stats.spear.extracted
        assert by_kind.get(MISPREDICT, 0) == res.stats.mispredicts

    def test_mode_events_match_trigger_counters(self):
        res, sink = traced_run(gather_like_trace(), table=table_for())
        infos = [e.info for e in sink.events() if e.kind == MODE]
        starts = sum(1 for i in infos if i.startswith("IDLE->"))
        ends = sum(1 for i in infos if i.endswith("->IDLE"))
        s = res.stats.spear
        assert starts == s.triggers
        assert ends == s.modes_completed + s.modes_aborted

    def test_stream_cycles_monotone(self):
        _, sink = traced_run(gather_like_trace(), table=table_for())
        cycles = [e.cycle for e in sink.events()]
        assert cycles == sorted(cycles)

    def test_trigger_extract_flagged(self):
        res, sink = traced_run(gather_like_trace(), table=table_for())
        flagged = [e for e in sink.events()
                   if e.kind == EXTRACT and e.info == "trigger"]
        assert len(flagged) >= res.stats.spear.modes_completed


class TestTracerDisabled:
    def test_untraced_run_identical_to_traced(self):
        trace = gather_like_trace()
        plain = TimingSimulator(
            trace, SPEAR_128, table_for(),
            MemoryHierarchy(latencies=SPEAR_128.latencies)).run()
        observed, _ = traced_run(trace, table=table_for(), interval=1000)
        assert plain.stats.snapshot() == observed.stats.snapshot()
        assert plain.summary() == observed.summary()
        assert plain.memory == observed.memory

    def test_plain_run_has_no_timeline(self):
        trace = gather_like_trace(iters=20)
        res = TimingSimulator(trace, BASELINE, None).run()
        assert res.timeline is None


class TestDeterminism:
    def test_byte_identical_streams(self):
        trace = gather_like_trace()
        _, a = traced_run(trace, table=table_for())
        _, b = traced_run(trace, table=table_for())
        assert serialize_events(a.events()) == serialize_events(b.events())


class TestSamplerIntegration:
    def test_timeline_consistent_with_totals(self):
        res, _ = traced_run(gather_like_trace(), table=table_for(),
                            interval=500)
        tl = res.timeline
        samples = tl["samples"]
        assert tl["interval"] == 500
        assert sum(s["committed"] for s in samples) == res.stats.committed
        assert sum(s["cycles"] for s in samples) == res.stats.cycles
        assert samples[-1]["cycle"] == res.stats.cycles
        assert all(s["cycle"] % 500 == 0 for s in samples[:-1])
        assert all(0.0 <= s["mode_residency"] <= 1.0 for s in samples)


class TestPerThreadSeries:
    def test_per_thread_totals_match_stats(self):
        res, _ = traced_run(gather_like_trace(), table=table_for(),
                            interval=500)
        tl = res.timeline
        assert [t["name"] for t in tl["per_thread"]] == ["main", "pthread"]
        main = res.thread_series(0)
        pthread = res.thread_series(1)
        assert len(main) == len(tl["samples"]) == len(pthread)
        # Thread 0 completes exactly the committed instructions; thread 1
        # completes exactly the extracted p-thread instructions.
        assert sum(s["completed"] for s in main) == res.stats.committed
        assert sum(s["completed"] for s in pthread) == \
            res.stats.spear.pthread_instrs
        # Per-thread L1 accounting decomposes the memory snapshot.
        threads = res.memory["threads"]
        assert sum(s["l1_misses"] for s in main) == threads[0]["l1_misses"]
        assert sum(s["l1_misses"] for s in pthread) == \
            threads[1]["l1_misses"]

    def test_issue_share_partitions_unity(self):
        res, _ = traced_run(gather_like_trace(), table=table_for(),
                            interval=500)
        main = res.thread_series(0)
        pthread = res.thread_series(1)
        for m, p in zip(main, pthread):
            total = m["issued"] + p["issued"]
            if total:
                assert m["issue_share"] + p["issue_share"] == \
                    pytest.approx(1.0)

    def test_thread_series_absent_without_sampler(self):
        res = TimingSimulator(gather_like_trace(iters=20), BASELINE,
                              None).run()
        assert res.thread_series(0) is None

    def test_baseline_pthread_series_is_flat(self):
        res, _ = traced_run(gather_like_trace(), config=BASELINE,
                            interval=500)
        pthread = res.thread_series(1)
        assert all(s["completed"] == 0 for s in pthread)
        assert all(s["issued"] == 0 for s in pthread)


class TestChainingRetrigger:
    """A dormant marked d-load must retrigger under chaining even at low
    IFQ occupancy — the run-loop fast path used to require the occupancy
    threshold regardless of ``config.chaining``."""

    def setup_method(self):
        # 36 instructions: the IFQ (128 deep, 64-entry trigger threshold)
        # can never reach trigger occupancy, so every trigger must come
        # from the chaining path.
        self.trace = gather_like_trace(iters=6)
        assert len(self.trace) < SPEAR_128.trigger_occupancy

    def test_without_chaining_stays_dormant(self):
        sim = TimingSimulator(self.trace, SPEAR_128, table_for())
        res = sim.run()
        assert res.stats.spear.triggers == 0
        assert res.stats.spear.triggers_suppressed > 0
        assert res.stats.committed == len(self.trace)

    def test_chaining_wakes_dormant_dload(self):
        chained = dataclasses.replace(SPEAR_128, name="chain", chaining=True)
        sim = TimingSimulator(self.trace, chained, table_for())
        res = sim.run()
        s = res.stats.spear
        # The dormant d-loads now trigger (at this scale the main thread
        # catches each one immediately, so the modes abort — but they ran,
        # which the occupancy-gated fast path used to make impossible).
        assert s.triggers >= 1
        assert s.modes_completed + s.modes_aborted == s.triggers
        assert res.stats.committed == len(self.trace)


class TestDecodeStallSplit:
    """``decode_stall_empty_ifq`` must mean the IFQ was empty and decode
    idle — cycles whose decode budget went to PE extraction are counted
    under ``decode_pe_busy``."""

    def test_counter_in_snapshot(self):
        res = TimingSimulator(gather_like_trace(iters=20), BASELINE,
                              None).run()
        snap = res.stats.snapshot()
        assert "decode_pe_busy" in snap
        assert snap["decode_pe_busy"] == 0

    def test_baseline_never_pe_busy(self):
        res = TimingSimulator(gather_like_trace(), BASELINE, None).run()
        assert res.stats.decode_pe_busy == 0

    def test_spear_accounting_disjoint(self):
        res = TimingSimulator(gather_like_trace(), SPEAR_128,
                              table_for()).run()
        s = res.stats
        # Both counters tally cycles, never double-counted: together they
        # cannot exceed the cycle count.
        assert s.decode_stall_empty_ifq + s.decode_pe_busy <= s.cycles
