"""Hardware prefetchers inside the timing model, and chaining triggers."""

import dataclasses

import numpy as np
import pytest

from repro.core import BASELINE, SPEAR_128
from repro.core.configs import BASELINE_NEXTLINE, BASELINE_STRIDE
from repro.functional import run_program
from repro.isa import ProgramBuilder
from repro.pipeline import simulate


@pytest.fixture(scope="module")
def stream_trace():
    """Pure streaming kernel: a stride prefetcher's best case."""
    b = ProgramBuilder("stream", mem_bytes=8 << 20)
    n = 1 << 16
    base = b.alloc(n, init=np.arange(n, dtype=np.int64))
    b.li("r1", base)
    b.li("r2", 0)
    b.li("r3", 6000)
    with b.loop_down("r3"):
        b.lw("r4", "r1", 0)
        b.add("r2", "r2", "r4")
        b.addi("r1", "r1", 8)
    b.halt()
    return run_program(b.build(), max_instructions=40_000)


@pytest.fixture(scope="module")
def chase_trace():
    """Pure pointer chase: a stride prefetcher's worst case."""
    rng = np.random.default_rng(3)
    b = ProgramBuilder("chase", mem_bytes=8 << 20)
    n = 1 << 15
    perm = rng.permutation(n)
    nxt = np.empty(n, dtype=np.int64)
    nxt[perm[:-1]] = perm[1:]
    nxt[perm[-1]] = perm[0]
    base = b.alloc(n, init=nxt)
    b.li("r1", base)
    b.li("r10", 0)
    b.li("r3", 4000)
    with b.loop_down("r3"):
        b.slli("r5", "r10", 3)
        b.add("r5", "r5", "r1")
        b.lw("r10", "r5", 0)
    b.halt()
    return run_program(b.build(), max_instructions=40_000)


class TestPrefetcherInPipeline:
    def test_stride_accelerates_streams(self, stream_trace):
        base = simulate(stream_trace, BASELINE)
        stride = simulate(stream_trace, BASELINE_STRIDE)
        assert stride.ipc > base.ipc * 1.1
        assert stride.memory["prefetch_fills"] > 100

    def test_nextline_accelerates_streams(self, stream_trace):
        base = simulate(stream_trace, BASELINE)
        nl = simulate(stream_trace, BASELINE_NEXTLINE)
        assert nl.ipc > base.ipc * 1.1

    def test_stride_fails_on_pointer_chase(self, chase_trace):
        base = simulate(chase_trace, BASELINE)
        stride = simulate(chase_trace, BASELINE_STRIDE)
        assert stride.ipc < base.ipc * 1.05     # no help on random chains
        assert stride.memory["prefetch_fills"] < 200

    def test_prefetch_stats_in_result(self, stream_trace):
        res = simulate(stream_trace, BASELINE_STRIDE)
        assert res.prefetcher["observed"] > 0
        assert res.prefetcher["issued"] > 0
        none = simulate(stream_trace, BASELINE)
        assert none.prefetcher["issued"] == 0

    def test_prefetcher_ignores_pthread_loads(self, stream_trace):
        """The prefetcher trains on demand (main-thread) accesses only."""
        cfg = dataclasses.replace(SPEAR_128, name="spf", prefetcher="stride")
        res = simulate(stream_trace, cfg)
        # observed == main thread loads, not main + p-thread
        main_loads = sum(1 for e in stream_trace if e.is_load)
        assert res.prefetcher["observed"] == main_loads


class TestChainingTriggers:
    def test_chaining_never_fewer_triggers(self, gather_trace, gather_table):
        plain = simulate(gather_trace, SPEAR_128, gather_table)
        chained = simulate(
            gather_trace,
            dataclasses.replace(SPEAR_128, name="chain", chaining=True),
            gather_table)
        assert (chained.stats.spear.triggers
                >= plain.stats.spear.triggers)

    def test_chaining_bypasses_occupancy(self, gather_trace, gather_table):
        """With a prohibitive threshold, only chaining re-triggers run."""
        strict = dataclasses.replace(
            SPEAR_128, name="strict", trigger_occupancy_fraction=0.95)
        strict_chain = dataclasses.replace(
            strict, name="strict+chain", chaining=True)
        plain = simulate(gather_trace, strict, gather_table)
        chained = simulate(gather_trace, strict_chain, gather_table)
        assert (chained.stats.spear.triggers
                >= plain.stats.spear.triggers)
        assert chained.stats.committed == len(gather_trace)
