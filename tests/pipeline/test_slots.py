"""Hot-path classes must stay ``__slots__``-only (no per-instance dict).

These classes are instantiated or touched millions of times per simulation;
an accidental ``__dict__`` (e.g. from dropping ``__slots__`` in a subclass
or adding a class attribute carelessly) silently costs memory and speed.
"""

import pytest

from repro.branch.predictors import (AlwaysTakenPredictor, BimodalPredictor,
                                     GsharePredictor, StaticBTFNPredictor)
from repro.core.configs import BASELINE
from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.dyninst import DynInstr, MAIN_THREAD
from repro.pipeline.funits import FUPool
from repro.pipeline.ifq import IFQSlot, InstructionFetchQueue


def make_instances():
    cache = Cache(CacheConfig("t", sets=4, ways=2, block_bytes=32))
    return [
        IFQSlot(0, 0, False, False),
        InstructionFetchQueue(8),
        FUPool(BASELINE.fu),
        cache,
        MemoryHierarchy(),
        BimodalPredictor(),
        GsharePredictor(),
        AlwaysTakenPredictor(),
        StaticBTFNPredictor({}),
    ]


@pytest.mark.parametrize("obj", make_instances(),
                         ids=lambda o: type(o).__name__)
def test_no_instance_dict(obj):
    assert not hasattr(obj, "__dict__"), (
        f"{type(obj).__name__} grew a __dict__ — check __slots__ on it "
        f"and every base class")


def test_dyninst_is_slotted():
    class FakeEntry:
        pc = 0
    instr = DynInstr(0, MAIN_THREAD, 0, FakeEntry(), 0)
    assert not hasattr(instr, "__dict__")


def test_slots_reject_unknown_attributes():
    slot = IFQSlot(0, 0, False, False)
    with pytest.raises(AttributeError):
        slot.unknown_attribute = 1
