"""Timing model fundamentals on hand-built synthetic traces."""

import pytest

from repro.core import BASELINE, MachineConfig
from repro.functional import Trace, TraceEntry
from repro.isa import OpClass
from repro.memory import LatencyConfig, MemoryHierarchy
from repro.pipeline import TimingSimulator, simulate

INT_ALU = int(OpClass.INT_ALU)
LOAD = int(OpClass.LOAD)
STORE = int(OpClass.STORE)
BRANCH = int(OpClass.BRANCH)
FP_MUL = int(OpClass.FP_MUL)


def alu(pc=0, srcs=(), dst=-1):
    return TraceEntry(pc, INT_ALU, tuple(srcs), dst, -1, False,
                      False, False, False, False)


def fmul(pc=0, srcs=(), dst=-1):
    return TraceEntry(pc, FP_MUL, tuple(srcs), dst, -1, False,
                      False, False, False, False)


def load(pc=0, addr=0, dst=1, srcs=()):
    return TraceEntry(pc, LOAD, tuple(srcs), dst, addr, False,
                      True, False, False, False)


def store(pc=0, addr=0, srcs=()):
    return TraceEntry(pc, STORE, tuple(srcs), -1, addr, False,
                      False, True, False, False)


def branch(pc=0, taken=False, srcs=()):
    return TraceEntry(pc, BRANCH, tuple(srcs), -1, -1, taken,
                      False, False, True, True)


def run(entries, config=BASELINE, **kw):
    return simulate(Trace(list(entries), program_name="synth"), config, **kw)


class TestThroughput:
    def test_independent_alus_reach_width(self):
        res = run([alu(pc=i % 7) for i in range(800)])
        # 8-wide machine, independent single-cycle ops: IPC near width,
        # bounded by the 4 integer ALUs.
        assert res.ipc > 3.5

    def test_serial_chain_is_one_per_cycle(self):
        entries = [alu(pc=0, dst=1)]
        entries += [alu(pc=1 + (i % 5), srcs=(1,), dst=1) for i in range(500)]
        res = run(entries)
        assert 0.8 < res.ipc <= 1.05

    def test_commit_in_order(self):
        res = run([alu(pc=i % 3, dst=-1) for i in range(100)])
        assert res.stats.committed == 100

    def test_empty_trace(self):
        res = run([])
        assert res.stats.cycles == 0 and res.ipc == 0.0

    def test_narrow_machine_limits(self):
        narrow = MachineConfig(name="narrow", fetch_width=2, decode_width=2,
                               issue_width=2, commit_width=2, extract_width=1)
        res = run([alu(pc=i % 7) for i in range(400)], narrow)
        assert res.ipc <= 2.01


class TestMemoryTiming:
    def test_load_miss_stalls_dependent(self):
        # load (cold DRAM miss, 120) -> dependent chain of 10
        entries = [load(pc=0, addr=0x1000, dst=1)]
        entries += [alu(pc=1, srcs=(1,), dst=1) for _ in range(10)]
        res = run(entries)
        assert res.stats.cycles > 120

    def test_warm_cache_is_fast(self):
        entries = [load(pc=0, addr=0x1000, dst=1)]
        entries += [alu(pc=1, srcs=(1,), dst=1) for _ in range(10)]
        mem = MemoryHierarchy(latencies=LatencyConfig())
        mem.warm(0x1000)
        mem.finish_warmup()
        res = TimingSimulator(Trace(entries), BASELINE, memory=mem).run()
        assert res.stats.cycles < 40

    def test_independent_misses_overlap(self):
        # 8 independent loads to distinct blocks: MLP -> ~1 miss latency
        entries = [load(pc=i, addr=0x1000 + 4096 * i, dst=i + 1)
                   for i in range(8)]
        res = run(entries)
        assert res.stats.cycles < 2 * 120

    def test_store_to_load_forwarding_dependence(self):
        # store to X, then load from X: load waits for the store
        entries = [alu(pc=0, dst=1),
                   store(pc=1, addr=0x100, srcs=(1,)),
                   load(pc=2, addr=0x100, dst=2),
                   alu(pc=3, srcs=(2,))]
        res = run(entries)
        assert res.stats.committed == 4

    def test_port_limit_bounds_load_rate(self):
        mem = MemoryHierarchy()
        for i in range(64):
            mem.warm(0x1000 + 32 * i)
        mem.finish_warmup()
        entries = [load(pc=i % 16, addr=0x1000 + 32 * (i % 64), dst=1)
                   for i in range(400)]
        res = TimingSimulator(Trace(entries), BASELINE, memory=mem).run()
        # 2 memory ports -> at most 2 loads per cycle
        assert res.ipc <= 2.05


class TestBranching:
    def test_predictable_loop_branch(self):
        entries = []
        for _ in range(200):
            entries.append(alu(pc=0))
            entries.append(branch(pc=1, taken=True))
        res = run(entries)
        assert res.stats.branch_hit_ratio > 0.95

    def test_random_branches_mispredict(self):
        import random
        rng = random.Random(3)
        entries = []
        for _ in range(400):
            entries.append(alu(pc=0, dst=1))
            entries.append(branch(pc=1, taken=rng.random() < 0.5, srcs=(1,)))
        res = run(entries)
        assert res.stats.mispredicts > 50
        assert res.stats.fetch_stall_mispredict > 0

    def test_mispredicts_cost_cycles(self):
        biased = []
        import random
        rng = random.Random(3)
        for _ in range(300):
            biased.append(alu(pc=0, dst=1))
            biased.append(branch(pc=1, taken=True, srcs=(1,)))
        noisy = []
        for _ in range(300):
            noisy.append(alu(pc=0, dst=1))
            noisy.append(branch(pc=1, taken=rng.random() < 0.5, srcs=(1,)))
        assert run(noisy).stats.cycles > run(biased).stats.cycles

    def test_wrong_path_modes_agree_on_commits(self):
        import random
        rng = random.Random(5)
        entries = []
        for _ in range(300):
            entries.append(alu(pc=0, dst=1))
            entries.append(branch(pc=1, taken=rng.random() < 0.7, srcs=(1,)))
        for mode in ("reconverge", "bubbles", "stall"):
            cfg = MachineConfig(name=mode, wrong_path=mode)
            res = run(entries, cfg)
            assert res.stats.committed == len(entries)


class TestLatencies:
    def test_fp_mul_longer_than_alu(self):
        chain_alu = [alu(pc=0, dst=1)] + \
            [alu(pc=1, srcs=(1,), dst=1) for _ in range(100)]
        chain_fp = [fmul(pc=0, dst=33)] + \
            [fmul(pc=1, srcs=(33,), dst=33) for _ in range(100)]
        assert run(chain_fp).stats.cycles > 3 * run(chain_alu).stats.cycles

    def test_latency_config_propagates(self):
        entries = [load(pc=i, addr=0x1000 + 4096 * i, dst=i + 1, srcs=())
                   for i in range(4)]
        entries += [alu(pc=10, srcs=(1, 2), dst=5),
                    alu(pc=11, srcs=(3, 4), dst=6)]
        slow = BASELINE.with_latencies(LatencyConfig(1, 20, 200))
        fast = BASELINE.with_latencies(LatencyConfig(1, 4, 40))
        assert run(entries, slow).stats.cycles > run(entries, fast).stats.cycles


class TestGuards:
    def test_max_cycles_raises(self):
        cfg = MachineConfig(name="tiny-budget", max_cycles=5)
        with pytest.raises(RuntimeError, match="max_cycles"):
            run([load(pc=0, addr=0x1000, dst=1)], cfg)

    def test_result_summary(self, gather_trace):
        res = simulate(gather_trace, BASELINE)
        s = res.summary()
        assert s["config"] == "baseline"
        assert s["committed"] == len(gather_trace)
        assert s["ipc"] == pytest.approx(res.ipc)
