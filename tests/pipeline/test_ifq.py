"""IFQ: FIFO behaviour, indicator marking, bubbles, flushes."""

import pytest

from repro.pipeline import InstructionFetchQueue


class TestFIFO:
    def test_push_pop_order(self):
        q = InstructionFetchQueue(8)
        for i in range(5):
            q.push(i)
        assert [q.pop_head().trace_idx for _ in range(5)] == list(range(5))

    def test_occupancy_and_full(self):
        q = InstructionFetchQueue(3)
        assert q.is_empty
        for i in range(3):
            q.push(i)
        assert q.is_full and q.occupancy == 3
        with pytest.raises(OverflowError):
            q.push(9)

    def test_seq_monotonic(self):
        q = InstructionFetchQueue(4)
        s0 = q.push(0).seq
        s1 = q.push(1).seq
        q.pop_head()
        s2 = q.push(2).seq
        assert s0 < s1 < s2

    def test_head_seq(self):
        q = InstructionFetchQueue(4)
        q.push(0)
        q.push(1)
        q.pop_head()
        assert q.head_seq == 1

    def test_peek(self):
        q = InstructionFetchQueue(4)
        assert q.peek_head() is None
        q.push(7)
        assert q.peek_head().trace_idx == 7
        assert q.occupancy == 1

    def test_size_validation(self):
        with pytest.raises(ValueError):
            InstructionFetchQueue(0)


class TestMarking:
    def test_marked_queue_order(self):
        q = InstructionFetchQueue(8)
        q.push(0, marked=True)
        q.push(1)
        q.push(2, marked=True, is_dload=True)
        mq = list(q.marked_queue)
        assert [s.trace_idx for s in mq] == [0, 2]
        assert mq[1].is_dload

    def test_next_marked_from_seq(self):
        q = InstructionFetchQueue(8)
        a = q.push(0, marked=True)
        b = q.push(1, marked=True)
        assert q.next_marked(0) is a
        assert q.next_marked(a.seq + 1) is b
        assert q.next_marked(b.seq + 1) is None

    def test_extraction_clears_mark(self):
        q = InstructionFetchQueue(8)
        a = q.push(0, marked=True)
        a.marked = False
        assert q.next_marked(0) is None

    def test_consumed_entries_pruned(self):
        q = InstructionFetchQueue(8)
        q.push(0, marked=True)
        b = q.push(1, marked=True)
        q.pop_head()
        q.prune_marked()
        assert list(q.marked_queue) == [b]


class TestBubblesAndFlush:
    def test_bubble_occupies(self):
        q = InstructionFetchQueue(4)
        q.push_bubble()
        assert q.occupancy == 1
        assert q.peek_head().trace_idx == -1

    def test_flush_bubbles_only_tail(self):
        q = InstructionFetchQueue(8)
        q.push(0)
        q.push_bubble()
        q.push_bubble()
        assert q.flush_bubbles() == 2
        assert q.occupancy == 1
        assert q.peek_head().trace_idx == 0

    def test_flush_after_seq(self):
        q = InstructionFetchQueue(8)
        a = q.push(0)
        q.push(1, marked=True)
        q.push(2, marked=True)
        assert q.flush_after(a.seq) == 2
        assert q.occupancy == 1
        q.prune_marked()
        assert q.next_marked(0) is None   # flushed marks cleared

    def test_flush_after_nothing_younger(self):
        q = InstructionFetchQueue(8)
        a = q.push(0)
        assert q.flush_after(a.seq) == 0

    def test_clear(self):
        q = InstructionFetchQueue(8)
        q.push(0, marked=True)
        q.clear()
        assert q.is_empty and not q.marked_queue
