"""SPEAR hardware behaviour: triggering, extraction, pre-execution effects."""

import dataclasses

import pytest

from repro.core import (BASELINE, PThread, PThreadTable, SPEAR_128, SPEAR_256,
                        SPEAR_SF_128, MachineConfig)
from repro.pipeline import TimingSimulator, simulate

from ..conftest import gather_load_pcs


def spear_variant(**kw):
    return dataclasses.replace(SPEAR_128, **kw)


class TestEndToEndEffect:
    def test_spear_beats_baseline_on_gather(self, gather_trace, gather_table):
        base = simulate(gather_trace, BASELINE, gather_table)
        spear = simulate(gather_trace, SPEAR_128, gather_table)
        assert spear.ipc > base.ipc * 1.05

    def test_longer_ifq_helps_gather(self, gather_trace, gather_table):
        s128 = simulate(gather_trace, SPEAR_128, gather_table)
        s256 = simulate(gather_trace, SPEAR_256, gather_table)
        assert s256.ipc >= s128.ipc * 0.98

    def test_miss_reduction(self, gather_trace, gather_table):
        base = simulate(gather_trace, BASELINE, gather_table)
        spear = simulate(gather_trace, SPEAR_128, gather_table)
        assert spear.main_l1_misses < base.main_l1_misses * 0.8

    def test_empty_table_equals_baseline(self, gather_trace):
        base = simulate(gather_trace, BASELINE)
        spear = simulate(gather_trace, SPEAR_128, PThreadTable.empty())
        assert spear.stats.cycles == base.stats.cycles
        assert spear.stats.spear.triggers == 0

    def test_table_ignored_when_disabled(self, gather_trace, gather_table):
        base = simulate(gather_trace, BASELINE, gather_table)
        assert base.stats.spear.triggers == 0
        assert base.stats.spear.pthread_instrs == 0

    def test_commits_unchanged_by_spear(self, gather_trace, gather_table):
        spear = simulate(gather_trace, SPEAR_128, gather_table)
        assert spear.stats.committed == len(gather_trace)


class TestTriggering:
    def test_triggers_fire(self, gather_trace, gather_table):
        res = simulate(gather_trace, SPEAR_128, gather_table)
        s = res.stats.spear
        assert s.triggers > 0
        assert s.modes_completed + s.modes_aborted <= s.triggers
        assert s.pthread_instrs > 0

    def test_occupancy_threshold_suppresses(self, gather_trace, gather_table):
        # A full-IFQ requirement still triggers occasionally (the queue does
        # fill), but far less than the paper's half-IFQ threshold, and the
        # suppressed counter records the refusals.
        strict = spear_variant(name="strict", trigger_occupancy_fraction=1.0)
        res_strict = simulate(gather_trace, strict, gather_table)
        res_default = simulate(gather_trace, SPEAR_128, gather_table)
        assert res_strict.stats.spear.triggers < res_default.stats.spear.triggers
        assert res_strict.stats.spear.triggers_suppressed > 0

    def test_zero_threshold_triggers_immediately(self, gather_trace,
                                                 gather_table):
        eager = spear_variant(name="eager", trigger_occupancy_fraction=0.0)
        res = simulate(gather_trace, eager, gather_table)
        assert res.stats.spear.triggers > 0

    def test_livein_copy_cycles_accounted(self, gather_trace, gather_table):
        res = simulate(gather_trace, SPEAR_128, gather_table)
        s = res.stats.spear
        # two live-ins at one cycle each, per completed trigger sequence
        assert s.livein_copy_cycles >= 2 * s.modes_completed * 0 + s.triggers

    def test_expensive_livein_copy_slows_pthread(self, gather_trace,
                                                 gather_table):
        cheap = simulate(gather_trace, SPEAR_128, gather_table)
        costly = simulate(gather_trace,
                          spear_variant(name="slowcopy", livein_copy_cycles=40),
                          gather_table)
        assert costly.stats.spear.pthread_instrs <= cheap.stats.spear.pthread_instrs
        assert costly.ipc <= cheap.ipc * 1.02


class TestExtraction:
    def test_extract_width_limits(self, gather_trace, gather_table):
        wide = simulate(gather_trace, SPEAR_128, gather_table)
        narrow = simulate(gather_trace,
                          spear_variant(name="narrow", extract_width=1),
                          gather_table)
        assert narrow.stats.spear.pthread_instrs <= wide.stats.spear.pthread_instrs

    def test_pthread_loads_counted(self, gather_trace, gather_table):
        res = simulate(gather_trace, SPEAR_128, gather_table)
        s = res.stats.spear
        assert 0 < s.pthread_loads <= s.pthread_instrs

    def test_tiny_pthread_ruu_stalls_extraction(self, gather_trace,
                                                gather_table):
        small = spear_variant(name="tiny-ruu", pthread_ruu_size=2)
        res = simulate(gather_trace, small, gather_table)
        assert res.stats.spear.extraction_stall_ruu_full > 0

    def test_pthread_touches_cache_only(self, gather_trace, gather_table):
        """P-thread instructions never commit architecturally."""
        res = simulate(gather_trace, SPEAR_128, gather_table)
        assert res.stats.committed == len(gather_trace)
        assert res.memory["threads"][1]["accesses"] > 0


class TestDrainPolicies:
    @pytest.mark.parametrize("policy", ["livein", "none", "full"])
    def test_all_policies_complete(self, gather_trace, gather_table, policy):
        cfg = spear_variant(name=f"drain-{policy}", drain_policy=policy)
        res = simulate(gather_trace, cfg, gather_table)
        assert res.stats.committed == len(gather_trace)

    def test_full_drain_defeats_extraction(self, gather_trace, gather_table):
        """With ROB size == IFQ size, the literal full-commit drain means
        the main thread reaches the d-load before the PE can (DESIGN.md)."""
        full = simulate(gather_trace,
                        spear_variant(name="full", drain_policy="full"),
                        gather_table)
        livein = simulate(gather_trace, SPEAR_128, gather_table)
        assert full.stats.spear.pthread_instrs < livein.stats.spear.pthread_instrs


class TestPriorityAndResources:
    def test_priority_toggle_runs(self, gather_trace, gather_table):
        nopri = spear_variant(name="nopri", pthread_priority=False)
        res = simulate(gather_trace, nopri, gather_table)
        assert res.stats.committed == len(gather_trace)
        assert res.stats.spear.pthread_instrs > 0

    def test_separate_fu_at_least_as_fast(self, gather_trace, gather_table):
        shared = simulate(gather_trace, SPEAR_128, gather_table)
        sf = simulate(gather_trace, SPEAR_SF_128, gather_table)
        assert sf.ipc >= shared.ipc * 0.97

    def test_mode_cycles_bounded(self, gather_trace, gather_table):
        res = simulate(gather_trace, SPEAR_128, gather_table)
        assert res.stats.spear.cycles_in_mode <= res.stats.cycles


class TestWrongPathInteraction:
    def test_spear_works_in_all_wrong_path_modes(self, gather_trace,
                                                 gather_table):
        for mode in ("reconverge", "bubbles", "stall"):
            cfg = spear_variant(name=f"wp-{mode}", wrong_path=mode)
            res = simulate(gather_trace, cfg, gather_table)
            assert res.stats.committed == len(gather_trace)

    def test_dload_abort_when_main_catches_up(self, gather_trace,
                                              gather_program):
        """A p-thread whose trigger d-load decodes before extraction begins
        must abort the mode, not deadlock."""
        idx_pc, gather_pc = gather_load_pcs(gather_program)
        table = PThreadTable()
        table.add(PThread(dload_pc=gather_pc,
                          slice_pcs=frozenset([gather_pc]),
                          live_ins=(1, 2, 6)))
        slow = dataclasses.replace(
            SPEAR_128, name="slow-start", livein_copy_cycles=300)
        res = simulate(gather_trace, slow, table)
        assert res.stats.committed == len(gather_trace)
        assert res.stats.spear.modes_aborted > 0
