"""Functional-unit pools: per-cycle budgets and structural hazards."""

from repro.core import FUConfig
from repro.isa import OpClass
from repro.pipeline import FU_OF_CLASS, FUKind, FUPool


class TestPool:
    def test_paper_capacities(self):
        pool = FUPool(FUConfig())
        assert sum(pool.take(int(OpClass.INT_ALU)) for _ in range(5)) == 4
        assert pool.take(int(OpClass.INT_MUL))
        assert not pool.take(int(OpClass.INT_DIV))   # shares the MUL/DIV unit

    def test_mem_ports(self):
        pool = FUPool(FUConfig())
        assert pool.take(int(OpClass.LOAD))
        assert pool.take(int(OpClass.STORE))
        assert not pool.take(int(OpClass.LOAD))

    def test_begin_cycle_refreshes(self):
        pool = FUPool(FUConfig(int_alu=1))
        assert pool.take(int(OpClass.INT_ALU))
        assert not pool.take(int(OpClass.INT_ALU))
        pool.begin_cycle()
        assert pool.take(int(OpClass.INT_ALU))

    def test_conflict_counting(self):
        pool = FUPool(FUConfig(fp_muldiv=1))
        pool.take(int(OpClass.FP_MUL))
        pool.take(int(OpClass.FP_DIV))
        pool.take(int(OpClass.FP_DIV))
        assert pool.conflicts[FUKind.FP_MULDIV] == 2

    def test_available(self):
        pool = FUPool(FUConfig())
        assert pool.available(int(OpClass.INT_ALU)) == 4
        pool.take(int(OpClass.BRANCH))               # branches use int ALUs
        assert pool.available(int(OpClass.INT_ALU)) == 3

    def test_fp_and_int_independent(self):
        pool = FUPool(FUConfig(int_alu=1, fp_alu=1))
        assert pool.take(int(OpClass.INT_ALU))
        assert pool.take(int(OpClass.FP_ALU))
        assert not pool.take(int(OpClass.INT_ALU))
        assert not pool.take(int(OpClass.FP_ALU))


class TestMapping:
    def test_every_class_mapped(self):
        for cls in OpClass:
            assert int(cls) in FU_OF_CLASS

    def test_memory_classes_use_ports(self):
        assert FU_OF_CLASS[int(OpClass.LOAD)] == FUKind.MEM_PORT
        assert FU_OF_CLASS[int(OpClass.STORE)] == FUKind.MEM_PORT
