"""Property-based timing-model invariants over randomized traces.

Whatever instruction mix, dependence structure, or machine shape hypothesis
draws, the pipeline must terminate, conserve instruction counts, respect
width bounds, and be deterministic.  SPEAR with an arbitrary (valid)
p-thread table must never change the committed instruction count.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.core import BASELINE, PThread, PThreadTable, SPEAR_128
from repro.functional import Trace, TraceEntry
from repro.isa import OpClass
from repro.pipeline import simulate

_CLASSES = [int(OpClass.INT_ALU), int(OpClass.INT_MUL), int(OpClass.FP_ALU),
            int(OpClass.FP_MUL), int(OpClass.LOAD), int(OpClass.STORE)]


@st.composite
def random_traces(draw, max_len=220, n_pcs=12):
    """A random but well-formed committed-path trace."""
    length = draw(st.integers(5, max_len))
    entries = []
    written: list[int] = []
    for _ in range(length):
        pc = draw(st.integers(0, n_pcs - 1))
        if draw(st.integers(0, 7)) == 0:
            taken = draw(st.booleans())
            srcs = tuple(draw(st.sampled_from(written)) for _ in range(
                min(len(written), draw(st.integers(0, 1)))))
            entries.append(TraceEntry(pc, int(OpClass.BRANCH), srcs, -1,
                                      -1, taken, False, False, True, True))
            continue
        cls = draw(st.sampled_from(_CLASSES))
        n_srcs = min(len(written), draw(st.integers(0, 2)))
        srcs = tuple(draw(st.sampled_from(written))
                     for _ in range(n_srcs)) if written else ()
        is_load = cls == int(OpClass.LOAD)
        is_store = cls == int(OpClass.STORE)
        addr = draw(st.integers(0, 1 << 14)) * 8 if (is_load or is_store) else -1
        dst = -1 if is_store else draw(st.integers(1, 15))
        if cls in (int(OpClass.FP_ALU), int(OpClass.FP_MUL)) and dst != -1:
            dst += 32
        if dst != -1:
            written.append(dst)
            written = written[-20:]
        entries.append(TraceEntry(pc, cls, srcs, dst, addr, False,
                                  is_load, is_store, False, False))
    return Trace(entries, program_name="hypothesis")


def random_table(trace: Trace) -> PThreadTable:
    """A p-thread over the first load pc found (if any)."""
    table = PThreadTable()
    load_pcs = sorted({e.pc for e in trace if e.is_load})
    if load_pcs:
        dload = load_pcs[-1]
        table.add(PThread(dload_pc=dload,
                          slice_pcs=frozenset(load_pcs + [dload]),
                          live_ins=(1, 2)))
    return table


class TestUniversalInvariants:
    @given(random_traces())
    @settings(max_examples=60, deadline=None)
    def test_baseline_terminates_and_conserves(self, trace):
        res = simulate(trace, BASELINE)
        s = res.stats
        assert s.committed == len(trace)
        assert s.decoded == len(trace)
        assert s.issued == len(trace)
        # width bound: can never beat commit_width per cycle
        assert s.cycles * 8 >= len(trace)

    @given(random_traces())
    @settings(max_examples=60, deadline=None)
    def test_spear_conserves_commits(self, trace):
        table = random_table(trace)
        res = simulate(trace, SPEAR_128, table)
        assert res.stats.committed == len(trace)
        assert res.stats.issued == (len(trace)
                                    + res.stats.spear.pthread_instrs)

    @given(random_traces())
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, trace):
        a = simulate(trace, SPEAR_128, random_table(trace))
        b = simulate(trace, SPEAR_128, random_table(trace))
        assert a.stats.cycles == b.stats.cycles
        assert a.main_l1_misses == b.main_l1_misses

    @given(random_traces(), st.sampled_from(["reconverge", "bubbles", "stall"]))
    @settings(max_examples=45, deadline=None)
    def test_every_wrong_path_mode_terminates(self, trace, mode):
        cfg = dataclasses.replace(SPEAR_128, name=mode, wrong_path=mode)
        res = simulate(trace, cfg, random_table(trace))
        assert res.stats.committed == len(trace)

    @given(random_traces(),
           st.sampled_from(["livein", "none", "full"]),
           st.booleans())
    @settings(max_examples=45, deadline=None)
    def test_drain_and_chaining_combinations(self, trace, drain, chain):
        cfg = dataclasses.replace(SPEAR_128, name=f"{drain}-{chain}",
                                  drain_policy=drain, chaining=chain)
        res = simulate(trace, cfg, random_table(trace))
        assert res.stats.committed == len(trace)

    @given(random_traces(), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_narrow_machines_terminate(self, trace, width):
        cfg = dataclasses.replace(
            BASELINE, name=f"w{width}", fetch_width=width,
            decode_width=width, issue_width=width, commit_width=width,
            extract_width=1, ifq_size=max(8, width))
        res = simulate(trace, cfg)
        assert res.stats.committed == len(trace)

    @given(random_traces())
    @settings(max_examples=30, deadline=None)
    def test_memory_stats_conserve(self, trace):
        res = simulate(trace, SPEAR_128, random_table(trace))
        t0 = res.memory["threads"][0]
        demand = sum(1 for e in trace if e.is_load or e.is_store)
        assert t0["accesses"] == demand
        assert (t0["l1_hits"] + t0["l1_misses"] + t0["delayed_hits"]
                == t0["accesses"])

    @given(random_traces())
    @settings(max_examples=30, deadline=None)
    def test_spear_cache_benefit_never_negative_commits(self, trace):
        """SPEAR can slow things down, but only within bounds: it executes
        the same committed work with at most extra p-thread overhead."""
        base = simulate(trace, BASELINE)
        spear = simulate(trace, SPEAR_128, random_table(trace))
        assert spear.stats.cycles <= base.stats.cycles * 3 + 1000
