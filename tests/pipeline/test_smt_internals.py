"""White-box timing-model scenarios: extraction order, mode sequencing,
per-thread accounting — driven through crafted synthetic traces."""

import dataclasses

import pytest

from repro.core import PThread, PThreadTable, SPEAR_128
from repro.functional import Trace, TraceEntry
from repro.isa import OpClass
from repro.memory import MemoryHierarchy
from repro.pipeline import TimingSimulator

INT_ALU = int(OpClass.INT_ALU)
LOAD = int(OpClass.LOAD)


def alu(pc, srcs=(), dst=-1):
    return TraceEntry(pc, INT_ALU, tuple(srcs), dst, -1, False,
                      False, False, False, False)


def load(pc, addr, dst, srcs=()):
    return TraceEntry(pc, LOAD, tuple(srcs), dst, addr, False,
                      True, False, False, False)


def gather_like_trace(iters=200, pcs=(0, 1, 2, 3, 4, 5)):
    """Loop body: idx load (pc0), addr math (pc1, pc2), gather (pc3),
    consume (pc4), cursor bump (pc5).  Addresses are synthetic."""
    entries = []
    for i in range(iters):
        entries.append(load(0, 0x10000 + 8 * i, dst=4, srcs=(1,)))
        entries.append(alu(1, srcs=(4,), dst=5))
        entries.append(alu(2, srcs=(5,), dst=6))
        entries.append(load(3, 0x400000 + 4096 * (i * 17 % 997), dst=7,
                            srcs=(6,)))
        entries.append(alu(4, srcs=(7, 9), dst=9))
        entries.append(alu(5, srcs=(1,), dst=1))
    return Trace(entries, program_name="synthetic-gather")


def table_for(dload_pc=3, slice_pcs=(0, 1, 2, 3), live_ins=(1,)):
    t = PThreadTable()
    t.add(PThread(dload_pc=dload_pc, slice_pcs=frozenset(slice_pcs),
                  live_ins=tuple(sorted(live_ins))))
    return t


def run_sim(trace, config=SPEAR_128, table=None):
    sim = TimingSimulator(trace, config, table,
                          MemoryHierarchy(latencies=config.latencies))
    return sim, sim.run()


class TestExtractionOrder:
    def test_pthread_instances_in_program_order(self):
        """The PE extracts in IFQ (program) order: record completion
        consistency via the monotone max-extracted counter."""
        trace = gather_like_trace()
        sim = TimingSimulator(trace, SPEAR_128, table_for())
        seen = []
        original = sim._spawn_pthread_instr

        def spy(trace_idx):
            seen.append(trace_idx)
            return original(trace_idx)

        sim._spawn_pthread_instr = spy
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(set(seen)), "no duplicate pre-execution"

    def test_only_marked_pcs_extracted(self):
        trace = gather_like_trace()
        sim = TimingSimulator(trace, SPEAR_128, table_for())
        seen = []
        original = sim._spawn_pthread_instr
        sim._spawn_pthread_instr = lambda idx: (seen.append(idx),
                                                original(idx))[1]
        sim.run()
        marked = {0, 1, 2, 3}
        assert all(trace[idx].pc in marked for idx in seen)

    def test_extraction_volume_bounded_by_marked(self):
        trace = gather_like_trace()
        _, res = run_sim(trace, table=table_for())
        marked_instances = sum(1 for e in trace if e.pc in {0, 1, 2, 3})
        assert res.stats.spear.pthread_instrs <= marked_instances


class TestModeSequencing:
    def test_mode_counters_consistent(self):
        trace = gather_like_trace()
        _, res = run_sim(trace, table=table_for())
        s = res.stats.spear
        assert s.modes_completed + s.modes_aborted <= s.triggers
        assert s.triggers >= 1

    def test_livein_cycles_proportional(self):
        # live-ins beyond r1 are never written by the trace, so the drain
        # completes instantly and only the copy-cycle cost differs
        trace = gather_like_trace()
        one = table_for(live_ins=(1,))
        many = table_for(live_ins=(1, 20, 21, 22, 23))
        _, res1 = run_sim(trace, table=one)
        _, res5 = run_sim(trace, table=many)
        if res1.stats.spear.triggers and res5.stats.spear.triggers:
            per1 = (res1.stats.spear.livein_copy_cycles
                    / res1.stats.spear.triggers)
            per5 = (res5.stats.spear.livein_copy_cycles
                    / res5.stats.spear.triggers)
            assert per5 > per1

    def test_mode_ends_are_counted(self):
        trace = gather_like_trace()
        _, res = run_sim(trace, table=table_for())
        s = res.stats.spear
        # every completed mode implies its trigger d-load pre-executed
        assert s.modes_completed <= s.pthread_loads


class TestAccountingInvariants:
    @pytest.mark.parametrize("cfg", [
        SPEAR_128,
        dataclasses.replace(SPEAR_128, name="sf", separate_fu=True),
        dataclasses.replace(SPEAR_128, name="deep", ifq_size=256),
    ])
    def test_issue_covers_commit(self, cfg):
        trace = gather_like_trace()
        _, res = run_sim(trace, cfg, table_for())
        s = res.stats
        assert s.decoded == s.committed == len(trace)
        assert s.issued == s.committed + s.spear.pthread_instrs

    def test_memory_access_attribution(self):
        trace = gather_like_trace()
        _, res = run_sim(trace, table=table_for())
        main = res.memory["threads"][0]
        pt = res.memory["threads"][1]
        demand_loads = sum(1 for e in trace if e.is_load)
        assert main["accesses"] == demand_loads
        assert pt["accesses"] == res.stats.spear.pthread_loads

    def test_fetch_covers_trace(self):
        trace = gather_like_trace()
        _, res = run_sim(trace, table=table_for())
        assert res.stats.fetched >= len(trace)

    def test_cycles_in_mode_only_with_spear(self):
        from repro.core import BASELINE
        trace = gather_like_trace()
        _, res = run_sim(trace, BASELINE, table_for())
        assert res.stats.spear.cycles_in_mode == 0
