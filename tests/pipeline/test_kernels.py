"""The timing-kernel interface: registry, protocol, step/run parity.

Backend *equivalence* (byte-identical results vs reference) lives in
``tests/properties/test_backends.py``; this module covers the interface
itself — registry lookups, the ``TimingKernel`` protocol surface, the
single-cycle ``step`` driver, event horizons and mid-run snapshots.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import PThread, PThreadTable
from repro.core.configs import BASELINE, SPEAR_128
from repro.functional import run_program
from repro.memory import MemoryHierarchy
from repro.pipeline import (DEFAULT_BACKEND, FastForwardSimulator,
                            KERNEL_BACKENDS, KERNELS, TimingKernel,
                            TimingSimulator, make_simulator, resolve_kernel)

from ..conftest import build_gather_program, gather_load_pcs


def gather_cell(iters=150):
    prog = build_gather_program(seed=3, iters=iters, n=1 << 12)
    idx_pc, gather_pc = gather_load_pcs(prog)
    table = PThreadTable()
    table.add(PThread(dload_pc=gather_pc,
                      slice_pcs=frozenset(range(idx_pc, gather_pc + 1)),
                      live_ins=(1, 2)))
    return run_program(prog, max_instructions=30_000), table


def build(backend, trace, config, table=None):
    return make_simulator(backend, trace, config, table,
                          MemoryHierarchy(latencies=config.latencies))


class TestRegistry:
    def test_known_backends(self):
        assert KERNELS["reference"] is TimingSimulator
        assert KERNELS["fast-forward"] is FastForwardSimulator
        assert set(KERNEL_BACKENDS) == set(KERNELS)
        assert DEFAULT_BACKEND == "reference"

    def test_resolve_default(self):
        assert resolve_kernel(None) is TimingSimulator
        assert resolve_kernel("fast-forward") is FastForwardSimulator

    def test_unknown_backend_is_an_error(self):
        with pytest.raises(ValueError, match="unknown timing-kernel"):
            resolve_kernel("warp-drive")
        with pytest.raises(ValueError, match="warp-drive"):
            make_simulator("warp-drive", None, BASELINE)

    def test_every_backend_satisfies_the_protocol(self):
        trace, table = gather_cell(20)
        for backend in KERNEL_BACKENDS:
            sim = build(backend, trace, SPEAR_128, table)
            assert isinstance(sim, TimingKernel)
            assert sim.backend == backend


class TestStepDriver:
    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_step_loop_reaches_run_result(self, backend):
        trace, table = gather_cell()
        stepped = build(backend, trace, SPEAR_128, table)
        while stepped.step():
            pass
        ran = build(backend, trace, SPEAR_128, table)
        assert (pickle.dumps(stepped.run(), pickle.HIGHEST_PROTOCOL)
                == pickle.dumps(ran.run(), pickle.HIGHEST_PROTOCOL))

    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_step_advances_one_cycle(self, backend):
        trace, table = gather_cell()
        sim = build(backend, trace, SPEAR_128, table)
        for _ in range(25):
            before = sim._cycle
            if not sim.step():
                break
            assert sim._cycle == before + 1

    def test_step_after_completion_is_a_noop(self):
        trace, table = gather_cell(30)
        sim = build("reference", trace, SPEAR_128, table)
        while sim.step():
            pass
        cycle = sim._cycle
        assert sim.step() is False
        assert sim._cycle == cycle


class TestHorizonAndSnapshot:
    def test_horizon_defaults_to_the_deadlock_bound(self):
        trace, table = gather_cell(30)
        sim = build("reference", trace, SPEAR_128, table)
        assert sim.next_event_horizon() == SPEAR_128.max_cycles

    def test_horizon_tracks_pending_completions(self):
        trace, table = gather_cell()
        sim = build("reference", trace, SPEAR_128, table)
        for _ in range(200):
            sim.step()
            if sim._events:
                assert sim.next_event_horizon() == min(sim._events)
                break
        else:
            pytest.fail("no completion event within 200 cycles")

    def test_snapshot_mid_run_and_at_end(self):
        trace, table = gather_cell()
        sim = build("fast-forward", trace, SPEAR_128, table)
        for _ in range(50):
            sim.step()
        mid = sim.stats_snapshot()
        assert mid["backend"] == "fast-forward"
        assert mid["cycles"] == 50
        assert 0 <= mid["committed"] <= len(trace)
        assert mid["ipc"] == mid["committed"] / 50
        result = sim.run()
        end = sim.stats_snapshot()
        assert end["committed"] == result.stats.committed == len(trace)
        assert end["cycles"] == result.stats.cycles

    def test_fast_forward_diagnostics_stay_out_of_results(self):
        """The jump counters are observability only: the result object
        must not carry them (byte identity with reference)."""
        trace, table = gather_cell()
        sim = build("fast-forward", trace, SPEAR_128, table)
        result = sim.run()
        assert sim.ff_jumps > 0 and sim.ff_cycles_skipped > 0
        assert "ff_jumps" not in result.stats.snapshot()
        blob = pickle.dumps(result, pickle.HIGHEST_PROTOCOL)
        assert b"ff_jumps" not in blob and b"ff_cycles_skipped" not in blob
