"""Speculative-fill timeliness attribution and the prefetch-L2 accounting
fix (prefetch probes must not inflate demand L2 statistics)."""

import pytest

from repro.memory import MemoryHierarchy
from repro.memory.hierarchy import LatencyConfig


MAIN, PT = 0, 1

#: L1D is 256 sets x 32 B: addresses 8 KiB apart share a set.
SET_STRIDE = 256 * 32


@pytest.fixture
def mem():
    return MemoryHierarchy(latencies=LatencyConfig(1, 12, 120))


def pthread_fills(mem):
    return mem.fill_snapshot()["pthread"]


def prefetch_fills(mem):
    return mem.fill_snapshot()["prefetch"]


class TestPthreadTimeliness:
    def test_timely_when_main_hits_after_fill_completes(self, mem):
        mem.access(0x1000, thread=PT, now=0)          # fill, ready at 120
        assert mem.access(0x1000, thread=MAIN, now=200) == 1
        f = pthread_fills(mem)
        assert f["fills"] == 1 and f["timely"] == 1
        assert f["late"] == f["unused"] == f["redundant"] == 0

    def test_late_when_main_merges_into_flight(self, mem):
        mem.access(0x1000, thread=PT, now=0)
        assert mem.access(0x1000, thread=MAIN, now=50) == 70
        f = pthread_fills(mem)
        assert f["fills"] == 1 and f["late"] == 1 and f["timely"] == 0

    def test_first_main_touch_decides_once(self, mem):
        mem.access(0x1000, thread=PT, now=0)
        mem.access(0x1000, thread=MAIN, now=50)       # late
        mem.access(0x1000, thread=MAIN, now=200)      # plain hit, no recount
        f = pthread_fills(mem)
        assert f["late"] == 1 and f["timely"] == 0
        assert f["late"] + f["timely"] + f["unused"] == f["fills"]

    def test_redundant_when_block_already_resident(self, mem):
        mem.access(0x1000, thread=MAIN, now=0)
        mem.access(0x1000, thread=PT, now=200)        # L1 hit
        f = pthread_fills(mem)
        assert f["fills"] == 0 and f["redundant"] == 1

    def test_redundant_when_merging_into_main_fill(self, mem):
        mem.access(0x1000, thread=MAIN, now=0)        # main demand fill
        mem.access(0x1000, thread=PT, now=10)         # delayed hit
        f = pthread_fills(mem)
        assert f["redundant"] == 1 and f["fills"] == 0
        # the main-initiated fill is not speculative: nothing classified
        assert f["timely"] == f["late"] == 0

    def test_unused_on_eviction(self, mem):
        mem.access(0x0, thread=PT, now=0)
        # Four more blocks in the same set, touched by the main thread,
        # evict the LRU speculative block before it is ever used.
        for i in range(1, 5):
            mem.access(i * SET_STRIDE, thread=MAIN, now=130 + i * 130)
        f = pthread_fills(mem)
        assert f["unused"] == 1 and f["timely"] == f["late"] == 0
        assert f["fills"] == 1

    def test_snapshot_folds_resident_untouched_without_mutating(self, mem):
        mem.access(0x1000, thread=PT, now=0)
        first = pthread_fills(mem)
        assert first["unused"] == 1                   # resident, never used
        assert pthread_fills(mem) == first            # idempotent
        # a later main touch still classifies it (snapshot didn't resolve)
        mem.access(0x1000, thread=MAIN, now=200)
        assert pthread_fills(mem)["timely"] == 1
        assert pthread_fills(mem)["unused"] == 0

    def test_sum_invariant_and_attempts(self, mem):
        for i in range(8):
            mem.access(0x1000 + 0x40 * i, thread=PT, now=i)
        mem.access(0x1000, thread=MAIN, now=50)       # late
        mem.access(0x1040, thread=MAIN, now=500)      # timely
        mem.access(0x1000, thread=PT, now=600)        # redundant
        f = pthread_fills(mem)
        assert f["timely"] + f["late"] + f["unused"] == f["fills"] == 8
        assert f["attempts"] == f["fills"] + f["redundant"] == 9


class TestPrefetchTimeliness:
    def test_prefetch_fill_classified(self, mem):
        assert mem.prefetch(0x2000, now=0) is True
        mem.access(0x2000, thread=MAIN, now=300)
        f = prefetch_fills(mem)
        assert f["fills"] == 1 and f["timely"] == 1

    def test_prefetch_redundant_when_resident_or_in_flight(self, mem):
        mem.access(0x2000, thread=MAIN, now=0)
        assert mem.prefetch(0x2000, now=10) is False   # in flight
        assert mem.prefetch(0x2000, now=500) is False  # resident
        f = prefetch_fills(mem)
        assert f["redundant"] == 2 and f["fills"] == 0

    def test_sources_classified_independently(self, mem):
        mem.access(0x1000, thread=PT, now=0)
        mem.prefetch(0x3000, now=0)
        mem.access(0x1000, thread=MAIN, now=50)
        mem.access(0x3000, thread=MAIN, now=400)
        assert pthread_fills(mem)["late"] == 1
        assert prefetch_fills(mem)["timely"] == 1


class TestPrefetchL2Accounting:
    """Regression: ``prefetch()`` used to call ``l2.access`` and count its
    probe in the demand L2 statistics every report consumes."""

    def test_prefetch_does_not_touch_demand_l2_stats(self, mem):
        before = mem.l2.stats.snapshot()
        mem.prefetch(0x4000, now=0)
        after = mem.l2.stats.snapshot()
        assert (after["accesses"], after["hits"], after["misses"]) == \
            (before["accesses"], before["hits"], before["misses"])
        assert mem.prefetch_l2_misses == 1 and mem.prefetch_l2_hits == 0

    def test_prefetch_l2_hit_counted_separately(self, mem):
        mem.l2.install(0x4000)                        # L2-resident, L1-absent
        mem.prefetch(0x4000, now=0)
        assert mem.prefetch_l2_hits == 1 and mem.prefetch_l2_misses == 0
        # L2-hit latency: the fill completes at now + l2
        assert mem.peek_latency(0x4000, now=5) == 12 - 5

    def test_prefetch_still_installs_into_l2_on_miss(self, mem):
        mem.prefetch(0x4000, now=0)
        assert mem.l2.contains(0x4000)

    def test_snapshot_reports_prefetch_l2_traffic(self, mem):
        mem.prefetch(0x4000, now=0)
        snap = mem.snapshot()
        assert snap["prefetch_l2_misses"] == 1
        assert snap["prefetch_fills"] == 1
        assert snap["fills"]["prefetch"]["fills"] == 1


class TestLifecycle:
    def test_reset_clears_fill_accounting(self, mem):
        mem.access(0x1000, thread=PT, now=0)
        mem.prefetch(0x2000, now=0)
        mem.reset()
        assert pthread_fills(mem)["fills"] == 0
        assert prefetch_fills(mem)["fills"] == 0
        assert mem.prefetch_l2_hits == mem.prefetch_l2_misses == 0

    def test_finish_warmup_clears_fill_accounting(self, mem):
        mem.access(0x1000, thread=PT, now=0)
        mem.finish_warmup()
        f = pthread_fills(mem)
        assert f["fills"] == f["unused"] == 0
