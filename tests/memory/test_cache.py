"""Set-associative cache: geometry, LRU, write-back accounting."""

import pytest

from repro.memory import Cache, CacheConfig


def tiny_cache(sets=4, ways=2, block=32):
    return Cache(CacheConfig("T", sets=sets, ways=ways, block_bytes=block))


class TestConfig:
    def test_capacity(self):
        cfg = CacheConfig("L1", sets=256, ways=4, block_bytes=32)
        assert cfg.capacity_bytes == 32 * 1024
        assert cfg.block_bits == 5
        assert cfg.set_mask == 255

    @pytest.mark.parametrize("kw", [
        dict(sets=3, ways=2, block_bytes=32),
        dict(sets=4, ways=2, block_bytes=24),
        dict(sets=4, ways=0, block_bytes=32),
    ])
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            CacheConfig("bad", **kw)


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        c = tiny_cache()
        assert not c.access(0x100)
        assert c.access(0x100)
        assert c.stats.misses == 1 and c.stats.hits == 1

    def test_same_block_hits(self):
        c = tiny_cache(block=32)
        c.access(0x100)
        assert c.access(0x11F)   # same 32B block
        assert not c.access(0x120)  # next block

    def test_different_sets_dont_conflict(self):
        c = tiny_cache(sets=4, ways=1)
        c.access(0x000)
        c.access(0x020)  # next set
        assert c.access(0x000)

    def test_miss_rate(self):
        c = tiny_cache()
        for _ in range(3):
            c.access(0x40)
        assert c.stats.miss_rate == pytest.approx(1 / 3)

    def test_contains_is_pure(self):
        c = tiny_cache()
        c.access(0x100)
        before = c.stats.accesses
        assert c.contains(0x100)
        assert not c.contains(0x999000)
        assert c.stats.accesses == before


class TestLRU:
    def test_lru_victim(self):
        c = tiny_cache(sets=1, ways=2)
        c.access(0 * 32)    # A
        c.access(1 * 32)    # B
        c.access(0 * 32)    # touch A -> B is LRU
        c.access(2 * 32)    # C evicts B
        assert c.contains(0)
        assert not c.contains(32)
        assert c.contains(64)

    def test_full_associative_cycle(self):
        c = tiny_cache(sets=1, ways=4)
        blocks = [i * 32 for i in range(4)]
        for b in blocks:
            c.access(b)
        assert all(c.contains(b) for b in blocks)
        c.access(4 * 32)
        assert not c.contains(blocks[0])      # oldest evicted
        assert all(c.contains(b) for b in blocks[1:])

    def test_eviction_count(self):
        c = tiny_cache(sets=1, ways=1)
        c.access(0)
        c.access(32)
        c.access(64)
        assert c.stats.evictions == 2

    def test_probe_updates_lru(self):
        c = tiny_cache(sets=1, ways=2)
        c.access(0)
        c.access(32)
        c.probe(0)          # refresh A
        c.install(64)
        assert c.contains(0) and not c.contains(32)

    def test_probe_can_skip_lru_update(self):
        c = tiny_cache(sets=1, ways=2)
        c.access(0)
        c.access(32)
        c.probe(0, update_lru=False, count=False)
        c.install(64)       # A is still LRU -> evicted
        assert not c.contains(0)


class TestWriteback:
    def test_dirty_eviction_counts_writeback(self):
        c = tiny_cache(sets=1, ways=1)
        c.access(0, is_write=True)
        c.access(32)
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = tiny_cache(sets=1, ways=1)
        c.access(0)
        c.access(32)
        assert c.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        c = tiny_cache(sets=1, ways=1)
        c.access(0)
        c.access(0, is_write=True)
        c.access(32)
        assert c.stats.writebacks == 1


class TestMisc:
    def test_reset(self):
        c = tiny_cache()
        c.access(0x100)
        c.reset()
        assert not c.contains(0x100)
        assert c.stats.accesses == 0

    def test_utilization(self):
        c = tiny_cache(sets=2, ways=2)
        assert c.utilization() == 0.0
        c.access(0)
        assert c.utilization() == 0.25

    def test_install_existing_block_is_noop(self):
        c = tiny_cache(sets=1, ways=2)
        c.install(0)
        assert c.install(0) == -1
        assert c.stats.evictions == 0

    def test_snapshot(self):
        c = tiny_cache()
        c.access(0)
        snap = c.stats.snapshot()
        assert snap["misses"] == 1 and "miss_rate" in snap
