"""L1/L2/DRAM hierarchy: latencies, fill merging, per-thread stats, warmup."""

import pytest

from repro.memory import (FIG9_LATENCIES, LatencyConfig, MemoryHierarchy)


def hier(**kw):
    return MemoryHierarchy(latencies=LatencyConfig(1, 12, 120), **kw)


class TestLatencyLevels:
    def test_cold_goes_to_memory(self):
        m = hier()
        assert m.access(0x1000, now=0) == 120

    def test_l1_hit_after_fill_completes(self):
        m = hier()
        m.access(0x1000, now=0)
        assert m.access(0x1000, now=200) == 1

    def test_l2_hit_after_l1_eviction(self):
        m = hier()
        m.access(0x0, now=0)
        # Evict from L1 by filling its set (L1: 256 sets x 32B -> same set
        # every 8 KiB); 4 ways -> 4 conflicting fills evict block 0.
        for i in range(1, 5):
            m.access(i * 8192, now=1000 * i)
        assert m.access(0x0, now=100_000) == 12

    def test_latency_config_validation(self):
        with pytest.raises(ValueError):
            LatencyConfig(5, 3, 100)
        with pytest.raises(ValueError):
            LatencyConfig(0, 3, 100)

    def test_fig9_sweep_points(self):
        assert len(FIG9_LATENCIES) == 5
        assert FIG9_LATENCIES[0].memory == 40
        assert FIG9_LATENCIES[-1].memory == 200
        assert FIG9_LATENCIES[2] == LatencyConfig(1, 12, 120)


class TestFillMerging:
    def test_second_access_pays_remaining_latency(self):
        m = hier()
        m.access(0x1000, thread=1, now=0)        # p-thread starts the miss
        lat = m.access(0x1000, thread=0, now=30)  # main arrives mid-fill
        assert lat == 90
        assert m.thread_stats[0].delayed_hits == 1
        assert m.thread_stats[0].l1_misses == 0

    def test_fill_completes_exactly_at_ready(self):
        m = hier()
        m.access(0x1000, now=0)
        assert m.access(0x1000, now=120) == 1

    def test_merge_is_not_a_primary_miss(self):
        m = hier()
        m.access(0x1000, thread=1, now=0)
        m.access(0x1000, thread=0, now=1)
        assert m.main_thread_l1_misses() == 0
        assert m.thread_stats[1].l1_misses == 1

    def test_l2_fill_also_tracked(self):
        m = hier()
        m.access(0x0, now=0)
        for i in range(1, 5):
            m.access(i * 8192, now=500 * i)
        m.access(0x0, now=10_000)                 # L2 hit, fill in flight
        assert m.access(0x0, now=10_006) == 6     # remaining 12 - 6

    def test_peek_latency_pure(self):
        m = hier()
        assert m.peek_latency(0x1000) == 120
        m.access(0x1000, now=0)
        assert m.peek_latency(0x1000, now=50) == 70
        assert m.peek_latency(0x1000, now=500) == 1
        assert m.thread_stats[0].accesses == 1    # peeks not counted


class TestThreadStats:
    def test_separate_accounting(self):
        m = hier()
        m.access(0x1000, thread=0, now=0)
        m.access(0x2000, thread=1, now=0)
        assert m.thread_stats[0].accesses == 1
        assert m.thread_stats[1].accesses == 1

    def test_avg_latency(self):
        m = hier()
        m.access(0x1000, now=0)
        m.access(0x1000, now=500)
        assert m.thread_stats[0].avg_latency == pytest.approx((120 + 1) / 2)

    def test_snapshot_structure(self):
        m = hier()
        m.access(0x40, now=0)
        snap = m.snapshot()
        assert snap["latencies"]["memory"] == 120
        assert snap["threads"][0]["l1_misses"] == 1
        assert snap["l2"]["misses"] == 1


class TestWarmup:
    def test_warm_then_hit(self):
        m = hier()
        m.warm(0x1000)
        m.finish_warmup()
        assert m.access(0x1000, now=0) == 1
        assert m.thread_stats[0].l1_hits == 1

    def test_warmup_stats_discarded(self):
        m = hier()
        for i in range(100):
            m.warm(i * 64)
        m.finish_warmup()
        assert m.l1.stats.accesses == 0
        assert m.thread_stats[0].accesses == 0

    def test_warmup_leaves_no_pending_fills(self):
        m = hier()
        m.access(0x5000, now=0)    # creates a pending fill
        m.finish_warmup()
        assert m.access(0x5000, now=0) == 1  # no delayed-hit artifact

    def test_reset_clears_everything(self):
        m = hier()
        m.access(0x1000, now=0)
        m.reset()
        assert m.access(0x1000, now=0) == 120
