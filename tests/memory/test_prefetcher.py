"""Hardware prefetchers: stride detection, next-line, hierarchy integration."""

import pytest

from repro.memory import (MemoryHierarchy, NextLinePrefetcher, NoPrefetcher,
                          StridePrefetcher, make_prefetcher)


class TestStride:
    def test_detects_constant_stride(self):
        p = StridePrefetcher(degree=2, distance=1)
        assert p.observe(4, 0x1000, True) == []        # learn entry
        assert p.observe(4, 0x1040, True) == []        # learn stride
        out = p.observe(4, 0x1080, True)               # confident
        assert out == [0x10C0, 0x1100]

    def test_distance_pushes_targets_out(self):
        p = StridePrefetcher(degree=1, distance=16)
        p.observe(4, 0x1000, True)
        p.observe(4, 0x1008, True)                     # 8-byte stream
        assert p.observe(4, 0x1010, True) == [0x1010 + 16 * 8]

    def test_distinct_pcs_independent(self):
        p = StridePrefetcher()
        p.observe(4, 0x1000, True)
        p.observe(8, 0x9000, True)
        p.observe(4, 0x1040, True)
        p.observe(8, 0x9100, True)
        assert p.observe(4, 0x1080, True)              # stride 0x40 confirmed
        assert p.observe(8, 0x9200, True)              # stride 0x100 confirmed

    def test_random_addresses_never_prefetch(self):
        import random
        rng = random.Random(0)
        p = StridePrefetcher()
        issued = []
        for _ in range(500):
            issued += p.observe(4, rng.randrange(0, 1 << 20) & ~7, True)
        assert len(issued) < 10       # random pattern: (almost) no prefetches

    def test_stride_change_resets_confidence(self):
        p = StridePrefetcher()
        p.observe(4, 0x1000, True)
        p.observe(4, 0x1040, True)
        assert p.observe(4, 0x1080, True)
        assert p.observe(4, 0x5000, True) == []        # broken stride
        assert p.observe(4, 0x5040, True) == []        # relearning

    def test_table_aliasing(self):
        p = StridePrefetcher(table_size=4)
        p.observe(1, 0x1000, True)
        p.observe(5, 0x9000, True)                     # same slot, new tag
        assert p._table[1][0] == 5

    def test_zero_stride_never_fires(self):
        p = StridePrefetcher()
        for _ in range(10):
            assert p.observe(4, 0x2000, True) == []

    def test_negative_stride(self):
        p = StridePrefetcher(degree=1, distance=1)
        p.observe(4, 0x2000, True)
        p.observe(4, 0x1FC0, True)
        assert p.observe(4, 0x1F80, True) == [0x1F40]

    def test_power_of_two_table(self):
        with pytest.raises(ValueError):
            StridePrefetcher(table_size=100)


class TestNextLine:
    def test_prefetches_next_blocks_on_miss(self):
        p = NextLinePrefetcher(block_bytes=32, degree=2)
        assert p.observe(4, 0x100, True) == [0x120, 0x140]

    def test_quiet_on_hits(self):
        p = NextLinePrefetcher()
        assert p.observe(4, 0x100, False) == []

    def test_stats(self):
        p = NextLinePrefetcher(degree=1)
        p.observe(4, 0x100, True)
        p.observe(4, 0x100, False)
        assert p.stats.observed == 2
        assert p.stats.issued == 1


class TestFactoryAndNone:
    def test_factory(self):
        assert isinstance(make_prefetcher("none"), NoPrefetcher)
        assert isinstance(make_prefetcher("nextline"), NextLinePrefetcher)
        assert isinstance(make_prefetcher("stride"), StridePrefetcher)
        with pytest.raises(ValueError):
            make_prefetcher("markov")

    def test_none_never_prefetches(self):
        p = NoPrefetcher()
        assert p.observe(4, 0x100, True) == []


class TestHierarchyPrefetch:
    def test_prefetch_starts_fill(self):
        m = MemoryHierarchy()
        assert m.prefetch(0x1000, now=0)
        assert m.prefetch_fills == 1
        # demand access mid-fill merges
        lat = m.access(0x1000, now=60)
        assert lat == 60
        assert m.thread_stats[0].delayed_hits == 1

    def test_prefetch_idempotent(self):
        m = MemoryHierarchy()
        assert m.prefetch(0x1000, now=0)
        assert not m.prefetch(0x1000, now=1)   # already in flight
        m.access(0x1000, now=500)
        assert not m.prefetch(0x1000, now=501)  # already present

    def test_prefetch_not_counted_as_demand(self):
        m = MemoryHierarchy()
        m.prefetch(0x1000, now=0)
        assert m.thread_stats[0].accesses == 0
        assert m.main_thread_l1_misses() == 0

    def test_timely_prefetch_becomes_hit(self):
        m = MemoryHierarchy()
        m.prefetch(0x1000, now=0)
        assert m.access(0x1000, now=400) == 1
