"""Property-based cache invariants."""

from hypothesis import given, settings, strategies as st

from repro.memory import Cache, CacheConfig

addr = st.integers(0, 1 << 20)


class TestCacheProperties:
    @given(st.lists(addr, min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_access_installs(self, addrs):
        """After accessing an address, it is always present."""
        c = Cache(CacheConfig("p", sets=8, ways=2, block_bytes=32))
        for a in addrs:
            c.access(a)
            assert c.contains(a)

    @given(st.lists(addr, min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_stats_conservation(self, addrs):
        """hits + misses == accesses, always."""
        c = Cache(CacheConfig("p", sets=4, ways=4, block_bytes=64))
        for a in addrs:
            c.access(a)
        assert c.stats.hits + c.stats.misses == c.stats.accesses

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_matches_reference_lru(self, block_ids):
        """The cache agrees with a straightforward ordered-list LRU model."""
        ways = 2
        c = Cache(CacheConfig("p", sets=1, ways=ways, block_bytes=32))
        reference: list[int] = []    # most recent last
        for bid in block_ids:
            a = bid * 32
            hit = c.access(a)
            ref_hit = bid in reference
            assert hit == ref_hit
            if ref_hit:
                reference.remove(bid)
            elif len(reference) == ways:
                reference.pop(0)
            reference.append(bid)

    @given(st.lists(addr, min_size=1, max_size=100), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_recent_distinct_blocks_hit(self, addrs, ways):
        """The most recent `ways` distinct blocks of a set all hit."""
        c = Cache(CacheConfig("p", sets=1, ways=ways, block_bytes=32))
        recent: list[int] = []
        for a in addrs:
            c.access(a)
            bid = a >> 5
            if bid in recent:
                recent.remove(bid)
            recent.append(bid)
            recent = recent[-ways:]
        for bid in recent:
            assert c.contains(bid << 5)

    @given(st.lists(addr, min_size=1, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_bounded(self, addrs):
        c = Cache(CacheConfig("p", sets=4, ways=2, block_bytes=32))
        for a in addrs:
            c.access(a)
        assert 0.0 < c.utilization() <= 1.0
        distinct = len({a >> 5 for a in addrs})
        valid = round(c.utilization() * 8)
        assert valid <= min(8, distinct)
