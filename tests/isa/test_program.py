"""Program image: segments, memory build, validation."""

import numpy as np
import pytest

from repro.isa import DataSegment, Instruction, Op, Program


def _halted(instrs):
    return Program(list(instrs) + [Instruction(Op.HALT)])


class TestDataSegment:
    def test_unaligned_rejected(self):
        with pytest.raises(ValueError, match="unaligned"):
            DataSegment(3, np.zeros(2, dtype=np.int64))

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            DataSegment(0, np.zeros(2, dtype=np.int32))

    def test_extent(self):
        seg = DataSegment(16, np.zeros(4, dtype=np.int64))
        assert seg.nbytes == 32
        assert seg.end == 48


class TestMemoryBuild:
    def test_int_and_float_segments(self):
        prog = Program(
            [Instruction(Op.HALT)],
            segments=[DataSegment(0, np.array([7, -1], dtype=np.int64)),
                      DataSegment(16, np.array([2.5], dtype=np.float64))],
            mem_bytes=64)
        mem = prog.build_memory()
        assert mem.view(np.int64)[0] == 7
        assert mem.view(np.int64)[1] == -1
        assert mem.view(np.float64)[2] == 2.5

    def test_segment_beyond_memory_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            Program([Instruction(Op.HALT)],
                    segments=[DataSegment(0, np.zeros(100, dtype=np.int64))],
                    mem_bytes=64)

    def test_memory_zero_filled(self):
        prog = Program([Instruction(Op.HALT)], mem_bytes=128)
        assert not prog.build_memory().any()


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Program([]).validate()

    def test_branch_target_out_of_range(self):
        prog = _halted([Instruction(Op.J, imm=99)])
        with pytest.raises(ValueError, match="target"):
            prog.validate()

    def test_no_halt_rejected(self):
        prog = Program([Instruction(Op.NOP)])
        with pytest.raises(ValueError, match="halt"):
            prog.validate()

    def test_bad_label_rejected(self):
        prog = _halted([Instruction(Op.NOP)])
        prog.labels["x"] = 99
        with pytest.raises(ValueError, match="label"):
            prog.validate()

    def test_valid_passes(self, gather_program):
        gather_program.validate()

    def test_address_to_label(self):
        prog = _halted([Instruction(Op.NOP)])
        prog.labels.update({"a": 0, "b": 0, "c": 1})
        inv = prog.address_to_label
        assert inv[0] in ("a", "b")
        assert inv[1] == "c"

    def test_from_words_roundtrip(self, gather_program):
        again = Program.from_words(gather_program.encode(),
                                   name=gather_program.name,
                                   labels=gather_program.labels,
                                   mem_bytes=gather_program.mem_bytes)
        assert again.instructions == gather_program.instructions
        assert again.name == gather_program.name
