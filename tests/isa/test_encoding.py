"""Binary encoding round-trips, including property-based coverage."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.isa import (Fmt, Instruction, OP_INFO, Op, decode, decode_program,
                       encode, encode_program)
from repro.isa.encoding import _IMM_MAX, _IMM_MIN


def _random_instruction(draw) -> Instruction:
    op = draw(st.sampled_from(list(Op)))
    info = OP_INFO[op]
    reg = st.integers(0, 31)
    freg = st.integers(32, 63)
    dreg = freg if info.fp_dest else reg
    sreg = freg if info.fp_src else reg
    imm = draw(st.integers(_IMM_MIN, _IMM_MAX))
    fmt = info.fmt
    if fmt == Fmt.R:
        return Instruction(op, rd=draw(dreg), rs1=draw(sreg), rs2=draw(sreg))
    if fmt == Fmt.I:
        return Instruction(op, rd=draw(dreg), rs1=draw(reg), imm=imm)
    if fmt == Fmt.LI:
        return Instruction(op, rd=draw(dreg), imm=imm)
    if fmt == Fmt.M:
        return Instruction(op, rd=draw(dreg), rs1=draw(reg), imm=imm)
    if fmt == Fmt.B:
        return Instruction(op, rs1=draw(reg), rs2=draw(reg), imm=abs(imm) % 1000)
    if fmt == Fmt.BZ:
        return Instruction(op, rs1=draw(reg), imm=abs(imm) % 1000)
    if fmt == Fmt.J:
        rd = 31 if info.is_call else -1
        return Instruction(op, rd=rd, imm=abs(imm) % 1000)
    if fmt == Fmt.JR:
        rd = draw(dreg) if not info.is_branch else (31 if info.is_call else -1)
        return Instruction(op, rd=rd, rs1=draw(sreg))
    return Instruction(op)


@st.composite
def instructions(draw):
    return _random_instruction(draw)


class TestRoundTrip:
    @given(instructions())
    def test_encode_decode_identity(self, ins):
        assert decode(encode(ins)) == ins

    def test_encoded_fits_64_bits(self):
        ins = Instruction(Op.LI, rd=31, imm=_IMM_MAX)
        assert 0 <= encode(ins) < (1 << 64)

    def test_negative_immediate(self):
        ins = Instruction(Op.ADDI, rd=1, rs1=2, imm=-12345)
        assert decode(encode(ins)).imm == -12345

    def test_extreme_immediates(self):
        for imm in (_IMM_MIN, _IMM_MAX, 0, -1, 1):
            ins = Instruction(Op.LI, rd=1, imm=imm)
            assert decode(encode(ins)).imm == imm

    def test_out_of_range_immediate_rejected(self):
        with pytest.raises(ValueError):
            encode(Instruction(Op.LI, rd=1, imm=_IMM_MAX + 1))
        with pytest.raises(ValueError):
            encode(Instruction(Op.LI, rd=1, imm=_IMM_MIN - 1))

    def test_unused_slots_roundtrip(self):
        ins = Instruction(Op.NOP)
        back = decode(encode(ins))
        assert back.rd == -1 and back.rs1 == -1 and back.rs2 == -1


class TestProgramEncoding:
    def test_program_roundtrip(self, gather_program):
        words = encode_program(gather_program.instructions)
        assert words.dtype == np.uint64
        back = decode_program(words)
        assert back == gather_program.instructions

    def test_program_encode_is_pure(self, gather_program):
        w1 = encode_program(gather_program.instructions)
        w2 = encode_program(gather_program.instructions)
        assert np.array_equal(w1, w2)
