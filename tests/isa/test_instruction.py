"""Instruction construction: source/destination derivation, rendering."""

import pytest

from repro.isa import FP_BASE, Instruction, LINK_REG, Op


class TestSourcesAndDest:
    def test_three_reg_alu(self):
        ins = Instruction(Op.ADD, rd=3, rs1=1, rs2=2)
        assert ins.srcs == (1, 2)
        assert ins.dst == 3

    def test_zero_register_not_a_source(self):
        ins = Instruction(Op.ADD, rd=3, rs1=0, rs2=2)
        assert ins.srcs == (2,)

    def test_zero_register_not_a_dest(self):
        ins = Instruction(Op.ADD, rd=0, rs1=1, rs2=2)
        assert ins.dst == -1

    def test_store_value_register_is_source(self):
        ins = Instruction(Op.SW, rd=5, rs1=2, imm=8)
        assert set(ins.srcs) == {5, 2}
        assert ins.dst == -1

    def test_load_dest(self):
        ins = Instruction(Op.LW, rd=5, rs1=2, imm=8)
        assert ins.srcs == (2,)
        assert ins.dst == 5

    def test_conditional_branch_no_dest(self):
        ins = Instruction(Op.BEQ, rs1=1, rs2=2, imm=10)
        assert ins.dst == -1
        assert ins.is_conditional

    def test_jal_writes_link(self):
        ins = Instruction(Op.JAL, rd=LINK_REG, imm=4)
        assert ins.dst == LINK_REG
        assert ins.is_call

    def test_jr_reads_target(self):
        ins = Instruction(Op.JR, rs1=LINK_REG)
        assert ins.srcs == (LINK_REG,)
        assert ins.dst == -1

    def test_fp_sources(self):
        ins = Instruction(Op.FADD, rd=FP_BASE + 1, rs1=FP_BASE + 2,
                          rs2=FP_BASE + 3)
        assert ins.srcs == (FP_BASE + 2, FP_BASE + 3)
        assert ins.dst == FP_BASE + 1

    def test_fsw_sources(self):
        ins = Instruction(Op.FSW, rd=FP_BASE + 1, rs1=4, imm=0)
        assert set(ins.srcs) == {FP_BASE + 1, 4}
        assert ins.dst == -1

    def test_li_no_sources(self):
        ins = Instruction(Op.LI, rd=4, imm=99)
        assert ins.srcs == ()
        assert ins.dst == 4


class TestFlags:
    def test_direct_branch(self):
        assert Instruction(Op.BEQ, rs1=1, rs2=2, imm=3).is_direct_branch
        assert Instruction(Op.J, imm=3).is_direct_branch
        assert not Instruction(Op.JR, rs1=31).is_direct_branch
        assert not Instruction(Op.ADD, rd=1, rs1=2, rs2=3).is_direct_branch

    def test_equality_and_hash(self):
        a = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        b = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        c = Instruction(Op.ADD, rd=1, rs1=2, rs2=4)
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestRender:
    @pytest.mark.parametrize("ins,text", [
        (Instruction(Op.ADD, rd=3, rs1=1, rs2=2), "add r3, r1, r2"),
        (Instruction(Op.ADDI, rd=3, rs1=1, imm=-4), "addi r3, r1, -4"),
        (Instruction(Op.LI, rd=2, imm=7), "li r2, 7"),
        (Instruction(Op.LW, rd=4, rs1=2, imm=16), "lw r4, 16(r2)"),
        (Instruction(Op.BEQ, rs1=1, rs2=2, imm=9), "beq r1, r2, 9"),
        (Instruction(Op.BLTZ, rs1=1, imm=9), "bltz r1, 9"),
        (Instruction(Op.J, imm=0), "j 0"),
        (Instruction(Op.JR, rs1=31), "jr r31"),
        (Instruction(Op.MOV, rd=1, rs1=2), "mov r1, r2"),
        (Instruction(Op.NOP), "nop"),
        (Instruction(Op.HALT), "halt"),
        (Instruction(Op.FADD, rd=FP_BASE, rs1=FP_BASE + 1, rs2=FP_BASE + 2),
         "fadd f0, f1, f2"),
    ])
    def test_render(self, ins, text):
        assert ins.render() == text

    def test_render_with_labels(self):
        ins = Instruction(Op.BEQ, rs1=1, rs2=2, imm=9)
        assert ins.render({9: "loop"}) == "beq r1, r2, loop"
