"""Text assembler: syntax, labels, directives, errors, disassembler loop."""

import numpy as np
import pytest

from repro.isa import (AssemblerError, Op, assemble, disassemble,
                       disassemble_words, encode_program)


class TestBasicParsing:
    def test_r_format(self):
        prog = assemble("add r1, r2, r3\nhalt")
        assert prog.instructions[0].op == Op.ADD
        assert prog.instructions[0].rd == 1

    def test_i_format(self):
        prog = assemble("addi r1, r2, -7\nhalt")
        assert prog.instructions[0].imm == -7

    def test_memory_format(self):
        prog = assemble("lw r4, 16(r2)\nsw r4, -8(r3)\nhalt")
        lw, sw = prog.instructions[:2]
        assert lw.imm == 16 and lw.rs1 == 2 and lw.rd == 4
        assert sw.imm == -8 and sw.rs1 == 3 and sw.rd == 4

    def test_hex_immediates(self):
        prog = assemble("li r1, 0x1000\nhalt")
        assert prog.instructions[0].imm == 0x1000

    def test_fp_format(self):
        prog = assemble("fadd f1, f2, f3\nflw f0, 0(r1)\nhalt")
        assert prog.instructions[0].rd == 32 + 1
        assert prog.instructions[1].rd == 32

    def test_unary_jr_format(self):
        prog = assemble("mov r1, r2\njr r31\nhalt")
        assert prog.instructions[0].rd == 1 and prog.instructions[0].rs1 == 2
        assert prog.instructions[1].rs1 == 31

    def test_comments_and_blanks(self):
        prog = assemble("""
        # full line comment
        add r1, r2, r3   # trailing comment

        halt
        """)
        assert len(prog) == 2


class TestLabels:
    def test_backward_label(self):
        prog = assemble("top:\naddi r1, r1, 1\nbne r1, r2, top\nhalt")
        assert prog.instructions[1].imm == 0
        assert prog.labels["top"] == 0

    def test_forward_label(self):
        prog = assemble("beq r1, r2, out\naddi r1, r1, 1\nout:\nhalt")
        assert prog.instructions[0].imm == 2

    def test_inline_label(self):
        prog = assemble("start: li r1, 5\nj start\nhalt")
        assert prog.labels["start"] == 0
        assert prog.instructions[1].imm == 0

    def test_dotted_label(self):
        prog = assemble(".L0:\nj .L0\nhalt")
        assert prog.labels[".L0"] == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\nnop\na:\nhalt")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError, match="undefined label"):
            assemble("j nowhere\nhalt")


class TestDirectives:
    def test_name_and_mem(self):
        prog = assemble(".name demo\n.mem 0x20000\nhalt")
        assert prog.name == "demo"
        assert prog.mem_bytes == 0x20000

    def test_data_words(self):
        prog = assemble(".data 0x1000\n.word 1 2 3\nhalt")
        seg = prog.segments[0]
        assert seg.addr == 0x1000
        assert list(seg.values) == [1, 2, 3]
        assert seg.values.dtype == np.int64

    def test_data_floats(self):
        prog = assemble(".data 0x2000\n.float 1.5 -2.25\nhalt")
        seg = prog.segments[0]
        assert seg.values.dtype == np.float64
        assert list(seg.values) == [1.5, -2.25]

    def test_mixed_data_block_rejected(self):
        with pytest.raises(AssemblerError, match="mixed"):
            assemble(".data 0x1000\n.word 1\n.float 2.0\nhalt")

    def test_word_outside_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".word 1 2\nhalt")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError, match="unknown directive"):
            assemble(".bogus 3\nhalt")


class TestErrors:
    @pytest.mark.parametrize("src", [
        "frobnicate r1, r2",
        "add r1, r2",               # wrong arity
        "lw r1, r2",                # bad memory operand
        "addi r1, r2, zzz",
        "add r99, r1, r2",
    ])
    def test_malformed_rejected(self, src):
        with pytest.raises((AssemblerError, ValueError)):
            assemble(src + "\nhalt")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("nop\nbogus r1\nhalt")


class TestDisassemblerLoop:
    def test_full_roundtrip(self, gather_program):
        text = disassemble(gather_program, addresses=False)
        again = assemble(text)
        assert again.instructions == gather_program.instructions

    def test_disassemble_words(self, gather_program):
        words = encode_program(gather_program.instructions)
        text = disassemble_words(words)
        assert "lw" in text and "halt" in text

    def test_addresses_present(self, gather_program):
        text = disassemble(gather_program)
        assert "0:" in text.splitlines()[0] or "0:" in text
