"""ProgramBuilder: allocation, labels, loops, validation."""

import numpy as np
import pytest

from repro.isa import Op, ProgramBuilder, WORD_SIZE


class TestAlloc:
    def test_returns_aligned_addresses(self):
        b = ProgramBuilder()
        a1 = b.alloc(3)
        a2 = b.alloc(5)
        assert a1 % WORD_SIZE == 0 and a2 % WORD_SIZE == 0
        assert a2 >= a1 + 3 * WORD_SIZE

    def test_custom_alignment(self):
        b = ProgramBuilder()
        b.alloc(1)
        addr = b.alloc(4, align=64)
        assert addr % 64 == 0

    def test_init_sets_segment(self):
        b = ProgramBuilder()
        addr = b.alloc(0, init=np.arange(4, dtype=np.int64))
        b.halt()
        prog = b.build()
        mem = prog.build_memory().view(np.int64)
        assert list(mem[addr // 8: addr // 8 + 4]) == [0, 1, 2, 3]

    def test_float_init(self):
        b = ProgramBuilder()
        addr = b.alloc(0, init=np.array([1.5, 2.5]), dtype=np.float64)
        b.halt()
        prog = b.build()
        mem = prog.build_memory().view(np.float64)
        assert mem[addr // 8] == 1.5

    def test_overflow_rejected(self):
        b = ProgramBuilder(mem_bytes=1 << 12)
        with pytest.raises(ValueError, match="overflows"):
            b.alloc(1 << 12)

    def test_nonpositive_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(ValueError):
            b.alloc(0)


class TestLabels:
    def test_forward_reference(self):
        b = ProgramBuilder()
        out = b.label("out")
        b.beq("r1", "r2", out)
        b.nop()
        b.place(out)
        b.halt()
        prog = b.build()
        assert prog.instructions[0].imm == 2

    def test_here_places_immediately(self):
        b = ProgramBuilder()
        b.nop()
        top = b.here("top")
        b.j(top)
        b.halt()
        prog = b.build()
        assert prog.instructions[1].imm == 1
        assert prog.labels["top"] == 1

    def test_unplaced_label_rejected(self):
        b = ProgramBuilder()
        lab = b.label()
        b.j(lab)
        b.halt()
        with pytest.raises(ValueError, match="never placed"):
            b.build()

    def test_double_place_rejected(self):
        b = ProgramBuilder()
        lab = b.here()
        with pytest.raises(ValueError, match="already placed"):
            b.place(lab)

    def test_duplicate_name_rejected(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(ValueError):
            b.label("x")

    def test_auto_names_unique(self):
        b = ProgramBuilder()
        assert b.label().name != b.label().name


class TestLoops:
    def test_loop_down_structure(self):
        b = ProgramBuilder()
        b.li("r3", 4)
        with b.loop_down("r3"):
            b.nop()
        b.halt()
        prog = b.build()
        ops = [i.op for i in prog.instructions]
        assert ops == [Op.LI, Op.NOP, Op.ADDI, Op.BGTZ, Op.HALT]
        assert prog.instructions[3].imm == 1  # back edge to loop top

    def test_loop_counted_structure(self):
        b = ProgramBuilder()
        b.li("r2", 3)
        with b.loop_counted("r1", "r2"):
            b.nop()
        b.halt()
        prog = b.build()
        ops = [i.op for i in prog.instructions]
        assert ops == [Op.LI, Op.LI, Op.NOP, Op.ADDI, Op.BLT, Op.HALT]

    def test_register_names_and_ids_mix(self):
        b = ProgramBuilder()
        b.add(1, "r2", 3)
        b.halt()
        ins = b.build().instructions[0]
        assert (ins.rd, ins.rs1, ins.rs2) == (1, 2, 3)


class TestBuildValidation:
    def test_missing_halt_rejected(self):
        b = ProgramBuilder()
        b.nop()
        with pytest.raises(ValueError, match="halt"):
            b.build()

    def test_validate_can_be_skipped(self):
        b = ProgramBuilder()
        b.nop()
        prog = b.build(validate=False)
        assert len(prog) == 1

    def test_emitted_addresses_sequential(self):
        b = ProgramBuilder()
        assert b.nop() == 0
        assert b.nop() == 1
        b.halt()
        assert len(b.build()) == 3
