"""Opcode metadata invariants and register-name handling."""

import pytest

from repro.isa import (FP_BASE, NUM_FP_REGS, NUM_INT_REGS, NUM_REGS, OP_INFO,
                       Fmt, Op, OpClass, parse_reg, reg_name)


class TestOpTable:
    def test_every_op_has_info(self):
        assert set(OP_INFO) == set(Op)

    def test_codes_match_enum_values(self):
        for op, info in OP_INFO.items():
            assert info.code == op

    def test_mnemonics_unique(self):
        names = [info.mnemonic for info in OP_INFO.values()]
        assert len(names) == len(set(names))

    def test_loads_are_load_class(self):
        for op, info in OP_INFO.items():
            if info.is_load:
                assert info.op_class == OpClass.LOAD
            if info.is_store:
                assert info.op_class == OpClass.STORE

    def test_branches_are_branch_class(self):
        for info in OP_INFO.values():
            if info.is_branch:
                assert info.op_class == OpClass.BRANCH

    def test_conditional_implies_branch(self):
        for info in OP_INFO.values():
            if info.is_conditional:
                assert info.is_branch

    def test_calls_and_returns_are_branches(self):
        for info in OP_INFO.values():
            if info.is_call or info.is_return:
                assert info.is_branch

    def test_mem_property(self):
        assert OP_INFO[Op.LW].is_mem
        assert OP_INFO[Op.SW].is_mem
        assert not OP_INFO[Op.ADD].is_mem

    def test_memory_ops_use_mem_format(self):
        for info in OP_INFO.values():
            if info.is_load or info.is_store:
                assert info.fmt == Fmt.M

    def test_fp_ops_flagged(self):
        assert OP_INFO[Op.FADD].fp_dest and OP_INFO[Op.FADD].fp_src
        assert OP_INFO[Op.FLT].fp_src and not OP_INFO[Op.FLT].fp_dest
        assert OP_INFO[Op.CVTIF].fp_dest and not OP_INFO[Op.CVTIF].fp_src

    def test_op_class_counts(self):
        classes = {info.op_class for info in OP_INFO.values()}
        assert OpClass.INT_ALU in classes
        assert OpClass.FP_DIV in classes
        assert OpClass.MISC in classes


class TestRegisters:
    def test_sizes(self):
        assert NUM_REGS == NUM_INT_REGS + NUM_FP_REGS
        assert FP_BASE == NUM_INT_REGS

    @pytest.mark.parametrize("rid", [0, 1, 15, 31])
    def test_int_roundtrip(self, rid):
        assert parse_reg(reg_name(rid)) == rid

    @pytest.mark.parametrize("rid", [FP_BASE, FP_BASE + 7, FP_BASE + 31])
    def test_fp_roundtrip(self, rid):
        assert parse_reg(reg_name(rid)) == rid

    def test_fp_names(self):
        assert reg_name(FP_BASE) == "f0"
        assert reg_name(FP_BASE + 3) == "f3"
        assert reg_name(5) == "r5"

    @pytest.mark.parametrize("bad", ["r32", "f32", "x1", "r", "r-1", "rx", ""])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_reg(bad)

    @pytest.mark.parametrize("bad", [-1, NUM_REGS, NUM_REGS + 5])
    def test_name_rejects(self, bad):
        with pytest.raises(ValueError):
            reg_name(bad)

    def test_parse_case_insensitive(self):
        assert parse_reg("R5") == 5
        assert parse_reg("F2") == FP_BASE + 2
