"""Guided campaigns: mutation, arm scheduling, resume byte-identity."""

import numpy as np
import pytest

from repro.fuzz import (ArmScheduler, GuidedCampaignSpec, encode_mut_name,
                        mut_workload_from_name, mutate_spec, parse_mut_name,
                        run_guided_campaign)
from repro.fuzz.generator import DEFAULT_DIALS
from repro.fuzz.schedule import (_MUT_DYNAMIC_CAP, MutWorkload, mutated_spec,
                                 resolve_arm)
from repro.workloads.base import get_workload

from .test_campaign import FAST, _runner
from .test_coverage import verdict

#: Cheap arm palette for driver tests: one small generation arm, one
#: mutation arm (covers both cell-name grammars end to end).
ARMS = ("tiny", "mut:pointer")


def _gspec(count=6, seed=31, **kw):
    kw.setdefault("sweep_every", 0)
    kw.setdefault("arms", ARMS)
    kw.setdefault("batch", 3)
    return GuidedCampaignSpec(seed=seed, count=count, **kw)


class TestMutNames:
    def test_round_trip(self):
        name = encode_mut_name(7, 3, "pointer")
        assert name == "fuzzmut:v1:7:3:pointer"
        assert parse_mut_name(name) == (7, 3, "pointer")

    def test_junk_rejected(self):
        with pytest.raises(ValueError, match="not a fuzzmut"):
            parse_mut_name("fuzz:v1:0:0")
        with pytest.raises(ValueError, match="generator version"):
            parse_mut_name("fuzzmut:v999:0:0:pointer")

    def test_registry_resolves_mut_names(self):
        w = get_workload("fuzzmut:v1:7:3:pointer")
        assert isinstance(w, MutWorkload)
        assert w.name == "fuzzmut:v1:7:3:pointer"

    def test_base_without_export_rejected(self):
        with pytest.raises(ValueError, match="no spec_of"):
            mutated_spec(0, 0, "mcf")


class TestMutation:
    def test_mutated_spec_is_a_pure_function_of_the_name(self):
        assert mutated_spec(7, 3, "pointer") == mutated_spec(7, 3, "pointer")
        p1 = MutWorkload(7, 3, "pointer").program("eval").encode().tobytes()
        p2 = mut_workload_from_name("fuzzmut:v1:7:3:pointer") \
            .program("eval").encode().tobytes()
        assert p1 == p2

    def test_indices_explore_distinct_mutants(self):
        specs = {mutated_spec(7, i, "pointer") for i in range(8)}
        assert len(specs) > 1

    def test_mutants_stay_bounded_and_materializable(self):
        for base in ("pointer", "update", "ll4"):
            for i in range(4):
                w = mut_workload_from_name(encode_mut_name(5, i, base))
                assert w.spec.dynamic_estimate() <= _MUT_DYNAMIC_CAP
                assert w.spec.size() >= 1
                assert len(w.program("eval").instructions) > 0

    def test_mutate_spec_respects_seeded_rng(self):
        base = get_workload("pointer").spec_of()
        a = mutate_spec(base, np.random.default_rng(42))
        b = mutate_spec(base, np.random.default_rng(42))
        assert a == b


class TestArms:
    def test_resolve_known_and_mut_arms(self):
        assert resolve_arm("default").dials == DEFAULT_DIALS
        assert resolve_arm("mut:ll4").base == "ll4"
        with pytest.raises(ValueError, match="unknown arm"):
            resolve_arm("nonesuch")

    def test_cell_names_cover_both_grammars(self):
        gen, mut = resolve_arm("tiny"), resolve_arm("mut:pointer")
        assert gen.cell_name(3, 1).startswith("fuzz:v1:3:1:")
        assert mut.cell_name(3, 2) == "fuzzmut:v1:3:2:pointer"


class TestScheduler:
    def test_plan_spends_exactly_the_budget(self):
        sched = ArmScheduler(("tiny", "mut:pointer", "fp"))
        for budget in (1, 3, 7, 25):
            assert len(ArmScheduler(("tiny", "mut:pointer", "fp"))
                       .plan(budget)) == budget
        assert len(sched.plan(7)) == 7

    def test_equal_scores_split_evenly_with_arm_order_ties(self):
        plan = ArmScheduler(("tiny", "fp")).plan(5)
        names = [a.name for a in plan]
        assert names == ["tiny"] * 3 + ["fp"] * 2   # remainder -> arm 0

    def test_novelty_shifts_budget_toward_the_novel_arm(self):
        sched = ArmScheduler(("tiny", "fp"))
        fresh = [("tiny", verdict(name=f"a{i}", triggers=i * 9, fills=i))
                 for i in range(4)]
        stale = [("fp", verdict(name=f"b{i}")) for i in range(4)]
        sched.observe(fresh + stale)
        plan = [a.name for a in sched.plan(10)]
        assert plan.count("tiny") > plan.count("fp")

    def test_observations_replay_to_identical_plans(self):
        batches = [[("tiny", verdict(name=f"x{i}", triggers=i * 9))
                    for i in range(3)],
                   [("fp", verdict(name=f"y{i}", fills=i * 9))
                    for i in range(3)]]
        plans = []
        for _ in range(2):
            sched = ArmScheduler(("tiny", "fp"))
            for batch in batches:
                sched.observe(batch)
            plans.append([a.name for a in sched.plan(9)])
        assert plans[0] == plans[1]

    def test_ranked_shares_concentrate_after_warmup(self):
        arms = ("tiny", "fp", "stores", "branchy", "default")
        sched = ArmScheduler(arms)
        batch = [("tiny", verdict(name=f"n{i}", triggers=i * 9))
                 for i in range(3)]
        batch += [(a, verdict(name=f"{a}{i}"))
                  for a in arms[1:] for i in range(3)]
        sched.observe(batch)
        # Every arm has MIN_OBS observations -> ranking kicks in: the
        # one productive arm takes the top share of the next batch.
        plan = [a.name for a in sched.plan(31)]
        total = sum(sched.SHARES) + len(arms) - len(sched.SHARES)
        assert plan.count("tiny") >= 31 * sched.SHARES[0] // total
        assert plan.count("tiny") > max(
            plan.count(a) for a in arms[1:])
        assert all(a in plan for a in arms)           # the floor of 1

    def test_starved_arm_keeps_the_floor(self):
        sched = ArmScheduler(("tiny", "fp"))
        sched.observe([("tiny", verdict(name=f"z{i}", triggers=i * 9))
                       for i in range(5)])
        assert sched.scores["fp"] == 1                # never zero
        assert "fp" in {a.name for a in sched.plan(25)}


class TestGuidedCampaign:
    def test_jobs_do_not_change_the_bytes(self, tmp_path):
        spec = _gspec()
        serial = run_guided_campaign(
            spec, _runner(tmp_path, "c1"), jobs=1, policy=FAST,
            journal_root=tmp_path / "j1")
        parallel = run_guided_campaign(
            spec, _runner(tmp_path, "c2"), jobs=2, policy=FAST,
            journal_root=tmp_path / "j2")
        assert serial.completed and parallel.completed
        assert [v.name for v in serial.verdicts] == \
            [v.name for v in parallel.verdicts]
        assert serial.coverage.to_json() == parallel.coverage.to_json()
        assert serial.report.render() == parallel.report.render()
        assert serial.render_allocations() == parallel.render_allocations()
        assert serial.allocations == parallel.allocations

    def test_crash_then_resume_matches_clean_run(self, tmp_path,
                                                 monkeypatch):
        spec = _gspec()
        clean = run_guided_campaign(
            spec, _runner(tmp_path, "clean"), jobs=1, policy=FAST,
            journal_root=tmp_path / "jc")

        # First attempt: a cell in batch 0 crashes terminally -> the
        # campaign stops scheduling (later plans would depend on the
        # missing observation) and surfaces the errored program.
        runner = _runner(tmp_path)
        monkeypatch.setenv("REPRO_FAULTS", "crash:cell=1:times=0")
        first = run_guided_campaign(spec, runner, jobs=2, policy=FAST,
                                    journal_root=tmp_path / "j")
        assert not first.completed
        assert len(first.failed) == 1
        assert first.report.errored == first.failed
        assert len(first.verdicts) < spec.count

        # Resume: completed cells replay from journal + cache, the
        # missing cell reruns, and every byte matches the clean run.
        monkeypatch.delenv("REPRO_FAULTS")
        resumed = run_guided_campaign(
            spec, _runner(tmp_path), jobs=2, policy=FAST,
            journal_root=tmp_path / "j", resume=True)
        assert resumed.completed
        assert resumed.verdicts == clean.verdicts
        assert resumed.coverage.to_json() == clean.coverage.to_json()
        assert resumed.report.render() == clean.report.render()
        assert resumed.render_allocations() == clean.render_allocations()

    def test_scheduler_feedback_reaches_later_batches(self, tmp_path):
        result = run_guided_campaign(
            _gspec(count=8, batch=4), _runner(tmp_path), jobs=2,
            policy=FAST, journal_root=tmp_path / "j")
        assert result.completed
        assert len(result.allocations) == 2
        # Batch 0 splits evenly; batch 1 reflects observed novelty (the
        # two batches need not be identical, but both spend the budget).
        assert all(sum(a.values()) == 4 for a in result.allocations)
        total = sum(s["allocated"] for s in result.arm_stats.values())
        assert total == 8
