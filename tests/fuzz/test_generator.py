"""Random-kernel generator: determinism, halting, round trips, coverage.

The generator supersedes the straight-line embryo in
``tests/properties/generators.py``; the coverage tests here pin exactly
the blind spots the embryo had (stores, body branches, div/rem, byte
accesses, fp) so they can never silently regress out of the corpus.
"""

import json

import pytest

from repro.functional import FunctionalSimulator
from repro.fuzz.generator import (DEFAULT_DIALS, FuzzWorkload, KernelDials,
                                  SpecWorkload, encode_name,
                                  fuzz_workload_from_name, parse_name,
                                  sample_spec, spec_from_json, spec_to_json)
from repro.workloads import get_workload


def _stmt_kinds(spec):
    kinds = set()

    def walk(stmts):
        for s in stmts:
            kinds.add(s[0])
            if s[0] == "hammock":
                walk(s[4])
                walk(s[5])
    for _, body in spec.loops:
        walk(body)
    return kinds


class TestDeterminism:
    def test_same_seed_same_spec(self):
        assert sample_spec(5, 3) == sample_spec(5, 3)

    def test_different_index_different_spec(self):
        assert sample_spec(5, 3) != sample_spec(5, 4)

    def test_programs_byte_identical(self):
        a = FuzzWorkload(5, 3).program("eval")
        b = FuzzWorkload(5, 3).program("eval")
        assert list(a.encode()) == list(b.encode())
        assert [seg.values.tobytes() for seg in a.segments] == \
            [seg.values.tobytes() for seg in b.segments]

    def test_train_eval_share_text_not_data(self):
        w = FuzzWorkload(5, 3)
        train, evalp = w.program("train"), w.program("eval")
        assert list(train.encode()) == list(evalp.encode())
        assert any(x.values.tobytes() != y.values.tobytes()
                   for x, y in zip(train.segments, evalp.segments))


class TestRoundTrips:
    def test_spec_json_round_trip(self):
        spec = sample_spec(9, 1)
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_json_is_deterministic(self):
        assert spec_to_json(sample_spec(9, 2)) == spec_to_json(
            sample_spec(9, 2))

    def test_name_round_trip_default_dials(self):
        name = encode_name(12, 34)
        assert name == "fuzz:v1:12:34"
        assert parse_name(name) == (12, 34, DEFAULT_DIALS)

    def test_name_round_trip_with_dials(self):
        dials = KernelDials(mem_words=4096, fp_weight=0.0, max_loops=2)
        seed, index, parsed = parse_name(encode_name(3, 7, dials))
        assert (seed, index) == (3, 7)
        assert parsed == dials

    def test_registry_resolves_fuzz_names(self):
        w = get_workload("fuzz:v1:12:34")
        assert isinstance(w, FuzzWorkload)
        assert (w.campaign_seed, w.index) == (12, 34)

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="generator version"):
            parse_name("fuzz:v999:1:2")

    def test_junk_rejected(self):
        with pytest.raises(ValueError):
            parse_name("pointer")
        with pytest.raises(ValueError):
            fuzz_workload_from_name("fuzz:v1:1:2:bogus_dial=3")


class TestEncoding:
    @pytest.mark.parametrize("index", range(6))
    def test_generated_programs_binary_encode(self, index):
        # Init values span the full 64-bit range, which must reach the
        # registers via data segments — li of INT64_MIN cannot encode.
        prog = FuzzWorkload(13, index).program("eval")
        assert len(prog.encode()) == len(prog.instructions)


class TestHalting:
    @pytest.mark.parametrize("index", range(6))
    def test_generated_programs_halt(self, index):
        w = FuzzWorkload(11, index)
        sim = FunctionalSimulator(w.program("eval"))
        sim.run(w.eval_instructions)
        assert sim.halted

    def test_budget_is_generous(self):
        w = FuzzWorkload(11, 0)
        sim = FunctionalSimulator(w.program("eval"))
        trace = sim.run(w.eval_instructions, trace=True)
        assert len(trace) < w.eval_instructions / 2


class TestCoverage:
    """The embryo generator's blind spots must all be in the corpus."""

    def test_corpus_covers_embryo_blind_spots(self):
        kinds = set()
        for i in range(40):
            kinds |= _stmt_kinds(sample_spec(17, i))
        assert {"store", "hammock", "div", "bload", "bstore",
                "fp", "chase", "gather", "stream"} <= kinds

    def test_interesting_ints_reach_div_edges(self):
        # INT64_MIN and -1 are in the initial-value pool, so the
        # INT64_MIN / -1 overflow and x/0 edges are reachable.
        mins = zeros = 0
        for i in range(60):
            init = sample_spec(23, i).init
            mins += -(1 << 63) in init
            zeros += 0 in init
        assert mins > 0 and zeros > 0

    def test_fp_weight_zero_silences_fp(self):
        dials = KernelDials(fp_weight=0.0)
        for i in range(10):
            kinds = _stmt_kinds(sample_spec(29, i, dials))
            assert not kinds & {"fp", "fun", "fcmp", "cvtif", "cvtfi",
                                "fload", "fstore"}

    def test_mem_words_dial_is_a_ceiling(self):
        dials = KernelDials(mem_words=256)
        for i in range(10):
            n = sample_spec(31, i, dials).mem_words
            assert 64 <= n <= 256 and n & (n - 1) == 0


class TestSpecWorkload:
    def test_spec_workload_is_replayable(self):
        spec = sample_spec(41, 2)
        doc = json.loads(spec_to_json(spec))
        rebuilt = spec_from_json(json.dumps(doc))
        a = SpecWorkload(spec, "fuzz:v1:41:2").program("eval")
        b = SpecWorkload(rebuilt, "fuzz:v1:41:2").program("eval")
        assert list(a.encode()) == list(b.encode())
