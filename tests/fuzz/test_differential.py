"""Per-program differential evaluation: clean verdicts and injected bugs."""

import numpy as np
import pytest

from repro.fuzz import FuzzCheckSpec, SpecWorkload, evaluate_workload
from repro.fuzz.generator import FuzzWorkload, KernelDials, sample_spec

SMALL = KernelDials(mem_words=512, target_instructions=600)


def _small_workload(index=0):
    return FuzzWorkload(101, index, SMALL)


class BrokenRngWorkload(SpecWorkload):
    """A workload whose oracle sees *different* array data than the
    materialized program — the canonical injected divergence."""

    def variant_rng(self, variant):
        if variant == "eval":
            return np.random.default_rng(0xBAD)
        return super().variant_rng(variant)


class TestCleanVerdict:
    def test_clean_program_runs_every_check(self):
        v = evaluate_workload(_small_workload(), FuzzCheckSpec())
        assert not v.diverged
        assert v.classification in ("speedup", "neutral", "regression")
        assert set(v.checks) >= {"halt", "oracle", "slicer", "commits",
                                 "backends", "fills"}
        assert v.halted
        assert v.commits == v.trace_len > 0
        assert v.baseline_ipc > 0 and v.spear_ipc > 0

    def test_sweep_points_adds_sweep_check(self):
        v = evaluate_workload(_small_workload(),
                              FuzzCheckSpec(sweep_points=2))
        assert "sweep" in v.checks
        assert not v.diverged

    def test_verdict_round_trips_to_dict(self):
        v = evaluate_workload(_small_workload(), FuzzCheckSpec())
        d = v.to_dict()
        assert d["name"] == v.name
        assert d["classification"] == v.classification
        assert d["divergences"] == []

    def test_scale_shrinks_budgets_not_verdicts(self):
        v = evaluate_workload(_small_workload(), FuzzCheckSpec(), scale=0.9)
        assert v.halted and not v.diverged


class TestInjectedDivergence:
    def test_oracle_mismatch_is_a_divergence(self):
        base = _small_workload()
        broken = BrokenRngWorkload(base.spec, base.name)
        v = evaluate_workload(broken, FuzzCheckSpec())
        assert v.classification == "divergence"
        assert v.diverged
        assert any(lbl.startswith("oracle") for lbl in v.divergences)

    def test_divergence_beats_classification(self):
        # Even a would-be speedup classifies as divergence when checks fail.
        base = _small_workload()
        broken = BrokenRngWorkload(base.spec, base.name)
        v = evaluate_workload(broken, FuzzCheckSpec(speedup=0.0))
        assert v.classification == "divergence"


class TestThresholds:
    def test_thresholds_move_the_classification(self):
        v = evaluate_workload(_small_workload(), FuzzCheckSpec())
        ratio = v.speedup
        lo = evaluate_workload(_small_workload(),
                               FuzzCheckSpec(speedup=ratio - 0.01,
                                             regression=0.0))
        hi = evaluate_workload(_small_workload(),
                               FuzzCheckSpec(speedup=9.0,
                                             regression=ratio + 0.01))
        assert lo.classification == "speedup"
        assert hi.classification == "regression"

    def test_check_payload_is_stable(self):
        a = FuzzCheckSpec().payload()
        b = FuzzCheckSpec().payload()
        assert a == b
        assert FuzzCheckSpec(sweep_points=2).payload() != a


class TestDeterminism:
    def test_same_workload_same_verdict(self):
        a = evaluate_workload(_small_workload(3), FuzzCheckSpec())
        b = evaluate_workload(_small_workload(3), FuzzCheckSpec())
        assert a == b
