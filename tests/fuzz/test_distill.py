"""Corpus distillation: set-cover invariants, pinning, drift detection."""

import json

import pytest

from repro.fuzz import (check_corpus, corpus_from_json, corpus_to_json,
                        distill, run_campaign, vector_of)

from .test_campaign import FAST, _runner, _spec


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """One small blind campaign every distillation test shares."""
    tmp = tmp_path_factory.mktemp("distill")
    return run_campaign(_spec(count=6, seed=23), _runner(tmp), jobs=2,
                        policy=FAST, journaled=False)


@pytest.fixture(scope="module")
def corpus(campaign):
    return distill(campaign.verdicts)


def _clean_facets(verdicts):
    out = set()
    for v in verdicts:
        if not v.diverged and v.behavior is not None:
            out |= set(vector_of(v).facets())
    return out


class TestDistill:
    def test_corpus_covers_every_clean_facet(self, campaign, corpus):
        covered = {f for e in corpus for f in e.facets}
        assert covered == _clean_facets(campaign.verdicts)

    def test_no_entry_is_redundant(self, corpus):
        for entry in corpus:
            others = {f for e in corpus if e is not entry for f in e.facets}
            assert not set(entry.facets) <= others, \
                f"{entry.name} covers nothing unique"

    def test_distillation_is_deterministic(self, campaign):
        a, b = distill(campaign.verdicts), distill(campaign.verdicts)
        assert [(e.name, e.key, e.facets) for e in a] == \
            [(e.name, e.key, e.facets) for e in b]

    def test_entries_pin_key_class_and_spec(self, campaign, corpus):
        by_name = {v.name: v for v in campaign.verdicts}
        for e in corpus:
            v = by_name[e.name]
            assert e.key == vector_of(v).key
            assert e.classification == v.classification
            # The pinned spec regenerates the identical program.
            assert e.workload().program("eval").encode().tobytes() == \
                e.workload().program("eval").encode().tobytes()

    def test_divergent_verdicts_are_excluded(self, campaign):
        import dataclasses
        poisoned = list(campaign.verdicts)
        poisoned[0] = dataclasses.replace(
            poisoned[0], classification="divergence",
            divergences=("oracle: drift",))
        names = {e.name for e in distill(poisoned)}
        assert poisoned[0].name not in names


class TestCorpusJson:
    def test_round_trip_is_lossless(self, corpus):
        text = corpus_to_json(corpus, source={"seed": 23, "count": 6})
        entries, doc = corpus_from_json(text)
        assert entries == corpus
        assert doc["source"] == {"seed": 23, "count": 6}
        assert corpus_to_json(entries, source=doc["source"]) == text

    def test_schema_version_gates(self, corpus):
        doc = json.loads(corpus_to_json(corpus, source={}))
        doc["coverage_version"] = 99
        with pytest.raises(ValueError, match="regenerate"):
            corpus_from_json(json.dumps(doc))
        doc = json.loads(corpus_to_json(corpus, source={}))
        doc["version"] = 0
        with pytest.raises(ValueError, match="corpus version"):
            corpus_from_json(json.dumps(doc))


class TestCheckCorpus:
    def test_same_build_is_clean(self, corpus):
        checks = check_corpus(corpus)
        assert all(c.ok for c in checks)
        assert [c.name for c in checks] == [e.name for e in corpus]
        assert all(c.describe().startswith("ok") for c in checks)

    def test_behavior_drift_is_flagged(self, corpus):
        import dataclasses
        tampered = [dataclasses.replace(corpus[0],
                                        key="v1|cls=bogus|gain=9")]
        check = check_corpus(tampered)[0]
        assert not check.ok
        assert "coverage bin" in check.drift
        assert check.describe().startswith("DRIFT")

    def test_classification_drift_is_flagged(self, corpus):
        import dataclasses
        flipped = "neutral" if corpus[0].classification != "neutral" \
            else "speedup"
        tampered = [dataclasses.replace(corpus[0], classification=flipped)]
        check = check_corpus(tampered)[0]
        assert not check.ok and "classification" in check.drift
