"""Promoted fuzz-found workloads keep the character they were kept for."""

import pytest

from repro.fuzz import FuzzCheckSpec, evaluate_workload
from repro.workloads import get_workload

PROMOTED = ("fzgain", "fzmix", "fzdrag", "fzsrl")


@pytest.mark.parametrize("name", PROMOTED)
def test_promoted_kernels_evaluate_clean(name):
    verdict = evaluate_workload(get_workload(name), FuzzCheckSpec())
    assert not verdict.diverged
    assert verdict.halted


def test_gain_kernels_still_gain():
    for name in ("fzgain", "fzmix"):
        v = evaluate_workload(get_workload(name), FuzzCheckSpec())
        assert v.classification == "speedup", (name, v.speedup)


def test_drag_kernel_still_regresses():
    v = evaluate_workload(get_workload("fzdrag"), FuzzCheckSpec())
    assert v.classification == "regression", v.speedup


def test_srl_kernel_pins_the_original_bug_shape():
    w = get_workload("fzsrl")
    kinds = {s[0] for _, body in w.spec.loops for s in body}
    assert {"store", "alu", "gather"} <= kinds
