"""Delta-debugging shrinker: still-fails, monotone, deterministic."""

from repro.fuzz import shrink
from repro.fuzz.generator import KernelSpec, sample_spec
from repro.fuzz.shrink import _metric


def _has_kind(spec: KernelSpec, kind: str) -> bool:
    def walk(stmts):
        for s in stmts:
            if s[0] == kind:
                return True
            if s[0] == "hammock" and (walk(s[4]) or walk(s[5])):
                return True
        return False
    return any(walk(body) for _, body in spec.loops)


def _spec_with(kind: str, seed: int = 61) -> KernelSpec:
    for i in range(200):
        spec = sample_spec(seed, i)
        if _has_kind(spec, kind):
            return spec
    raise AssertionError(f"no sampled spec contains {kind!r}")


class TestShrink:
    def test_result_still_fails(self):
        spec = _spec_with("store")
        small = shrink(spec, lambda s: _has_kind(s, "store"))
        assert _has_kind(small, "store")

    def test_result_is_no_larger(self):
        spec = _spec_with("gather")
        small = shrink(spec, lambda s: _has_kind(s, "gather"))
        assert _metric(small) <= _metric(spec)
        assert small.size() <= spec.size()

    def test_shrinks_to_near_minimal_for_structural_predicates(self):
        spec = _spec_with("div")
        small = shrink(spec, lambda s: _has_kind(s, "div"))
        # One loop, one statement is the true minimum for "contains div".
        assert small.size() <= 2
        assert len(small.loops) == 1

    def test_deterministic(self):
        spec = _spec_with("chase")
        pred = lambda s: _has_kind(s, "chase")
        assert shrink(spec, pred) == shrink(spec, pred)

    def test_hammock_arms_are_inlined(self):
        spec = _spec_with("hammock")
        # Shrinking "contains a store" through a spec with hammocks must
        # be able to pull statements out of the arms.
        if not _has_kind(spec, "store"):
            return
        small = shrink(spec, lambda s: _has_kind(s, "store"))
        assert _has_kind(small, "store")

    def test_never_failing_predicate_returns_input(self):
        spec = sample_spec(61, 0)
        assert shrink(spec, lambda s: False) == spec

    def test_eval_budget_respected(self):
        spec = _spec_with("store")
        calls = []

        def pred(s):
            calls.append(1)
            return _has_kind(s, "store")
        shrink(spec, pred, max_evals=25)
        assert len(calls) <= 25

    def test_trip_counts_shrink_too(self):
        spec = _spec_with("store")
        small = shrink(spec, lambda s: _has_kind(s, "store"))
        assert sum(t for t, _ in small.loops) <= \
            sum(t for t, _ in spec.loops)

    def test_zeroed_init_when_irrelevant(self):
        spec = _spec_with("stream")
        small = shrink(spec, lambda s: _has_kind(s, "stream"))
        # Structural predicates don't depend on init values, so the
        # shrinker should zero most of them out.
        assert sum(1 for v in small.init if v == 0) >= \
            sum(1 for v in spec.init if v == 0)
