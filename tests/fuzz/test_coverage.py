"""Behaviour coverage: banding, map accumulation, byte determinism."""

import dataclasses
import json

import pytest

from repro.fuzz import CoverageMap, coverage_map, run_campaign, vector_of
from repro.fuzz.coverage import (DIMENSIONS, UNMEASURED, _log_band,
                                 _ratio_band)
from repro.fuzz.differential import BEHAVIOR_FIELDS, FuzzVerdict

from .test_campaign import FAST, _runner, _spec


def verdict(name="fuzz:v1:0:0", cls="neutral", speedup=1.0, div=(),
            behavior="auto", **raw):
    """A synthetic verdict whose behaviour tuple is all-zeros + ``raw``."""
    fields = dict.fromkeys(BEHAVIOR_FIELDS, 0)
    fields.update(raw)
    if behavior == "auto":
        behavior = tuple(fields[f] for f in BEHAVIOR_FIELDS)
    return FuzzVerdict(
        name=name, classification=cls, speedup=speedup, baseline_ipc=1.0,
        spear_ipc=speedup, commits=10, trace_len=10, halted=True,
        triggers=fields["triggers"], spec_size=3, divergences=tuple(div),
        behavior=behavior)


class TestBands:
    def test_log_band_edges_are_inclusive(self):
        assert _log_band(0, (8, 64)) == "0"
        assert _log_band(1, (8, 64)) == "1"
        assert _log_band(8, (8, 64)) == "1"
        assert _log_band(9, (8, 64)) == "2"
        assert _log_band(65, (8, 64)) == "3"

    def test_ratio_band_is_exact_integer_arithmetic(self):
        # 1/100 == exactly 10 permille: NOT below the edge -> band 1.
        assert _ratio_band(1, 100, (10,)) == "1"
        assert _ratio_band(9, 1000, (10,)) == "0"
        assert _ratio_band(0, 7, (10,)) == "0"
        assert _ratio_band(3, 0, (10,)) == "0"          # no denominator

    def test_gain_bands_cut_at_the_classification_thresholds(self):
        assert dict(vector_of(verdict(speedup=0.95)).bands)["gain"] == "1"
        assert dict(vector_of(verdict(speedup=1.0)).bands)["gain"] == "2"
        assert dict(vector_of(verdict(speedup=1.05)).bands)["gain"] == "3"
        assert dict(vector_of(verdict(speedup=1.30)).bands)["gain"] == "4"
        assert dict(vector_of(verdict(speedup=2.0)).bands)["gain"] == "5"


class TestVectorOf:
    def test_key_lists_every_dimension_in_order(self):
        key = vector_of(verdict()).key
        parts = key.split("|")
        assert parts[0] == "v1"
        assert [p.split("=")[0] for p in parts[1:]] == list(DIMENSIONS)

    def test_fill_mix_dominance_and_tie_break(self):
        v = verdict(fills=10, timely=5, late=5, unused=0)
        assert dict(vector_of(v).bands)["mix"] == "timely"  # tie -> timely
        v = verdict(fills=10, timely=1, late=2, unused=7)
        assert dict(vector_of(v).bands)["mix"] == "unused"
        assert dict(vector_of(verdict()).bands)["mix"] == "none"

    def test_l2_untouched_is_distinct_from_l2_hitting(self):
        untouched = dict(vector_of(verdict()).bands)["l2"]
        hitting = dict(vector_of(verdict(l2_refs=100, l2_misses=0)).bands)
        assert untouched == "-"
        assert hitting["l2"] == "0"

    def test_divergence_labels_fold_sorted(self):
        v = verdict(cls="divergence",
                    div=("oracle: ints drift", "fills: bad", "oracle: mem"))
        assert dict(vector_of(v).bands)["div"] == "fills+oracle"

    def test_unmeasured_behavior_bands_as_x(self):
        v = verdict(behavior=None, cls="divergence", speedup=0.0,
                    div=("timing: boom",))
        bands = dict(vector_of(v).bands)
        for dim in ("trig", "chain", "mode", "fills", "mix", "l1", "l2",
                    "slices", "slen"):
            assert bands[dim] == UNMEASURED
        # ... but what *was* observed still bins.
        assert bands["cls"] == "divergence"
        assert vector_of(v).facets() == ("cls=divergence", "div=timing")


class TestCoverageMap:
    def test_accumulation_is_order_independent(self):
        vs = [verdict(name=f"n{i}", triggers=i * 7, fills=i)
              for i in range(9)]
        forward, backward = coverage_map(vs), coverage_map(vs[::-1])
        assert forward.to_json() == backward.to_json()
        assert forward.content_hash() == backward.content_hash()

    def test_merge_equals_joint_accumulation(self):
        vs = [verdict(name=f"n{i}", triggers=i * 7) for i in range(6)]
        joint = coverage_map(vs)
        left, right = coverage_map(vs[:3]), coverage_map(vs[3:])
        left.merge(right)
        assert left.to_json() == joint.to_json()

    def test_add_reports_novelty_once(self):
        cmap = CoverageMap()
        assert cmap.add_verdict(verdict())
        assert not cmap.add_verdict(verdict())
        assert cmap.distinct == 1 and cmap.total == 2

    def test_json_round_trip_and_version_gate(self):
        cmap = coverage_map([verdict(), verdict(triggers=100)])
        again = CoverageMap.from_json(cmap.to_json())
        assert again.to_json() == cmap.to_json()
        doc = json.loads(cmap.to_json())
        doc["version"] = 99
        with pytest.raises(ValueError, match="coverage version"):
            CoverageMap.from_json(json.dumps(doc))

    def test_facets_skip_unmeasured_dimensions(self):
        cmap = coverage_map([verdict(behavior=None, cls="divergence",
                                     speedup=0.0, div=("timing: x",))])
        assert all(not f.endswith(f"={UNMEASURED}") for f in cmap.facets())

    def test_render_is_deterministic(self):
        vs = [verdict(name=f"n{i}", fills=i * 5, timely=i) for i in range(5)]
        assert coverage_map(vs).render() == coverage_map(vs[::-1]).render()
        assert "distinct bin(s)" in coverage_map(vs).render()


class TestCampaignCoverage:
    def test_map_is_independent_of_jobs(self, tmp_path):
        spec = _spec()
        serial = run_campaign(spec, _runner(tmp_path, "c1"), jobs=1,
                              policy=FAST, journaled=False)
        parallel = run_campaign(spec, _runner(tmp_path, "c2"), jobs=2,
                                policy=FAST, journaled=False)
        a, b = coverage_map(serial.verdicts), coverage_map(parallel.verdicts)
        assert a.to_json() == b.to_json()
        assert a.content_hash() == b.content_hash()

    def test_real_verdicts_produce_measured_vectors(self, tmp_path):
        result = run_campaign(_spec(count=2), _runner(tmp_path), jobs=1,
                              policy=FAST, journaled=False)
        for v in result.verdicts:
            assert v.behavior is not None
            bands = dict(vector_of(v).bands)
            assert bands["cls"] == v.classification
            assert UNMEASURED not in {bands[d] for d in
                                      ("trig", "mode", "l1", "slices")}
