"""Campaign driver: byte-determinism across job counts, resume, triage."""

import json

import pytest

from repro.fuzz import CampaignSpec, campaign_cells, run_campaign, triage
from repro.fuzz.generator import KernelDials
from repro.harness import DiskCache, ExecutionPolicy, ExperimentRunner
from repro.harness.journal import RunJournal, cell_key

FAST = ExecutionPolicy(retries=1, backoff=0, max_pool_rebuilds=1)
#: small + cheap: tiny footprints, short programs, no sweep sampling
SMALL = KernelDials(mem_words=512, target_instructions=600)


def _spec(count=4, seed=71, **kw):
    kw.setdefault("sweep_every", 0)
    return CampaignSpec(seed=seed, count=count, dials=SMALL, **kw)


def _runner(tmp_path, sub="cache"):
    return ExperimentRunner(cache=DiskCache(tmp_path / sub))


class TestDeterminism:
    def test_jobs_do_not_change_the_bytes(self, tmp_path):
        spec = _spec()
        serial = run_campaign(spec, _runner(tmp_path, "c1"), jobs=1,
                              policy=FAST, journaled=False)
        parallel = run_campaign(spec, _runner(tmp_path, "c2"), jobs=2,
                                policy=FAST, journaled=False)
        assert serial.verdicts == parallel.verdicts
        assert serial.report.render() == parallel.report.render()
        assert serial.report.to_json() == parallel.report.to_json()

    def test_cells_are_index_ordered(self):
        cells = campaign_cells(_spec(count=5))
        assert [c.workload for c in cells] == \
            [f"fuzz:v1:71:{i}:mem_words=512;target_instructions=600"
             for i in range(5)]

    def test_sweep_every_samples_by_index(self):
        spec = _spec(count=5, sweep_every=2, sweep_points=2)
        cells = campaign_cells(spec)
        sampled = [c.fuzz.sweep_points for c in cells]
        assert sampled == [2, 0, 2, 0, 2]


class TestResume:
    def test_kill_then_resume_matches_clean_run(self, tmp_path,
                                                monkeypatch):
        spec = _spec()
        clean = run_campaign(spec, _runner(tmp_path, "clean"), jobs=1,
                             policy=FAST, journaled=False)

        # First attempt: cell 2's evaluator crashes terminally.
        runner = _runner(tmp_path)
        monkeypatch.setenv("REPRO_FAULTS", "crash:cell=2:times=0")
        first = run_campaign(spec, runner, jobs=2, policy=FAST,
                             journal_root=tmp_path / "j")
        assert not first.run_report.completed
        assert len(first.failed) == 1

        # Resume without faults: only the missing cell reruns; the rest
        # restore from the journal + cache, and the bytes match a clean
        # uninterrupted campaign.
        monkeypatch.delenv("REPRO_FAULTS")
        resumed_runner = _runner(tmp_path)
        resumed = run_campaign(spec, resumed_runner, jobs=2, policy=FAST,
                               journal_root=tmp_path / "j", resume=True)
        assert resumed.run_report.completed
        assert resumed.failed == []
        assert resumed.verdicts == clean.verdicts
        assert resumed.report.render() == clean.report.render()
        assert resumed.run_report.resumed >= 1

    def test_journal_key_isolates_check_changes(self, tmp_path):
        runner = _runner(tmp_path)
        a, b = campaign_cells(_spec())[0], \
            campaign_cells(_spec(sweep_every=1, sweep_points=2))[0]
        ka, kb = cell_key(runner, a), cell_key(runner, b)
        # Same workload, different check spec -> different identity, so a
        # journal written under one check never satisfies the other.
        assert ka != kb
        assert ka == runner.cache.key_for(
            "fuzz", runner.fuzz_payload(a.workload, a.fuzz))


class TestTriage:
    def test_report_counts_every_class(self, tmp_path):
        result = run_campaign(_spec(), _runner(tmp_path), jobs=1,
                              policy=FAST, journaled=False)
        rep = result.report
        assert rep.total == 4
        assert sum(rep.counts.values()) == 4
        assert rep.total_commits == sum(v.commits for v in result.verdicts)
        doc = json.loads(rep.to_json())
        assert doc["total"] == 4

    def test_divergences_preserve_submission_order(self, tmp_path):
        result = run_campaign(_spec(), _runner(tmp_path), jobs=1,
                              policy=FAST, journaled=False)
        rep = triage(result.verdicts)
        names = [v.name for v in result.verdicts]
        assert [v.name for v in rep.divergences] == \
            [n for n in names if n in {v.name for v in rep.divergences}]

    def test_render_mentions_divergence_count(self, tmp_path):
        result = run_campaign(_spec(count=2), _runner(tmp_path), jobs=1,
                              policy=FAST, journaled=False)
        text = result.report.render()
        assert "divergence" in text
        assert "2 program(s)" in text

    def test_errored_programs_get_an_explicit_bucket(self):
        rep = triage([], errored=["fuzz:v1:0:2"])
        assert rep.total == 1
        assert rep.errored == ["fuzz:v1:0:2"]
        doc = json.loads(rep.to_json())
        assert doc["counts"]["errored"] == 1
        assert doc["errored"] == ["fuzz:v1:0:2"]
        assert "ERRORED (1)" in rep.render()
        assert "fuzz:v1:0:2" in rep.render()

    def test_crashed_cells_surface_as_errored(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:cell=1:times=0")
        result = run_campaign(_spec(), _runner(tmp_path), jobs=2,
                              policy=FAST, journal_root=tmp_path / "j")
        assert len(result.failed) == 1
        # The report accounts for every program it was asked to run:
        # no silent shrinkage of the campaign.
        assert result.report.errored == result.failed
        assert result.report.total == result.spec.count
