"""IR oracle vs functional simulator: the model-vs-model differential.

The oracle re-states the ISA contract independently of
:mod:`repro.functional`; these tests assert both interpreters agree on
whole sampled kernels and, statement by statement, on exactly the
arithmetic edges the pre-campaign audit fixed in the simulator
(float-imprecise DIV, trapping div/rem/fdiv/fsqrt, zero-extending lb,
crashing CVTFI).
"""

import numpy as np
import pytest

from repro.functional import FunctionalSimulator
from repro.fuzz.generator import KernelSpec, SpecWorkload, sample_spec, \
    spec_layout
from repro.fuzz.oracle import functional_summary, run_oracle

I64_MIN = -(1 << 63)


def _agree(workload: SpecWorkload):
    sim = FunctionalSimulator(workload.program("eval"))
    sim.run(workload.eval_instructions)
    assert sim.halted
    expected = run_oracle(workload.spec, workload.variant_rng("eval"))
    actual = functional_summary(sim, workload.spec,
                                spec_layout(workload.spec))
    assert actual == expected.summary()
    return expected


def _edge_spec(body, init=(0,) * 8, finit=(0.0,) * 6, trips=1):
    return KernelSpec(mem_words=64, p_taken=0.5, init=tuple(init),
                      finit=tuple(finit), loops=((trips, tuple(body)),))


def _workload(spec):
    return SpecWorkload(spec, "fuzz:v1:999:0")


class TestSampledAgreement:
    @pytest.mark.parametrize("index", range(8))
    def test_oracle_matches_functional(self, index):
        _agree(_workload(sample_spec(47, index)))


class TestArithmeticEdges:
    def test_div_rem_by_zero(self):
        spec = _edge_spec([("div", "div", 2, 0, 1), ("div", "rem", 3, 0, 1)],
                          init=(77, 0, 0, 0, 0, 0, 0, 0))
        state = _agree(_workload(spec))
        assert state.ints[2] == -1 and state.ints[3] == 77

    def test_div_overflow_wraps(self):
        spec = _edge_spec([("div", "div", 2, 0, 1), ("div", "rem", 3, 0, 1)],
                          init=(I64_MIN, -1, 0, 0, 0, 0, 0, 0))
        state = _agree(_workload(spec))
        assert state.ints[2] == I64_MIN and state.ints[3] == 0

    def test_div_exact_beyond_float53(self):
        a = (1 << 62) + 3
        spec = _edge_spec([("div", "div", 2, 0, 1)],
                          init=(a, 3, 0, 0, 0, 0, 0, 0))
        state = _agree(_workload(spec))
        assert state.ints[2] == a // 3

    def test_srl_by_zero_stays_canonical(self):
        # The fuzz campaign's first find (fuzz:v1:0:791, shrunk into
        # tests/regress/srl_zero_shift_unwrapped.json): srl by 0 of a
        # negative value must keep the bit pattern — i.e. stay negative
        # in canonical signed form — not turn into an unsigned >= 2^63.
        spec = _edge_spec([("alu", "srl", 2, 0, 1, 0), ("store", 2, 1),
                           ("alu", "srli", 3, 0, 0, 0)],
                          init=(-7, 0, 0, 0, 0, 0, 0, 0))
        state = _agree(_workload(spec))
        assert state.ints[2] == -7 and state.ints[3] == -7

    def test_sra_on_negative(self):
        spec = _edge_spec([("alu", "srai", 2, 0, 0, 5)],
                          init=(-1024, 0, 0, 0, 0, 0, 0, 0))
        state = _agree(_workload(spec))
        assert state.ints[2] == -32

    def test_byte_load_sign_extends(self):
        # bstore 0xC8 (200) then bload: must come back as -56.
        spec = _edge_spec([("bstore", 0, 1), ("bload", 2, 1)],
                          init=(200, 5, 0, 0, 0, 0, 0, 0))
        state = _agree(_workload(spec))
        assert state.ints[2] == -56

    def test_fdiv_by_zero_is_ieee(self):
        spec = _edge_spec([("fp", "fdiv", 2, 0, 1), ("fp", "fdiv", 3, 1, 1)],
                          finit=(5.0, 0.0, 0.0, 0.0, 0.0, 0.0))
        state = _agree(_workload(spec))
        assert state.fps[2] == float("inf")
        assert state.fps[3] != state.fps[3]          # 0/0 -> NaN

    def test_fsqrt_negative_is_nan(self):
        spec = _edge_spec([("fun", "fsqrt", 1, 0)],
                          finit=(-4.0, 0.0, 0.0, 0.0, 0.0, 0.0))
        state = _agree(_workload(spec))
        assert state.fps[1] != state.fps[1]

    def test_cvtfi_saturates(self):
        spec = _edge_spec([("fp", "fdiv", 2, 0, 1),   # +inf
                           ("cvtfi", 2, 2),
                           ("fun", "fneg", 3, 2),
                           ("cvtfi", 3, 3)],
                          finit=(1.0, 0.0, 0.0, 0.0, 0.0, 0.0))
        state = _agree(_workload(spec))
        assert state.ints[2] == (1 << 63) - 1
        assert state.ints[3] == I64_MIN

    def test_mul_and_shift_wrap(self):
        spec = _edge_spec([("alu", "mul", 2, 0, 0, 0),
                           ("alu", "slli", 3, 0, 0, 63)],
                          init=((1 << 40) + 7, 0, 0, 0, 0, 0, 0, 0))
        state = _agree(_workload(spec))
        assert abs(state.ints[2]) < 1 << 63
        assert abs(state.ints[3]) <= 1 << 63

    def test_stream_wraps_footprint(self):
        spec = _edge_spec([("stream", 2, 4)], trips=200)
        state = _agree(_workload(spec))
        assert 0 <= state.stream_off < 64 * 8


class TestMemoryEffects:
    def test_stores_visible_in_digest(self):
        base = _edge_spec([("store", 0, 1)], init=(123, 9, 0, 0, 0, 0, 0, 0))
        other = _edge_spec([("store", 0, 1)], init=(124, 9, 0, 0, 0, 0, 0, 0))
        a = _agree(_workload(base)).memory_digest()
        b = _agree(_workload(other)).memory_digest()
        assert a != b

    def test_oracle_uses_variant_rng(self):
        # The oracle must draw array data exactly like materialization:
        # a different variant rng yields a different final state.
        w = _workload(sample_spec(53, 0))
        ev = run_oracle(w.spec, w.variant_rng("eval")).summary()
        tr = run_oracle(w.spec, w.variant_rng("train")).summary()
        assert ev != tr

    def test_arrays_are_int64_clean(self):
        w = _workload(sample_spec(53, 1))
        state = run_oracle(w.spec, w.variant_rng("eval"))
        assert state.data.dtype == np.int64
        assert all(isinstance(v, int) for v in state.ints)
