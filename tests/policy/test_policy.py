"""Unit tests for the trigger-policy layer (`repro.policy`).

The ladder, the control law and the phase controller are pure integer
state machines, so every test here is exact — no tolerances.  The
end-to-end properties (byte-identity of ``--policy fixed``, adaptive
determinism across job counts and crash/resume) live in
``tests/properties/test_policy.py``.
"""

import dataclasses
from types import SimpleNamespace

import pytest

from repro.core.configs import BASELINE, SPEAR_128
from repro.policy import (DEFAULT_POLICY, LEVELS, MIN_FILLS, POLICIES,
                          AdaptiveEpochPolicy, AdaptivePhasePolicy,
                          FixedPolicy, PhaseController, PolicyProtocol,
                          PolicySignals, make_policy, propose,
                          resolve_policy, start_level)
from repro.policy.controller import COOLDOWN_WINDOWS


# ---------------------------------------------------------------------------
# Names and registry
# ---------------------------------------------------------------------------

def test_policy_registry():
    assert DEFAULT_POLICY == "fixed"
    assert POLICIES == ("fixed", "adaptive-epoch", "adaptive-phase")
    assert resolve_policy(None) == "fixed"
    for name in POLICIES:
        assert resolve_policy(name) == name


def test_resolve_policy_rejects_unknown():
    with pytest.raises(ValueError, match="unknown policy 'nope'"):
        resolve_policy("nope")
    with pytest.raises(ValueError):
        make_policy("adaptive")  # prefix alone is not a name


def test_make_policy_types():
    assert isinstance(make_policy(None), FixedPolicy)
    assert isinstance(make_policy("fixed"), FixedPolicy)
    assert isinstance(make_policy("adaptive-epoch"), AdaptiveEpochPolicy)
    assert isinstance(make_policy("adaptive-phase"), AdaptivePhasePolicy)
    for name in POLICIES:
        pol = make_policy(name)
        assert isinstance(pol, PolicyProtocol)
        assert pol.name == name


def test_fixed_policy_is_inert():
    pol = FixedPolicy()
    assert pol.make_controller(SPEAR_128) is None
    assert pol.converge(lambda cfg: None, SPEAR_128) is None


def test_phase_policy_skips_non_spear_configs():
    assert AdaptivePhasePolicy().make_controller(BASELINE) is None
    assert AdaptivePhasePolicy().make_controller(SPEAR_128) is not None


# ---------------------------------------------------------------------------
# The ladder and start_level
# ---------------------------------------------------------------------------

def test_ladder_is_ordered_by_aggressiveness():
    # Fractions non-increasing, chaining never turns back off.
    fracs = [f for f, _ in LEVELS]
    assert fracs == sorted(fracs, reverse=True)
    chains = [c for _, c in LEVELS]
    assert chains == sorted(chains)  # False* then True*


def test_start_level_exact_match():
    assert start_level(SPEAR_128) == 1  # the paper's point is L1
    for i, (frac, chain) in enumerate(LEVELS):
        cfg = dataclasses.replace(SPEAR_128, trigger_occupancy_fraction=frac,
                                  chaining=chain)
        assert start_level(cfg) == i


def test_start_level_nearest_same_chaining():
    cfg = dataclasses.replace(SPEAR_128, trigger_occupancy_fraction=0.6)
    assert start_level(cfg) == 1  # |0.5-0.6| beats |0.75-0.6|
    cfg = dataclasses.replace(SPEAR_128, trigger_occupancy_fraction=0.1,
                              chaining=True)
    assert start_level(cfg) == 4  # nearest chaining rung


def test_start_level_tie_resolves_low():
    # 0.375 is equidistant from L1 (0.5) and L2 (0.25): lower rung wins.
    cfg = dataclasses.replace(SPEAR_128, trigger_occupancy_fraction=0.375)
    assert start_level(cfg) == 1


# ---------------------------------------------------------------------------
# Signals and the control law
# ---------------------------------------------------------------------------

def test_window_since_is_componentwise_delta():
    a = PolicySignals(fills=10, timely=4, late=3, unused=2, redundant=1)
    b = PolicySignals(fills=25, timely=9, late=8, unused=5, redundant=3)
    w = b.window_since(a)
    assert w == PolicySignals(fills=15, timely=5, late=5, unused=3,
                              redundant=2)


def test_propose_holds_on_insufficient_signal():
    thin = PolicySignals(fills=MIN_FILLS - 1, late=MIN_FILLS - 1)
    assert propose(1, thin) == (1, "hold:insufficient-signal")


def test_propose_de_escalates_on_unused_heavy():
    sig = PolicySignals(fills=20, timely=3, late=2, unused=6)
    assert propose(2, sig) == (1, "de-escalate:unused-heavy")
    # clamped at the bottom rung
    assert propose(0, sig) == (0, "de-escalate:unused-heavy")


def test_propose_escalates_on_late_heavy():
    sig = PolicySignals(fills=20, timely=2, late=10, unused=0)
    assert propose(1, sig) == (2, "escalate:late-heavy")
    # clamped at the top rung
    top = len(LEVELS) - 1
    assert propose(top, sig) == (top, "escalate:late-heavy")


def test_propose_unused_heavy_outranks_late_heavy():
    # Both conditions true: waste wins (de-escalate checked first).
    sig = PolicySignals(fills=30, timely=1, late=5, unused=10)
    assert propose(2, sig) == (1, "de-escalate:unused-heavy")


def test_propose_holds_when_balanced():
    sig = PolicySignals(fills=20, timely=10, late=5, unused=5)
    assert propose(3, sig) == (3, "hold:balanced")


# ---------------------------------------------------------------------------
# PhaseController state machine (driven with a stub simulator)
# ---------------------------------------------------------------------------

class _StubSim:
    """Just enough simulator surface for the controller: live fill
    counters, the committed count, and the two knobs it mutates."""

    def __init__(self, config=SPEAR_128, tracer=None):
        self.config = config
        self._committed = 0
        self._tracer = tracer
        self._trigger_occ = config.trigger_occupancy
        self._chaining = config.chaining
        self._fills = SimpleNamespace(fills=0, timely=0, late=0, unused=0,
                                      redundant=0)
        from repro.memory.hierarchy import PTHREAD_FILL
        self.mem = SimpleNamespace(fill_stats={PTHREAD_FILL: self._fills})

    def late_heavy_window(self, n=20):
        self._fills.fills += n
        self._fills.late += n


def test_controller_records_start_on_attach():
    ctl = PhaseController(SPEAR_128)
    ctl.attach(_StubSim())
    assert [d["action"] for d in ctl.decisions] == ["start"]
    assert ctl.decisions[0] == {"cycle": 0, "action": "start", "level": 1,
                                "fraction": 0.5, "chaining": 0, "reason": ""}


def test_controller_holds_without_signal():
    sim = _StubSim()
    ctl = PhaseController(SPEAR_128)
    ctl.attach(sim)
    for cycle in range(999, 10000, 1000):
        sim._committed += 500
        assert ctl.tick(sim, cycle) is False
    assert [d["action"] for d in ctl.decisions] == ["start"]
    assert (sim._trigger_occ, sim._chaining) == \
        (SPEAR_128.trigger_occupancy, SPEAR_128.chaining)


def test_controller_trial_then_adopt():
    sim = _StubSim()
    ctl = PhaseController(SPEAR_128)
    ctl.attach(sim)

    sim.late_heavy_window()
    sim._committed = 1000
    assert ctl.tick(sim, 999) is True          # trial: L1 -> L2
    assert (ctl.level, ctl.point) == (2, LEVELS[2])
    assert sim._trigger_occ == int(SPEAR_128.ifq_size * 0.25)
    assert ctl.trials == 1

    sim._committed = 2100                       # 1100 >= 1000: adopt
    assert ctl.tick(sim, 1999) is False
    assert ctl.adopted == 1 and ctl.reverted == 0
    assert ctl.level == 2
    assert [d["action"] for d in ctl.decisions] == ["start", "trial",
                                                    "adopt"]


def test_controller_trial_then_revert():
    sim = _StubSim()
    ctl = PhaseController(SPEAR_128)
    ctl.attach(sim)

    sim.late_heavy_window()
    sim._committed = 1000
    assert ctl.tick(sim, 999) is True          # trial: L1 -> L2

    sim._committed = 1900                       # 900 < 1000: revert
    assert ctl.tick(sim, 1999) is True
    assert ctl.reverted == 1 and ctl.adopted == 0
    assert (ctl.level, ctl.point) == (1, (0.5, False))
    assert sim._trigger_occ == int(SPEAR_128.ifq_size * 0.5)
    assert [d["action"] for d in ctl.decisions] == ["start", "trial",
                                                    "revert"]


def test_controller_cooldown_suppresses_moves():
    sim = _StubSim()
    ctl = PhaseController(SPEAR_128)
    ctl.attach(sim)

    sim.late_heavy_window()
    sim._committed = 1000
    ctl.tick(sim, 999)                          # trial
    sim._committed = 2000
    ctl.tick(sim, 1999)                         # adopt -> cooldown starts

    for i in range(COOLDOWN_WINDOWS):           # signal present, but held
        sim.late_heavy_window()
        sim._committed += 1000
        assert ctl.tick(sim, 2999 + 1000 * i) is False
    assert ctl.trials == 1                      # no new trial during cooldown

    sim.late_heavy_window()
    sim._committed += 1000
    assert ctl.tick(sim, 2999 + 1000 * COOLDOWN_WINDOWS) is True
    assert ctl.trials == 2                      # first post-cooldown boundary


def test_controller_off_ladder_config_keeps_its_point_until_first_move():
    cfg = dataclasses.replace(SPEAR_128, trigger_occupancy_fraction=0.6)
    sim = _StubSim(cfg)
    ctl = PhaseController(cfg)
    ctl.attach(sim)
    assert ctl.level == 1 and ctl.point == (0.6, False)  # not snapped

    sim.late_heavy_window()
    sim._committed = 1000
    ctl.tick(sim, 999)                          # first move snaps to a rung
    assert ctl.point == LEVELS[2]


def test_controller_summary_and_series():
    sim = _StubSim()
    ctl = PhaseController(SPEAR_128)
    ctl.attach(sim)
    sim.late_heavy_window()
    sim._committed = 1000
    ctl.tick(sim, 999)
    sim._committed = 2000
    ctl.tick(sim, 1999)

    s = ctl.summary()
    assert s["name"] == "adaptive-phase"
    assert (s["trials"], s["adopted"], s["reverted"]) == (1, 1, 0)
    assert (s["final_level"], s["final_fraction"]) == (2, 0.25)
    assert s["label"] == ("adaptive-phase level=L2 frac=0.25 chain=off "
                          "trials=1 adopted=1 reverted=0")

    series = ctl.series()
    assert series == ctl.decisions and series is not ctl.decisions
    assert all(set(d) == {"cycle", "action", "level", "fraction",
                          "chaining", "reason"} for d in series)


def test_controller_emits_policy_trace_events():
    from repro.observe.events import POLICY

    emitted = []
    tracer = SimpleNamespace(emit=emitted.append)
    sim = _StubSim(tracer=tracer)
    ctl = PhaseController(SPEAR_128)
    ctl.attach(sim)
    sim.late_heavy_window()
    sim._committed = 1000
    ctl.tick(sim, 999)

    assert len(emitted) == len(ctl.decisions) == 2
    start, trial = emitted
    assert all(e.kind == POLICY and e.thread == -1 and e.pc == -1
               and e.trace_idx == -1 for e in emitted)
    assert start.info == "start level=L1 frac=0.5 chain=off"
    assert trial.info == ("trial level=L2 frac=0.25 chain=off "
                          "reason=escalate:late-heavy")


# ---------------------------------------------------------------------------
# AdaptiveEpochPolicy.converge (driven with stub results)
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class _Result:
    """Enough of a PipelineResult for converge(): a dataclass, because
    the adopted epoch is tagged via dataclasses.replace."""
    ipc: float
    memory: dict
    policy: dict | None = None


def _stub_result(ipc, fills):
    return _Result(
        ipc=ipc,
        memory={"fills": {"pthread": dict(
            fills=fills.fills, timely=fills.timely, late=fills.late,
            unused=fills.unused, redundant=fills.redundant)}})


def test_epoch_converge_holds_on_balanced_counters():
    balanced = PolicySignals(fills=50, timely=30, late=10, unused=5)
    runs = []

    def run_fn(cfg):
        runs.append(cfg)
        return _stub_result(1.0, balanced)

    result, summary = AdaptiveEpochPolicy().converge(run_fn, SPEAR_128)
    assert len(runs) == 1                        # epoch 0 only
    assert summary["epochs"] == 1
    assert summary["trajectory"] == "L1"
    assert summary["stop_reason"] == "hold:balanced"
    assert summary["final_level"] == 1
    assert result.policy == summary


def test_epoch_converge_adopts_on_ipc_gain():
    late_heavy = PolicySignals(fills=50, timely=5, late=40)
    balanced = PolicySignals(fills=50, timely=40, late=5)
    by_frac = {0.5: _stub_result(1.0, late_heavy),
               0.25: _stub_result(1.1, balanced)}

    def run_fn(cfg):
        return by_frac[cfg.trigger_occupancy_fraction]

    result, summary = AdaptiveEpochPolicy().converge(run_fn, SPEAR_128)
    assert summary["epochs"] == 2
    assert summary["trajectory"] == "L1->L2"
    assert summary["final_level"] == 2
    assert summary["final_fraction"] == 0.25
    assert summary["baseline_ipc"] == 1.0
    assert summary["final_ipc"] == 1.1
    assert result.ipc == 1.1


def test_epoch_converge_rejects_ipc_drop():
    late_heavy = PolicySignals(fills=50, timely=5, late=40)
    by_frac = {0.5: _stub_result(1.0, late_heavy),
               0.25: _stub_result(0.9, late_heavy)}

    def run_fn(cfg):
        return by_frac[cfg.trigger_occupancy_fraction]

    result, summary = AdaptiveEpochPolicy().converge(run_fn, SPEAR_128)
    assert summary["stop_reason"] == "rejected:ipc-drop"
    assert summary["final_level"] == 1           # incumbent kept
    assert summary["final_ipc"] == 1.0
    assert result.ipc == 1.0                     # never worse than fixed
    assert summary["label"].startswith("adaptive-epoch level=L1")


def test_epoch_converge_respects_epoch_budget():
    # Forever-late counters with ever-improving IPC: walk stops at the
    # top of the ladder (hold there would need one more proposal) or at
    # the budget, whichever first.  From L1 the walk L2, L3, L4 is three
    # adopted epochs; at L4 escalation clamps and the proposal repeats
    # the level, stopping the loop.
    late_heavy = PolicySignals(fills=50, timely=5, late=40)
    ipc = iter([1.0, 1.1, 1.2, 1.3, 1.4, 1.5])

    def run_fn(cfg):
        return _stub_result(next(ipc), late_heavy)

    result, summary = AdaptiveEpochPolicy().converge(run_fn, SPEAR_128)
    assert summary["epochs"] == 4                # L1 + three moves
    assert summary["trajectory"] == "L1->L2->L3->L4"
    assert summary["final_level"] == len(LEVELS) - 1
    assert summary["stop_reason"] == "escalate:late-heavy"  # clamped repeat
