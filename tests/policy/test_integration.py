"""Integration tests: the policy layer through the harness and pipeline.

Everything runs on a down-scaled runner (5% instruction budget) so the
whole module stays fast; the full-scale byte-identity pins live in
``tests/properties/test_policy.py``.
"""

import json

import pytest

from repro.core.configs import BASELINE, SPEAR_128
from repro.harness import ExperimentRunner, ablate_policy_cells
from repro.harness.journal import cell_key
from repro.memory.hierarchy import FIG9_LATENCIES
from repro.observe.events import POLICY


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(instruction_scale=0.05)


def _digest(res):
    blob = json.dumps({"summary": res.summary(), "memory": res.memory,
                       "predictor": res.predictor,
                       "timeline": res.timeline},
                      sort_keys=True, default=repr)
    return blob


# ---------------------------------------------------------------------------
# Effective policy and memo-key separation
# ---------------------------------------------------------------------------

def test_effective_policy_resolution(runner):
    assert runner.effective_policy(None, SPEAR_128) == "fixed"
    assert runner.effective_policy("fixed", SPEAR_128) == "fixed"
    assert runner.effective_policy("adaptive-epoch",
                                   SPEAR_128) == "adaptive-epoch"
    # baselines have no trigger to steer: always fixed
    assert runner.effective_policy("adaptive-epoch", BASELINE) == "fixed"
    assert runner.effective_policy("adaptive-phase", BASELINE) == "fixed"
    with pytest.raises(ValueError):
        runner.effective_policy("bogus", SPEAR_128)


def test_policy_memo_keys_are_separate(runner):
    runner.run("ll4", SPEAR_128)
    assert runner.has_result("ll4", SPEAR_128)
    assert runner.has_result("ll4", SPEAR_128, policy="fixed")
    assert not runner.has_result("ll4", SPEAR_128, policy="adaptive-phase")

    runner.run("ll4", SPEAR_128, policy="adaptive-phase")
    assert runner.has_result("ll4", SPEAR_128, policy="adaptive-phase")
    # the fixed entry is untouched
    assert runner.has_result("ll4", SPEAR_128, policy="fixed")


def test_baseline_adaptive_request_shares_the_fixed_memo(runner):
    a = runner.run("ll4", BASELINE)
    b = runner.run("ll4", BASELINE, policy="adaptive-epoch")
    assert a is b                       # same memo entry, same object


def test_fixed_run_carries_no_policy_summary(runner):
    res = runner.run("ll4", SPEAR_128)
    assert res.policy is None
    assert "policy" not in res.summary()


# ---------------------------------------------------------------------------
# adaptive-epoch through the runner
# ---------------------------------------------------------------------------

def test_epoch_run_attaches_summary_and_never_loses_to_fixed(runner):
    fixed = runner.run("mcf", SPEAR_128)
    res = runner.run("mcf", SPEAR_128, policy="adaptive-epoch")
    pol = res.policy
    assert pol["name"] == "adaptive-epoch"
    assert pol["baseline_ipc"] == fixed.ipc
    assert res.ipc >= fixed.ipc         # the no-regression guarantee
    assert pol["trajectory"].startswith("L")
    assert res.summary()["policy"] == pol["label"]


# ---------------------------------------------------------------------------
# adaptive-phase through the runner
# ---------------------------------------------------------------------------

def test_phase_run_attaches_summary(runner):
    res = runner.run("mcf", SPEAR_128, policy="adaptive-phase")
    pol = res.policy
    assert pol["name"] == "adaptive-phase"
    assert res.summary()["policy"] == pol["label"]
    # plain runs stay unsampled; the decision series rides sampled/traced
    # runs (see test_traced_phase_run_emits_policy_events)
    assert res.timeline is None


def test_phase_run_is_deterministic(runner):
    a = runner.run("mcf", SPEAR_128, policy="adaptive-phase")
    fresh = ExperimentRunner(instruction_scale=0.05)
    b = fresh.run("mcf", SPEAR_128, policy="adaptive-phase")
    assert _digest(a) == _digest(b)
    assert a.policy == b.policy


def test_phase_run_backends_byte_identical(runner):
    """The fast-forward kernel clamps skips to decision boundaries, so it
    must reproduce the reference decision sequence exactly."""
    for name in ("ll4", "mcf"):
        ref = runner.run(name, SPEAR_128, backend="reference",
                         policy="adaptive-phase")
        ff = runner.run(name, SPEAR_128, backend="fast-forward",
                        policy="adaptive-phase")
        assert _digest(ref) == _digest(ff), name
        assert ref.policy == ff.policy, name


# ---------------------------------------------------------------------------
# Traced runs
# ---------------------------------------------------------------------------

def test_traced_phase_run_emits_policy_events(runner):
    tr = runner.run_traced("mcf", SPEAR_128, capacity=None,
                           policy="adaptive-phase")
    events = [e for e in tr.events if e.kind == POLICY]
    series = tr.result.timeline["policy"]
    assert len(events) == len(series) > 0
    assert series[0]["action"] == "start"
    for ev, dec in zip(events, series):
        assert (ev.thread, ev.pc, ev.trace_idx) == (-1, -1, -1)
        assert ev.cycle == dec["cycle"]
        assert ev.info.startswith(f"{dec['action']} level=L{dec['level']}")

    pol = tr.result.policy
    assert pol["trials"] == sum(d["action"] == "trial" for d in series)
    assert pol["adopted"] == sum(d["action"] == "adopt" for d in series)
    assert pol["reverted"] == sum(d["action"] == "revert" for d in series)


def test_traced_fixed_run_has_no_policy_events(runner):
    tr = runner.run_traced("ll4", SPEAR_128, capacity=None)
    assert not any(e.kind == POLICY for e in tr.events)
    assert "policy" not in tr.result.timeline


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------

def test_sweep_under_adaptive_policy_matches_per_point_runs(runner):
    lats = FIG9_LATENCIES[:2]
    swept = runner.run_sweep("ll4", SPEAR_128, lats,
                             policy="adaptive-epoch")
    assert len(swept) == len(lats)
    for lat, res in zip(lats, swept):
        solo = runner.run("ll4", SPEAR_128, lat, policy="adaptive-epoch")
        assert _digest(res) == _digest(solo)


# ---------------------------------------------------------------------------
# Journal keys
# ---------------------------------------------------------------------------

def test_cell_keys_separate_policies_and_keep_fixed_stable(runner):
    cells = ablate_policy_cells(["ll4"])
    keys = [cell_key(runner, c) for c in cells]
    assert len(set(keys)) == len(keys)  # every cell journals distinctly

    fixed = next(c for c in cells if c.policy == "fixed")
    unpolicied = type(fixed)(workload=fixed.workload, config=fixed.config)
    # `--policy fixed` journals under the pre-policy key
    assert cell_key(runner, fixed) == cell_key(runner, unpolicied)
