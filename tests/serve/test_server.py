"""The serve daemon in-process: protocol ops, dedup, read-through,
backpressure, drain, GC protection.

Each test runs a real :class:`ServeServer` (real fleet, real cache,
real simulations at scale 0.05) on a background thread, talked to by
the real synchronous client over a unix socket.
"""

import asyncio
import threading
import time

import pytest

from repro.harness import DiskCache, ExecutionPolicy, ExperimentRunner
from repro.serve import ServeClient, ServeError, ServeServer

FAST = ExecutionPolicy(backoff=0)


class Daemon:
    """One in-process daemon on a background thread."""

    def __init__(self, tmp_path, name="serve", **kwargs):
        cache = DiskCache(tmp_path / "cache")
        self.runner = ExperimentRunner(instruction_scale=0.05, cache=cache)
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("policy", FAST)
        self.server = ServeServer(self.runner, tmp_path / name,
                                  address=str(tmp_path / f"{name}.sock"),
                                  **kwargs)
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.server.serve()), daemon=True)

    def start(self) -> ServeClient:
        self.thread.start()
        client = ServeClient(self.server.address)
        client.wait_ready(timeout=15.0)
        return client

    def stop(self):
        if self.thread.is_alive():
            try:
                ServeClient(self.server.address).stop()
            except OSError:
                pass
            self.thread.join(timeout=30.0)


@pytest.fixture
def daemon(tmp_path):
    d = Daemon(tmp_path)
    yield d
    d.stop()


POINTER = {"workload": "pointer", "config": "baseline"}


class TestOps:
    def test_ping(self, daemon):
        client = daemon.start()
        resp = client.ping()
        assert resp["ok"] and resp["pid"] > 0

    def test_submit_run_result(self, daemon):
        client = daemon.start()
        sub = client.submit(POINTER)
        assert sub["state"] in ("PENDING", "RUNNING")
        result = client.wait_result(sub["id"], timeout=90.0)
        assert result["state"] == "DONE"
        assert result["kind"] == "results"
        assert result["summary"]["workload"] == "pointer"
        assert result["summary"]["cycles"] > 0
        status = client.status(sub["id"])
        assert status["state"] == "DONE"
        assert status["ref"] == f"results/{sub['id']}"

    def test_unknown_job_is_404(self, daemon):
        client = daemon.start()
        with pytest.raises(ServeError) as exc:
            client.status("deadbeef")
        assert exc.value.code == 404

    def test_result_before_done_is_409(self, daemon):
        client = daemon.start()
        sub = client.submit(POINTER)
        if sub["state"] != "DONE":
            try:
                client.result(sub["id"])
            except ServeError as exc:
                assert exc.code == 409
        client.wait_result(sub["id"], timeout=90.0)

    def test_malformed_spec_is_400(self, daemon):
        client = daemon.start()
        with pytest.raises(ServeError) as exc:
            client.submit({"workload": "no-such-workload"})
        assert exc.value.code == 400

    def test_stats_exposes_fleet_and_cache(self, daemon):
        client = daemon.start()
        sub = client.submit(POINTER)
        client.wait_result(sub["id"], timeout=90.0)
        stats = client.stats()
        assert stats["jobs"].get("DONE") == 1
        assert stats["fleet"]["ok"] == 1
        assert stats["cache"]["total"]["entries"] >= 1

    def test_events_cursor(self, daemon):
        client = daemon.start()
        sub = client.submit(POINTER)
        client.wait_result(sub["id"], timeout=90.0)
        evs = client.events()
        states = [e["state"] for e in evs["events"]]
        assert states[0] == "PENDING" and states[-1] == "DONE"
        later = client.events(after=evs["seq"])
        assert later["events"] == []


class TestDedupAndReadThrough:
    def test_duplicate_submission_dedups(self, daemon):
        client = daemon.start()
        first = client.submit(POINTER)
        second = client.submit(POINTER)
        assert second["id"] == first["id"]
        assert second["deduped"] is True
        client.wait_result(first["id"], timeout=90.0)
        # One simulation ran for the two submissions.
        assert client.stats()["fleet"]["ok"] == 1

    def test_cached_result_completes_without_simulating(self, daemon,
                                                        tmp_path):
        client = daemon.start()
        sub = client.submit(POINTER)
        client.wait_result(sub["id"], timeout=90.0)
        ran_before = client.stats()["fleet"]["ok"]
        daemon.stop()

        # A fresh daemon (own journal) over the same cache answers the
        # same submission instantly from it.
        d2 = Daemon(tmp_path, name="serve2")
        client2 = d2.start()
        try:
            again = client2.submit(POINTER)
            assert again["id"] == sub["id"]
            assert again["state"] == "DONE"
            assert again["detail"] == "cache read-through"
            assert client2.stats()["fleet"]["ok"] == 0
            assert ran_before == 1
        finally:
            d2.stop()


class TestBackpressure:
    def test_admission_cap_rejects_429(self, tmp_path):
        d = Daemon(tmp_path, max_jobs=1, workers=1)
        client = d.start()
        try:
            first = client.submit(POINTER)
            with pytest.raises(ServeError) as exc:
                client.submit({"workload": "pointer",
                               "config": "SPEAR-128"})
            assert exc.value.code == 429
            # The duplicate of a live job still dedups (no new slot).
            again = client.submit(POINTER)
            assert again["deduped"] is True
            client.wait_result(first["id"], timeout=90.0)
            # A finished job frees its slot.
            nxt = client.submit({"workload": "pointer",
                                 "config": "SPEAR-128"})
            client.wait_result(nxt["id"], timeout=90.0)
        finally:
            d.stop()

    def test_draining_rejects_503(self, tmp_path):
        d = Daemon(tmp_path)
        client = d.start()
        try:
            sub = client.submit(POINTER)
            client.wait_result(sub["id"], timeout=90.0)
            drainer = ServeClient(d.server.address)
            t = threading.Thread(target=drainer.drain, daemon=True)
            t.start()
            deadline = time.monotonic() + 10
            while not d.server.draining and time.monotonic() < deadline:
                time.sleep(0.01)
            with pytest.raises((ServeError, OSError)) as exc:
                client.submit({"workload": "pointer",
                               "config": "SPEAR-128"})
            if isinstance(exc.value, ServeError):
                assert exc.value.code == 503
            t.join(timeout=30.0)
        finally:
            d.stop()


class TestGC:
    def test_gc_op_respects_protect_set(self, daemon):
        client = daemon.start()
        sub = client.submit(POINTER)
        client.wait_result(sub["id"], timeout=90.0)
        # Budget 0 would evict everything not protected; the DONE job's
        # result must survive.
        report = client.gc(budget=0)
        assert report["ok"]
        assert report["protected_kept"] >= 1
        assert daemon.runner.cache.get_by_key("results", sub["id"]) \
            is not None
        # The result is still servable after the sweep.
        result = client.result(sub["id"])
        assert result["summary"]["workload"] == "pointer"

    def test_gc_without_budget_is_400(self, daemon):
        client = daemon.start()
        with pytest.raises(ServeError) as exc:
            client.gc()
        assert exc.value.code == 400
