"""Derandomized chaos property: *any* crash+resume interleaving
converges to canonical result bytes.

Hypothesis draws an arbitrary crash plan — a sequence of (transition,
tear-the-append?) faults, each killing one daemon generation at a
different journaled edge — and the property drives real daemon
subprocesses through it: start, submit, crash, restart, resume.  After
the final clean generation the job's answer must be byte-identical to
the serial in-process reference, no matter the interleaving.

Derandomized (fixed example stream, like tests/properties) so CI is
exactly reproducible.
"""

import tempfile
import time
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import JobSpec, ServeClient, ServeError

from .conftest import (DaemonProc, job_id_for, render_summary,
                       serial_summary)

SETTINGS = dict(derandomize=True, deadline=None, max_examples=5,
                print_blob=False)

SPEC = JobSpec("pointer", "baseline")

#: One drawn fault: (journal transition to strike at, torn append?).
crash_points = st.tuples(st.sampled_from(["PENDING", "RUNNING", "DONE"]),
                         st.booleans())


def _fault_clause(point) -> str:
    transition, torn = point
    kind = "torn-journal" if torn else "daemon-crash"
    return f"{kind}:at={transition}"


def _expected_exit(point) -> int:
    return 23 if point[1] else 17


@settings(**SETTINGS)
@given(plan=st.lists(crash_points, min_size=0, max_size=2))
def test_any_crash_resume_interleaving_yields_canonical_bytes(plan):
    root = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    daemons = []
    try:
        job_id = job_id_for(SPEC, root / "cache")
        for point in plan:
            d = DaemonProc(root, faults=_fault_clause(point))
            daemons.append(d)
            d.client()
            try:
                d.client().submit(SPEC)
            except (OSError, ConnectionError):
                pass                      # died mid-request: the point
            # Race the injected crash against job completion: once the
            # job is terminal with the daemon still alive, this
            # generation's fault site can no longer be reached (e.g. a
            # dedup submit journals no PENDING transition).
            code, deadline = None, time.monotonic() + 90.0
            while time.monotonic() < deadline:
                code = d.proc.poll()
                if code is not None:
                    break
                try:
                    state = ServeClient(d.sock, timeout=5.0) \
                        .status(job_id)["state"]
                    if state in ("DONE", "FAILED"):
                        break
                except (OSError, ConnectionError, ServeError):
                    pass
                time.sleep(0.05)
            if code is None:
                d.stop()
            else:
                assert code == _expected_exit(point)
        final = DaemonProc(root)
        daemons.append(final)
        client = final.client()
        try:
            client.submit(SPEC)
        except (OSError, ConnectionError):
            pass
        job_id = job_id_for(SPEC, root / "cache")
        result = client.wait_result(job_id, timeout=120.0)
        assert render_summary(result["summary"]) == \
            render_summary(serial_summary(SPEC))
    finally:
        for d in daemons:
            d.stop()
