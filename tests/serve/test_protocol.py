"""Wire protocol: encoding, job specs, identity, addresses."""

import pytest

from repro.core.configs import PAPER_CONFIGS
from repro.harness import DiskCache, ExperimentRunner
from repro.harness.journal import cell_key
from repro.harness.runner import TraceSpec
from repro.serve import JobSpec, ProtocolError, parse_address, resolve_config
from repro.serve.protocol import decode, encode


class TestWire:
    def test_encode_decode_round_trip(self):
        obj = {"op": "submit", "spec": {"workload": "pointer"}}
        assert decode(encode(obj)) == obj

    def test_encode_preserves_key_order(self):
        # Result summaries ride the wire; their insertion order is part
        # of the CLI's byte-exact output contract.
        line = encode({"zebra": 1, "alpha": 2})
        assert line.index(b"zebra") < line.index(b"alpha")

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode(b"not json\n")
        with pytest.raises(ProtocolError):
            decode(b"[1, 2, 3]\n")


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec("pointer", "SPEAR-128", memory=250,
                       backend="fast-forward",
                       trace=TraceSpec(interval=500, capacity=None))
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.kind == "traces"

    def test_plain_spec_kind_is_results(self):
        assert JobSpec("pointer").kind == "results"

    def test_unknown_workload_rejected(self):
        with pytest.raises(ProtocolError, match="workload"):
            JobSpec("no-such-workload").validate()

    def test_unknown_config_rejected(self):
        with pytest.raises(ProtocolError, match="config"):
            JobSpec("pointer", config="SPEAR-9000").validate()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ProtocolError, match="backend"):
            JobSpec("pointer", backend="quantum").validate()

    def test_memory_below_l2_rejected(self):
        spec = JobSpec("pointer", memory=1)
        with pytest.raises(ProtocolError, match="L2"):
            spec.cell()

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown job spec field"):
            JobSpec.from_dict({"workload": "pointer", "wat": 1})

    def test_cell_applies_memory_override(self):
        cell = JobSpec("pointer", memory=250).cell()
        assert cell.latencies.memory == 250

    def test_config_aliases_resolve(self):
        assert resolve_config("spear").name == "SPEAR-128"
        assert resolve_config("base").name == "baseline"
        assert resolve_config("SPEAR-128") is PAPER_CONFIGS["SPEAR-128"]
        assert resolve_config("nonsense") is None


class TestJobIdentity:
    def test_job_id_is_cache_key_of_result(self, tmp_path):
        # The content-hash identity: a finished job's id addresses its
        # result in the cache directly — dedup, read-through and
        # restart-stable ids all fall out of this one property.
        runner = ExperimentRunner(instruction_scale=0.05,
                                  cache=DiskCache(tmp_path / "c"))
        spec = JobSpec("pointer", "baseline")
        cell = spec.cell()
        job_id = cell_key(runner, cell)
        runner.run(cell.workload, cell.config)
        assert runner.cache.get_by_key("results", job_id) is not None

    def test_same_spec_same_id_distinct_specs_differ(self, tmp_path):
        runner = ExperimentRunner(instruction_scale=0.05,
                                  cache=DiskCache(tmp_path / "c"))
        a = cell_key(runner, JobSpec("pointer", "baseline").cell())
        b = cell_key(runner, JobSpec("pointer", "baseline").cell())
        c = cell_key(runner, JobSpec("pointer", "SPEAR-128").cell())
        assert a == b and a != c


class TestAddresses:
    def test_unix_path_passthrough(self):
        assert parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")

    def test_tcp_parses(self):
        assert parse_address("tcp:127.0.0.1:8123") == \
            ("tcp", "127.0.0.1", 8123)

    def test_bad_tcp_rejected(self):
        with pytest.raises(ProtocolError):
            parse_address("tcp:nohost")
        with pytest.raises(ProtocolError):
            parse_address("tcp:host:notaport")
