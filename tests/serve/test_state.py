"""Job state machine + server journal: transitions, replay, torn tails."""

import json

import pytest

from repro.harness.journal import TornJournalWarning
from repro.observe import JOB_DONE, JOB_FAILED, JOB_PENDING, JOB_RUNNING
from repro.serve import (InvalidTransitionError, JobRecord, ServerJournal,
                         TRANSITIONS, check_transition)


class TestTransitions:
    def test_forward_path_legal(self):
        check_transition(JOB_PENDING, JOB_RUNNING)
        check_transition(JOB_RUNNING, JOB_DONE)
        check_transition(JOB_RUNNING, JOB_FAILED)

    def test_requeue_edges_legal(self):
        # Crash recovery (RUNNING back to PENDING), cache loss (DONE back
        # to PENDING) and client retry (FAILED back to PENDING).
        check_transition(JOB_RUNNING, JOB_PENDING)
        check_transition(JOB_DONE, JOB_PENDING)
        check_transition(JOB_FAILED, JOB_PENDING)

    def test_read_through_edge_legal(self):
        check_transition(JOB_PENDING, JOB_DONE)

    def test_illegal_edges_raise(self):
        with pytest.raises(InvalidTransitionError):
            check_transition(JOB_DONE, JOB_RUNNING)
        with pytest.raises(InvalidTransitionError):
            check_transition(JOB_FAILED, JOB_DONE)

    def test_every_state_has_an_exit(self):
        # No trap states: even terminal states can be requeued.
        for state, nexts in TRANSITIONS.items():
            assert nexts, f"{state} is a trap state"


def _submit(journal, job_id="j1", spec=None):
    job = JobRecord(job_id, spec or {"workload": "pointer"})
    journal.record_job(job, spec=True)
    return job


class TestJournalReplay:
    def test_replay_reconstructs_latest_state(self, tmp_path):
        j = ServerJournal(tmp_path / "serve.jsonl")
        job = _submit(j)
        job.state = JOB_RUNNING
        j.record_job(job)
        job.state = JOB_DONE
        job.ref = "results/j1"
        job.payload_bytes = 123
        j.record_job(job)
        jobs = j.replay()
        assert jobs["j1"].state == JOB_DONE
        assert jobs["j1"].ref == "results/j1"
        assert jobs["j1"].payload_bytes == 123
        assert jobs["j1"].spec == {"workload": "pointer"}

    def test_replay_preserves_submission_order(self, tmp_path):
        j = ServerJournal(tmp_path / "serve.jsonl")
        for name in ("a", "b", "c"):
            _submit(j, job_id=name)
        assert list(j.replay()) == ["a", "b", "c"]

    def test_replay_skips_server_records(self, tmp_path):
        j = ServerJournal(tmp_path / "serve.jsonl")
        j.record_server("start", pid=1)
        _submit(j)
        j.record_server("shutdown", pid=1)
        assert list(j.replay()) == ["j1"]

    def test_torn_final_line_is_skipped_with_warning(self, tmp_path):
        j = ServerJournal(tmp_path / "serve.jsonl")
        job = _submit(j)
        job.state = JOB_RUNNING
        j.record_job(job)
        with j.path.open("a") as fh:
            fh.write('{"event": "job", "id": "j1", "state": "DO')
        with pytest.warns(TornJournalWarning):
            jobs = j.replay()
        # The torn DONE never happened: the job replays as RUNNING and
        # the daemon's adoption pass requeues it.
        assert jobs["j1"].state == JOB_RUNNING

    def test_torn_first_record_drops_the_job(self, tmp_path):
        # A submit record torn mid-append leaves nothing to rebuild the
        # job from; replay must not invent a spec-less job.
        j = ServerJournal(tmp_path / "serve.jsonl")
        j.path.parent.mkdir(parents=True, exist_ok=True)
        j.path.write_text(json.dumps(
            {"event": "job", "id": "jx", "state": "RUNNING", "ts": 1.0}) +
            "\n")
        assert j.replay() == {}

    def test_error_and_attempts_survive_replay(self, tmp_path):
        j = ServerJournal(tmp_path / "serve.jsonl")
        job = _submit(j)
        job.state = JOB_FAILED
        job.error = "InjectedFault: boom"
        job.attempts = 3
        j.record_job(job)
        jobs = j.replay()
        assert jobs["j1"].state == JOB_FAILED
        assert jobs["j1"].error == "InjectedFault: boom"
        assert jobs["j1"].attempts == 3

    def test_public_view_hides_internals(self):
        job = JobRecord("j1", {"workload": "pointer"})
        out = job.public()
        assert out["id"] == "j1" and out["state"] == JOB_PENDING
        assert "error" not in out and "ref" not in out


class TestJournalFaults:
    def test_torn_journal_fault_truncates_and_exits(self, tmp_path,
                                                    monkeypatch):
        # The injected torn write happens in a forked child so the test
        # process survives the hard exit.
        import os
        monkeypatch.setenv("REPRO_FAULTS", "torn-journal")
        path = tmp_path / "serve.jsonl"
        pid = os.fork()
        if pid == 0:  # child
            j = ServerJournal(path)
            _submit(j)
            os._exit(99)  # unreachable: the fault exits with 23
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 23
        text = path.read_text()
        assert not text.endswith("\n")       # genuinely torn
        monkeypatch.delenv("REPRO_FAULTS")
        with pytest.warns(TornJournalWarning):
            assert ServerJournal(path).replay() == {}

    def test_daemon_crash_fault_exits_after_append(self, tmp_path,
                                                   monkeypatch):
        import os
        monkeypatch.setenv("REPRO_FAULTS", "daemon-crash:at=RUNNING")
        path = tmp_path / "serve.jsonl"
        pid = os.fork()
        if pid == 0:
            j = ServerJournal(path)
            job = _submit(j)          # PENDING append survives (at=RUNNING)
            job.state = JOB_RUNNING
            j.record_job(job)         # crashes here, after the append
            os._exit(99)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 17
        monkeypatch.delenv("REPRO_FAULTS")
        jobs = ServerJournal(path).replay()
        # The append beat the crash: RUNNING is journaled, so a restarted
        # daemon re-adopts (and requeues) the job.
        assert jobs["j1"].state == JOB_RUNNING
