"""Chaos matrix: real daemon subprocesses under injected server faults.

The service's whole claim is that crashes are invisible in the answers:
whatever combination of worker kills, daemon crashes, torn journal
appends and failed cache writes occurs, a client polling a job id
eventually reads a result *byte-identical* to the serial CLI's, computed
exactly once per distinct spec.  Each test here breaks the daemon a
different way, restarts it, and holds it to that claim.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.serve import JobSpec, ServeClient, ServeError

from .conftest import (SCALE, SRC, job_id_for, render_summary,
                       serial_summary)

POINTER = JobSpec("pointer", "baseline")
SPEAR = JobSpec("pointer", "SPEAR-128")


def _await_results(root, specs, *, timeout=120.0):
    """Poll every spec's (locally computed) job id to DONE; returns
    {id: result response}."""
    client = ServeClient(str(root.path / "daemon.sock"), timeout=10.0)
    out = {}
    for spec in specs:
        job_id = job_id_for(spec, root.path / "cache")
        out[job_id] = client.wait_result(job_id, timeout=timeout)
    return out


def _submit_all(root, specs):
    """Submit every spec, tolerating a daemon that dies mid-request;
    returns the ids that were positively acknowledged."""
    acked = []
    for spec in specs:
        try:
            client = ServeClient(str(root.path / "daemon.sock"),
                                 timeout=10.0)
            resp = client.submit(spec)
            acked.append(resp["id"])
        except (OSError, ConnectionError):
            pass
    return acked


class TestFaultMatrix:
    """One fault kind × phase per test case, each asserting the same
    invariant: the surviving answer equals the serial reference."""

    @pytest.mark.parametrize("faults,expect_exit", [
        ("worker-kill:times=1", None),              # daemon survives
        ("disk-full:kind=results:times=1", None),   # daemon survives
        ("daemon-crash:at=RUNNING", 17),
        ("daemon-crash:at=DONE", 17),
        ("torn-journal:at=RUNNING", 23),
        ("torn-journal:at=DONE", 23),
    ])
    def test_fault_then_restart_yields_serial_bytes(self, chaos_root,
                                                    faults, expect_exit):
        d = chaos_root.daemon(faults=faults)
        d.client()                      # up
        _submit_all(chaos_root, [POINTER])
        if expect_exit is not None:
            # The injected crash fires on a journaled transition; the
            # daemon must hard-exit with the fault's signature code.
            assert d.wait_exit(timeout=90.0) == expect_exit
            # Restart clean over the same journal + cache.
            d2 = chaos_root.daemon()
            d2.client()
            # Re-submission after the crash is idempotent (same id).
            _submit_all(chaos_root, [POINTER])
        results = _await_results(chaos_root, [POINTER])
        job_id = job_id_for(POINTER, chaos_root.path / "cache")
        assert render_summary(results[job_id]["summary"]) == \
            render_summary(serial_summary(POINTER))

    def test_worker_kill_shows_in_fleet_stats(self, chaos_root):
        d = chaos_root.daemon(faults="worker-kill:times=1")
        client = d.client()
        _submit_all(chaos_root, [POINTER])
        _await_results(chaos_root, [POINTER])
        stats = client.stats()
        assert stats["fleet"]["pool_rebuilds"] >= 1
        assert stats["fleet"]["ok"] == 1


class TestCrashLoop:
    def test_crash_after_every_done_still_converges(self, chaos_root):
        # The daemon hard-exits after *each* DONE it journals (one per
        # process lifetime).  Every generation therefore makes at least
        # one job of progress; the driver restarts it until the whole
        # suite is DONE, then byte-compares every answer — and the
        # exactly-once property: generations' fleet runs sum to the
        # number of distinct jobs.
        specs = [POINTER, SPEAR]
        ids = {job_id_for(s, chaos_root.path / "cache"): s for s in specs}
        total_ran = 0
        d = chaos_root.daemon(faults="daemon-crash:at=DONE")
        d.client()
        _submit_all(chaos_root, specs)
        for _generation in range(6):
            code = d.wait_exit(timeout=90.0)
            assert code == 17, f"daemon exited {code}, wanted the crash"
            d = chaos_root.daemon(faults="daemon-crash:at=DONE")
            client = d.client()
            _submit_all(chaos_root, specs)     # idempotent re-submits
            try:
                states = client.status()["ids"]
            except (OSError, ServeError):
                continue                        # crashed again already
            if all(states.get(i) == "DONE" for i in ids):
                break
        else:
            pytest.fail("crash loop did not converge in 6 generations")
        results = _await_results(chaos_root, specs)
        for job_id, spec in ids.items():
            assert render_summary(results[job_id]["summary"]) == \
                render_summary(serial_summary(spec))

    def test_sigkill_mid_run_then_restart_resumes(self, chaos_root):
        # The crudest fault: SIGKILL with jobs in flight.  No journal
        # courtesy, no graceful anything — adoption alone must recover.
        d = chaos_root.daemon()
        client = d.client()
        _submit_all(chaos_root, [POINTER, SPEAR])
        time.sleep(0.3)                # let jobs reach RUNNING
        d.kill()
        d2 = chaos_root.daemon()
        d2.client()
        results = _await_results(chaos_root, [POINTER, SPEAR])
        for spec in (POINTER, SPEAR):
            job_id = job_id_for(spec, chaos_root.path / "cache")
            assert render_summary(results[job_id]["summary"]) == \
                render_summary(serial_summary(spec))


class TestCliByteIdentity:
    def test_serve_result_matches_repro_run_bytes(self, chaos_root):
        # The full end-to-end contract, over the real CLI: `repro serve
        # result` must print byte-for-byte what `repro run` prints.
        d = chaos_root.daemon()
        d.client()
        env = os.environ.copy()
        env["PYTHONPATH"] = SRC
        env["REPRO_CACHE_DIR"] = str(chaos_root.path / "cache")
        env.pop("REPRO_FAULTS", None)
        served = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "submit", "pointer",
             "--config", "baseline", "--wait", "--timeout", "120",
             "--address", d.sock],
            env=env, capture_output=True, text=True, timeout=180)
        assert served.returncode == 0, served.stderr
        direct = subprocess.run(
            [sys.executable, "-m", "repro", "run", "pointer",
             "--config", "baseline", "--scale", str(SCALE)],
            env=env, capture_output=True, text=True, timeout=180)
        assert direct.returncode == 0, direct.stderr
        assert served.stdout == direct.stdout


class TestGCDeterminism:
    def test_gc_protects_live_jobs_and_is_deterministic(self, chaos_root):
        d = chaos_root.daemon()
        client = d.client()
        _submit_all(chaos_root, [POINTER, SPEAR])
        _await_results(chaos_root, [POINTER, SPEAR])
        # Budget 0: everything unprotected goes; both DONE results stay.
        first = client.gc(budget=0)
        assert first["protected_kept"] >= 2
        # A second identical pass makes identical decisions (nothing
        # left to remove, same keeps) — the determinism CI step.
        second = client.gc(budget=0)
        assert second["removed"] == 0
        assert second["kept_entries"] == first["kept_entries"]
        for spec in (POINTER, SPEAR):
            job_id = job_id_for(spec, chaos_root.path / "cache")
            resp = client.result(job_id)
            assert render_summary(resp["summary"]) == \
                render_summary(serial_summary(spec))

    def test_repeated_submissions_dedup_to_one_simulation(self, chaos_root):
        d = chaos_root.daemon()
        client = d.client()
        for _ in range(4):
            _submit_all(chaos_root, [POINTER])
        _await_results(chaos_root, [POINTER])
        assert client.stats()["fleet"]["ok"] == 1
