"""Shared chaos-harness plumbing: real daemon subprocesses, serial
reference rendering, content-stable job ids."""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.harness import DiskCache, ExperimentRunner
from repro.harness.journal import cell_key
from repro.serve import JobSpec, ServeClient

#: Absolute src/ root, so daemon subprocesses import the same tree no
#: matter where pytest was launched from.
SRC = str(Path(repro.__file__).resolve().parents[1])

SCALE = 0.05


class DaemonProc:
    """One ``repro serve start`` daemon subprocess over a given root dir
    (cache at ``root/cache``, state at ``root/state``)."""

    def __init__(self, root: Path, *, faults: str = "", workers: int = 2,
                 extra: tuple = ()):
        self.root = Path(root)
        self.state = self.root / "state"
        self.sock = str(self.root / "daemon.sock")
        self.cache_dir = self.root / "cache"
        env = os.environ.copy()
        env["REPRO_CACHE_DIR"] = str(self.cache_dir)
        env["PYTHONPATH"] = SRC
        env.pop("REPRO_FAULTS", None)
        if faults:
            env["REPRO_FAULTS"] = faults
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "start",
             "--scale", str(SCALE), "--jobs", str(workers),
             "--state-dir", str(self.state), "--address", self.sock,
             *extra],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)

    def client(self, timeout: float = 30.0) -> ServeClient:
        client = ServeClient(self.sock, timeout=timeout)
        client.wait_ready(timeout=30.0)
        return client

    def wait_exit(self, timeout: float = 60.0) -> int | None:
        """The daemon's exit code, or None if it outlived the timeout."""
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            return None
        return self.proc.returncode

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30.0)

    def stop(self) -> None:
        """Best-effort clean stop (used in teardown)."""
        if self.proc.poll() is None:
            try:
                ServeClient(self.sock, timeout=5.0).stop()
            except OSError:
                pass
            try:
                self.proc.wait(timeout=15.0)
            except subprocess.TimeoutExpired:
                self.kill()

    def output(self) -> str:
        return self.proc.stdout.read() if self.proc.stdout else ""


@pytest.fixture
def chaos_root(tmp_path):
    """A chaos run's root dir; tracks spawned daemons for teardown."""
    daemons: list[DaemonProc] = []

    class Root:
        path = tmp_path

        def daemon(self, **kwargs) -> DaemonProc:
            d = DaemonProc(tmp_path, **kwargs)
            daemons.append(d)
            return d

    yield Root()
    for d in daemons:
        d.stop()


def job_id_for(spec: JobSpec, cache_dir: Path) -> str:
    """The content-stable job id a daemon over ``cache_dir`` assigns to
    ``spec`` — computable client-side, which is the whole point: the id
    survives daemon crashes, restarts, even losing the submit response.
    """
    runner = ExperimentRunner(instruction_scale=SCALE,
                              cache=DiskCache(cache_dir, sweep=False))
    return cell_key(runner, spec.cell())


def serial_summary(spec: JobSpec) -> dict:
    """The ground truth: the same simulation run serially in-process
    (cache-independent — byte-equality with the daemon's answer proves
    the service layer added nothing and lost nothing)."""
    runner = ExperimentRunner(instruction_scale=SCALE)
    cell = spec.cell()
    return runner.run(cell.workload, cell.config, cell.latencies,
                      backend=cell.backend).summary()


def render_summary(summary: dict) -> str:
    """Exactly what ``repro run`` / ``repro serve result`` print."""
    return "".join(f"{key:18s} {value}\n" for key, value in summary.items())
