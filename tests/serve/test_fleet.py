"""Worker fleet: supervision policies applied to a continuous job stream.

Real simulations (scale 0.05, ~0.1 s each) through a real process pool,
with deterministic ``REPRO_FAULTS`` injection for the failure paths.
"""

import threading
import time

import pytest

from repro.harness import DiskCache, ExecutionPolicy, ExperimentRunner
from repro.harness.journal import cell_key
from repro.serve import JobSpec, WorkerFleet

FAST = ExecutionPolicy(backoff=0)


class Collector:
    """Thread-safe on_done sink."""

    def __init__(self):
        self.done: dict[str, tuple] = {}
        self._event = threading.Event()
        self._lock = threading.Lock()

    def __call__(self, job_id, result, error, attempts, elapsed):
        with self._lock:
            self.done[job_id] = (result, error, attempts)
        self._event.set()

    def wait(self, n, timeout=90.0):
        deadline = time.monotonic() + timeout
        while len(self.done) < n:
            remaining = deadline - time.monotonic()
            assert remaining > 0, \
                f"fleet produced {len(self.done)}/{n} within {timeout}s"
            self._event.wait(remaining)
            self._event.clear()
        return dict(self.done)


@pytest.fixture
def runner(tmp_path):
    return ExperimentRunner(instruction_scale=0.05,
                            cache=DiskCache(tmp_path / "cache"))


def _ids_and_cells(runner, specs):
    out = []
    for spec in specs:
        cell = spec.cell()
        out.append((cell_key(runner, cell), cell))
    return out


def _run_fleet(runner, jobs, *, workers=2, policy=FAST, timeout=90.0):
    sink = Collector()
    fleet = WorkerFleet(runner, workers=workers, policy=policy,
                        on_done=sink)
    fleet.start()
    try:
        for job_id, cell in jobs:
            fleet.submit(job_id, cell)
        done = sink.wait(len(jobs), timeout=timeout)
    finally:
        fleet.stop()
    return fleet, done


class TestHappyPath:
    def test_jobs_complete_and_results_hit_the_cache(self, runner):
        jobs = _ids_and_cells(runner, [JobSpec("pointer", "baseline"),
                                       JobSpec("pointer", "SPEAR-128")])
        fleet, done = _run_fleet(runner, jobs)
        assert fleet.stats.ok == 2 and fleet.stats.failed == 0
        for job_id, _cell in jobs:
            result, error, _ = done[job_id]
            assert error is None
            # The fleet's workers write through the shared cache under
            # the job id itself.
            assert runner.cache.get_by_key("results", job_id) is not None

    def test_traced_job_returns_payload_ref(self, runner):
        from repro.harness.parallel import PayloadRef
        from repro.harness.runner import TraceSpec
        spec = JobSpec("pointer", "baseline",
                       trace=TraceSpec(interval=500, capacity=None))
        jobs = _ids_and_cells(runner, [spec])
        _fleet, done = _run_fleet(runner, jobs)
        result, error, _ = done[jobs[0][0]]
        assert error is None
        assert isinstance(result, PayloadRef)
        assert runner.cache.get_by_key("traces", jobs[0][0]) is not None


class TestFaults:
    def test_worker_kill_rebuilds_and_completes(self, runner, monkeypatch):
        # Every job's first attempt is hard-killed; the supervisor sees
        # BrokenProcessPool, rebuilds, resubmits, and the second attempt
        # lands — without charging the retry budget.
        monkeypatch.setenv("REPRO_FAULTS", "worker-kill:times=1")
        jobs = _ids_and_cells(runner, [JobSpec("pointer", "baseline")])
        fleet, done = _run_fleet(runner, jobs,
                                 policy=ExecutionPolicy(retries=0,
                                                        backoff=0))
        result, error, _ = done[jobs[0][0]]
        assert error is None
        assert fleet.stats.pool_rebuilds >= 1
        assert fleet.stats.ok == 1

    def test_persistent_kill_degrades_to_serial(self, runner, monkeypatch):
        # Unlimited kills exhaust the rebuild budget; the fleet degrades
        # to in-process execution where the kill becomes an injected
        # exception, which the retry budget then also exhausts.
        monkeypatch.setenv("REPRO_FAULTS", "worker-kill:times=0")
        jobs = _ids_and_cells(runner, [JobSpec("pointer", "baseline")])
        fleet, done = _run_fleet(
            runner, jobs,
            policy=ExecutionPolicy(retries=1, backoff=0,
                                   max_pool_rebuilds=1))
        _result, error, _ = done[jobs[0][0]]
        assert error is not None and "worker-kill" in error
        assert fleet.stats.degraded
        assert fleet.stats.failed == 1

    def test_success_rearms_the_rebuild_budget(self, runner, monkeypatch):
        # After degradation, a success must flip the fleet back to
        # pooled mode — a long-lived server can't stay degraded forever.
        monkeypatch.setenv("REPRO_FAULTS", "worker-kill:times=0")
        bad = _ids_and_cells(runner, [JobSpec("pointer", "baseline")])
        sink = Collector()
        fleet = WorkerFleet(runner, workers=2,
                            policy=ExecutionPolicy(retries=0, backoff=0,
                                                   max_pool_rebuilds=1),
                            on_done=sink)
        fleet.start()
        try:
            fleet.submit(*bad[0])
            sink.wait(1)
            assert fleet.stats.degraded
            monkeypatch.setenv("REPRO_FAULTS", "")
            good = _ids_and_cells(runner, [JobSpec("pointer", "SPEAR-128")])
            fleet.submit(*good[0])
            done = sink.wait(2)
            assert done[good[0][0]][1] is None
            assert not fleet.stats.degraded
        finally:
            fleet.stop()

    def test_duplicate_submission_is_ignored(self, runner):
        jobs = _ids_and_cells(runner, [JobSpec("pointer", "baseline")])
        sink = Collector()
        fleet = WorkerFleet(runner, workers=2, policy=FAST, on_done=sink)
        fleet.start()
        try:
            fleet.submit(*jobs[0])
            fleet.submit(*jobs[0])        # same id: one tracked job
            sink.wait(1)
            time.sleep(0.3)
            assert len(sink.done) == 1
            assert fleet.stats.ok == 1
        finally:
            fleet.stop()
