"""Architectural semantics of every opcode plus fault handling."""

import math

import numpy as np
import pytest

from repro.functional import FunctionalSimulator, SimulationError
from repro.isa import ProgramBuilder, assemble


def run_asm(text, max_instructions=10_000):
    sim = FunctionalSimulator(assemble(text + "\nhalt"))
    sim.run(max_instructions)
    return sim


class TestIntegerALU:
    def test_add_sub(self):
        s = run_asm("li r1, 7\nli r2, 3\nadd r3, r1, r2\nsub r4, r1, r2")
        assert s.read_ireg(3) == 10
        assert s.read_ireg(4) == 4

    def test_addi_negative(self):
        s = run_asm("li r1, 5\naddi r2, r1, -9")
        assert s.read_ireg(2) == -4

    def test_logical(self):
        s = run_asm("li r1, 0b1100\nli r2, 0b1010\n"
                    "and r3, r1, r2\nor r4, r1, r2\nxor r5, r1, r2")
        assert s.read_ireg(3) == 0b1000
        assert s.read_ireg(4) == 0b1110
        assert s.read_ireg(5) == 0b0110

    def test_logical_immediates(self):
        s = run_asm("li r1, 0xF0\nandi r2, r1, 0x3C\nori r3, r1, 0x0F\n"
                    "xori r4, r1, 0xFF")
        assert s.read_ireg(2) == 0x30
        assert s.read_ireg(3) == 0xFF
        assert s.read_ireg(4) == 0x0F

    def test_shifts(self):
        s = run_asm("li r1, -8\nslli r2, r1, 1\nsrai r3, r1, 1\n"
                    "li r4, 8\nsrli r5, r4, 2")
        assert s.read_ireg(2) == -16
        assert s.read_ireg(3) == -4
        assert s.read_ireg(5) == 2

    def test_srli_is_logical(self):
        s = run_asm("li r1, -1\nsrli r2, r1, 60")
        assert s.read_ireg(2) == 15

    def test_register_shifts(self):
        s = run_asm("li r1, 3\nli r2, 2\nsll r3, r1, r2\nsra r4, r1, r2\n"
                    "srl r5, r1, r2")
        assert s.read_ireg(3) == 12
        assert s.read_ireg(4) == 0
        assert s.read_ireg(5) == 0

    def test_compare(self):
        s = run_asm("li r1, -5\nli r2, 3\nslt r3, r1, r2\nslt r4, r2, r1\n"
                    "sltu r5, r1, r2\nslti r6, r1, 0")
        assert s.read_ireg(3) == 1
        assert s.read_ireg(4) == 0
        assert s.read_ireg(5) == 0  # unsigned: -5 wraps huge
        assert s.read_ireg(6) == 1

    def test_mov(self):
        s = run_asm("li r1, 42\nmov r2, r1")
        assert s.read_ireg(2) == 42

    def test_zero_register_immutable(self):
        s = run_asm("li r0, 99\naddi r0, r0, 5\nmov r1, r0")
        assert s.read_ireg(0) == 0
        assert s.read_ireg(1) == 0

    def test_wraparound(self):
        s = run_asm(f"li r1, {2**62}\nadd r2, r1, r1\nadd r3, r2, r2")
        assert s.read_ireg(2) == -(2 ** 63)
        assert s.read_ireg(3) == 0


class TestMulDiv:
    def test_mul(self):
        s = run_asm("li r1, -6\nli r2, 7\nmul r3, r1, r2")
        assert s.read_ireg(3) == -42

    def test_div_truncates_toward_zero(self):
        s = run_asm("li r1, -7\nli r2, 2\ndiv r3, r1, r2\n"
                    "li r4, 7\ndiv r5, r4, r2")
        assert s.read_ireg(3) == -3
        assert s.read_ireg(5) == 3

    def test_rem_sign_follows_dividend(self):
        s = run_asm("li r1, -7\nli r2, 2\nrem r3, r1, r2\n"
                    "li r4, 7\nli r5, -2\nrem r6, r4, r5")
        assert s.read_ireg(3) == -1
        assert s.read_ireg(6) == 1

    def test_div_rem_consistency(self):
        s = run_asm("li r1, -13\nli r2, 4\ndiv r3, r1, r2\nrem r4, r1, r2\n"
                    "mul r5, r3, r2\nadd r6, r5, r4")
        assert s.read_ireg(6) == -13

    def test_div_by_zero_returns_all_ones(self):
        # RISC-V M: division by zero does not trap; quotient is -1.
        s = run_asm("li r1, 17\ndiv r2, r1, r0\nli r3, -17\ndiv r4, r3, r0")
        assert s.read_ireg(2) == -1
        assert s.read_ireg(4) == -1

    def test_rem_by_zero_returns_dividend(self):
        s = run_asm("li r1, 17\nrem r2, r1, r0\nli r3, -17\nrem r4, r3, r0")
        assert s.read_ireg(2) == 17
        assert s.read_ireg(4) == -17

    def test_div_overflow_wraps(self):
        # INT64_MIN / -1 overflows; RISC-V wraps to INT64_MIN, rem is 0.
        s = run_asm(f"li r1, {-2**63}\nli r2, -1\n"
                    "div r3, r1, r2\nrem r4, r1, r2")
        assert s.read_ireg(3) == -2 ** 63
        assert s.read_ireg(4) == 0

    def test_div_exact_beyond_float53(self):
        # Full-width operands must divide exactly — a float round-trip
        # (int(a / d)) loses precision above 2^53.
        a = (1 << 62) + 3
        s = run_asm(f"li r1, {a}\nli r2, 3\ndiv r3, r1, r2\nrem r4, r1, r2")
        assert s.read_ireg(3) == a // 3
        assert s.read_ireg(4) == a - (a // 3) * 3


class TestMemory:
    def test_word_store_load(self):
        s = run_asm("li r1, 0x100\nli r2, -77\nsw r2, 0(r1)\nlw r3, 0(r1)")
        assert s.read_ireg(3) == -77

    def test_offsets(self):
        s = run_asm("li r1, 0x100\nli r2, 5\nsw r2, 16(r1)\n"
                    "addi r4, r1, 8\nlw r3, 8(r4)")
        assert s.read_ireg(3) == 5

    def test_byte_store_load(self):
        s = run_asm("li r1, 0x103\nli r2, 77\nsb r2, 0(r1)\nlb r3, 0(r1)")
        assert s.read_ireg(3) == 77

    def test_byte_load_sign_extends(self):
        # lb sign-extends bit 7: storing 200 (0xC8) reads back as -56.
        s = run_asm("li r1, 0x103\nli r2, 200\nsb r2, 0(r1)\nlb r3, 0(r1)\n"
                    "li r4, -1\nsb r4, 8(r1)\nlb r5, 8(r1)")
        assert s.read_ireg(3) == 200 - 256
        assert s.read_ireg(5) == -1

    def test_data_segment_readable(self):
        s = run_asm(".data 0x200\n.word 11 22 33\nli r1, 0x200\nlw r2, 8(r1)")
        assert s.read_ireg(2) == 22

    def test_unaligned_load_faults(self):
        with pytest.raises(SimulationError, match="address"):
            run_asm("li r1, 0x101\nlw r2, 0(r1)")

    def test_out_of_bounds_faults(self):
        with pytest.raises(SimulationError, match="address"):
            run_asm(".mem 4096\nli r1, 8192\nlw r2, 0(r1)")

    def test_negative_address_faults(self):
        with pytest.raises(SimulationError):
            run_asm("li r1, -8\nlw r2, 0(r1)")


class TestFloat:
    def test_arith(self):
        s = run_asm(".data 0x100\n.float 3.0 2.0\nli r1, 0x100\n"
                    "flw f1, 0(r1)\nflw f2, 8(r1)\n"
                    "fadd f3, f1, f2\nfsub f4, f1, f2\n"
                    "fmul f5, f1, f2\nfdiv f6, f1, f2")
        assert s.read_freg(3) == 5.0
        assert s.read_freg(4) == 1.0
        assert s.read_freg(5) == 6.0
        assert s.read_freg(6) == 1.5

    def test_unary(self):
        s = run_asm(".data 0x100\n.float -4.0\nli r1, 0x100\nflw f1, 0(r1)\n"
                    "fneg f2, f1\nfabs f3, f1\nfsqrt f4, f3")
        assert s.read_freg(2) == 4.0
        assert s.read_freg(3) == 4.0
        assert s.read_freg(4) == 2.0

    def test_minmax_compare(self):
        s = run_asm(".data 0x100\n.float 1.0 2.0\nli r1, 0x100\n"
                    "flw f1, 0(r1)\nflw f2, 8(r1)\n"
                    "fmin f3, f1, f2\nfmax f4, f1, f2\n"
                    "flt r2, f1, f2\nfle r3, f2, f2\nfeq r4, f1, f2")
        assert s.read_freg(3) == 1.0
        assert s.read_freg(4) == 2.0
        assert s.read_ireg(2) == 1
        assert s.read_ireg(3) == 1
        assert s.read_ireg(4) == 0

    def test_conversion(self):
        s = run_asm("li r1, -3\ncvtif f1, r1\nfneg f2, f1\ncvtfi r2, f2\n"
                    "fmov f3, f1")
        assert s.read_freg(1) == -3.0
        assert s.read_ireg(2) == 3
        assert s.read_freg(3) == -3.0

    def test_fstore(self):
        s = run_asm("li r1, 5\ncvtif f1, r1\nli r2, 0x100\nfsw f1, 0(r2)\n"
                    "flw f2, 0(r2)")
        assert s.read_freg(2) == 5.0

    def test_fdiv_zero_is_ieee(self):
        # IEEE 754 default results: x/0 -> ±inf, 0/0 -> NaN (no trap).
        s = run_asm("li r1, 3\ncvtif f1, r1\ncvtif f2, r0\n"
                    "fdiv f3, f1, f2\n"           # 3/0 -> +inf
                    "li r2, -3\ncvtif f4, r2\n"
                    "fdiv f5, f4, f2\n"           # -3/0 -> -inf
                    "fdiv f6, f2, f2")            # 0/0 -> NaN
        assert s.read_freg(3) == float("inf")
        assert s.read_freg(5) == float("-inf")
        assert math.isnan(s.read_freg(6))

    def test_fsqrt_negative_is_nan(self):
        s = run_asm("li r1, -1\ncvtif f1, r1\nfsqrt f2, f1")
        assert math.isnan(s.read_freg(2))

    def test_cvtfi_saturates(self):
        # Out-of-range and NaN conversions saturate (RISC-V FCVT.L.D).
        s = run_asm("li r1, 1\ncvtif f1, r1\ncvtif f2, r0\n"
                    "fdiv f3, f1, f2\n"           # +inf
                    "cvtfi r2, f3\n"
                    "fneg f4, f3\ncvtfi r3, f4\n"  # -inf
                    "fdiv f5, f2, f2\ncvtfi r4, f5")  # NaN
        assert s.read_ireg(2) == 2 ** 63 - 1
        assert s.read_ireg(3) == -2 ** 63
        assert s.read_ireg(4) == 2 ** 63 - 1


class TestControl:
    def test_taken_and_not_taken(self):
        s = run_asm("li r1, 1\nbeq r1, r0, skip\nli r2, 10\nskip:\nli r3, 20")
        assert s.read_ireg(2) == 10
        assert s.read_ireg(3) == 20

    def test_branch_skips(self):
        s = run_asm("li r1, 0\nbeq r1, r0, skip\nli r2, 10\nskip:\nli r3, 20")
        assert s.read_ireg(2) == 0

    @pytest.mark.parametrize("op,val,expect_taken", [
        ("bltz", -1, True), ("bltz", 0, False),
        ("bgez", 0, True), ("bgez", -1, False),
        ("bgtz", 1, True), ("bgtz", 0, False),
        ("blez", 0, True), ("blez", 1, False),
    ])
    def test_zero_compares(self, op, val, expect_taken):
        s = run_asm(f"li r1, {val}\n{op} r1, skip\nli r2, 1\nskip:\nnop")
        assert (s.read_ireg(2) == 0) == expect_taken

    @pytest.mark.parametrize("op,a,b,expect_taken", [
        ("blt", 1, 2, True), ("blt", 2, 1, False),
        ("bge", 2, 2, True), ("bge", 1, 2, False),
        ("bne", 1, 2, True), ("bne", 2, 2, False),
    ])
    def test_two_reg_compares(self, op, a, b, expect_taken):
        s = run_asm(f"li r1, {a}\nli r2, {b}\n{op} r1, r2, skip\n"
                    "li r3, 1\nskip:\nnop")
        assert (s.read_ireg(3) == 0) == expect_taken

    def test_jal_jr_call_return(self):
        s = run_asm("""
            jal func
            li r2, 7
            j end
        func:
            li r1, 5
            jr r31
        end:
            nop
        """)
        assert s.read_ireg(1) == 5
        assert s.read_ireg(2) == 7

    def test_jalr(self):
        s = run_asm("li r1, 4\njalr r1\nli r2, 9\nnop\nli r3, 3")
        # jalr at pc=1 -> jumps to 4, link r31 = 2, r2 never set
        assert s.read_ireg(2) == 0
        assert s.read_ireg(3) == 3
        assert s.read_ireg(31) == 2

    def test_loop_executes_n_times(self):
        s = run_asm("li r1, 10\nli r2, 0\ntop:\naddi r2, r2, 1\n"
                    "addi r1, r1, -1\nbgtz r1, top")
        assert s.read_ireg(2) == 10

    def test_bad_pc_faults(self):
        with pytest.raises(SimulationError, match="pc"):
            run_asm("li r1, 100\njr r1")


class TestRunControl:
    def test_instruction_limit(self, gather_program):
        sim = FunctionalSimulator(gather_program)
        trace = sim.run(100, trace=True)
        assert len(trace) == 100
        assert not sim.halted

    def test_halt_flag(self):
        s = run_asm("nop")
        assert s.halted

    def test_reset_restores_state(self, gather_program):
        sim = FunctionalSimulator(gather_program)
        sim.run(500)
        regs_after = list(sim.iregs)
        sim.reset()
        assert sim.pc == 0 and not sim.halted
        sim.run(500)
        assert list(sim.iregs) == regs_after

    def test_pc_counts(self):
        sim = FunctionalSimulator(assemble(
            "li r1, 3\ntop:\naddi r1, r1, -1\nbgtz r1, top\nhalt"))
        sim.run(100, count_pcs=True)
        assert sim.pc_counts[1] == 3
        assert sim.pc_counts[0] == 1

    def test_accessors(self):
        s = run_asm("li r1, 5")
        s.write_word(0x100, 77)
        assert s.read_word(0x100) == 77
        s.write_fword(0x108, 1.5)
        assert s.read_fword(0x108) == 1.5
        s.write_ireg(2, 2 ** 64 + 3)   # wraps
        assert s.read_ireg(2) == 3
