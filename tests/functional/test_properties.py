"""Property-based tests: the functional simulator against Python semantics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.functional import FunctionalSimulator
from repro.isa import ProgramBuilder

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1
small_ints = st.integers(-(1 << 30), (1 << 30) - 1)


def _wrap(v):
    v &= (1 << 64) - 1
    return v - (1 << 64) if v & (1 << 63) else v


def run_binop(op_emit, a, b):
    bld = ProgramBuilder()
    bld.li("r1", a)
    bld.li("r2", b)
    op_emit(bld)
    bld.halt()
    sim = FunctionalSimulator(bld.build())
    sim.run(10)
    return sim.read_ireg(3)


class TestALUMatchesPython:
    @given(small_ints, small_ints)
    def test_add(self, a, b):
        assert run_binop(lambda bl: bl.add("r3", "r1", "r2"), a, b) == _wrap(a + b)

    @given(small_ints, small_ints)
    def test_sub(self, a, b):
        assert run_binop(lambda bl: bl.sub("r3", "r1", "r2"), a, b) == _wrap(a - b)

    @given(small_ints, small_ints)
    def test_mul(self, a, b):
        assert run_binop(lambda bl: bl.mul("r3", "r1", "r2"), a, b) == _wrap(a * b)

    @given(small_ints, small_ints)
    def test_xor_and_or(self, a, b):
        assert run_binop(lambda bl: bl.xor("r3", "r1", "r2"), a, b) == a ^ b
        assert run_binop(lambda bl: bl.and_("r3", "r1", "r2"), a, b) == a & b
        assert run_binop(lambda bl: bl.or_("r3", "r1", "r2"), a, b) == a | b

    @given(small_ints, small_ints.filter(lambda v: v != 0))
    def test_div_rem_invariant(self, a, b):
        q = run_binop(lambda bl: bl.div("r3", "r1", "r2"), a, b)
        r = run_binop(lambda bl: bl.rem("r3", "r1", "r2"), a, b)
        # exact truncated division, valid beyond float precision
        expect = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expect = -expect
        assert q == expect
        assert q * b + r == a

    @given(small_ints)
    def test_div_rem_by_zero_defined(self, a):
        # RISC-V M: x/0 == -1, x%0 == x — total functions, no traps.
        assert run_binop(lambda bl: bl.div("r3", "r1", "r2"), a, 0) == -1
        assert run_binop(lambda bl: bl.rem("r3", "r1", "r2"), a, 0) == a

    @given(small_ints, st.integers(0, 63))
    def test_shifts(self, a, sh):
        assert run_binop(lambda bl: bl.slli("r3", "r1", sh), a, 0) == _wrap(a << sh)
        assert run_binop(lambda bl: bl.srai("r3", "r1", sh), a, 0) == a >> sh

    @given(small_ints, small_ints)
    def test_slt(self, a, b):
        assert run_binop(lambda bl: bl.slt("r3", "r1", "r2"), a, b) == int(a < b)


class TestProgramLevelProperties:
    @given(st.lists(small_ints, min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_array_sum(self, values):
        bld = ProgramBuilder()
        base = bld.alloc(0, init=np.array(values, dtype=np.int64))
        bld.li("r1", base)
        bld.li("r2", 0)
        bld.li("r3", len(values))
        with bld.loop_down("r3"):
            bld.lw("r4", "r1", 0)
            bld.add("r2", "r2", "r4")
            bld.addi("r1", "r1", 8)
        bld.halt()
        sim = FunctionalSimulator(bld.build())
        sim.run(10_000)
        assert sim.read_ireg(2) == _wrap(sum(values))

    @given(st.lists(small_ints, min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_memory_copy(self, values):
        bld = ProgramBuilder()
        src = bld.alloc(0, init=np.array(values, dtype=np.int64))
        dst = bld.alloc(len(values))
        bld.li("r1", src)
        bld.li("r2", dst)
        bld.li("r3", len(values))
        with bld.loop_down("r3"):
            bld.lw("r4", "r1", 0)
            bld.sw("r4", "r2", 0)
            bld.addi("r1", "r1", 8)
            bld.addi("r2", "r2", 8)
        bld.halt()
        sim = FunctionalSimulator(bld.build())
        sim.run(10_000)
        for i, v in enumerate(values):
            assert sim.read_word(dst + 8 * i) == v

    @given(st.integers(1, 60))
    @settings(max_examples=25, deadline=None)
    def test_fibonacci(self, n):
        bld = ProgramBuilder()
        bld.li("r1", 0)
        bld.li("r2", 1)
        bld.li("r3", n)
        with bld.loop_down("r3"):
            bld.add("r4", "r1", "r2")
            bld.mov("r1", "r2")
            bld.mov("r2", "r4")
        bld.halt()
        sim = FunctionalSimulator(bld.build())
        sim.run(10_000)
        a, b = 0, 1
        for _ in range(n):
            a, b = b, _wrap(a + b)
        assert sim.read_ireg(1) == a

    @given(st.integers(1, 100))
    @settings(max_examples=25, deadline=None)
    def test_trace_length_equals_executed(self, n):
        bld = ProgramBuilder()
        bld.li("r3", n)
        with bld.loop_down("r3"):
            bld.nop()
        bld.halt()
        sim = FunctionalSimulator(bld.build())
        trace = sim.run(100_000, trace=True)
        # li + n * (nop, addi, bgtz) + halt is not traced after halt break
        assert len(trace) == 1 + 3 * n
