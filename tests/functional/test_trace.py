"""Committed-trace contents and summary statistics."""

from repro.functional import FunctionalSimulator, Trace, TraceEntry, run_program
from repro.isa import OpClass, assemble


def trace_of(text, limit=10_000):
    return run_program(assemble(text + "\nhalt"), max_instructions=limit)


class TestEntries:
    def test_load_entry(self):
        tr = trace_of("li r1, 0x100\nlw r2, 8(r1)")
        e = tr[1]
        assert e.is_load and not e.is_store
        assert e.addr == 0x108
        assert e.dst == 2
        assert e.srcs == (1,)
        assert e.op_class == int(OpClass.LOAD)

    def test_store_entry(self):
        tr = trace_of("li r1, 0x100\nli r2, 9\nsw r2, 0(r1)")
        e = tr[2]
        assert e.is_store and e.addr == 0x100
        assert e.dst == -1
        assert set(e.srcs) == {1, 2}

    def test_branch_entry_taken(self):
        tr = trace_of("li r1, 1\nbgtz r1, skip\nnop\nskip:\nnop")
        e = tr[1]
        assert e.is_branch and e.is_cond and e.taken

    def test_branch_entry_not_taken(self):
        tr = trace_of("li r1, 0\nbgtz r1, skip\nnop\nskip:\nnop")
        assert not tr[1].taken

    def test_uncond_jump_flagged(self):
        tr = trace_of("j next\nnext:\nnop")
        assert tr[0].is_branch and not tr[0].is_cond and tr[0].taken

    def test_alu_entry(self):
        tr = trace_of("li r1, 1\naddi r2, r1, 2")
        e = tr[1]
        assert e.addr == -1 and not (e.is_load or e.is_store or e.is_branch)

    def test_trace_is_committed_path_only(self):
        tr = trace_of("li r1, 0\nbeq r1, r0, skip\nli r2, 1\nskip:\nnop")
        pcs = [e.pc for e in tr]
        assert 2 not in pcs  # the skipped instruction never appears


class TestStatistics:
    def test_counts(self, gather_trace):
        assert gather_trace.count_loads() == 1600
        assert gather_trace.count_stores() == 0
        assert gather_trace.count_branches() == 800

    def test_ipb(self, gather_trace):
        ipb = gather_trace.instructions_per_branch()
        assert 9 < ipb < 12

    def test_load_fraction(self, gather_trace):
        assert 0.15 < gather_trace.load_fraction() < 0.25

    def test_empty_trace(self):
        tr = Trace([])
        assert tr.load_fraction() == 0.0
        assert tr.instructions_per_branch() == float("inf")

    def test_len_iter_getitem(self, gather_trace):
        assert len(gather_trace) == gather_trace.instret
        assert isinstance(gather_trace[0], TraceEntry)
        assert sum(1 for _ in gather_trace) == len(gather_trace)

    def test_halted_flag(self, gather_program):
        full = FunctionalSimulator(gather_program).run(1_000_000, trace=True)
        assert full.halted
