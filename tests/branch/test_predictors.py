"""Branch predictors: bimodal counters, gshare history, static schemes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.branch import (AlwaysTakenPredictor, BimodalPredictor,
                          GsharePredictor, StaticBTFNPredictor,
                          make_predictor)


class TestBimodal:
    def test_initial_weakly_taken(self):
        assert BimodalPredictor(16).predict(0)

    def test_saturates_not_taken(self):
        p = BimodalPredictor(16)
        for _ in range(2):
            p.update(0, False)
        assert not p.predict(0)
        for _ in range(10):
            p.update(0, False)
        p.update(0, True)   # one taken shouldn't flip from saturation
        assert not p.predict(0)

    def test_hysteresis(self):
        p = BimodalPredictor(16)
        p.update(0, True)            # strongly taken
        p.update(0, False)           # weakly taken
        assert p.predict(0)
        p.update(0, False)
        assert not p.predict(0)

    def test_aliasing(self):
        p = BimodalPredictor(16)
        for _ in range(4):
            p.update(0, False)
        assert not p.predict(16)     # same table slot

    def test_stats_track_accuracy(self):
        p = BimodalPredictor(16)
        for _ in range(100):
            p.predict_and_update(4, True)
        assert p.stats.hit_ratio == 1.0
        assert p.stats.lookups == 100

    def test_biased_branch_accuracy(self):
        """A p-biased branch should approach max(p, 1-p) accuracy."""
        import random
        rng = random.Random(7)
        p = BimodalPredictor(2048)
        for _ in range(4000):
            p.predict_and_update(12, rng.random() < 0.9)
        assert 0.83 < p.stats.hit_ratio < 0.95

    def test_alternating_worst_case(self):
        p = BimodalPredictor(16)
        for i in range(200):
            p.predict_and_update(0, i % 2 == 0)
        assert p.stats.hit_ratio < 0.6

    def test_reset(self):
        p = BimodalPredictor(16)
        p.predict_and_update(0, False)
        p.reset()
        assert p.predict(0)
        assert p.stats.lookups == 0

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(100)


class TestGshare:
    def test_learns_history_pattern(self):
        """Gshare learns a period-2 pattern bimodal cannot."""
        g = GsharePredictor(256, history_bits=4)
        b = BimodalPredictor(256)
        for i in range(400):
            taken = i % 2 == 0
            g.predict_and_update(8, taken)
            b.predict_and_update(8, taken)
        assert g.stats.hit_ratio > 0.9
        assert b.stats.hit_ratio < 0.6

    def test_history_shifts(self):
        g = GsharePredictor(256, history_bits=2)
        g.update(0, True)
        g.update(0, True)
        assert g._history == 0b11
        g.update(0, False)
        assert g._history == 0b10

    def test_reset(self):
        g = GsharePredictor(64)
        g.predict_and_update(0, False)
        g.reset()
        assert g._history == 0 and g.stats.lookups == 0


class TestStatic:
    def test_always_taken(self):
        p = AlwaysTakenPredictor()
        assert p.predict(123)
        p.update(123, False)
        assert p.predict(123)

    def test_btfn(self):
        p = StaticBTFNPredictor({10: 2, 20: 30})
        assert p.predict(10)        # backward
        assert not p.predict(20)    # forward
        assert not p.predict(99)    # unknown


class TestFactoryAndStats:
    @pytest.mark.parametrize("kind,cls", [
        ("bimodal", BimodalPredictor), ("gshare", GsharePredictor),
        ("taken", AlwaysTakenPredictor), ("btfn", StaticBTFNPredictor)])
    def test_factory(self, kind, cls):
        assert isinstance(make_predictor(kind), cls)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_predictor("tage")

    def test_empty_stats_hit_ratio(self):
        assert BimodalPredictor(16).stats.hit_ratio == 1.0

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_hit_ratio_bounds(self, outcomes):
        p = BimodalPredictor(64)
        for t in outcomes:
            p.predict_and_update(8, t)
        assert 0.0 <= p.stats.hit_ratio <= 1.0
        assert p.stats.lookups == len(outcomes)

    @given(st.lists(st.booleans(), min_size=20, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_constant_streams_learned(self, outcomes):
        """After training on a constant stream, prediction matches it."""
        p = BimodalPredictor(64)
        value = outcomes[0]
        for _ in range(4):
            p.update(0, value)
        assert p.predict(0) == value
