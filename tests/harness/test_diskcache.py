"""DiskCache: keys, hit/miss accounting, invalidation, corruption recovery."""

import pickle

import pytest

from repro.compiler import SlicerConfig
from repro.core import BASELINE, SPEAR_128
from repro.harness import DiskCache, ExperimentRunner, default_cache_dir
from repro.harness import diskcache as diskcache_mod


@pytest.fixture()
def cache(tmp_path):
    return DiskCache(tmp_path / "cache")


class TestBasics:
    def test_miss_then_hit(self, cache):
        payload = {"workload": "pointer", "scale": 1.0}
        assert cache.get("artifacts", payload) is None
        cache.put("artifacts", payload, {"value": 42})
        assert cache.get("artifacts", payload) == {"value": 42}
        counters = cache.counters["artifacts"]
        assert counters.misses == 1
        assert counters.hits == 1
        assert counters.stores == 1

    def test_kind_separates_namespaces(self, cache):
        payload = {"x": 1}
        cache.put("artifacts", payload, "a")
        assert cache.get("results", payload) is None

    def test_env_override_controls_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"

    def test_clear_removes_entries(self, cache):
        cache.put("artifacts", {"x": 1}, "a")
        cache.clear()
        assert cache.get("artifacts", {"x": 1}) is None


class TestInvalidation:
    def test_schema_bump_invalidates(self, cache, monkeypatch):
        payload = {"workload": "pointer"}
        cache.put("artifacts", payload, "old")
        monkeypatch.setattr(cache, "schema_version",
                            cache.schema_version + 1)
        assert cache.get("artifacts", payload) is None

    def test_slicer_config_change_invalidates(self, tmp_path):
        cache = DiskCache(tmp_path / "c")
        r1 = ExperimentRunner(slicer_config=SlicerConfig(),
                              instruction_scale=0.05, cache=cache)
        k1 = cache.key_for("artifacts", r1._artifact_payload("pointer"))
        r2 = ExperimentRunner(
            slicer_config=SlicerConfig(max_slice_size=3),
            instruction_scale=0.05, cache=cache)
        k2 = cache.key_for("artifacts", r2._artifact_payload("pointer"))
        assert k1 != k2

    def test_scale_change_invalidates(self, cache):
        r1 = ExperimentRunner(instruction_scale=0.05, cache=cache)
        r2 = ExperimentRunner(instruction_scale=0.10, cache=cache)
        assert (cache.key_for("artifacts", r1._artifact_payload("pointer"))
                != cache.key_for("artifacts", r2._artifact_payload("pointer")))

    def test_config_in_result_key(self, cache):
        r = ExperimentRunner(instruction_scale=0.05, cache=cache)
        assert (cache.key_for("results", r.result_payload("pointer", BASELINE))
                != cache.key_for("results",
                                 r.result_payload("pointer", SPEAR_128)))


class TestCorruption:
    def test_truncated_entry_is_miss_not_crash(self, cache):
        payload = {"x": 1}
        cache.put("artifacts", payload, list(range(1000)))
        path = cache.path_for("artifacts",
                              cache.key_for("artifacts", payload))
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get("artifacts", payload) is None
        assert cache.counters["artifacts"].errors == 1

    def test_garbage_entry_is_miss_not_crash(self, cache):
        payload = {"x": 2}
        cache.put("artifacts", payload, "ok")
        path = cache.path_for("artifacts",
                              cache.key_for("artifacts", payload))
        path.write_bytes(b"not a pickle at all")
        assert cache.get("artifacts", payload) is None

    def test_corrupt_entry_removed(self, cache):
        payload = {"x": 3}
        cache.put("artifacts", payload, "ok")
        path = cache.path_for("artifacts",
                              cache.key_for("artifacts", payload))
        path.write_bytes(b"garbage")
        cache.get("artifacts", payload)
        assert not path.exists()


class TestEvictionRaces:
    """An entry vanishing mid-read (a concurrent GC eviction) is a plain
    miss everywhere — never an error, never an exception."""

    class _VanishingPath:
        """Looks present at the existence check, gone at the open — the
        eviction race distilled to its two observable moments."""

        def is_file(self):
            return True

        def open(self, *a, **k):
            raise FileNotFoundError("evicted between is_file and open")

    def test_get_by_key_mid_eviction_is_plain_miss(self, cache):
        # Drive the shared read path of get/get_by_key directly with the
        # racing path: a miss is counted, no error, nothing raises.
        assert cache._load("results", self._VanishingPath()) is None
        c = cache.counters["results"]
        assert c.misses == 1 and c.errors == 0

    def test_get_by_key_absent_is_miss(self, cache):
        assert cache.get_by_key("results", "0" * 64) is None
        assert cache.counters["results"].misses == 1

    def test_entry_size_absent_reports_none(self, cache):
        assert cache.entry_size("results", "0" * 64) is None

    def test_entry_size_present_reports_bytes(self, cache):
        payload = {"x": 1}
        cache.put("results", payload, list(range(100)))
        key = cache.key_for("results", payload)
        size = cache.entry_size("results", key)
        assert size == cache.path_for("results", key).stat().st_size


class TestParseBytes:
    @pytest.mark.parametrize("text,expect", [
        ("500", 500), ("500B", 500), ("64K", 64 << 10), ("64k", 64 << 10),
        ("1.5M", int(1.5 * (1 << 20))), ("2G", 2 << 30), ("2gb", 2 << 30),
        ("  10 ", 10), ("0", 0),
    ])
    def test_accepts_human_budgets(self, text, expect):
        assert diskcache_mod.parse_bytes(text) == expect

    @pytest.mark.parametrize("text", ["", "huge", "-1", "12Q", "K"])
    def test_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            diskcache_mod.parse_bytes(text)


class TestGC:
    def _plant(self, cache, kind, payload, value, age_s):
        import os
        import time as time_mod
        cache.put(kind, payload, value)
        key = cache.key_for(kind, payload)
        path = cache.path_for(kind, key)
        old = time_mod.time() - age_s
        os.utime(path, (old, old))
        return key, path.stat().st_size

    def test_evicts_oldest_first_down_to_budget(self, cache):
        old_key, old_size = self._plant(cache, "results", {"x": 1},
                                        "old", 300)
        new_key, new_size = self._plant(cache, "results", {"x": 2},
                                        "new", 10)
        report = cache.gc(new_size)
        assert report["removed"] == 1
        assert cache.get_by_key("results", old_key) is None
        assert cache.get_by_key("results", new_key) == "new"
        assert cache.counters["results"].evictions == 1

    def test_under_budget_is_a_no_op(self, cache):
        self._plant(cache, "results", {"x": 1}, "keep", 300)
        report = cache.gc(1 << 30)
        assert report["removed"] == 0 and report["freed_bytes"] == 0
        assert "evictions" not in cache.stats().get("results", {}) \
            or cache.stats()["results"]["evictions"] == 0

    def test_protect_set_pins_entries_at_zero_budget(self, cache):
        key, _ = self._plant(cache, "results", {"x": 1}, "pinned", 300)
        self._plant(cache, "traces", {"x": 2}, "loose", 300)
        report = cache.gc(0, protect={f"results/{key}"})
        assert report["protected_kept"] == 1
        assert cache.get_by_key("results", key) == "pinned"
        assert report["removed"] == 1   # the unprotected trace went

    def test_identical_passes_make_identical_decisions(self, cache):
        for i in range(4):
            self._plant(cache, "results", {"x": i}, f"v{i}", 400 - i * 60)
        budget = cache.size_stats()["total"]["bytes"] // 2
        first = cache.gc(budget)
        second = cache.gc(budget)
        assert second["removed"] == 0
        assert second["kept_entries"] == first["kept_entries"]
        assert second["kept_bytes"] == first["kept_bytes"]

    def test_report_accounting_balances(self, cache):
        for i in range(3):
            self._plant(cache, "results", {"x": i}, list(range(50)),
                        100 * (i + 1))
        before = cache.size_stats()["total"]
        report = cache.gc(0)
        assert report["examined"] == before["entries"]
        assert report["removed"] == before["entries"]
        assert report["freed_bytes"] == before["bytes"]
        assert cache.size_stats()["total"]["entries"] == 0


class TestTmpSweep:
    def _plant_tmp(self, root, age_s=0):
        import os
        import time as time_mod
        d = root / "results" / "ab"
        d.mkdir(parents=True, exist_ok=True)
        tmp = d / "orphan123.tmp"
        tmp.write_bytes(b"half-written junk")
        if age_s:
            old = time_mod.time() - age_s
            os.utime(tmp, (old, old))
        return tmp

    def test_stale_tmp_swept_on_startup(self, tmp_path):
        root = tmp_path / "c"
        tmp = self._plant_tmp(root, age_s=7200)
        cache = DiskCache(root)
        assert not tmp.exists()
        assert cache.counters["results"].sweeps == 1
        assert cache.stats()["results"]["sweeps"] == 1

    def test_fresh_tmp_left_for_live_writer(self, tmp_path):
        root = tmp_path / "c"
        tmp = self._plant_tmp(root, age_s=0)
        cache = DiskCache(root)   # default hour-long grace period
        assert tmp.exists()
        assert "results" not in cache.counters

    def test_tmp_age_override(self, tmp_path):
        root = tmp_path / "c"
        tmp = self._plant_tmp(root, age_s=0)
        DiskCache(root, tmp_max_age=0)
        assert not tmp.exists()

    def test_sweep_opt_out_for_workers(self, tmp_path):
        # Pool workers (respawned every rebuild) skip the cache-tree
        # walk; the parent's constructor already swept.
        root = tmp_path / "c"
        tmp = self._plant_tmp(root, age_s=7200)
        cache = DiskCache(root, sweep=False)
        assert tmp.exists()
        assert "results" not in cache.counters

    def test_clear_also_removes_tmp(self, tmp_path):
        root = tmp_path / "c"
        cache = DiskCache(root)
        cache.put("artifacts", {"x": 1}, "a")
        tmp = self._plant_tmp(root)
        assert cache.clear() == 2
        assert not tmp.exists()


class TestRunnerIntegration:
    def test_warm_runner_skips_all_work(self, tmp_path):
        cache = DiskCache(tmp_path / "c")
        cold = ExperimentRunner(instruction_scale=0.05, cache=cache)
        cold.run("pointer", BASELINE)
        assert cold.builds == 1 and cold.simulations == 1

        warm = ExperimentRunner(instruction_scale=0.05, cache=cache)
        result = warm.run("pointer", BASELINE)
        assert warm.builds == 0 and warm.simulations == 0
        assert result.ipc == cold.run("pointer", BASELINE).ipc

    def test_memo_key_normalizes_noop_latency_override(self, tmp_path):
        runner = ExperimentRunner(instruction_scale=0.05)
        a = runner.run("pointer", BASELINE)
        # Passing the config's own latencies explicitly must not be treated
        # as a distinct cell (the figure-9 sweep hits this path).
        b = runner.run("pointer", BASELINE, BASELINE.latencies)
        assert a is b
        assert runner.simulations == 1

    def test_cached_payloads_unpickle(self, tmp_path):
        cache = DiskCache(tmp_path / "c")
        runner = ExperimentRunner(instruction_scale=0.05, cache=cache)
        runner.run("pointer", SPEAR_128)
        key = cache.key_for("results",
                            runner.result_payload("pointer", SPEAR_128))
        with open(cache.path_for("results", key), "rb") as fh:
            result = pickle.load(fh)
        assert result.workload == "pointer"


def test_schema_version_is_stable_constant():
    # Bumping SCHEMA_VERSION is the documented way to invalidate every
    # entry; it must exist and be an int.
    assert isinstance(diskcache_mod.SCHEMA_VERSION, int)
