"""DiskCache: keys, hit/miss accounting, invalidation, corruption recovery."""

import pickle

import pytest

from repro.compiler import SlicerConfig
from repro.core import BASELINE, SPEAR_128
from repro.harness import DiskCache, ExperimentRunner, default_cache_dir
from repro.harness import diskcache as diskcache_mod


@pytest.fixture()
def cache(tmp_path):
    return DiskCache(tmp_path / "cache")


class TestBasics:
    def test_miss_then_hit(self, cache):
        payload = {"workload": "pointer", "scale": 1.0}
        assert cache.get("artifacts", payload) is None
        cache.put("artifacts", payload, {"value": 42})
        assert cache.get("artifacts", payload) == {"value": 42}
        counters = cache.counters["artifacts"]
        assert counters.misses == 1
        assert counters.hits == 1
        assert counters.stores == 1

    def test_kind_separates_namespaces(self, cache):
        payload = {"x": 1}
        cache.put("artifacts", payload, "a")
        assert cache.get("results", payload) is None

    def test_env_override_controls_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"

    def test_clear_removes_entries(self, cache):
        cache.put("artifacts", {"x": 1}, "a")
        cache.clear()
        assert cache.get("artifacts", {"x": 1}) is None


class TestInvalidation:
    def test_schema_bump_invalidates(self, cache, monkeypatch):
        payload = {"workload": "pointer"}
        cache.put("artifacts", payload, "old")
        monkeypatch.setattr(cache, "schema_version",
                            cache.schema_version + 1)
        assert cache.get("artifacts", payload) is None

    def test_slicer_config_change_invalidates(self, tmp_path):
        cache = DiskCache(tmp_path / "c")
        r1 = ExperimentRunner(slicer_config=SlicerConfig(),
                              instruction_scale=0.05, cache=cache)
        k1 = cache.key_for("artifacts", r1._artifact_payload("pointer"))
        r2 = ExperimentRunner(
            slicer_config=SlicerConfig(max_slice_size=3),
            instruction_scale=0.05, cache=cache)
        k2 = cache.key_for("artifacts", r2._artifact_payload("pointer"))
        assert k1 != k2

    def test_scale_change_invalidates(self, cache):
        r1 = ExperimentRunner(instruction_scale=0.05, cache=cache)
        r2 = ExperimentRunner(instruction_scale=0.10, cache=cache)
        assert (cache.key_for("artifacts", r1._artifact_payload("pointer"))
                != cache.key_for("artifacts", r2._artifact_payload("pointer")))

    def test_config_in_result_key(self, cache):
        r = ExperimentRunner(instruction_scale=0.05, cache=cache)
        assert (cache.key_for("results", r.result_payload("pointer", BASELINE))
                != cache.key_for("results",
                                 r.result_payload("pointer", SPEAR_128)))


class TestCorruption:
    def test_truncated_entry_is_miss_not_crash(self, cache):
        payload = {"x": 1}
        cache.put("artifacts", payload, list(range(1000)))
        path = cache.path_for("artifacts",
                              cache.key_for("artifacts", payload))
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get("artifacts", payload) is None
        assert cache.counters["artifacts"].errors == 1

    def test_garbage_entry_is_miss_not_crash(self, cache):
        payload = {"x": 2}
        cache.put("artifacts", payload, "ok")
        path = cache.path_for("artifacts",
                              cache.key_for("artifacts", payload))
        path.write_bytes(b"not a pickle at all")
        assert cache.get("artifacts", payload) is None

    def test_corrupt_entry_removed(self, cache):
        payload = {"x": 3}
        cache.put("artifacts", payload, "ok")
        path = cache.path_for("artifacts",
                              cache.key_for("artifacts", payload))
        path.write_bytes(b"garbage")
        cache.get("artifacts", payload)
        assert not path.exists()


class TestTmpSweep:
    def _plant_tmp(self, root, age_s=0):
        import os
        import time as time_mod
        d = root / "results" / "ab"
        d.mkdir(parents=True, exist_ok=True)
        tmp = d / "orphan123.tmp"
        tmp.write_bytes(b"half-written junk")
        if age_s:
            old = time_mod.time() - age_s
            os.utime(tmp, (old, old))
        return tmp

    def test_stale_tmp_swept_on_startup(self, tmp_path):
        root = tmp_path / "c"
        tmp = self._plant_tmp(root, age_s=7200)
        cache = DiskCache(root)
        assert not tmp.exists()
        assert cache.counters["results"].sweeps == 1
        assert cache.stats()["results"]["sweeps"] == 1

    def test_fresh_tmp_left_for_live_writer(self, tmp_path):
        root = tmp_path / "c"
        tmp = self._plant_tmp(root, age_s=0)
        cache = DiskCache(root)   # default hour-long grace period
        assert tmp.exists()
        assert "results" not in cache.counters

    def test_tmp_age_override(self, tmp_path):
        root = tmp_path / "c"
        tmp = self._plant_tmp(root, age_s=0)
        DiskCache(root, tmp_max_age=0)
        assert not tmp.exists()

    def test_sweep_opt_out_for_workers(self, tmp_path):
        # Pool workers (respawned every rebuild) skip the cache-tree
        # walk; the parent's constructor already swept.
        root = tmp_path / "c"
        tmp = self._plant_tmp(root, age_s=7200)
        cache = DiskCache(root, sweep=False)
        assert tmp.exists()
        assert "results" not in cache.counters

    def test_clear_also_removes_tmp(self, tmp_path):
        root = tmp_path / "c"
        cache = DiskCache(root)
        cache.put("artifacts", {"x": 1}, "a")
        tmp = self._plant_tmp(root)
        assert cache.clear() == 2
        assert not tmp.exists()


class TestRunnerIntegration:
    def test_warm_runner_skips_all_work(self, tmp_path):
        cache = DiskCache(tmp_path / "c")
        cold = ExperimentRunner(instruction_scale=0.05, cache=cache)
        cold.run("pointer", BASELINE)
        assert cold.builds == 1 and cold.simulations == 1

        warm = ExperimentRunner(instruction_scale=0.05, cache=cache)
        result = warm.run("pointer", BASELINE)
        assert warm.builds == 0 and warm.simulations == 0
        assert result.ipc == cold.run("pointer", BASELINE).ipc

    def test_memo_key_normalizes_noop_latency_override(self, tmp_path):
        runner = ExperimentRunner(instruction_scale=0.05)
        a = runner.run("pointer", BASELINE)
        # Passing the config's own latencies explicitly must not be treated
        # as a distinct cell (the figure-9 sweep hits this path).
        b = runner.run("pointer", BASELINE, BASELINE.latencies)
        assert a is b
        assert runner.simulations == 1

    def test_cached_payloads_unpickle(self, tmp_path):
        cache = DiskCache(tmp_path / "c")
        runner = ExperimentRunner(instruction_scale=0.05, cache=cache)
        runner.run("pointer", SPEAR_128)
        key = cache.key_for("results",
                            runner.result_payload("pointer", SPEAR_128))
        with open(cache.path_for("results", key), "rb") as fh:
            result = pickle.load(fh)
        assert result.workload == "pointer"


def test_schema_version_is_stable_constant():
    # Bumping SCHEMA_VERSION is the documented way to invalidate every
    # entry; it must exist and be an int.
    assert isinstance(diskcache_mod.SCHEMA_VERSION, int)
