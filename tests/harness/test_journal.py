"""Run journal: append/read round trip, run keys, resume bookkeeping."""

import json

import pytest

from repro.core import BASELINE
from repro.harness import (Cell, DiskCache, ExperimentRunner, RunJournal,
                           cells_for, list_journals, run_cells)
from repro.harness.journal import TornJournalWarning, cell_key, run_key


def _runner(scale=0.05, cache=None):
    return ExperimentRunner(instruction_scale=scale, cache=cache)


class TestRecords:
    def test_append_and_read_round_trip(self, tmp_path):
        j = RunJournal(tmp_path / "r.jsonl", experiment="figure6")
        j.record_start(3)
        j.record_cell(index=0, key="k0", workload="pointer",
                      config="baseline", status="ok", attempts=1,
                      elapsed=0.5)
        j.record_cell(index=1, key="k1", workload="pointer",
                      config="SPEAR-128", status="failed", attempts=3,
                      kind="timeout", error="exceeded 5s")
        j.record_end({"ok": 1, "failed": 1})
        events = j.entries()
        assert [e["event"] for e in events] == ["start", "cell", "cell",
                                                "end"]
        assert events[0]["experiment"] == "figure6"
        assert events[2]["kind"] == "timeout"
        assert events[3]["report"]["failed"] == 1

    def test_torn_tail_is_skipped(self, tmp_path):
        j = RunJournal(tmp_path / "r.jsonl")
        j.record_start(1)
        with j.path.open("a") as fh:
            fh.write('{"event": "cell", "trunca')   # killed mid-append
        assert [e["event"] for e in j.entries()] == ["start"]

    def test_torn_tail_warns_and_names_the_line(self, tmp_path):
        j = RunJournal(tmp_path / "r.jsonl")
        j.record_start(1)
        with j.path.open("a") as fh:
            fh.write('{"event": "cell", "trunca')
        with pytest.warns(TornJournalWarning, match="line 2"):
            j.entries()
        # completed_keys reads through the same tolerant path.
        with pytest.warns(TornJournalWarning):
            assert j.completed_keys() == set()

    def test_non_record_line_is_skipped_with_warning(self, tmp_path):
        j = RunJournal(tmp_path / "r.jsonl")
        j.record_start(1)
        with j.path.open("a") as fh:
            fh.write('[1, 2, 3]\n')      # valid JSON, not a record
        with pytest.warns(TornJournalWarning, match="non-record"):
            assert [e["event"] for e in j.entries()] == ["start"]

    def test_intact_records_survive_a_torn_middle_read(self, tmp_path):
        # Only the torn line is lost; records on either side are kept.
        j = RunJournal(tmp_path / "r.jsonl")
        j.record_start(2)
        with j.path.open("a") as fh:
            fh.write('{"event": "cell", "ind\n')
        j.record_cell(index=1, key="k1", workload="w", config="c",
                      status="ok", attempts=1)
        with pytest.warns(TornJournalWarning):
            events = j.entries()
        assert [e["event"] for e in events] == ["start", "cell"]
        with pytest.warns(TornJournalWarning):
            assert j.completed_keys() == {"k1"}

    def test_completed_keys_only_counts_ok(self, tmp_path):
        j = RunJournal(tmp_path / "r.jsonl")
        j.record_cell(index=0, key="a", workload="w", config="c",
                      status="ok", attempts=1)
        j.record_cell(index=1, key="b", workload="w", config="c",
                      status="failed", attempts=3)
        j.record_cell(index=2, key="c", workload="w", config="c",
                      status="retried", attempts=1)
        assert j.completed_keys() == {"a"}

    def test_missing_file_reads_empty(self, tmp_path):
        j = RunJournal(tmp_path / "nope.jsonl")
        assert j.entries() == [] and j.completed_keys() == set()


class TestKeys:
    def test_run_key_stable_and_distinct(self, tmp_path):
        runner = _runner()
        a = cells_for("figure6", ["pointer"])
        assert run_key("figure6", a, runner) == run_key("figure6", a, runner)
        assert (run_key("figure6", a, runner)
                != run_key("figure6", cells_for("figure6", ["update"]),
                           runner))
        assert (run_key("figure6", a, runner)
                != run_key("figure8", a, runner))

    def test_cell_key_normalizes_latency_override(self):
        runner = _runner()
        plain = Cell("pointer", BASELINE)
        noop = Cell("pointer", BASELINE, BASELINE.latencies)
        assert cell_key(runner, plain) == cell_key(runner, noop)

    def test_cell_key_matches_cache_key_derivation(self, tmp_path):
        # The journal key must be exactly the key --resume's cache
        # lookup uses — including a cache built with a non-default
        # schema_version; the global-constant fallback applies only
        # when no cache is attached.
        cache = DiskCache(tmp_path / "c", schema_version=7)
        runner = _runner(cache=cache)
        cell = Cell("pointer", BASELINE)
        config = runner.normalize_config(cell.config, cell.latencies)
        payload = runner.result_payload(cell.workload, config)
        assert cell_key(runner, cell) == cache.key_for("results", payload)
        assert cell_key(_runner(), cell) != cell_key(runner, cell)

    def test_for_run_same_invocation_same_file(self, tmp_path):
        runner = _runner()
        cells = cells_for("figure6", ["pointer"])
        a = RunJournal.for_run("figure6", cells, runner, root=tmp_path)
        b = RunJournal.for_run("figure6", cells, runner, root=tmp_path)
        assert a.path == b.path


class TestResume:
    def test_resume_skips_journaled_cells(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        cells = cells_for("figure6", ["pointer"])
        first = _runner(cache=cache)
        journal = RunJournal.for_run("figure6", cells, first,
                                     root=tmp_path / "j")
        run_cells(first, cells, jobs=1, journal=journal)

        second = _runner(cache=cache)
        report = run_cells(second, cells, jobs=1, journal=journal,
                           resume=True)
        assert report.resumed == len(cells) and report.ok == 0
        assert second.simulations == 0
        assert second.has_result("pointer", BASELINE)

    def test_resume_without_cache_recomputes(self, tmp_path):
        cells = cells_for("figure6", ["pointer"])
        first = _runner()
        journal = RunJournal.for_run("figure6", cells, first,
                                     root=tmp_path / "j")
        run_cells(first, cells, jobs=1, journal=journal)

        # A journaled ok without a cache to restore from must recompute.
        second = _runner()
        report = run_cells(second, cells, jobs=1, journal=journal,
                           resume=True)
        assert report.resumed == 0 and report.ok == len(cells)


class TestListing:
    def test_list_journals(self, tmp_path):
        assert list_journals(tmp_path / "missing") == []
        (tmp_path / "a.jsonl").write_text(
            json.dumps({"event": "start"}) + "\n")
        (tmp_path / "b.jsonl").write_text(
            json.dumps({"event": "start"}) + "\n")
        found = {j.run_id for j in list_journals(tmp_path)}
        assert found == {"a", "b"}
