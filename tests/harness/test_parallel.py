"""Parallel experiment engine: cell planning, determinism across job counts."""

import pytest

from repro.core import BASELINE, SPEAR_128, SPEAR_256
from repro.harness import (Cell, ExperimentRunner, build_artifacts, cells_for,
                           default_jobs, figure6, run_cells)
from repro.memory import FIG9_LATENCIES


class TestCellPlanning:
    def test_figure6_matrix(self):
        cells = cells_for("figure6", ["pointer", "update"])
        assert len(cells) == 6
        assert cells[0] == Cell("pointer", BASELINE)
        names = {c.config.name for c in cells}
        assert names == {BASELINE.name, SPEAR_128.name, SPEAR_256.name}

    def test_figure9_crosses_latencies(self):
        cells = cells_for("figure9", ["pointer"])
        lats = {c.latencies for c in cells if c.latencies is not None}
        assert set(FIG9_LATENCIES) <= lats

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            cells_for("figure99", ["pointer"])

    def test_cells_are_picklable_descriptors(self):
        import pickle

        cells = cells_for("figure6", ["pointer"])
        assert pickle.loads(pickle.dumps(cells)) == cells

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestSerialEquivalence:
    def test_run_cells_seeds_runner_memo(self):
        runner = ExperimentRunner(instruction_scale=0.05)
        cells = cells_for("figure6", ["pointer"])
        report = run_cells(runner, cells, jobs=1)
        assert report.ok == len(cells) and report.completed
        assert runner.simulations == len(cells)
        # Seeded results short-circuit later runner.run calls.
        runner.run("pointer", BASELINE)
        assert runner.simulations == len(cells)

    def test_duplicate_cells_deduped(self):
        runner = ExperimentRunner(instruction_scale=0.05)
        cell = Cell("pointer", BASELINE)
        report = run_cells(runner, [cell, cell, cell], jobs=1)
        assert report.total == 1
        assert runner.simulations == 1

    def test_memoized_cells_not_recounted(self):
        runner = ExperimentRunner(instruction_scale=0.05)
        cells = cells_for("figure6", ["pointer"])
        run_cells(runner, cells, jobs=1)
        again = run_cells(runner, cells, jobs=1)
        assert again.total == 0 and again.ok == 0

    def test_build_artifacts_serial(self):
        runner = ExperimentRunner(instruction_scale=0.05)
        build_artifacts(runner, ["pointer"], jobs=1)
        assert runner.builds == 1
        build_artifacts(runner, ["pointer"], jobs=1)
        assert runner.builds == 1


class TestJobsDeterminism:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_figure6_identical_across_job_counts(self, jobs):
        serial = ExperimentRunner(instruction_scale=0.05)
        run_cells(serial, cells_for("figure6", ["pointer"]), jobs=1)
        serial_table = figure6(serial, ["pointer"]).table("Figure 6").render()

        fanned = ExperimentRunner(instruction_scale=0.05)
        run_cells(fanned, cells_for("figure6", ["pointer"]), jobs=jobs)
        fanned_table = figure6(fanned, ["pointer"]).table("Figure 6").render()

        assert fanned_table == serial_table
        # The parallel merge must seed the memo: rendering above must not
        # have re-simulated anything in the parent process.
        assert fanned.simulations == 0
