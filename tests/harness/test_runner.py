"""ExperimentRunner: artifact construction, caching, scaling."""

import pytest

from repro.core import BASELINE, SPEAR_128
from repro.harness import ExperimentRunner
from repro.memory import LatencyConfig


@pytest.fixture(scope="module")
def runner():
    # quarter-scale keeps this module quick while exercising everything
    return ExperimentRunner(instruction_scale=0.25)


class TestArtifacts:
    def test_artifacts_built_once(self, runner):
        a = runner.artifacts("pointer")
        b = runner.artifacts("pointer")
        assert a is b

    def test_artifact_contents(self, runner):
        art = runner.artifacts("pointer")
        assert len(art.eval_trace) > 1000
        assert len(art.warmup_trace) > 0
        assert art.compile_report.dloads == len(art.binary.table)
        assert art.binary.table.dload_pcs   # pointer has d-loads

    def test_scale_respected(self, runner):
        art = runner.artifacts("pointer")
        w = art.workload
        assert len(art.eval_trace) <= int(w.eval_instructions * 0.25)


class TestRuns:
    def test_result_cached(self, runner):
        a = runner.run("pointer", BASELINE)
        b = runner.run("pointer", BASELINE)
        assert a is b

    def test_latency_override_not_conflated(self, runner):
        slow = runner.run("pointer", BASELINE, LatencyConfig(1, 20, 200))
        normal = runner.run("pointer", BASELINE)
        assert slow is not normal
        assert slow.ipc < normal.ipc

    def test_speedup_helper(self, runner):
        s = runner.speedup("pointer", SPEAR_128, BASELINE)
        assert s == (runner.run("pointer", SPEAR_128).ipc
                     / runner.run("pointer", BASELINE).ipc)

    def test_clear(self, runner):
        runner.run("pointer", BASELINE)
        runner.clear()
        assert not runner._artifacts and not runner._results

    def test_clear_resets_counters(self):
        runner = ExperimentRunner(instruction_scale=0.05)
        runner.run("pointer", BASELINE)
        assert runner.builds == 1 and runner.simulations == 1
        runner.clear()
        assert runner.builds == 0 and runner.simulations == 0

    def test_has_result_membership(self):
        runner = ExperimentRunner(instruction_scale=0.05)
        assert not runner.has_result("pointer", BASELINE)
        runner.run("pointer", BASELINE)
        assert runner.has_result("pointer", BASELINE)
        # Normalization: the config's own latencies are not a new cell.
        assert runner.has_result("pointer", BASELINE, BASELINE.latencies)
        assert not runner.has_result("pointer", SPEAR_128)

    def test_has_and_seed_artifact(self):
        runner = ExperimentRunner(instruction_scale=0.05)
        assert not runner.has_artifact("pointer")
        art = runner.artifacts("pointer")
        assert runner.has_artifact("pointer")
        other = ExperimentRunner(instruction_scale=0.05)
        other.seed_artifact("pointer", art)
        assert other.has_artifact("pointer")
        assert other.artifacts("pointer") is art
        assert other.builds == 0

    def test_workload_name_on_result(self, runner):
        assert runner.run("pointer", BASELINE).workload == "pointer"


class TestQuickRun:
    def test_quick_run_shape(self):
        from repro import quick_run
        out = quick_run("pointer")
        assert out["workload"] == "pointer"
        assert out["ipc_baseline"] > 0
        assert out["speedup_128"] > 0.8
        assert "compile_report" in out
