"""Traced runs through the harness: caching, determinism (serial and with
parallel artifact building), and tracer-off result identity."""

import pytest

from repro.core import SPEAR_128
from repro.harness import DiskCache, ExperimentRunner, TracedRun
from repro.harness.parallel import build_artifacts
from repro.observe import serialize_events


SCALE = 0.1


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(instruction_scale=SCALE)


class TestRunTraced:
    def test_shape(self, runner):
        t = runner.run_traced("pointer", SPEAR_128)
        assert isinstance(t, TracedRun)
        assert t.emitted > 0
        assert len(t.events) == min(t.emitted, 65536)
        assert t.result.timeline is not None
        assert t.result.timeline["interval"] == 1000

    def test_memoized(self, runner):
        a = runner.run_traced("pointer", SPEAR_128)
        b = runner.run_traced("pointer", SPEAR_128)
        assert a is b

    def test_trace_params_are_distinct_cells(self, runner):
        a = runner.run_traced("pointer", SPEAR_128)
        b = runner.run_traced("pointer", SPEAR_128, interval=500)
        c = runner.run_traced("pointer", SPEAR_128, kinds=("mode",))
        assert a is not b and a is not c
        assert b.result.timeline["interval"] == 500
        assert all(e.kind == "mode" for e in c.events)

    def test_does_not_seed_plain_results(self, runner):
        runner.run_traced("pointer", SPEAR_128)
        # plain results must never inherit a traced run's timeline
        assert runner.run("pointer", SPEAR_128).timeline is None

    def test_clear_drops_traced_memo(self):
        r = ExperimentRunner(instruction_scale=0.05)
        r.run_traced("pointer", SPEAR_128)
        r.clear()
        assert not r._traced


class TestDiskCache:
    def test_warm_read_through(self, tmp_path):
        cache = DiskCache(tmp_path / "c")
        cold = ExperimentRunner(instruction_scale=0.05, cache=cache)
        first = cold.run_traced("pointer", SPEAR_128)
        assert cold.simulations == 1

        warm = ExperimentRunner(instruction_scale=0.05, cache=cache)
        second = warm.run_traced("pointer", SPEAR_128)
        assert warm.simulations == 0
        assert serialize_events(second.events) == \
            serialize_events(first.events)
        assert second.result.summary() == first.result.summary()


class TestDeterminism:
    """S4: the event stream is byte-identical however the inputs were
    produced — serially or with artifacts built by a worker pool."""

    def test_stream_identical_serial_vs_parallel_artifacts(self, runner):
        serial = runner.run_traced("pointer", SPEAR_128)

        pooled = ExperimentRunner(instruction_scale=SCALE)
        build_artifacts(pooled, ["pointer"], jobs=2)
        parallel = pooled.run_traced("pointer", SPEAR_128)

        assert serialize_events(parallel.events) == \
            serialize_events(serial.events)
        assert parallel.emitted == serial.emitted

    def test_tracer_off_summary_bit_identical(self, runner):
        traced = runner.run_traced("pointer", SPEAR_128)
        plain = runner.run("pointer", SPEAR_128)
        assert plain.summary() == traced.result.summary()
        assert plain.stats.snapshot() == traced.result.stats.snapshot()
        assert plain.memory == traced.result.memory
