"""``repro bench --quick`` smoke test (opt-in: slow for tier-1).

Run with ``RUN_BENCH_TESTS=1 pytest -m bench`` — the tier-1 suite skips it.
"""

import json

import pytest

from repro.harness import run_bench


@pytest.mark.bench
def test_quick_bench_smoke(tmp_path):
    out = tmp_path / "bench.json"
    report = run_bench(quick=True, jobs=1, cache_dir=tmp_path / "cache",
                       workloads=["pointer", "update"], output=out)

    f6 = report["figure6"]
    assert f6["identical_output"], "cold and warm tables must match"
    assert f6["warm_builds"] == 0 and f6["warm_simulations"] == 0, \
        "warm pass repaid compile/trace/simulate work"
    assert f6["cold_simulations"] == f6["cells"]
    assert report["single_cell"]["instr_per_s"] > 0

    sr = report["suite_report"]
    assert sr["identical_output"], "suite report cold/warm bytes differ"
    assert sr["cold_simulations"] == sr["cells"]
    assert sr["warm_simulations"] == 0, \
        "warm suite pass must render purely from the seeded memo"
    assert sr["cold_s"] > 0

    assert report["schema"] == 3
    assert report["cpus"] >= 1
    bk = report["backends"]
    for point in ("workloads", "paper_point"):
        for per_backend in bk[point].values():
            assert set(per_backend) == {"reference", "fast-forward"}
            for b in per_backend.values():
                assert b["identical_to_reference"], \
                    f"{b['backend']} diverged from reference"
                assert b["instr_per_s"] > 0
    assert bk["sweep"]["identical_results"], \
        "batched sweep diverged from independent reference runs"
    assert bk["sweep"]["points"] == len(bk["sweep"]["ipc"])

    on_disk = json.loads(out.read_text())
    assert on_disk["figure6"]["table_sha256"] == f6["table_sha256"]
    assert on_disk["suite_report"]["report_sha256"] == sr["report_sha256"]


@pytest.mark.bench
def test_quick_bench_reference_ratio(tmp_path):
    ref = {"single_cell": {"cycles_per_s": 1.0}}
    report = run_bench(quick=True, jobs=1, cache_dir=tmp_path / "cache",
                       workloads=["pointer"], reference=ref)
    assert report["vs_reference"]["simulate_speedup"] > 0
