"""Experiment regeneration machinery on a reduced workload subset."""

import pytest

from repro.core import SPEAR_128
from repro.harness import (ExperimentRunner, figure6, figure8, figure9,
                           table1, table2, table3)
from repro.memory import LatencyConfig

SUBSET = ["pointer", "mcf"]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(instruction_scale=0.25)


class TestTables:
    def test_table1(self, runner):
        t = table1(runner, SUBSET)
        assert len(t.rows) == 2
        out = t.render()
        assert "pointer" in out and "mcf" in out

    def test_table2(self):
        t = table2(SPEAR_128)
        out = t.render()
        assert "IFQ size" in out and "128" in out
        assert "memory latency" in out

    def test_table3(self, runner):
        t = table3(runner, SUBSET)
        out = t.render()
        assert "256/128" in out
        assert "mean 256/128" in t.footers[0]


class TestFigure6:
    def test_speedups_positive(self, runner):
        res = figure6(runner, SUBSET)
        assert len(res.rows) == 2
        for row in res.rows:
            assert row["SPEAR-128"] > 0.9
            assert row["SPEAR-256"] > 0.9

    def test_means(self, runner):
        res = figure6(runner, SUBSET)
        means = res.mean_speedups
        assert set(means) == {"SPEAR-128", "SPEAR-256"}
        geo = res.geomean_speedups
        assert all(geo[k] <= means[k] + 1e-9 for k in means)

    def test_best(self, runner):
        res = figure6(runner, SUBSET)
        name, speedup = res.best("SPEAR-256")
        assert name in SUBSET
        assert speedup == max(r["SPEAR-256"] for r in res.rows)

    def test_table_render(self, runner):
        res = figure6(runner, SUBSET)
        out = res.table("Figure 6").render()
        assert "paper" in out and "mean" in out


class TestFigure8:
    def test_reductions(self, runner):
        res = figure8(runner, SUBSET)
        for row in res.rows:
            assert row["base"] > 0
            assert -0.5 <= row["SPEAR-256"] <= 1.0
        assert "reduction" in res.table().render()

    def test_best(self, runner):
        res = figure8(runner, SUBSET)
        name, red = res.best("SPEAR-256")
        assert name in SUBSET


class TestFigure9:
    def test_sweep_shape(self, runner):
        lats = [LatencyConfig(1, 4, 40), LatencyConfig(1, 20, 200)]
        res = figure9(runner, ["pointer"], lats)
        series = res.ipc["pointer"]
        assert len(series["baseline"]) == 2
        # IPC decreases with latency for every config
        for cfg_name, vals in series.items():
            assert vals[0] > vals[-1]

    def test_degradation_ordering(self, runner):
        lats = [LatencyConfig(1, 4, 40), LatencyConfig(1, 20, 200)]
        res = figure9(runner, ["pointer", "mcf"], lats)
        assert res.degradation("baseline") >= res.degradation("SPEAR-256") - 5
        assert "longest latency" in res.table().footers[0]
