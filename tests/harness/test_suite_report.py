"""Suite report: golden speedup table, serial-vs-parallel byte identity,
the exact-invariant check, reference-only journaling of traced payloads,
and crash + ``--resume`` reproducing the same bytes without re-simulating
completed cells."""

import json

import pytest

from repro.core import BASELINE, SPEAR_128
from repro.harness import (DiskCache, ExecutionPolicy, ExperimentRunner,
                           RunJournal, build_suite_report, report_cells,
                           report_trace_spec, run_cells, suite_diff,
                           suite_table)
from repro.observe import (SuiteDiff, SuiteInvariantError,
                           render_suite_report, render_suite_svg)

SCALE = 0.05
WORKLOADS = ["pointer", "matrix", "mcf"]
FAST = ExecutionPolicy(backoff=0)

#: Pinned per-workload results at scale 0.05 / interval 1000.  The
#: simulator is deterministic, so any drift here is a real behaviour
#: change — update deliberately, with the figures re-checked.
GOLDEN = {
    "pointer": (10267, 8708, "1.179"),
    "matrix": (5288, 3335, "1.586"),
    "mcf": (5929, 4205, "1.410"),
}
GOLDEN_GEOMEAN = "1.381"


def _runner(cache=None):
    return ExperimentRunner(instruction_scale=SCALE, cache=cache)


def _cells():
    return report_cells(WORKLOADS, [BASELINE, SPEAR_128],
                        report_trace_spec())


def _render(runner):
    md, suite = build_suite_report(runner, WORKLOADS)
    return md, render_suite_svg(suite)


class TestGoldenSuite:
    def test_pinned_speedup_table(self):
        suite = suite_diff(_runner(), WORKLOADS)
        assert [r["workload"] for r in suite.rows] == WORKLOADS
        for row in suite.rows:
            base, model, speedup = GOLDEN[row["workload"]]
            assert row["base_cycles"] == base
            assert row["model_cycles"] == model
            assert f"{row['speedup']:.3f}" == speedup
            assert row["cycles_saved"] == base - model
        assert f"{suite.geomean_speedup:.3f}" == GOLDEN_GEOMEAN

    def test_markdown_and_table_carry_the_golden_numbers(self):
        runner = _runner()
        md, suite = build_suite_report(runner, WORKLOADS)
        text = suite_table(suite).render()
        for _, (_, _, speedup) in GOLDEN.items():
            assert f"{speedup}x" in md and f"{speedup}x" in text
        assert f"geomean speedup: {GOLDEN_GEOMEAN}x" in md
        assert f"geomean speedup {GOLDEN_GEOMEAN}x" in text


class TestParallelByteIdentity:
    def test_serial_vs_jobs4_identical_markdown_and_svg(self, tmp_path):
        # Separate caches: identical bytes must come from determinism,
        # not from the second run reading the first run's spills.
        serial = _runner(DiskCache(tmp_path / "cache-serial"))
        run_cells(serial, _cells(), jobs=1, policy=FAST)
        md_serial, svg_serial = _render(serial)

        parallel = _runner(DiskCache(tmp_path / "cache-jobs4"))
        report = run_cells(parallel, _cells(), jobs=4, policy=FAST)
        assert report.completed and report.ok == len(_cells())
        # Every traced payload was spilled by a worker and resolved by
        # reference — the parent process simulated nothing itself.
        assert parallel.simulations == 0
        md_parallel, svg_parallel = _render(parallel)
        assert parallel.simulations == 0

        assert md_serial == md_parallel
        assert svg_serial == svg_parallel

    def test_inline_fallback_without_cache_still_identical(self, tmp_path):
        cached = _runner(DiskCache(tmp_path / "cache"))
        run_cells(cached, _cells(), jobs=1, policy=FAST)
        md_ref, svg_ref = _render(cached)

        # No cache attached: workers ship TracedRun payloads inline.
        plain = _runner(cache=None)
        report = run_cells(plain, _cells(), jobs=2, policy=FAST)
        assert report.completed
        md, svg = _render(plain)
        assert (md, svg) == (md_ref, svg_ref)


class TestSuiteInvariant:
    def test_validate_accepts_real_aggregate(self):
        suite = suite_diff(_runner(), WORKLOADS)
        assert suite.validate() is suite

    def test_validate_rejects_speedup_drift(self):
        suite = suite_diff(_runner(), WORKLOADS)
        suite.rows[1]["speedup"] *= 1.001
        with pytest.raises(SuiteInvariantError, match="cycle ratio"):
            suite.validate()

    def test_validate_rejects_cycles_saved_drift(self):
        suite = suite_diff(_runner(), WORKLOADS)
        suite.rows[0]["cycles_saved"] += 1
        with pytest.raises(SuiteInvariantError, match="base-model gap"):
            suite.validate()

    def test_rendering_the_tampered_suite_is_caught_upstream(self):
        # build_suite_report validates before rendering, so a consumer
        # can trust any document it emits.
        md, suite = build_suite_report(_runner(), WORKLOADS)
        assert render_suite_report(suite) == md


class TestJournalReferences:
    def test_traced_cells_journal_refs_not_payloads(self, tmp_path):
        runner = _runner(DiskCache(tmp_path / "cache"))
        cells = _cells()
        journal = RunJournal.for_run("report-suite", cells, runner,
                                     root=tmp_path / "journal")
        run_cells(runner, cells, jobs=2, policy=FAST, journal=journal)
        oks = [r for r in journal.entries()
               if r.get("event") == "cell" and r.get("status") == "ok"]
        assert len(oks) == len(cells)
        for rec in oks:
            assert rec["ref"].startswith("traces/")
            key = rec["ref"].split("/", 1)[1]
            assert rec["payload_bytes"] > 0
            assert rec["payload_bytes"] == \
                runner.cache.entry_size("traces", key)
        # Reference-only journaling keeps every record tiny even though
        # the traced payloads are orders of magnitude larger.
        for line in journal.path.read_text().splitlines():
            assert len(line) < 1024
            assert "events" not in json.loads(line)

    def test_cell_key_distinguishes_traced_from_plain(self, tmp_path):
        from repro.harness.journal import cell_key
        from repro.harness.parallel import Cell
        runner = _runner(DiskCache(tmp_path / "cache"))
        plain = Cell("pointer", SPEAR_128)
        traced = Cell("pointer", SPEAR_128, trace=report_trace_spec())
        assert cell_key(runner, plain) != cell_key(runner, traced)
        # Without a cache the derivation must agree with the cached one
        # (default schema version), so resume works either way.
        assert cell_key(_runner(), traced) == cell_key(runner, traced)


class TestCrashResume:
    def test_resume_reproduces_bytes_without_resimulating(self, monkeypatch,
                                                          tmp_path):
        cells = _cells()
        reference = _runner(DiskCache(tmp_path / "ref-cache"))
        run_cells(reference, cells, jobs=2, policy=FAST)
        md_ref, svg_ref = _render(reference)

        # Cell 3 crashes its worker on every attempt; with a rebuild
        # budget of 1 the run degrades to serial and records the cell
        # as failed while the other five complete and are journaled.
        monkeypatch.setenv("REPRO_FAULTS", "crash:cell=3:times=0")
        crashed = _runner(DiskCache(tmp_path / "cache"))
        journal = RunJournal.for_run("report-suite", cells, crashed,
                                     root=tmp_path / "journal")
        report = run_cells(
            crashed, cells, jobs=2,
            policy=ExecutionPolicy(retries=1, backoff=0,
                                   max_pool_rebuilds=1),
            journal=journal)
        assert report.failed == 1
        assert report.ok == len(cells) - 1

        # Resume without faults: the five journaled cells restore from
        # the cache, only the crashed one simulates (serial jobs=1 keeps
        # the simulation in-process so the counter can prove it).
        monkeypatch.delenv("REPRO_FAULTS")
        resumed = _runner(DiskCache(tmp_path / "cache"))
        journal2 = RunJournal.for_run("report-suite", cells, resumed,
                                      root=tmp_path / "journal")
        assert journal2.path == journal.path
        report2 = run_cells(resumed, cells, jobs=1, policy=FAST,
                            journal=journal2, resume=True)
        assert report2.completed
        assert report2.resumed == len(cells) - 1
        assert report2.ok == 1
        assert resumed.simulations == 1

        md, svg = _render(resumed)
        assert resumed.simulations == 1   # rendering reused the memo
        assert md == md_ref
        assert svg == svg_ref

    def test_second_resume_is_a_no_op(self, tmp_path):
        cells = _cells()
        runner = _runner(DiskCache(tmp_path / "cache"))
        journal = RunJournal.for_run("report-suite", cells, runner,
                                     root=tmp_path / "journal")
        run_cells(runner, cells, jobs=1, policy=FAST, journal=journal)

        again = _runner(DiskCache(tmp_path / "cache"))
        report = run_cells(again, cells, jobs=1, policy=FAST,
                           journal=RunJournal.for_run(
                               "report-suite", cells, again,
                               root=tmp_path / "journal"),
                           resume=True)
        assert report.resumed == len(cells)
        assert report.ok == 0
        assert again.simulations == 0
