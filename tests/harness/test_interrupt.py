"""Graceful interruption of ``run_cells``: SIGINT/SIGTERM mid-run must
journal an ``interrupted`` end record (with completed cells intact) so
``--resume`` picks up exactly where the interrupt landed."""

import os
import signal

import pytest

from repro.core import BASELINE, SPEAR_128
from repro.harness import (Cell, DiskCache, ExperimentRunner, RunJournal,
                           run_cells)
from repro.harness import parallel as parallel_mod

CELLS = [Cell("pointer", BASELINE), Cell("pointer", SPEAR_128)]


def _runner(tmp_path):
    return ExperimentRunner(instruction_scale=0.05,
                            cache=DiskCache(tmp_path / "cache"))


def _interrupt_after(monkeypatch, n, exc=KeyboardInterrupt):
    """Patch the serial compute dispatch to blow up on the (n+1)-th cell."""
    real = parallel_mod.compute_cell
    calls = {"n": 0}

    def boom(runner, cell, **kwargs):
        if calls["n"] >= n:
            if exc is KeyboardInterrupt:
                raise KeyboardInterrupt
            os.kill(os.getpid(), signal.SIGTERM)   # routed by _graceful_term
        calls["n"] += 1
        return real(runner, cell, **kwargs)

    monkeypatch.setattr(parallel_mod, "compute_cell", boom)


class TestInterrupt:
    def test_ctrl_c_journals_interrupted_end(self, tmp_path, monkeypatch):
        runner = _runner(tmp_path)
        journal = RunJournal(tmp_path / "run.jsonl")
        _interrupt_after(monkeypatch, 1)
        with pytest.raises(KeyboardInterrupt):
            run_cells(runner, CELLS, jobs=1, journal=journal)
        events = journal.entries()
        assert events[-1]["event"] == "end"
        assert events[-1]["report"]["interrupted"] is True
        assert events[-1]["report"]["ok"] == 1
        # The completed cell was journaled and cached before the cut.
        assert len(journal.completed_keys()) == 1

    def test_sigterm_routes_through_graceful_unwind(self, tmp_path,
                                                    monkeypatch):
        runner = _runner(tmp_path)
        journal = RunJournal(tmp_path / "run.jsonl")
        before = signal.getsignal(signal.SIGTERM)
        _interrupt_after(monkeypatch, 1, exc=signal.SIGTERM)
        with pytest.raises(KeyboardInterrupt):
            run_cells(runner, CELLS, jobs=1, journal=journal)
        # The previous handler is restored on the way out.
        assert signal.getsignal(signal.SIGTERM) is before
        assert journal.entries()[-1]["report"]["interrupted"] is True

    def test_resume_after_interrupt_skips_completed(self, tmp_path,
                                                    monkeypatch):
        runner = _runner(tmp_path)
        journal = RunJournal(tmp_path / "run.jsonl")
        _interrupt_after(monkeypatch, 1)
        with pytest.raises(KeyboardInterrupt):
            run_cells(runner, CELLS, jobs=1, journal=journal)
        monkeypatch.undo()
        # Fresh runner, same journal + cache: only the second cell runs.
        resumed = ExperimentRunner(instruction_scale=0.05,
                                   cache=DiskCache(tmp_path / "cache"))
        report = run_cells(resumed, CELLS, jobs=1, journal=journal,
                           resume=True)
        assert report.interrupted is False
        assert report.resumed == 1 and report.ok == 1
        assert resumed.simulations == 1
        assert journal.entries()[-1]["report"]["interrupted"] is False

    def test_completed_results_merge_despite_interrupt(self, tmp_path,
                                                       monkeypatch):
        runner = _runner(tmp_path)
        _interrupt_after(monkeypatch, 1)
        with pytest.raises(KeyboardInterrupt):
            run_cells(runner, CELLS, jobs=1)
        # Cell 0 completed before the cut and still seeded the memo.
        sims = runner.simulations
        runner.run("pointer", BASELINE)
        assert runner.simulations == sims
