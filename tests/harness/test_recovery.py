"""Fault-tolerant executor: crash recovery, timeouts, retries, resume.

Every test drives a real figure-6 matrix (3 cells, scale 0.05) through
deterministic ``REPRO_FAULTS`` injection, covering the ISSUE's recovery
paths: worker crash preserves completed cells, per-cell timeout fires
and retries, ``--resume`` skips journaled cells, and the serial path
honors the same retry/keep-going semantics as the pool.
"""

import pytest

from repro.core import BASELINE, SPEAR_128
from repro.harness import (DiskCache, ExecutionPolicy, ExperimentRunner,
                           FatalCellError, RunJournal, cells_for, figure6,
                           run_cells)

FAST = ExecutionPolicy(backoff=0)


def _runner(cache=None):
    return ExperimentRunner(instruction_scale=0.05, cache=cache)


def _cells():
    return cells_for("figure6", ["pointer"])


class TestCrashRecovery:
    def test_worker_crash_recovers_without_losing_cells(self, monkeypatch):
        # Cell 1's worker hard-exits on its first attempt; the pool is
        # rebuilt and every cell — including already-completed ones —
        # still lands exactly once.
        monkeypatch.setenv("REPRO_FAULTS", "crash:cell=1")
        runner = _runner()
        report = run_cells(runner, _cells(), jobs=2, policy=FAST)
        assert report.completed and report.ok == 3
        assert report.pool_rebuilds >= 1
        assert runner.has_result("pointer", BASELINE)
        assert runner.has_result("pointer", SPEAR_128)

    def test_persistent_crash_degrades_to_serial_keep_going(self,
                                                            monkeypatch):
        # Unlimited crashing exhausts the rebuild budget; the serial
        # fallback converts the crash into a terminal CellFailure while
        # the other cells still complete.
        monkeypatch.setenv("REPRO_FAULTS", "crash:cell=1:times=0")
        runner = _runner()
        report = run_cells(
            runner, _cells(), jobs=2,
            policy=ExecutionPolicy(retries=1, backoff=0, max_pool_rebuilds=1))
        assert report.degraded
        assert report.ok == 2 and report.failed == 1
        assert report.failures[0].cell.config.name == "SPEAR-128"
        assert runner.has_result("pointer", BASELINE)
        assert not runner.has_result("pointer", SPEAR_128)


    def test_crash_does_not_consume_retry_budget(self, monkeypatch):
        # Cell 1's worker is hard-killed on attempt 1 and raises a plain
        # fault on attempt 2.  The crash must charge only the rebuild
        # budget, leaving the single retry free to absorb the real
        # exception — previously the BrokenProcessPool burned it.
        monkeypatch.setenv("REPRO_FAULTS", "crash:cell=1,fail:cell=1:times=2")
        runner = _runner()
        report = run_cells(runner, _cells(), jobs=2,
                           policy=ExecutionPolicy(retries=1, backoff=0))
        assert report.completed and report.ok == 3
        assert report.pool_rebuilds >= 1
        assert report.retried == 1

    def test_pool_retry_after_backoff_completes(self, monkeypatch):
        # Retries are resubmitted by the harvest loop once their backoff
        # deadline passes (no blocking sleep in the parent).
        monkeypatch.setenv("REPRO_FAULTS", "fail:cell=0")
        runner = _runner()
        report = run_cells(runner, _cells(), jobs=2,
                           policy=ExecutionPolicy(backoff=0.2))
        assert report.completed and report.ok == 3
        assert report.retried == 1


class TestTimeout:
    def test_timeout_fires_and_retry_succeeds(self, monkeypatch):
        # Cell 0 sleeps far past the timeout on attempt 1 only; the
        # attempt is abandoned (pool teardown) and the retry completes.
        monkeypatch.setenv("REPRO_FAULTS", "delay:cell=0:ms=30000")
        runner = _runner()
        report = run_cells(
            runner, _cells(), jobs=2,
            policy=ExecutionPolicy(cell_timeout=1.0, backoff=0))
        assert report.completed and report.ok == 3
        assert report.timeouts >= 1
        assert report.retried >= 1

    def test_queue_wait_does_not_count_against_timeout(self, monkeypatch):
        # Every attempt sleeps ~1.2s and two workers serve three cells,
        # so the queued third cell waits longer than cell_timeout before
        # it even starts executing.  The timeout clock must start at
        # execution, not submission: with retries=0 a false expiry would
        # be a terminal failure.
        monkeypatch.setenv("REPRO_FAULTS", "delay:ms=1200:times=0")
        runner = _runner()
        report = run_cells(
            runner, _cells(), jobs=2,
            policy=ExecutionPolicy(cell_timeout=2.5, retries=0, backoff=0))
        assert report.completed and report.ok == 3
        assert report.timeouts == 0 and report.retried == 0

    def test_timeout_exhaustion_is_terminal_failure(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "delay:cell=0:ms=30000:times=0")
        runner = _runner()
        report = run_cells(
            runner, _cells(), jobs=2,
            policy=ExecutionPolicy(cell_timeout=0.5, retries=0, backoff=0,
                                   max_pool_rebuilds=0))
        assert report.failed == 1
        assert report.failures[0].kind == "timeout"


class TestSerialSemantics:
    def test_serial_retry_then_ok(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "fail:cell=0")
        runner = _runner()
        report = run_cells(runner, _cells(), jobs=1, policy=FAST)
        assert report.completed and report.ok == 3
        assert report.retried == 1
        assert runner.simulations == 3

    def test_serial_keep_going_records_failure(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "fail:cell=1:times=0")
        runner = _runner()
        report = run_cells(runner, _cells(), jobs=1,
                           policy=ExecutionPolicy(retries=1, backoff=0))
        assert report.ok == 2 and report.failed == 1
        failure = report.failures[0]
        assert failure.kind == "exception" and failure.attempts == 2
        assert "injected fault" in failure.error

    def test_serial_fail_fast_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "fail:cell=0:times=0")
        with pytest.raises(FatalCellError) as excinfo:
            run_cells(_runner(), _cells(), jobs=1,
                      policy=ExecutionPolicy(retries=0, backoff=0,
                                             fail_fast=True))
        assert excinfo.value.report.failed == 1
        assert excinfo.value.failure.index == 0

    def test_serial_injected_crash_is_recoverable(self, monkeypatch):
        # In-process, a crash clause raises instead of killing the run.
        monkeypatch.setenv("REPRO_FAULTS", "crash:cell=2")
        report = run_cells(_runner(), _cells(), jobs=1, policy=FAST)
        assert report.completed and report.retried == 1


class TestJournalAndResume:
    def test_interrupted_run_resumes_byte_identical(self, tmp_path,
                                                    monkeypatch):
        # The acceptance scenario: a run with a persistently-crashing
        # cell completes keep-going with one failure; a later --resume
        # run restores the ok cells from journal+cache, recomputes only
        # the failed cell, and renders byte-identically to an
        # uninterrupted run.
        cache = DiskCache(tmp_path / "cache")
        cells = _cells()
        monkeypatch.setenv("REPRO_FAULTS", "crash:cell=1:times=0")
        broken = _runner(cache=cache)
        journal = RunJournal.for_run("figure6", cells, broken,
                                     root=tmp_path / "j")
        first = run_cells(
            broken, cells, jobs=2,
            policy=ExecutionPolicy(retries=1, backoff=0, max_pool_rebuilds=1),
            journal=journal)
        assert first.failed == 1 and first.ok == 2

        monkeypatch.delenv("REPRO_FAULTS")
        resumed = _runner(cache=cache)
        journal2 = RunJournal.for_run("figure6", cells, resumed,
                                      root=tmp_path / "j")
        assert journal2.path == journal.path
        second = run_cells(resumed, cells, jobs=2, journal=journal2,
                           resume=True)
        assert second.resumed == 2 and second.ok == 1
        assert second.completed

        reference = _runner()
        run_cells(reference, cells, jobs=1)
        assert (figure6(resumed, ["pointer"]).table("Figure 6").render()
                == figure6(reference, ["pointer"]).table("Figure 6").render())

    def test_journal_records_attempt_trail(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "fail:cell=0")
        runner = _runner()
        journal = RunJournal.for_run("figure6", _cells(), runner,
                                     root=tmp_path / "j")
        run_cells(runner, _cells(), jobs=1, policy=FAST, journal=journal)
        statuses = [e["status"] for e in journal.entries()
                    if e.get("event") == "cell"]
        assert statuses.count("retried") == 1
        assert statuses.count("ok") == 3
        report = [e for e in journal.entries() if e.get("event") == "end"]
        assert report and report[-1]["report"]["retried"] == 1
