"""Fault-injection framework: spec grammar, determinism, injection sites."""

import pytest

from repro.harness.faults import (FAULTS_ENV, FaultClause, FaultSpecError,
                                  InjectedCrash, InjectedFault, _decide,
                                  _matches, active_faults,
                                  corrupt_cache_bytes, inject_cell_faults,
                                  parse_faults, render_faults)


class TestSpecParsing:
    def test_single_clause(self):
        (clause,) = parse_faults("crash:cell=3")
        assert clause == FaultClause("crash", cell=3)

    def test_multi_clause_with_params(self):
        plan = parse_faults(
            "crash:cell=3,delay:p=0.2:ms=100:seed=7,corrupt-cache:kind=results")
        assert [c.kind for c in plan] == ["crash", "delay", "corrupt-cache"]
        assert plan[1].p == 0.2 and plan[1].ms == 100 and plan[1].seed == 7
        assert plan[2].cache_kind == "results"

    def test_empty_spec_is_no_faults(self):
        assert parse_faults("") == ()
        assert parse_faults(" , ") == ()

    def test_round_trip(self):
        specs = ["crash:cell=3",
                 "fail:p=0.25:times=0:seed=11",
                 "delay:p=0.5:ms=200,corrupt-cache:kind=results",
                 "crash:cell=1,fail:cell=2,delay:cell=3:ms=10"]
        for spec in specs:
            plan = parse_faults(spec)
            assert parse_faults(render_faults(plan)) == plan
            # canonical renders are a fixed point
            assert render_faults(parse_faults(render_faults(plan))) == \
                render_faults(plan)

    @pytest.mark.parametrize("bad", [
        "explode", "crash:cell", "crash:cell=", "crash:cell=x",
        "fail:p=1.5", "delay:ms=fast", "crash:bogus=1"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            parse_faults(bad)


class TestDecisions:
    def test_decide_deterministic(self):
        a = _decide(0, "fail", "cell:1:1", 0.5)
        assert all(_decide(0, "fail", "cell:1:1", 0.5) == a
                   for _ in range(20))

    def test_decide_respects_probability_roughly(self):
        hits = sum(_decide(3, "fail", f"cell:{i}:1", 0.3)
                   for i in range(1000))
        assert 200 < hits < 400

    def test_times_limits_attempts(self):
        clause = FaultClause("fail", cell=2)      # times defaults to 1
        assert _matches(clause, 2, 1)
        assert not _matches(clause, 2, 2)         # retry runs clean
        assert not _matches(clause, 1, 1)         # other cells untouched

    def test_times_zero_is_unlimited(self):
        clause = FaultClause("fail", cell=2, times=0)
        assert _matches(clause, 2, 99)


class TestActivePlan:
    def test_env_controls_plan(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert active_faults() == ()
        monkeypatch.setenv(FAULTS_ENV, "fail:cell=0")
        assert active_faults() == (FaultClause("fail", cell=0),)
        monkeypatch.setenv(FAULTS_ENV, "delay:cell=1")
        assert active_faults()[0].kind == "delay"

    def test_fail_clause_raises(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "fail:cell=4")
        with pytest.raises(InjectedFault):
            inject_cell_faults(4, 1)
        inject_cell_faults(3, 1)       # other cells unaffected
        inject_cell_faults(4, 2)       # retry attempt runs clean

    def test_crash_clause_raises_in_process(self, monkeypatch):
        # In the parent (serial path) a crash is an exception, not _exit.
        monkeypatch.setenv(FAULTS_ENV, "crash:cell=0:times=0")
        with pytest.raises(InjectedCrash):
            inject_cell_faults(0, 5)


class TestCorruptCache:
    def test_matching_kind_corrupts(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "corrupt-cache:kind=results")
        data = b"x" * 64
        assert corrupt_cache_bytes("results", "deadbeef", data) != data
        assert corrupt_cache_bytes("artifacts", "deadbeef", data) == data

    def test_no_faults_is_identity(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        data = b"y" * 64
        assert corrupt_cache_bytes("results", "k", data) is data

    def test_probability_zero_never_corrupts(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "corrupt-cache:p=0")
        data = b"z" * 64
        assert corrupt_cache_bytes("results", "k", data) == data

    def test_diskcache_recovers_from_injected_corruption(self, monkeypatch,
                                                         tmp_path):
        from repro.harness import DiskCache
        cache = DiskCache(tmp_path / "c")
        monkeypatch.setenv(FAULTS_ENV, "corrupt-cache:kind=results")
        cache.put("results", {"x": 1}, list(range(100)))
        monkeypatch.delenv(FAULTS_ENV)
        # Corrupt entry reads back as a miss, never an error.
        assert cache.get("results", {"x": 1}) is None
        assert cache.counters["results"].errors == 1
