"""Backend plumbing through the harness: runner memo keys, batched
sweeps, cell matrices and the parallel engine's sweep cells.

The kernels themselves are covered by ``tests/pipeline/test_kernels.py``
and the byte-identity properties; this module pins how a backend choice
travels through :class:`ExperimentRunner`, ``cells_for``/``run_cells``
and the experiments that consume them.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import BASELINE, SPEAR_128
from repro.harness import (Cell, ExperimentRunner, SWEEP_BACKEND, cells_for,
                           default_jobs, figure9, run_cells)
from repro.memory import LatencyConfig
from repro.memory.hierarchy import FIG9_LATENCIES

SCALE = 0.05

SWEEP_ROW = [LatencyConfig(1, 12, 120), LatencyConfig(1, 20, 200)]


def blob(result) -> bytes:
    return pickle.dumps(result, pickle.HIGHEST_PROTOCOL)


class TestRunnerBackend:
    def test_default_backend(self):
        assert ExperimentRunner(instruction_scale=SCALE).backend == "reference"

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown timing-kernel"):
            ExperimentRunner(instruction_scale=SCALE, backend="warp-drive")

    def test_sweep_pseudo_backend_accepted(self):
        runner = ExperimentRunner(instruction_scale=SCALE,
                                  backend=SWEEP_BACKEND)
        assert runner.backend == SWEEP_BACKEND

    def test_fast_forward_run_identical_to_reference(self):
        runner = ExperimentRunner(instruction_scale=SCALE)
        ref = runner.run("pointer", SPEAR_128)
        ff = runner.run("pointer", SPEAR_128, backend="fast-forward")
        assert ref is not ff                 # distinct memo keys
        assert blob(ref) == blob(ff)

    def test_backends_memoized_separately(self):
        runner = ExperimentRunner(instruction_scale=SCALE)
        runner.run("pointer", BASELINE)
        assert runner.has_result("pointer", BASELINE)
        assert not runner.has_result("pointer", BASELINE, None,
                                     "fast-forward")
        runner.run("pointer", BASELINE, backend="fast-forward")
        assert runner.has_result("pointer", BASELINE, None, "fast-forward")

    def test_result_payload_tags_non_default_backends_only(self):
        runner = ExperimentRunner(instruction_scale=SCALE)
        plain = runner.result_payload("pointer", BASELINE)
        assert "backend" not in plain        # pre-backend cache keys survive
        tagged = runner.result_payload("pointer", BASELINE, "fast-forward")
        assert tagged["backend"] == "fast-forward"


class TestRunSweep:
    def test_sweep_matches_independent_runs(self):
        runner = ExperimentRunner(instruction_scale=SCALE)
        swept = runner.run_sweep("pointer", SPEAR_128, SWEEP_ROW)
        independent = ExperimentRunner(instruction_scale=SCALE)
        for lat, got in zip(SWEEP_ROW, swept):
            assert blob(got) == blob(independent.run("pointer", SPEAR_128,
                                                     lat))

    def test_sweep_seeds_per_point_results(self):
        runner = ExperimentRunner(instruction_scale=SCALE)
        runner.run_sweep("pointer", SPEAR_128, SWEEP_ROW)
        first = runner.simulations
        assert first == len(SWEEP_ROW)
        for lat in SWEEP_ROW:
            # seeded under the sweep's inner kernel, not the default
            assert runner.has_result("pointer", SPEAR_128, lat,
                                     "fast-forward")
        # every point memoized: a second sweep re-simulates nothing
        again = runner.run_sweep("pointer", SPEAR_128, SWEEP_ROW)
        assert runner.simulations == first
        assert [r.ipc for r in again] == [
            runner.run("pointer", SPEAR_128, lat,
                       backend="fast-forward").ipc for lat in SWEEP_ROW]

    def test_sweep_with_reference_kernel(self):
        runner = ExperimentRunner(instruction_scale=SCALE)
        swept = runner.run_sweep("pointer", BASELINE, SWEEP_ROW,
                                 kernel="reference")
        for lat, got in zip(SWEEP_ROW, swept):
            assert blob(got) == blob(runner.run("pointer", BASELINE, lat))


class TestFigure9Batched:
    def test_batched_figure9_equals_reference(self):
        reference = figure9(ExperimentRunner(instruction_scale=SCALE),
                            ["pointer"], SWEEP_ROW)
        batched = figure9(ExperimentRunner(instruction_scale=SCALE,
                                           backend=SWEEP_BACKEND),
                          ["pointer"], SWEEP_ROW)
        assert reference.ipc == batched.ipc


class TestSweepCells:
    def test_figure9_batched_cell_matrix(self):
        cells = cells_for("figure9", ["pointer"], backend=SWEEP_BACKEND)
        plain = cells_for("figure9", ["pointer"])
        # one sweep cell per (workload, config) row instead of one cell
        # per latency point
        assert len(cells) * len(FIG9_LATENCIES) == len(plain)
        assert all(c.is_sweep and c.backend == SWEEP_BACKEND for c in cells)
        assert all(c.latencies == tuple(FIG9_LATENCIES) for c in cells)
        assert not any(c.is_sweep for c in plain)

    def test_run_cells_merges_sweep_cells(self):
        runner = ExperimentRunner(instruction_scale=SCALE)
        cells = [Cell("pointer", SPEAR_128, tuple(SWEEP_ROW),
                      backend=SWEEP_BACKEND)]
        report = run_cells(runner, cells, jobs=1)
        assert report.ok == 1
        for lat in SWEEP_ROW:
            assert runner.has_result("pointer", SPEAR_128, lat,
                                     "fast-forward")
        independent = ExperimentRunner(instruction_scale=SCALE)
        for lat in SWEEP_ROW:
            assert blob(runner.run("pointer", SPEAR_128, lat,
                                   backend="fast-forward")) == \
                blob(independent.run("pointer", SPEAR_128, lat))

    def test_sweep_cells_memoized(self):
        runner = ExperimentRunner(instruction_scale=SCALE)
        cells = [Cell("pointer", SPEAR_128, tuple(SWEEP_ROW),
                      backend=SWEEP_BACKEND)]
        run_cells(runner, cells, jobs=1)
        report = run_cells(runner, cells, jobs=1)
        assert report.total == 0             # fully memoized second pass


class TestDefaultJobs:
    def test_default_jobs_positive(self):
        jobs = default_jobs()
        assert isinstance(jobs, int) and jobs >= 1
