"""Text-table rendering and aggregate helpers."""

import pytest

from repro.harness import TextTable, arithmetic_mean, geometric_mean


class TestTextTable:
    def test_render_aligned(self):
        t = TextTable("Demo", ["name", "value"])
        t.add_row("alpha", 1.23456)
        t.add_row("b", 2)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "Demo"
        assert "alpha" in out and "1.235" in out
        header, sep = lines[2], lines[3]
        assert len(header) == len(sep.replace("-+-", " | ").rstrip()) or True
        assert all("|" in l for l in lines[2:3])

    def test_row_arity_checked(self):
        t = TextTable("x", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_footers(self):
        t = TextTable("x", ["a"])
        t.add_row(1)
        t.add_footer("mean: 1")
        assert t.render().splitlines()[-1] == "mean: 1"

    def test_csv(self):
        t = TextTable("x", ["a", "b"])
        t.add_row("w", 0.5)
        assert t.to_csv() == "a,b\nw,0.500"

    def test_float_formatting(self):
        t = TextTable("x", ["v"])
        t.add_row(1 / 3)
        assert "0.333" in t.render()


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0

    def test_geometric(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_geometric_below_arithmetic(self):
        vals = [1.0, 1.5, 3.0]
        assert geometric_mean(vals) < arithmetic_mean(vals)
