"""Shared fixtures: small programs and traces used across test modules."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import PThread, PThreadTable
from repro.functional import FunctionalSimulator, run_program
from repro.isa import ProgramBuilder


@pytest.fixture(autouse=True)
def _hermetic_cache_dir(tmp_path, monkeypatch):
    """Point the persistent artifact cache at a per-test tmp dir so tests
    never read (or pollute) the user's ~/.cache/repro."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


def pytest_collection_modifyitems(config, items):
    if os.environ.get("RUN_BENCH_TESTS") == "1":
        return
    skip_bench = pytest.mark.skip(reason="bench tests need RUN_BENCH_TESTS=1")
    for item in items:
        if "bench" in item.keywords:
            item.add_marker(skip_bench)


def build_gather_program(seed: int = 1, iters: int = 800, n: int = 1 << 14,
                         name: str = "gather") -> "Program":
    """The canonical index-gather kernel: one streaming index load feeding
    one delinquent gather load, plus filler ALU work."""
    rng = np.random.default_rng(seed)
    b = ProgramBuilder(name, mem_bytes=4 << 20)
    idx_base = b.alloc(n, init=rng.integers(0, n, size=n).astype(np.int64))
    data_base = b.alloc(n, init=np.arange(n, dtype=np.int64))
    b.li("r1", idx_base)
    b.li("r2", data_base)
    b.li("r3", iters)
    b.li("r9", 0)
    with b.loop_down("r3"):
        b.lw("r4", "r1", 0)          # index (stream)
        b.slli("r5", "r4", 3)
        b.add("r6", "r5", "r2")
        b.lw("r7", "r6", 0)          # gather (delinquent)
        b.add("r9", "r9", "r7")
        b.addi("r10", "r9", 1)
        b.xor("r11", "r10", "r9")
        b.addi("r1", "r1", 8)
    b.halt()
    return b.build()


def gather_load_pcs(program) -> tuple[int, int]:
    """(index load pc, gather load pc) of the canonical kernel."""
    loads = [pc for pc, ins in enumerate(program.instructions) if ins.is_load]
    assert len(loads) == 2
    return loads[0], loads[1]


@pytest.fixture(scope="session")
def gather_program():
    return build_gather_program()


@pytest.fixture(scope="session")
def gather_trace(gather_program):
    return run_program(gather_program, max_instructions=50_000)


@pytest.fixture(scope="session")
def gather_table(gather_program):
    """Hand-built p-thread table for the canonical kernel."""
    idx_pc, gather_pc = gather_load_pcs(gather_program)
    table = PThreadTable()
    table.add(PThread(
        dload_pc=gather_pc,
        slice_pcs=frozenset(range(idx_pc, gather_pc + 1)),
        live_ins=(1, 2)))
    return table


@pytest.fixture()
def fresh_sim(gather_program):
    return FunctionalSimulator(gather_program)
