"""``Workload.spec_of`` exports and their mutation round trips.

The exports are *behavioural ports*, not byte ports: each hand-built
workload re-expresses its access-pattern skeleton in the fuzz
generator's KernelSpec IR at generator scale.  The materialized program
is therefore **not** byte- or IPC-identical to the original workload —
what is pinned instead:

* the spec JSON round-trips byte-identically (the corpus/pinning
  contract);
* materialization is byte-deterministic (same spec + name -> same
  encoded program), which is what makes ``fuzzmut:`` names replayable;
* every port evaluates divergence-free and keeps its expected
  classification, and the five ports land in five distinct coverage
  bins (they were exported to seed distinct behavioural regimes);
* a mutated spec survives the same JSON round trip and rebuilds the
  same bytes from its ``fuzzmut:`` name alone.
"""

import numpy as np
import pytest

from repro.fuzz import (FuzzCheckSpec, SpecWorkload, evaluate_workload,
                        mutate_spec, spec_from_json, spec_to_json, vector_of)
from repro.fuzz.schedule import MUT_BASES, MutWorkload, encode_mut_name
from repro.workloads.base import get_workload

#: Every workload exporting a spec (= every mutation base, by design).
EXPORTERS = MUT_BASES

EXPECTED_CLASS = {
    "pointer": "speedup",      # serial chase: SPEAR's headline case
    "update": "speedup",       # chase + gather + stores
    "matrix": "speedup",       # dual-stream gather/accumulate
    "field": "speedup",        # cache-resident scan: small residual gain
    "ll4": "speedup",          # strided fp reduction
}


@pytest.mark.parametrize("name", EXPORTERS)
def test_spec_json_round_trips_byte_identically(name):
    spec = get_workload(name).spec_of()
    text = spec_to_json(spec)
    assert spec_from_json(text) == spec
    assert spec_to_json(spec_from_json(text)) == text


@pytest.mark.parametrize("name", EXPORTERS)
def test_materialization_is_byte_deterministic(name):
    spec = get_workload(name).spec_of()
    a = SpecWorkload(spec, f"port:{name}").program("eval")
    b = SpecWorkload(spec, f"port:{name}").program("eval")
    assert a.encode().tobytes() == b.encode().tobytes()
    # mem_words must be a power of two: address masking depends on it.
    assert spec.mem_words & (spec.mem_words - 1) == 0


@pytest.mark.parametrize("name", EXPORTERS)
def test_port_evaluates_clean_with_expected_class(name):
    spec = get_workload(name).spec_of()
    v = evaluate_workload(SpecWorkload(spec, f"port:{name}"),
                          FuzzCheckSpec())
    assert not v.diverged, v.divergences
    assert v.halted
    assert v.classification == EXPECTED_CLASS[name]


def test_ports_cover_distinct_bins():
    keys = set()
    for name in EXPORTERS:
        spec = get_workload(name).spec_of()
        v = evaluate_workload(SpecWorkload(spec, f"port:{name}"),
                              FuzzCheckSpec())
        keys.add(vector_of(v).key)
    assert len(keys) == len(EXPORTERS)


@pytest.mark.parametrize("name", EXPORTERS)
def test_mutation_round_trip(name):
    base = get_workload(name).spec_of()
    mutant = mutate_spec(base, np.random.default_rng(7))
    text = spec_to_json(mutant)
    assert spec_from_json(text) == mutant
    # A fuzzmut: name alone rebuilds the identical program bytes.
    mut_name = encode_mut_name(7, 0, name)
    a = MutWorkload(7, 0, name).program("eval").encode().tobytes()
    b = get_workload(mut_name).program("eval").encode().tobytes()
    assert a == b


def test_workloads_without_exports_return_none():
    assert get_workload("mcf").spec_of() is None
