"""The 15-benchmark suite: structure, determinism, character targets."""

import numpy as np
import pytest

from repro.functional import FunctionalSimulator, run_program
from repro.workloads import all_workload_names, get_workload, suite_of

EVAL15 = ["pointer", "update", "nbh", "tr", "matrix", "field", "dm", "ray",
          "fft", "gzip", "mcf", "vpr", "bzip2", "equake", "art"]


class TestRegistry:
    def test_all_fifteen_plus_ll4(self):
        names = all_workload_names()
        assert names[:15] == EVAL15
        assert "ll4" in names

    def test_suites(self):
        assert suite_of("pointer") == "stressmark"
        assert suite_of("dm") == "dis"
        assert suite_of("mcf") == "spec"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("doom")

    def test_paper_facts_present(self):
        for name in EVAL15:
            facts = get_workload(name).paper
            assert 0.5 < facts.branch_hit_ratio <= 1.0
            assert facts.ipb > 0
            assert facts.expectation in ("gain", "flat", "loss")


@pytest.mark.parametrize("name", EVAL15 + ["ll4"])
class TestEveryWorkload:
    def test_builds_and_validates(self, name):
        prog = get_workload(name).program("eval")
        prog.validate()
        assert len(prog) > 5

    def test_runs_to_budget(self, name):
        w = get_workload(name)
        prog = w.program("eval")
        need = w.warmup_instructions + w.eval_instructions
        trace = run_program(prog, max_instructions=need)
        assert len(trace) >= min(need, 50_000)

    def test_deterministic(self, name):
        w = get_workload(name)
        a = w.program("eval")
        b = w.program("eval")
        assert a.instructions == b.instructions
        assert np.array_equal(a.build_memory(), b.build_memory())

    def test_variants_share_text(self, name):
        w = get_workload(name)
        train = w.program("train")
        evalp = w.program("eval")
        assert len(train) == len(evalp)
        for x, y in zip(train.instructions, evalp.instructions):
            assert (x.op, x.rd, x.rs1, x.rs2) == (y.op, y.rd, y.rs1, y.rs2)

    def test_variants_differ_in_data(self, name):
        w = get_workload(name)
        mem_t = w.program("train").build_memory()
        mem_e = w.program("eval").build_memory()
        assert not np.array_equal(mem_t, mem_e)

    def test_unknown_variant_rejected(self, name):
        with pytest.raises(ValueError):
            get_workload(name).program("prod")


class TestMemoryCharacter:
    @pytest.mark.parametrize("name", ["pointer", "mcf", "art", "equake"])
    def test_memory_intensive(self, name):
        w = get_workload(name)
        trace = run_program(w.program("eval"),
                            max_instructions=w.eval_instructions)
        assert trace.load_fraction() > 0.15

    def test_update_has_stores(self):
        w = get_workload("update")
        trace = run_program(w.program("eval"), max_instructions=40_000)
        assert trace.count_stores() > 1000

    @pytest.mark.parametrize("name", ["ray", "fft", "equake", "art", "ll4"])
    def test_fp_workloads_use_fp(self, name):
        from repro.isa import OpClass
        w = get_workload(name)
        trace = run_program(w.program("eval"), max_instructions=30_000)
        fp = sum(1 for e in trace
                 if e.op_class in (int(OpClass.FP_ALU), int(OpClass.FP_MUL),
                                   int(OpClass.FP_DIV)))
        assert fp > 1000


class TestBranchCharacter:
    """Loose sanity on the engineered branch-hit targets (checked on the
    real bimodal predictor over the post-warmup window by the harness; here
    just the data-dependent bias)."""

    @pytest.mark.parametrize("name,lo,hi", [
        ("update", 0.80, 0.98),
        ("dm", 0.85, 0.99),
        ("gzip", 0.70, 0.95),
        ("vpr", 0.85, 0.99),
    ])
    def test_taken_bias(self, name, lo, hi):
        from repro.branch import BimodalPredictor
        w = get_workload(name)
        trace = run_program(w.program("eval"), max_instructions=50_000)
        p = BimodalPredictor(2048)
        for e in trace:
            if e.is_cond:
                p.predict_and_update(e.pc, e.taken)
        assert lo < p.stats.hit_ratio < hi


class TestHelpers:
    def test_random_cycle_is_single_cycle(self):
        from repro.workloads import Workload
        rng = np.random.default_rng(0)
        nxt = Workload.random_cycle(64, rng)
        seen = set()
        i = 0
        for _ in range(64):
            assert i not in seen
            seen.add(i)
            i = int(nxt[i])
        assert i == 0 and len(seen) == 64

    def test_biased_bits_fraction(self):
        from repro.workloads import Workload
        rng = np.random.default_rng(0)
        bits = Workload.biased_bits(20_000, 0.12, rng)
        assert 0.10 < bits.mean() < 0.14

    def test_register_rejects_duplicates(self):
        from repro.workloads import Workload, register

        class Dup(Workload):
            name = "pointer"
            suite = "x"

            def build(self, b, rng, variant):
                pass

        with pytest.raises(ValueError, match="duplicate"):
            register(Dup)

    def test_register_requires_name(self):
        from repro.workloads import Workload, register

        class NoName(Workload):
            def build(self, b, rng, variant):
                pass

        with pytest.raises(ValueError):
            register(NoName)
