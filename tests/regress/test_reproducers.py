"""Checked-in fuzz finds must stay fixed.

Every ``*.json`` file in this directory is a shrunk reproducer emitted
by ``repro fuzz shrink``: ``{"name", "divergences", "spec"}`` where
``name`` seeds the data rng (shrinking preserves it for exactly that
reason) and ``divergences`` records what the find looked like when it
was caught.  Each reproducer re-runs the full differential evaluation
and must come back clean; a reproducer for a bug that is known but not
yet fixed can opt into xfail via an ``"xfail": "<reason>"`` key.
"""

import json
from pathlib import Path

import pytest

from repro.fuzz import FuzzCheckSpec, SpecWorkload, evaluate_workload, \
    spec_from_json

HERE = Path(__file__).parent
REPRODUCERS = sorted(HERE.glob("*.json"))


def _load(path: Path):
    doc = json.loads(path.read_text())
    spec = spec_from_json(json.dumps(doc["spec"]))
    return doc, SpecWorkload(spec, doc["name"])


@pytest.mark.parametrize("path", REPRODUCERS,
                         ids=[p.stem for p in REPRODUCERS])
def test_reproducer_stays_fixed(path):
    doc, workload = _load(path)
    if doc.get("xfail"):
        pytest.xfail(doc["xfail"])
    verdict = evaluate_workload(workload, FuzzCheckSpec())
    assert not verdict.diverged, (
        f"{path.name} regressed: {verdict.divergences} "
        f"(originally: {doc['divergences']})")
    assert verdict.halted


def test_reproducers_exist():
    # The campaign found real bugs; their shrunk kernels live here.
    assert len(REPRODUCERS) >= 1
