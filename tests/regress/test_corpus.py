"""The distilled fuzz corpus must stay pinned.

``corpus/corpus.json`` is the output of ``repro fuzz distill`` over a
coverage-guided campaign: a minimal set of programs whose facets cover
every behaviour bin that campaign reached.  Each entry re-runs the full
differential evaluation here (strict mode) and must come back

* divergence-free, and
* in its pinned coverage bin with its pinned classification.

Behaviour drift means the timing model legitimately changed — this test
failing on purpose is the feature.  Regenerate alongside the change:

    repro fuzz distill --guided --seed 0 --count 150 --batch 25 \
        --sweep-every 0 --corpus-out tests/regress/corpus/corpus.json
"""

from pathlib import Path

import pytest

from repro.fuzz import check_corpus, corpus_from_json

HERE = Path(__file__).parent
CORPUS = HERE / "corpus" / "corpus.json"

ENTRIES, DOC = corpus_from_json(CORPUS.read_text())


def test_corpus_is_not_empty():
    assert len(ENTRIES) >= 5
    assert DOC["facets"], "a corpus with no facets covers nothing"


def test_every_facet_is_covered_by_some_entry():
    covered = {f for e in ENTRIES for f in e.facets}
    assert covered == set(DOC["facets"])


@pytest.mark.parametrize("entry", ENTRIES, ids=[e.name for e in ENTRIES])
def test_entry_stays_pinned(entry):
    check = check_corpus([entry])[0]
    assert check.ok, check.describe()
