"""P-thread descriptors and tables."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PThread, PThreadTable


def pt(dload=5, extra=(), live=(1,)):
    return PThread(dload_pc=dload,
                   slice_pcs=frozenset({dload, *extra}),
                   live_ins=tuple(sorted(set(live))))


class TestPThread:
    def test_dload_must_be_in_slice(self):
        with pytest.raises(ValueError, match="slice"):
            PThread(dload_pc=5, slice_pcs=frozenset({1, 2}), live_ins=())

    def test_live_ins_must_be_sorted_unique(self):
        with pytest.raises(ValueError):
            PThread(dload_pc=1, slice_pcs=frozenset({1}), live_ins=(3, 2))
        with pytest.raises(ValueError):
            PThread(dload_pc=1, slice_pcs=frozenset({1}), live_ins=(2, 2))

    def test_size(self):
        assert pt(extra=(1, 2)).size == 3

    def test_dict_roundtrip(self):
        p = PThread(dload_pc=7, slice_pcs=frozenset({4, 5, 7}),
                    live_ins=(1, 2), region_head=3, d_cycle=25.5,
                    miss_count=900)
        assert PThread.from_dict(p.to_dict()) == p

    def test_frozen(self):
        with pytest.raises(AttributeError):
            pt().dload_pc = 9


class TestPThreadTable:
    def test_add_and_lookup(self):
        t = PThreadTable()
        p = pt()
        t.add(p)
        assert 5 in t
        assert t[5] is p
        assert len(t) == 1

    def test_duplicate_rejected(self):
        t = PThreadTable()
        t.add(pt())
        with pytest.raises(ValueError, match="duplicate"):
            t.add(pt())

    def test_marked_is_union(self):
        t = PThreadTable()
        t.add(pt(dload=5, extra=(3, 4)))
        t.add(pt(dload=9, extra=(4, 8)))
        assert t.marked_pcs == frozenset({3, 4, 5, 8, 9})
        assert t.dload_pcs == frozenset({5, 9})

    def test_slice_stats(self):
        t = PThreadTable()
        t.add(pt(dload=5, extra=(3,)))
        t.add(pt(dload=9, extra=(7, 8, 6)))
        assert t.total_slice_size == 6
        assert t.mean_slice_size == 3.0

    def test_empty(self):
        t = PThreadTable.empty()
        assert len(t) == 0
        assert t.mean_slice_size == 0.0
        assert not t.marked_pcs

    def test_iteration(self):
        t = PThreadTable()
        t.add(pt(dload=5))
        t.add(pt(dload=9))
        assert {p.dload_pc for p in t} == {5, 9}

    @given(st.lists(st.tuples(st.integers(0, 500),
                              st.sets(st.integers(0, 500), max_size=6)),
                    max_size=8, unique_by=lambda kv: kv[0]))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, specs):
        t = PThreadTable()
        for dload, extra in specs:
            t.add(PThread(dload_pc=dload,
                          slice_pcs=frozenset({dload, *extra}),
                          live_ins=()))
        back = PThreadTable.from_dict(t.to_dict())
        assert back.marked_pcs == t.marked_pcs
        assert back.dload_pcs == t.dload_pcs
        for p in t:
            assert back[p.dload_pc] == p
