"""SPEAR binary serialization and integrity checks."""

import numpy as np
import pytest

from repro.core import PThread, PThreadTable, SpearBinary
from repro.functional import FunctionalSimulator

from ..conftest import build_gather_program, gather_load_pcs


@pytest.fixture()
def binary(gather_program, gather_table):
    return SpearBinary(gather_program, gather_table)


class TestIntegrity:
    def test_slice_outside_text_rejected(self, gather_program):
        table = PThreadTable()
        loads = gather_load_pcs(gather_program)
        table.add(PThread(dload_pc=loads[1],
                          slice_pcs=frozenset({loads[1], 10_000}),
                          live_ins=()))
        with pytest.raises(ValueError, match="outside"):
            SpearBinary(gather_program, table)

    def test_plain_binary(self, gather_program):
        b = SpearBinary.plain(gather_program)
        assert len(b.table) == 0
        assert b.name == gather_program.name


class TestSerialization:
    def test_dict_roundtrip_preserves_text(self, binary):
        again = SpearBinary.from_dict(binary.to_dict())
        assert again.program.instructions == binary.program.instructions
        assert again.program.labels == binary.program.labels
        assert again.program.mem_bytes == binary.program.mem_bytes

    def test_dict_roundtrip_preserves_table(self, binary):
        again = SpearBinary.from_dict(binary.to_dict())
        assert again.table.marked_pcs == binary.table.marked_pcs
        assert again.table.dload_pcs == binary.table.dload_pcs

    def test_dict_roundtrip_preserves_segments(self, binary):
        again = SpearBinary.from_dict(binary.to_dict())
        mem_a = binary.program.build_memory()
        mem_b = again.program.build_memory()
        assert np.array_equal(mem_a, mem_b)

    def test_roundtrip_program_still_runs(self, binary):
        again = SpearBinary.from_dict(binary.to_dict())
        sim_a = FunctionalSimulator(binary.program)
        sim_b = FunctionalSimulator(again.program)
        sim_a.run(5000)
        sim_b.run(5000)
        assert sim_a.iregs == sim_b.iregs

    def test_file_roundtrip(self, binary, tmp_path):
        path = tmp_path / "gather.spear.json"
        binary.save(path)
        again = SpearBinary.load(path)
        assert again.table.dload_pcs == binary.table.dload_pcs
        assert again.program.instructions == binary.program.instructions
