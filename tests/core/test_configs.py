"""Machine configuration validation and paper presets."""

import dataclasses

import pytest

from repro.core import (BASELINE, OP_LATENCY, PAPER_CONFIGS, SPEAR_128,
                        SPEAR_256, SPEAR_SF_128, SPEAR_SF_256, FUConfig,
                        MachineConfig)
from repro.isa import OpClass
from repro.memory import LatencyConfig


class TestPaperPresets:
    def test_five_models(self):
        assert set(PAPER_CONFIGS) == {"baseline", "SPEAR-128", "SPEAR-256",
                                      "SPEAR.sf-128", "SPEAR.sf-256"}

    def test_baseline_has_no_spear(self):
        assert not BASELINE.spear_enabled

    def test_ifq_sizes(self):
        assert SPEAR_128.ifq_size == 128
        assert SPEAR_256.ifq_size == 256
        assert SPEAR_SF_256.ifq_size == 256

    def test_sf_flag(self):
        assert SPEAR_SF_128.separate_fu and SPEAR_SF_256.separate_fu
        assert not SPEAR_128.separate_fu

    def test_table2_defaults(self):
        cfg = SPEAR_128
        assert cfg.issue_width == 8 and cfg.commit_width == 8
        assert cfg.ruu_size == 128
        assert cfg.predictor == "bimodal"
        assert cfg.predictor_table_size == 2048
        assert cfg.fu == FUConfig(4, 1, 4, 1, 2)
        assert cfg.latencies == LatencyConfig(1, 12, 120)

    def test_trigger_occupancy_half(self):
        assert SPEAR_128.trigger_occupancy == 64
        assert SPEAR_256.trigger_occupancy == 128

    def test_extract_width_half_issue(self):
        assert SPEAR_128.extract_width == SPEAR_128.issue_width // 2


class TestValidation:
    def test_extract_wider_than_decode_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(decode_width=2, extract_width=4)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(trigger_occupancy_fraction=1.5)

    def test_bad_drain_policy_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(drain_policy="maybe")

    def test_bad_wrong_path_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(wrong_path="teleport")

    def test_tiny_ifq_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(ifq_size=4, fetch_width=8)


class TestHelpers:
    def test_with_latencies(self):
        lat = LatencyConfig(1, 20, 200)
        cfg = SPEAR_128.with_latencies(lat)
        assert cfg.latencies == lat
        assert cfg.ifq_size == SPEAR_128.ifq_size
        assert SPEAR_128.latencies.memory == 120   # original untouched

    def test_renamed(self):
        assert SPEAR_128.renamed("x").name == "x"

    def test_describe_covers_table2(self):
        d = SPEAR_128.describe()
        assert d["IFQ size"] == 128
        assert d["memory ports"] == 2
        assert d["memory latency"] == 120
        assert d["SPEAR"] is True

    def test_configs_hashable_for_caching(self):
        assert {SPEAR_128, SPEAR_128, SPEAR_256} == {SPEAR_128, SPEAR_256}
        clone = dataclasses.replace(SPEAR_128)
        assert clone == SPEAR_128


class TestOpLatencies:
    def test_all_classes_covered(self):
        for cls in OpClass:
            assert int(cls) in OP_LATENCY

    def test_relative_ordering(self):
        assert OP_LATENCY[int(OpClass.INT_ALU)] == 1
        assert (OP_LATENCY[int(OpClass.INT_MUL)]
                < OP_LATENCY[int(OpClass.INT_DIV)])
        assert (OP_LATENCY[int(OpClass.FP_MUL)]
                < OP_LATENCY[int(OpClass.FP_DIV)])
