"""Cross-backend equivalence properties of the timing kernels.

The alternative cycle-advancement backends (`fast-forward`, the batched
sweep) are only admissible because they are *bit-for-bit* substitutes
for the reference kernel.  These properties pin that contract over
randomized inputs:

* **result identity** — reference vs fast-forward produce
  pickle-byte-identical ``PipelineResult`` objects (stats, memory
  snapshot with fill attribution, predictor, prefetcher) on random
  baseline programs and on randomized SPEAR gather kernels;
* **observer identity** — with tracer and sampler attached the two
  kernels emit identical event streams and identical timelines;
* **sweep identity** — a batched latency sweep returns exactly the
  results of N independent reference runs, point for point, whichever
  inner kernel it uses.

Every test is derandomized (fixed example stream) so CI is exactly
reproducible.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import BASELINE, BASELINE_STRIDE, SPEAR_128
from repro.functional import run_program
from repro.memory import MemoryHierarchy
from repro.memory.hierarchy import FIG9_LATENCIES
from repro.observe import IntervalSampler, RingBufferSink
from repro.pipeline import BatchedSweepSimulator, KERNEL_BACKENDS, \
    make_simulator

from .generators import build_random_program, iters_strategy, ops_strategy
from .test_invariants import gather_setup

SETTINGS = dict(derandomize=True, deadline=None, max_examples=8,
                print_blob=False)

baseline_configs = st.sampled_from([BASELINE, BASELINE_STRIDE])

gather_seeds = st.integers(0, 7)
gather_iters = st.integers(100, 300)

#: Latency points every sweep property runs (a 3-point figure-9 row).
SWEEP_POINTS = list(FIG9_LATENCIES[:3])


def run_backend(backend, trace, config, table=None, *, traced=False):
    """One run on the named kernel; returns ``(result, sink)``."""
    sink = RingBufferSink(capacity=None) if traced else None
    sampler = IntervalSampler(500) if traced else None
    sim = make_simulator(backend, trace, config, table,
                         MemoryHierarchy(latencies=config.latencies),
                         tracer=sink, sampler=sampler)
    return sim.run(), sink


def blob(result) -> bytes:
    return pickle.dumps(result, pickle.HIGHEST_PROTOCOL)


@settings(**SETTINGS)
@given(ops=ops_strategy, iters=iters_strategy, config=baseline_configs)
def test_fast_forward_identical_random_programs(ops, iters, config):
    trace = run_program(build_random_program(ops, iters),
                        max_instructions=20_000)
    ref, _ = run_backend("reference", trace, config)
    ff, _ = run_backend("fast-forward", trace, config)
    assert blob(ref) == blob(ff)


@settings(**SETTINGS)
@given(seed=gather_seeds, iters=gather_iters)
def test_fast_forward_identical_spear(seed, iters):
    trace, table = gather_setup(seed, iters)
    ref, _ = run_backend("reference", trace, SPEAR_128, table)
    ff, _ = run_backend("fast-forward", trace, SPEAR_128, table)
    assert blob(ref) == blob(ff)


@settings(**SETTINGS)
@given(ops=ops_strategy, iters=iters_strategy, config=baseline_configs)
def test_fast_forward_identical_traced(ops, iters, config):
    trace = run_program(build_random_program(ops, iters),
                        max_instructions=20_000)
    ref, ref_sink = run_backend("reference", trace, config, traced=True)
    ff, ff_sink = run_backend("fast-forward", trace, config, traced=True)
    assert blob(ref) == blob(ff)          # includes the sampled timeline
    assert ref_sink.events() == ff_sink.events()


@settings(**SETTINGS)
@given(seed=gather_seeds, iters=gather_iters)
def test_fast_forward_identical_traced_spear(seed, iters):
    trace, table = gather_setup(seed, iters)
    ref, ref_sink = run_backend("reference", trace, SPEAR_128, table,
                                traced=True)
    ff, ff_sink = run_backend("fast-forward", trace, SPEAR_128, table,
                              traced=True)
    assert blob(ref) == blob(ff)
    assert ref_sink.events() == ff_sink.events()


def test_fast_forward_actually_skips():
    """The equivalence properties are not vacuous: on a stall-heavy
    pointer-chase-like input the fast-forward kernel really jumps."""
    trace, table = gather_setup(0, 300)
    sim = make_simulator("fast-forward", trace, SPEAR_128, table,
                         MemoryHierarchy(latencies=SPEAR_128.latencies))
    sim.run()
    assert sim.ff_jumps > 0
    assert sim.ff_cycles_skipped > 0


@settings(**SETTINGS)
@given(seed=gather_seeds, iters=gather_iters,
       kernel=st.sampled_from(KERNEL_BACKENDS))
def test_batched_sweep_matches_independent_runs(seed, iters, kernel):
    trace, table = gather_setup(seed, iters)
    batched = BatchedSweepSimulator(trace, SPEAR_128, SWEEP_POINTS, table,
                                    kernel=kernel).run()
    for lat, got in zip(SWEEP_POINTS, batched):
        cfg = SPEAR_128 if lat == SPEAR_128.latencies \
            else SPEAR_128.with_latencies(lat)
        want, _ = run_backend("reference", trace, cfg, table)
        assert blob(got) == blob(want)
    assert [r.ipc for r in batched] == [
        run_backend("reference", trace,
                    SPEAR_128.with_latencies(lat), table)[0].ipc
        for lat in SWEEP_POINTS]


@settings(**SETTINGS)
@given(ops=ops_strategy, iters=iters_strategy, config=baseline_configs)
def test_batched_sweep_matches_independent_runs_baseline(ops, iters, config):
    trace = run_program(build_random_program(ops, iters),
                        max_instructions=20_000)
    batched = BatchedSweepSimulator(trace, config, SWEEP_POINTS).run()
    for lat, got in zip(SWEEP_POINTS, batched):
        cfg = config if lat == config.latencies \
            else config.with_latencies(lat)
        want, _ = run_backend("reference", trace, cfg)
        assert blob(got) == blob(want)
