"""Pinned end-to-end properties of the trigger-policy layer.

Three contracts from docs/adaptive-policy.md, each enforced in full:

* **Byte-identity of the default.**  ``--policy fixed`` (and no policy
  at all) must reproduce the pre-policy tree bit-for-bit.  The golden
  digests below were recorded on the tree *before* the policy layer
  existed; any byte that moves under the default policy — in results,
  timelines, or traced event streams — fails here.
* **Job-count independence.**  Adaptive cells through the parallel
  engine produce the same bytes under ``--jobs 1`` and ``--jobs 4``
  (this is the property that caught the merge-seeding bug where worker
  results landed under the wrong policy key).
* **Crash/resume independence.**  An interrupted adaptive run resumed
  from journal + cache matches an uninterrupted one exactly.
"""

import hashlib
import json

import pytest

from repro.core.configs import BASELINE, SPEAR_128
from repro.harness import (DiskCache, ExecutionPolicy, ExperimentRunner,
                           RunJournal, ablate_policy, ablate_policy_cells,
                           run_cells)
from repro.observe import serialize_events

# ---------------------------------------------------------------------------
# Golden digests: recorded on the pre-policy tree (commit 625dab5),
# full scale, default latencies, reference kernel.
# ---------------------------------------------------------------------------

GOLDEN_RESULTS = {
    ("ll4", "baseline"):
        "bd716931e7dff31c227ee83506a17d11e55920dcaf05cdd8d416706087aed18f",
    ("ll4", "SPEAR-128"):
        "1efed5d5b9ff7eddb7fbbd171711302ed38cc01a1bdebc903f1b5ccd9a09084b",
    ("mcf", "baseline"):
        "1ee07d0e99e0d359e50cb9b348251438952fbb60b9f1fdb1fdbbe86d54fe32c5",
    ("mcf", "SPEAR-128"):
        "3fd9de25131599603605427d95d2e5e39bb46d4f0221cbfaf842dc97f7d112eb",
    ("fzgain", "baseline"):
        "e15e1102e175278dacae9d67a4f9538a7b2ed07a5fcfbeb6fd298e700f2da32d",
    ("fzgain", "SPEAR-128"):
        "e57401009f7b3a7889182b32a3846dd05930a23694935ecd7dc6812832dec379",
}

GOLDEN_TRACED = {
    ("ll4", "baseline"):
        "a790cede84e663ddc986f0c3dee93f31ed770185691e6c12e98cc3cfaaa79548",
    ("ll4", "SPEAR-128"):
        "1ab2f76ba031a29c20b3798edfb81d61211a640f6aed6729218146dc699e9b0d",
    ("mcf", "baseline"):
        "b7632e45b8806b7c95db4d6d9743211f7f88c8207aa4169ce12d797f93bfeeb2",
    ("mcf", "SPEAR-128"):
        "98bf9fa7dcd153251e02d86595b4eb4871cf6cb95aa27d811a6ba8eaa3c6f7cb",
    ("fzgain", "baseline"):
        "3c5da669ecea4d7d7a64aeaa72e5ff19f09786000c993f75a39c349d6f87e425",
    ("fzgain", "SPEAR-128"):
        "89ef1fe12ad08909a712092d6bf3a433921e2d4ac8912bb591fc08166092209b",
}

CONFIGS = {"baseline": BASELINE, "SPEAR-128": SPEAR_128}


def result_digest(res):
    blob = json.dumps({"summary": res.summary(), "memory": res.memory,
                       "predictor": res.predictor,
                       "timeline": res.timeline},
                      sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def traced_digest(tr):
    blob = json.dumps({"summary": tr.result.summary(),
                       "timeline": tr.result.timeline,
                       "emitted": tr.emitted, "dropped": tr.dropped},
                      sort_keys=True, default=repr)
    return hashlib.sha256(
        (blob + "\n" + serialize_events(tr.events)).encode()).hexdigest()


@pytest.fixture(scope="module")
def full_runner():
    return ExperimentRunner()


@pytest.mark.parametrize("workload,config", sorted(GOLDEN_RESULTS))
def test_fixed_policy_results_match_pre_policy_golden(full_runner, workload,
                                                      config):
    res = full_runner.run(workload, CONFIGS[config], policy="fixed")
    assert result_digest(res) == GOLDEN_RESULTS[workload, config]


@pytest.mark.parametrize("workload,config", sorted(GOLDEN_TRACED))
def test_fixed_policy_traces_match_pre_policy_golden(full_runner, workload,
                                                     config):
    tr = full_runner.run_traced(workload, CONFIGS[config], policy="fixed")
    assert traced_digest(tr) == GOLDEN_TRACED[workload, config]


# ---------------------------------------------------------------------------
# Adaptive determinism across the parallel engine
# ---------------------------------------------------------------------------

def _cell_digests(runner, cells):
    out = {}
    for cell in cells:
        res = runner.run(cell.workload, cell.config, policy=cell.policy)
        blob = json.dumps({"summary": res.summary(), "memory": res.memory,
                           "predictor": res.predictor,
                           "policy": res.policy},
                          sort_keys=True, default=repr)
        out[cell.workload, cell.config.name, cell.policy] = \
            hashlib.sha256(blob.encode()).hexdigest()
    return out


def test_adaptive_cells_identical_across_job_counts():
    cells = ablate_policy_cells(["mcf", "fzgain"])

    serial = ExperimentRunner(instruction_scale=0.05)
    assert run_cells(serial, cells, jobs=1).completed
    parallel = ExperimentRunner(instruction_scale=0.05)
    assert run_cells(parallel, cells, jobs=4).completed

    assert _cell_digests(serial, cells) == _cell_digests(parallel, cells)
    assert (ablate_policy(serial, ["mcf", "fzgain"]).table().render()
            == ablate_policy(parallel, ["mcf", "fzgain"]).table().render())


def test_adaptive_cells_crash_resume_byte_identical(tmp_path, monkeypatch):
    # Cell 2 (mcf under adaptive-epoch) crashes persistently; the run
    # completes keep-going with one failure, then a --resume run restores
    # the ok cells from journal + cache, recomputes only the failed cell,
    # and matches an uninterrupted run byte-for-byte.
    cells = ablate_policy_cells(["mcf"])
    cache = DiskCache(tmp_path / "cache")

    monkeypatch.setenv("REPRO_FAULTS", "crash:cell=2:times=0")
    broken = ExperimentRunner(instruction_scale=0.05, cache=cache)
    journal = RunJournal.for_run("ablate-policy", cells, broken,
                                 root=tmp_path / "j")
    first = run_cells(
        broken, cells, jobs=2,
        policy=ExecutionPolicy(retries=1, backoff=0, max_pool_rebuilds=1),
        journal=journal)
    assert first.failed == 1 and first.ok == 3

    monkeypatch.delenv("REPRO_FAULTS")
    resumed = ExperimentRunner(instruction_scale=0.05, cache=cache)
    journal2 = RunJournal.for_run("ablate-policy", cells, resumed,
                                  root=tmp_path / "j")
    assert journal2.path == journal.path
    second = run_cells(resumed, cells, jobs=2, journal=journal2, resume=True)
    assert second.completed and second.resumed == 3 and second.ok == 1

    reference = ExperimentRunner(instruction_scale=0.05)
    assert run_cells(reference, cells, jobs=1).completed
    assert _cell_digests(resumed, cells) == _cell_digests(reference, cells)
    assert (ablate_policy(resumed, ["mcf"]).table().render()
            == ablate_policy(reference, ["mcf"]).table().render())
