"""Property-based invariants of the timing simulator.

Every test is derandomized (fixed example stream) so CI is exactly
reproducible; the properties themselves are the contracts the rest of
the system leans on:

* **cross-run determinism** — the same trace through the same config
  yields identical stats and memory snapshots, the foundation of the
  byte-identical figure/report guarantees;
* **fill partition** — ``timely + late + unused == fills`` for every
  speculative-fill source (the timeliness attribution loses nothing);
* **commit conservation** — the timing model commits exactly the
  functional trace, no instruction duplicated or dropped;
* **observer neutrality** — attaching the tracer and sampler never
  changes a run's architectural stats (the tracer-is-None fast path and
  the instrumented path agree).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PThread, PThreadTable
from repro.core.configs import BASELINE, BASELINE_STRIDE, SPEAR_128
from repro.functional import run_program
from repro.memory import MemoryHierarchy
from repro.observe import IntervalSampler, RingBufferSink

from ..conftest import build_gather_program, gather_load_pcs
from .generators import build_random_program, iters_strategy, ops_strategy

SETTINGS = dict(derandomize=True, deadline=None, max_examples=8,
                print_blob=False)

baseline_configs = st.sampled_from([BASELINE, BASELINE_STRIDE])

gather_seeds = st.integers(0, 7)
gather_iters = st.integers(100, 300)


def simulate(trace, config, table=None, *, traced=False):
    from repro.pipeline import TimingSimulator
    tracer = RingBufferSink(capacity=None) if traced else None
    sampler = IntervalSampler(500) if traced else None
    sim = TimingSimulator(trace, config, table,
                          MemoryHierarchy(latencies=config.latencies),
                          tracer=tracer, sampler=sampler)
    return sim.run()


def gather_setup(seed: int, iters: int):
    """Randomized gather kernel plus its hand-built p-thread table."""
    prog = build_gather_program(seed=seed, iters=iters, n=1 << 12)
    idx_pc, gather_pc = gather_load_pcs(prog)
    table = PThreadTable()
    table.add(PThread(dload_pc=gather_pc,
                      slice_pcs=frozenset(range(idx_pc, gather_pc + 1)),
                      live_ins=(1, 2)))
    return run_program(prog, max_instructions=30_000), table


@settings(**SETTINGS)
@given(ops=ops_strategy, iters=iters_strategy, config=baseline_configs)
def test_cross_run_determinism_random_programs(ops, iters, config):
    trace = run_program(build_random_program(ops, iters),
                        max_instructions=20_000)
    first = simulate(trace, config)
    second = simulate(trace, config)
    assert first.stats == second.stats
    assert first.memory == second.memory


@settings(**SETTINGS)
@given(seed=gather_seeds, iters=gather_iters)
def test_cross_run_determinism_spear(seed, iters):
    trace, table = gather_setup(seed, iters)
    first = simulate(trace, SPEAR_128, table)
    second = simulate(trace, SPEAR_128, table)
    assert first.stats == second.stats
    assert first.memory == second.memory


@settings(**SETTINGS)
@given(seed=gather_seeds, iters=gather_iters)
def test_fill_partition(seed, iters):
    trace, table = gather_setup(seed, iters)
    result = simulate(trace, SPEAR_128, table)
    fills = result.memory["fills"]
    assert any(fills[s]["attempts"] for s in ("pthread", "prefetch")), \
        "gather kernel should exercise the speculative-fill path"
    for source in ("pthread", "prefetch"):
        f = fills[source]
        assert f["timely"] + f["late"] + f["unused"] == f["fills"], \
            f"{source}: fill classification must partition the fills"


@settings(**SETTINGS)
@given(ops=ops_strategy, iters=iters_strategy, config=baseline_configs)
def test_commit_count_matches_functional_trace(ops, iters, config):
    trace = run_program(build_random_program(ops, iters),
                        max_instructions=20_000)
    result = simulate(trace, config)
    assert result.stats.committed == len(trace)


@settings(**SETTINGS)
@given(seed=gather_seeds, iters=gather_iters)
def test_commit_count_matches_functional_trace_spear(seed, iters):
    trace, table = gather_setup(seed, iters)
    result = simulate(trace, SPEAR_128, table)
    assert result.stats.committed == len(trace)


@settings(**SETTINGS)
@given(ops=ops_strategy, iters=iters_strategy, config=baseline_configs)
def test_tracer_never_changes_results(ops, iters, config):
    trace = run_program(build_random_program(ops, iters),
                        max_instructions=20_000)
    plain = simulate(trace, config)
    observed = simulate(trace, config, traced=True)
    assert observed.stats == plain.stats
    assert observed.memory == plain.memory


@settings(**SETTINGS)
@given(seed=gather_seeds, iters=gather_iters)
def test_tracer_never_changes_results_spear(seed, iters):
    trace, table = gather_setup(seed, iters)
    plain = simulate(trace, SPEAR_128, table)
    observed = simulate(trace, SPEAR_128, table, traced=True)
    assert observed.stats == plain.stats
    assert observed.memory == plain.memory
