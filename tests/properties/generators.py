"""Hypothesis generators for the simulator invariant properties.

Two program families:

* :func:`build_random_program` — arbitrary straight-line ALU/load bodies
  inside one count-down loop.  Loads are made safe by construction (the
  address register is masked to a word index inside the allocated
  array), so *every* generated program runs to its halt; the strategies
  below explore instruction mix, operand wiring and trip count.
* randomized variants of the canonical gather kernel
  (``tests.conftest.build_gather_program``), whose hand-built p-thread
  table exercises the SPEAR pre-execution path with speculative fills.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.isa import ProgramBuilder

#: Words in the backing array every generated load stays inside.
N_WORDS = 1 << 10

#: Registers the generated loop body may read/write freely.  ``r1`` holds
#: the array base, ``r2`` is the load-address scratch, ``r3`` the loop
#: counter — the generator never hands those out as destinations.
SCRATCH = ["r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11"]

#: One body instruction: (kind, dst, src1, src2, immediate).  Kinds:
#: 0 add, 1 addi, 2 xor, 3 slli, 4 andi, 5 masked load.
op_strategy = st.tuples(
    st.integers(0, 5),
    st.integers(0, len(SCRATCH) - 1),
    st.integers(0, len(SCRATCH) - 1),
    st.integers(0, len(SCRATCH) - 1),
    st.integers(-16, 16))

ops_strategy = st.lists(op_strategy, min_size=2, max_size=10)

iters_strategy = st.integers(20, 120)


def build_random_program(ops, iters: int, n: int = N_WORDS):
    """Materialize one drawn op list as a runnable program."""
    b = ProgramBuilder("prop", mem_bytes=1 << 20)
    base = b.alloc(n, init=np.arange(n, dtype=np.int64))
    b.li("r1", base)
    b.li("r3", iters)
    for i, reg in enumerate(SCRATCH):
        b.li(reg, i + 1)
    with b.loop_down("r3"):
        for kind, d, s1, s2, imm in ops:
            rd, rs1, rs2 = SCRATCH[d], SCRATCH[s1], SCRATCH[s2]
            if kind == 0:
                b.add(rd, rs1, rs2)
            elif kind == 1:
                b.addi(rd, rs1, imm)
            elif kind == 2:
                b.xor(rd, rs1, rs2)
            elif kind == 3:
                b.slli(rd, rs1, abs(imm) % 4)
            elif kind == 4:
                b.andi(rd, rs1, 0xFF)
            else:
                # Masked gather: rs1 -> word index in [0, n) -> byte
                # address inside the array.  Never faults, any rs1 value.
                b.andi("r2", rs1, n - 1)
                b.slli("r2", "r2", 3)
                b.add("r2", "r2", "r1")
                b.lw(rd, "r2", 0)
    b.halt()
    return b.build()
