"""Coverage-map properties: run-shape independence and facet cover.

The coverage engine's contract is that a behaviour map depends only on
*what the programs did*, never on how the campaign was executed:

* **job independence** — a campaign's coverage map is byte-identical at
  ``--jobs 1`` and ``--jobs 2`` (verdicts merge in submission order);
* **backend independence** — a program's behaviour vector is identical
  whether the primary timing kernel is ``reference`` or
  ``fast-forward`` (the banding only reads counters both backends
  produce byte-identically);
* **accumulation-order independence** — maps are counters, so any
  permutation of the same verdicts serializes to the same bytes;
* **distillation cover** — the distilled corpus covers *exactly* the
  facets of its source verdicts (no facet lost, none invented), and no
  entry is redundant.

Every test is derandomized (fixed example stream) so CI is exactly
reproducible.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import (CampaignSpec, FuzzCheckSpec, coverage_map, distill,
                        evaluate_workload, run_campaign, vector_of)
from repro.fuzz.differential import BEHAVIOR_FIELDS
from repro.fuzz.generator import (KernelDials, encode_name,
                                  fuzz_workload_from_name)
from repro.harness import DiskCache, ExecutionPolicy, ExperimentRunner

from ..fuzz.test_coverage import verdict

SETTINGS = dict(derandomize=True, deadline=None, print_blob=False)

FAST = ExecutionPolicy(retries=1, backoff=0, max_pool_rebuilds=1)
SMALL = KernelDials(mem_words=512, target_instructions=600)

#: Raw behaviour tuples for the synthetic-verdict properties: every
#: counter small enough to land in any band, none unrealistically huge.
behavior_strategy = st.tuples(
    *[st.integers(0, 1000) for _ in BEHAVIOR_FIELDS])

_dirs = itertools.count()


@settings(max_examples=4, **SETTINGS)
@given(seed=st.integers(0, 50))
def test_vector_is_backend_independent(seed):
    workload = fuzz_workload_from_name(encode_name(seed, 0, SMALL))
    forward = evaluate_workload(workload, FuzzCheckSpec())
    flipped = evaluate_workload(workload, FuzzCheckSpec(
        backends=("fast-forward", "reference")))
    assert vector_of(forward).key == vector_of(flipped).key
    assert forward.behavior == flipped.behavior


@settings(max_examples=3, **SETTINGS)
@given(seed=st.integers(0, 50))
def test_map_is_job_count_independent(seed, tmp_path_factory):
    base = tmp_path_factory.mktemp("cov") / str(next(_dirs))
    spec = CampaignSpec(seed=seed, count=2, dials=SMALL, sweep_every=0)
    maps = []
    for jobs in (1, 2):
        runner = ExperimentRunner(cache=DiskCache(base / f"j{jobs}"))
        result = run_campaign(spec, runner, jobs=jobs, policy=FAST,
                              journaled=False)
        maps.append(coverage_map(result.verdicts))
    assert maps[0].to_json() == maps[1].to_json()
    assert maps[0].content_hash() == maps[1].content_hash()


@settings(max_examples=20, **SETTINGS)
@given(behaviors=st.lists(behavior_strategy, min_size=2, max_size=9),
       rot=st.integers(0, 8))
def test_map_is_accumulation_order_independent(behaviors, rot):
    vs = [verdict(name=encode_name(0, i, SMALL), behavior=b)
          for i, b in enumerate(behaviors)]
    rotated = vs[rot % len(vs):] + vs[:rot % len(vs)]
    assert coverage_map(vs).to_json() == coverage_map(rotated).to_json()


@settings(max_examples=10, **SETTINGS)
@given(behaviors=st.lists(behavior_strategy, min_size=1, max_size=8))
def test_distilled_corpus_covers_exactly_the_source_facets(behaviors):
    vs = [verdict(name=encode_name(0, i, SMALL), behavior=b)
          for i, b in enumerate(behaviors)]
    corpus = distill(vs)
    covered = {f for e in corpus for f in e.facets}
    source = {f for v in vs for f in vector_of(v).facets()}
    assert covered == source
    for entry in corpus:
        others = {f for e in corpus if e is not entry for f in e.facets}
        assert not set(entry.facets) <= others
