"""Attacher validation and the end-to-end compile driver."""

import numpy as np
import pytest

from repro.compiler import attach, compile_spear
from repro.core import PThread, PThreadTable
from repro.isa import ProgramBuilder

from ..conftest import build_gather_program, gather_load_pcs


class TestAttacher:
    def test_valid_attach(self, gather_program, gather_table):
        binary = attach(gather_program, gather_table)
        assert binary.table is gather_table

    def test_rejects_out_of_range_dload(self, gather_program):
        table = PThreadTable()
        table.add(PThread(dload_pc=9999, slice_pcs=frozenset([9999]),
                          live_ins=()))
        with pytest.raises(ValueError, match="out of range"):
            attach(gather_program, table)

    def test_rejects_non_load_dload(self, gather_program):
        table = PThreadTable()
        table.add(PThread(dload_pc=0, slice_pcs=frozenset([0]), live_ins=()))
        with pytest.raises(ValueError, match="not a load"):
            attach(gather_program, table)

    def test_empty_table_ok(self, gather_program):
        binary = attach(gather_program, PThreadTable.empty())
        assert len(binary.table) == 0


class TestCompileDriver:
    def test_end_to_end(self):
        train = build_gather_program(seed=7, iters=500)
        evalp = build_gather_program(seed=1, iters=500)
        binary, report, result = compile_spear(train, evalp)
        _, gather_pc = gather_load_pcs(evalp)
        assert gather_pc in binary.table
        assert report.dloads == len(binary.table)
        assert report.profile_instructions > 0
        assert report.mean_slice_size > 0
        assert "SPEAR compile report" in report.render()

    def test_annotations_apply_to_eval_binary(self):
        train = build_gather_program(seed=7, iters=500)
        evalp = build_gather_program(seed=1, iters=500)
        binary, _, _ = compile_spear(train, evalp)
        assert binary.program is evalp

    def test_defaults_to_train_program(self):
        train = build_gather_program(seed=7, iters=400)
        binary, _, _ = compile_spear(train)
        assert binary.program is train

    def test_text_mismatch_rejected(self):
        train = build_gather_program(seed=7, iters=500)
        b = ProgramBuilder()
        b.li("r1", 0)
        b.halt()
        with pytest.raises(ValueError, match="differ in length"):
            compile_spear(train, b.build())

    def test_structural_divergence_rejected(self):
        train = build_gather_program(seed=7, iters=500)
        evalp = build_gather_program(seed=1, iters=500)
        # mutate one instruction's registers
        from repro.isa import Instruction, Op
        evalp.instructions[4] = Instruction(Op.ADD, rd=9, rs1=9, rs2=9)
        with pytest.raises(ValueError, match="diverge"):
            compile_spear(train, evalp)

    def test_immediate_differences_allowed(self):
        # different trip counts / data addresses are fine (same structure)
        train = build_gather_program(seed=7, iters=300)
        evalp = build_gather_program(seed=1, iters=700)
        binary, _, _ = compile_spear(train, evalp)
        assert len(binary.table) >= 1

    def test_profile_budget_respected(self):
        train = build_gather_program(seed=7, iters=5000)
        _, report, _ = compile_spear(train, max_profile_instructions=2000)
        assert report.profile_instructions <= 2000
