"""Trigger-point timeliness analysis."""

import pytest

from repro.compiler import (CFG, analyze_triggers, build_pthreads,
                            profile_trace, render_trigger_analysis,
                            slice_critical_path)
from repro.compiler.triggers import expected_lead
from repro.core import SPEAR_128, SPEAR_256
from repro.functional import run_program
from repro.memory import LatencyConfig

from ..conftest import build_gather_program


@pytest.fixture(scope="module")
def compiled():
    prog = build_gather_program(seed=13, iters=700)
    cfg = CFG(prog)
    profile = profile_trace(run_program(prog, max_instructions=35_000), cfg)
    result = build_pthreads(cfg, profile)
    return cfg, profile, result.table


class TestCriticalPath:
    def test_chain_longer_than_single_op(self, compiled):
        cfg, profile, table = compiled
        pthread = max(table, key=lambda p: p.size)
        cp = slice_critical_path(cfg, pthread, profile, LatencyConfig())
        # the gather slice chains two loads (idx stream -> gather): its
        # critical path must exceed one memory access
        assert cp > 12

    def test_scales_with_latency(self, compiled):
        cfg, profile, table = compiled
        pthread = next(iter(table))
        short = slice_critical_path(cfg, pthread, profile,
                                    LatencyConfig(1, 4, 40))
        long = slice_critical_path(cfg, pthread, profile,
                                   LatencyConfig(1, 20, 200))
        assert long > short

    def test_alu_only_slice_is_cheap(self, compiled):
        cfg, profile, table = compiled
        from repro.core import PThread
        # fabricate a one-ALU-op "slice" around an existing load pc for
        # the math only (slice_critical_path doesn't validate)
        alu_pc = 0   # li r1, ... at pc 0
        fake = PThread(dload_pc=alu_pc, slice_pcs=frozenset({alu_pc}),
                       live_ins=())
        cp = slice_critical_path(cfg, fake, profile, LatencyConfig())
        assert cp <= 2


class TestLeadAndMargin:
    def test_lead_scales_with_threshold(self, compiled):
        cfg, profile, table = compiled
        pthread = next(iter(table))
        lead128 = expected_lead(pthread, profile, SPEAR_128)
        lead256 = expected_lead(pthread, profile, SPEAR_256)
        assert lead256 == pytest.approx(2 * lead128)

    def test_reports_sorted_by_margin(self, compiled):
        cfg, profile, table = compiled
        reports = analyze_triggers(cfg, profile, table)
        margins = [r.margin for r in reports]
        assert margins == sorted(margins)

    def test_report_fields(self, compiled):
        cfg, profile, table = compiled
        reports = analyze_triggers(cfg, profile, table)
        assert len(reports) == len(table)
        for r in reports:
            assert r.slice_size == table[r.dload_pc].size
            assert r.livein_copy_cycles == len(table[r.dload_pc].live_ins)
            assert r.timely == (r.margin > 0)

    def test_render(self, compiled):
        cfg, profile, table = compiled
        out = render_trigger_analysis(analyze_triggers(cfg, profile, table))
        assert "Trigger-point analysis" in out
        assert "predicted timely" in out
