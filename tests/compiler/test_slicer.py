"""Hybrid slicer: d-load selection, dynamic backward slicing, regions."""

import numpy as np
import pytest

from repro.compiler import (CFG, SlicerConfig, backward_slice, build_pthreads,
                            compute_live_ins, find_delinquent_loads,
                            profile_trace, select_region)
from repro.functional import run_program
from repro.isa import ProgramBuilder

from ..conftest import build_gather_program, gather_load_pcs


@pytest.fixture(scope="module")
def gather_parts():
    prog = build_gather_program(seed=5, iters=600)
    cfg = CFG(prog)
    profile = profile_trace(run_program(prog, max_instructions=30_000), cfg)
    return prog, cfg, profile


def cold_path_program():
    """A d-load whose address comes from the hot path B3 almost always;
    the cold path B2 writes the same register rarely (paper Figure 5)."""
    rng = np.random.default_rng(11)
    n = 1 << 13
    b = ProgramBuilder(mem_bytes=4 << 20)
    sel_base = b.alloc(n, init=(rng.random(n) < 0.03).astype(np.int64))
    data_base = b.alloc(n, init=rng.integers(0, n, size=n).astype(np.int64))
    tgt_base = b.alloc(n, init=np.arange(n, dtype=np.int64))
    b.li("r1", sel_base)
    b.li("r2", data_base)
    b.li("r3", tgt_base)
    b.li("r4", 600)
    b.li("r14", 8 * (n - 1))
    with b.loop_down("r4"):
        b.lw("r5", "r1", 0)               # selector
        cold = b.label()
        join = b.label()
        b.bne("r5", "r0", cold)
        # hot path (B3): address from the data stream
        b.lw("r6", "r2", 0)               # hot producer
        b.slli("r7", "r6", 3)
        b.j(join)
        b.place(cold)
        # cold path (B2): rare different producer
        b.li("r7", 0)
        b.place(join)
        b.and_("r7", "r7", "r14")
        b.add("r8", "r7", "r3")
        b.lw("r9", "r8", 0)               # the delinquent load
        b.addi("r1", "r1", 8)
        b.addi("r2", "r2", 8)
    b.halt()
    return b.build()


class TestDelinquentLoadSelection:
    def test_gather_selected(self, gather_parts):
        prog, cfg, profile = gather_parts
        _, gather_pc = gather_load_pcs(prog)
        dloads = find_delinquent_loads(profile, SlicerConfig())
        assert gather_pc in dloads

    def test_worst_first(self, gather_parts):
        prog, cfg, profile = gather_parts
        dloads = find_delinquent_loads(profile, SlicerConfig())
        misses = [profile.miss_counts[pc] for pc in dloads]
        assert misses == sorted(misses, reverse=True)

    def test_threshold_filters(self, gather_parts):
        prog, cfg, profile = gather_parts
        strict = SlicerConfig(dload_miss_threshold=10 ** 9,
                              dload_miss_fraction=1.1)
        assert find_delinquent_loads(profile, strict) == []

    def test_max_dloads_cap(self, gather_parts):
        prog, cfg, profile = gather_parts
        capped = SlicerConfig(dload_miss_threshold=1, max_dloads=1)
        assert len(find_delinquent_loads(profile, capped)) == 1


class TestBackwardSlice:
    def test_gather_slice_contains_address_chain(self, gather_parts):
        prog, cfg, profile = gather_parts
        idx_pc, gather_pc = gather_load_pcs(prog)
        loop = cfg.innermost_loop_of_pc(gather_pc)
        region = cfg.loop_pcs(loop)
        s = backward_slice(cfg, profile, gather_pc, region, SlicerConfig())
        assert {idx_pc, gather_pc - 1, gather_pc - 2, gather_pc} <= s

    def test_slice_respects_region(self, gather_parts):
        prog, cfg, profile = gather_parts
        _, gather_pc = gather_load_pcs(prog)
        s = backward_slice(cfg, profile, gather_pc, {gather_pc},
                           SlicerConfig())
        assert s == {gather_pc}

    def test_cold_path_pruned(self):
        """Figure 5: the majority-path producer stays, the cold one goes."""
        prog = cold_path_program()
        cfg = CFG(prog)
        profile = profile_trace(run_program(prog, max_instructions=40_000), cfg)
        dload_pc = max(pc for pc, i in enumerate(prog.instructions) if i.is_load)
        hot_producer = next(
            pc for pc, i in enumerate(prog.instructions)
            if i.is_load and pc != dload_pc and pc > 6)
        cold_producer = next(
            pc for pc, i in enumerate(prog.instructions)
            if i.op.name == "LI" and 6 < pc < dload_pc)
        loop = cfg.innermost_loop_of_pc(dload_pc)
        region = cfg.loop_pcs(loop)
        s = backward_slice(cfg, profile, dload_pc, region,
                           SlicerConfig(dominant_edge_fraction=0.10))
        assert hot_producer in s
        assert cold_producer not in s

    def test_max_slice_cap(self, gather_parts):
        prog, cfg, profile = gather_parts
        _, gather_pc = gather_load_pcs(prog)
        loop = cfg.innermost_loop_of_pc(gather_pc)
        region = cfg.loop_pcs(loop)
        s = backward_slice(cfg, profile, gather_pc, region,
                           SlicerConfig(max_slice_size=2))
        assert len(s) <= 2


class TestRegions:
    def test_innermost_selected(self, gather_parts):
        prog, cfg, profile = gather_parts
        _, gather_pc = gather_load_pcs(prog)
        region, dcycle = select_region(cfg, profile, gather_pc, SlicerConfig())
        assert region is not None
        assert gather_pc in cfg.loop_pcs(region)
        assert dcycle > 0

    def test_not_in_loop(self, gather_parts):
        prog, cfg, profile = gather_parts
        region, _ = select_region(cfg, profile, 0, SlicerConfig())
        assert region is None

    def test_budget_limits_growth(self):
        b = ProgramBuilder(mem_bytes=4 << 20)
        rng = np.random.default_rng(2)
        n = 1 << 12
        base = b.alloc(n, init=rng.integers(0, n, size=n).astype(np.int64))
        b.li("r1", 40)
        outer = b.here("outer")
        b.li("r2", 30)
        b.li("r3", base)
        inner = b.here("inner")
        b.lw("r4", "r3", 0)
        b.slli("r5", "r4", 3)
        b.and_("r5", "r5", "r0")
        b.add("r6", "r5", "r3")
        b.lw("r7", "r6", 0)
        b.addi("r3", "r3", 8)
        b.addi("r2", "r2", -1)
        b.bgtz("r2", inner)
        b.addi("r1", "r1", -1)
        b.bgtz("r1", outer)
        b.halt()
        prog = b.build()
        cfg = CFG(prog)
        profile = profile_trace(run_program(prog, max_instructions=40_000), cfg)
        dload = max(pc for pc, i in enumerate(prog.instructions) if i.is_load)
        tight, _ = select_region(cfg, profile, dload,
                                 SlicerConfig(dcycle_budget=1.0))
        loose, _ = select_region(cfg, profile, dload,
                                 SlicerConfig(dcycle_budget=10 ** 9))
        assert tight.depth == 2           # stays innermost
        assert loose.depth == 1           # grows to the outer loop
        assert tight.body < loose.body


class TestLiveIns:
    def test_gather_live_ins(self, gather_parts):
        prog, cfg, profile = gather_parts
        idx_pc, gather_pc = gather_load_pcs(prog)
        s = set(range(idx_pc, gather_pc + 1))
        live = compute_live_ins(cfg, s)
        assert 1 in live     # index base pointer
        assert 2 in live     # data base pointer
        assert 4 not in live  # written inside the slice before use

    def test_live_ins_sorted(self, gather_parts):
        prog, cfg, profile = gather_parts
        idx_pc, gather_pc = gather_load_pcs(prog)
        live = compute_live_ins(cfg, set(range(idx_pc, gather_pc + 1)))
        assert list(live) == sorted(live)


class TestBuildPThreads:
    def test_end_to_end(self, gather_parts):
        prog, cfg, profile = gather_parts
        result = build_pthreads(cfg, profile)
        assert len(result.table) >= 1
        _, gather_pc = gather_load_pcs(prog)
        assert gather_pc in result.table
        pt = result.table[gather_pc]
        assert pt.size >= 3
        assert pt.live_ins

    def test_reports_match_table(self, gather_parts):
        prog, cfg, profile = gather_parts
        result = build_pthreads(cfg, profile)
        assert len(result.accepted) == len(result.table)
        for r in result.accepted:
            assert result.table[r.dload_pc].size == r.slice_size
