"""CFG construction, dominators (cross-checked against networkx), loops."""

import networkx as nx
import pytest

from repro.compiler import CFG
from repro.isa import ProgramBuilder, assemble


def cfg_of(text: str) -> CFG:
    return CFG(assemble(text + "\nhalt"))


def nested_loops_program():
    b = ProgramBuilder()
    b.li("r1", 3)
    outer = b.here("outer")
    b.li("r2", 4)
    inner = b.here("inner")
    b.addi("r2", "r2", -1)
    b.bgtz("r2", inner)
    b.addi("r1", "r1", -1)
    b.bgtz("r1", outer)
    b.halt()
    return b.build()


class TestBlocks:
    def test_straightline_is_one_block(self):
        cfg = cfg_of("li r1, 1\naddi r1, r1, 1")
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].size == 3

    def test_branch_splits_blocks(self):
        cfg = cfg_of("li r1, 1\nbeq r1, r0, out\nli r2, 2\nout:\nli r3, 3")
        # blocks: [li,beq] [li r2] [li r3] [halt? same as last]
        assert len(cfg.blocks) >= 3
        entry = cfg.blocks[0]
        assert len(entry.succs) == 2

    def test_block_of_pc_total(self, gather_program):
        cfg = CFG(gather_program)
        for pc in range(len(gather_program)):
            blk = cfg.blocks[cfg.block_of_pc[pc]]
            assert pc in blk

    def test_edges_symmetric(self, gather_program):
        cfg = CFG(gather_program)
        for blk in cfg.blocks:
            for s in blk.succs:
                assert blk.index in cfg.blocks[s].preds

    def test_halt_terminates_block(self):
        cfg = cfg_of("li r1, 1")
        last = cfg.blocks[-1]
        assert not last.succs

    def test_call_has_fallthrough_edge(self):
        cfg = cfg_of("jal f\nli r1, 1\nj end\nf:\njr r31\nend:\nnop")
        entry = cfg.blocks[0]
        targets = {cfg.blocks[s].start for s in entry.succs}
        assert 1 in targets     # fall-through (return point)
        assert 3 in targets     # callee entry


class TestDominators:
    def _nx_idom(self, cfg: CFG):
        g = nx.DiGraph()
        g.add_nodes_from(range(len(cfg.blocks)))
        for blk in cfg.blocks:
            for s in blk.succs:
                g.add_edge(blk.index, s)
        return nx.immediate_dominators(g, 0)

    @pytest.mark.parametrize("text", [
        "li r1, 1\nbeq r1, r0, a\nli r2, 2\nj b\na:\nli r3, 3\nb:\nnop",
        "top:\naddi r1, r1, 1\nblt r1, r2, top\nnop",
        ("li r1, 2\no:\nli r2, 2\ni:\naddi r2, r2, -1\nbgtz r2, i\n"
         "addi r1, r1, -1\nbgtz r1, o"),
    ])
    def test_matches_networkx(self, text):
        cfg = cfg_of(text)
        nx_idom = self._nx_idom(cfg)
        for node, idom in nx_idom.items():
            if node == 0:
                continue
            assert cfg.idom[node] == idom, f"node {node}"

    def test_matches_networkx_on_workload(self, gather_program):
        cfg = CFG(gather_program)
        nx_idom = self._nx_idom(cfg)
        for node, idom in nx_idom.items():
            if node != 0:
                assert cfg.idom[node] == idom

    def test_dominates_reflexive_and_entry(self, gather_program):
        cfg = CFG(gather_program)
        for blk in cfg.blocks:
            if cfg.idom[blk.index] != -1 or blk.index == 0:
                assert cfg.dominates(blk.index, blk.index)
                assert cfg.dominates(0, blk.index)


class TestLoops:
    def test_single_loop_found(self):
        cfg = cfg_of("li r1, 5\ntop:\naddi r1, r1, -1\nbgtz r1, top")
        assert len(cfg.loops) == 1
        loop = next(iter(cfg.loops.values()))
        assert loop.depth == 1

    def test_nested_loops(self):
        cfg = CFG(nested_loops_program())
        assert len(cfg.loops) == 2
        depths = sorted(l.depth for l in cfg.loops.values())
        assert depths == [1, 2]
        inner = next(l for l in cfg.loops.values() if l.depth == 2)
        outer = next(l for l in cfg.loops.values() if l.depth == 1)
        assert inner.parent == outer.header
        assert inner.body < outer.body

    def test_innermost_of_pc(self):
        prog = nested_loops_program()
        cfg = CFG(prog)
        inner_pc = prog.labels["inner"]
        loop = cfg.innermost_loop_of_pc(inner_pc)
        assert loop is not None and loop.depth == 2
        assert cfg.innermost_loop_of_pc(0) is None

    def test_loop_pcs(self):
        cfg = cfg_of("li r1, 5\ntop:\naddi r1, r1, -1\nbgtz r1, top")
        loop = next(iter(cfg.loops.values()))
        assert cfg.loop_pcs(loop) == {1, 2}

    def test_loop_contains_call(self):
        cfg = cfg_of("top:\njal f\naddi r1, r1, -1\nbgtz r1, top\nj e\n"
                     "f:\njr r31\ne:\nnop")
        loop = next(iter(cfg.loops.values()))
        assert cfg.loop_contains_call(loop)

    def test_no_loops_in_straightline(self):
        cfg = cfg_of("li r1, 1\nli r2, 2")
        assert not cfg.loops

    def test_summary(self, gather_program):
        s = CFG(gather_program).summary()
        assert s["loops"] == 1
        assert s["blocks"] >= 2
