"""Profiling tool: miss counts, dynamic dependence edges, d-cycles."""

import numpy as np
import pytest

from repro.compiler import CFG, profile_trace
from repro.functional import run_program
from repro.isa import ProgramBuilder
from repro.memory import LatencyConfig

from ..conftest import build_gather_program, gather_load_pcs


@pytest.fixture(scope="module")
def gather_profile():
    prog = build_gather_program(seed=3, iters=600)
    cfg = CFG(prog)
    trace = run_program(prog, max_instructions=30_000)
    return prog, cfg, profile_trace(trace, cfg)


class TestMissCounts:
    def test_gather_load_is_hottest(self, gather_profile):
        prog, cfg, profile = gather_profile
        idx_pc, gather_pc = gather_load_pcs(prog)
        top = profile.top_misses(1)
        assert top[0][0] == gather_pc

    def test_load_counts_match_trace(self, gather_profile):
        prog, cfg, profile = gather_profile
        idx_pc, gather_pc = gather_load_pcs(prog)
        assert profile.load_counts[gather_pc] == 600
        assert profile.load_counts[idx_pc] == 600

    def test_miss_rate_of(self, gather_profile):
        prog, cfg, profile = gather_profile
        _, gather_pc = gather_load_pcs(prog)
        assert 0.3 < profile.miss_rate_of(gather_pc) <= 1.0

    def test_streaming_load_misses_less(self, gather_profile):
        prog, cfg, profile = gather_profile
        idx_pc, gather_pc = gather_load_pcs(prog)
        # the index stream hits 3 of 4 accesses per 32-byte block
        assert profile.miss_counts.get(idx_pc, 0) < profile.miss_counts[gather_pc]

    def test_totals(self, gather_profile):
        _, _, profile = gather_profile
        assert profile.total_instrs == 30_000 or profile.total_instrs > 0
        assert profile.total_l1_misses == sum(profile.miss_counts.values())


class TestDependenceEdges:
    def test_gather_depends_on_address_chain(self, gather_profile):
        prog, cfg, profile = gather_profile
        idx_pc, gather_pc = gather_load_pcs(prog)
        # gather reads r6 <- add <- slli <- lw(idx)
        producers = profile.reg_edges[gather_pc]
        assert (gather_pc - 1) in producers       # the add
        add_producers = profile.reg_edges[gather_pc - 1]
        assert (gather_pc - 2) in add_producers   # the slli
        slli_producers = profile.reg_edges[gather_pc - 2]
        assert idx_pc in slli_producers

    def test_edge_counts_scale_with_executions(self, gather_profile):
        prog, cfg, profile = gather_profile
        _, gather_pc = gather_load_pcs(prog)
        assert profile.reg_edges[gather_pc][gather_pc - 1] >= 590

    def test_memory_edges(self):
        b = ProgramBuilder()
        buf = b.alloc(8)
        b.li("r1", buf)
        b.li("r2", 42)
        b.li("r3", 50)
        with b.loop_down("r3"):
            b.sw("r2", "r1", 0)
            b.lw("r4", "r1", 0)
        b.halt()
        prog = b.build()
        cfg = CFG(prog)
        trace = run_program(prog)
        profile = profile_trace(trace, cfg)
        store_pc = next(pc for pc, i in enumerate(prog.instructions) if i.is_store)
        load_pc = next(pc for pc, i in enumerate(prog.instructions) if i.is_load)
        assert profile.mem_edges[load_pc][store_pc] == 50


class TestLoopProfiles:
    def test_iteration_counts(self, gather_profile):
        prog, cfg, profile = gather_profile
        loop = next(iter(cfg.loops.values()))
        lp = profile.loops[loop.header]
        assert lp.iterations == 600

    def test_d_cycle_positive_and_scales_with_latency(self, gather_profile):
        prog, cfg, profile = gather_profile
        loop = next(iter(cfg.loops.values()))
        lp = profile.loops[loop.header]
        short = lp.d_cycle(LatencyConfig(1, 4, 40))
        long = lp.d_cycle(LatencyConfig(1, 20, 200))
        assert 0 < short < long

    def test_nested_loop_accumulation(self):
        b = ProgramBuilder()
        b.li("r1", 10)
        outer = b.here("outer")
        b.li("r2", 5)
        inner = b.here("inner")
        b.addi("r2", "r2", -1)
        b.bgtz("r2", inner)
        b.addi("r1", "r1", -1)
        b.bgtz("r1", outer)
        b.halt()
        prog = b.build()
        cfg = CFG(prog)
        profile = profile_trace(run_program(prog), cfg)
        inner_hdr = next(h for h, l in cfg.loops.items() if l.depth == 2)
        outer_hdr = next(h for h, l in cfg.loops.items() if l.depth == 1)
        assert profile.loops[inner_hdr].iterations == 50
        assert profile.loops[outer_hdr].iterations == 10
        # the outer loop's dynamic instructions include the inner loop's
        assert (profile.loops[outer_hdr].dyn_instrs
                > profile.loops[inner_hdr].dyn_instrs)

    def test_empty_loop_profile_d_cycle(self, gather_profile):
        from repro.compiler import LoopProfile
        assert LoopProfile(0).d_cycle(LatencyConfig()) == 0.0
