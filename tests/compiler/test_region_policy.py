"""Region-policy alternatives in the slicer."""

import numpy as np
import pytest

from repro.compiler import CFG, SlicerConfig, profile_trace, select_region
from repro.functional import run_program
from repro.isa import ProgramBuilder


@pytest.fixture(scope="module")
def triple_nest():
    """Three nested loops with a delinquent gather in the innermost."""
    rng = np.random.default_rng(4)
    n = 1 << 12
    b = ProgramBuilder(mem_bytes=4 << 20)
    base = b.alloc(n, init=rng.integers(0, n, size=n).astype(np.int64))
    b.li("r1", 8)
    outer = b.here("outer")
    b.li("r2", 6)
    mid = b.here("mid")
    b.li("r3", 20)
    b.li("r4", base)
    inner = b.here("inner")
    b.lw("r5", "r4", 0)
    b.slli("r6", "r5", 3)
    b.andi("r6", "r6", (n - 1) * 8)
    b.add("r7", "r6", "r4")
    b.lw("r8", "r7", 0)            # delinquent gather
    b.addi("r4", "r4", 8)
    b.addi("r3", "r3", -1)
    b.bgtz("r3", inner)
    b.addi("r2", "r2", -1)
    b.bgtz("r2", mid)
    b.addi("r1", "r1", -1)
    b.bgtz("r1", outer)
    b.halt()
    prog = b.build()
    cfg = CFG(prog)
    profile = profile_trace(run_program(prog, max_instructions=50_000), cfg)
    dload = max(pc for pc, i in enumerate(prog.instructions) if i.is_load)
    return cfg, profile, dload


class TestRegionPolicies:
    def test_innermost_stays_put(self, triple_nest):
        cfg, profile, dload = triple_nest
        region, _ = select_region(cfg, profile, dload,
                                  SlicerConfig(region_policy="innermost"))
        assert region.depth == 3

    def test_outermost_ignores_budget(self, triple_nest):
        cfg, profile, dload = triple_nest
        region, _ = select_region(
            cfg, profile, dload,
            SlicerConfig(region_policy="outermost", dcycle_budget=0.001))
        assert region.depth == 1

    def test_budget_is_between(self, triple_nest):
        cfg, profile, dload = triple_nest
        inner, _ = select_region(cfg, profile, dload,
                                 SlicerConfig(region_policy="innermost"))
        outer, _ = select_region(cfg, profile, dload,
                                 SlicerConfig(region_policy="outermost"))
        budget, _ = select_region(cfg, profile, dload,
                                  SlicerConfig(region_policy="budget"))
        assert outer.depth <= budget.depth <= inner.depth

    def test_nesting_is_monotone(self, triple_nest):
        cfg, profile, dload = triple_nest
        inner, _ = select_region(cfg, profile, dload,
                                 SlicerConfig(region_policy="innermost"))
        outer, _ = select_region(cfg, profile, dload,
                                 SlicerConfig(region_policy="outermost"))
        assert inner.body <= outer.body

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SlicerConfig(region_policy="everything")

    def test_accumulated_dcycle_grows_with_region(self, triple_nest):
        cfg, profile, dload = triple_nest
        _, d_inner = select_region(cfg, profile, dload,
                                   SlicerConfig(region_policy="innermost"))
        _, d_outer = select_region(cfg, profile, dload,
                                   SlicerConfig(region_policy="outermost"))
        assert d_outer > d_inner > 0
