"""Cross-module integration: the full compile→trace→simulate path and the
headline invariants of the reproduction (reduced scale)."""

import pytest

from repro.core import BASELINE, SPEAR_128, SPEAR_256
from repro.harness import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(instruction_scale=0.35)


class TestHeadlineInvariants:
    def test_mcf_gains_substantially(self, runner):
        assert runner.speedup("mcf", SPEAR_128, BASELINE) > 1.10
        assert runner.speedup("mcf", SPEAR_256, BASELINE) > 1.15

    def test_field_is_flat(self):
        # full scale: the reduced-scale warmup window is too short to get
        # field past its cold first pass, which is the very artifact the
        # warmup exists to remove
        full = ExperimentRunner()
        s = full.speedup("field", SPEAR_256, BASELINE)
        assert 0.93 < s < 1.07

    def test_pointer_gains(self, runner):
        assert runner.speedup("pointer", SPEAR_128, BASELINE) > 1.05

    def test_miss_reduction_on_gainers(self, runner):
        for wl in ("mcf", "pointer"):
            base = runner.run(wl, BASELINE).main_l1_misses
            spear = runner.run(wl, SPEAR_256).main_l1_misses
            assert spear < base

    def test_spear_never_catastrophic(self, runner):
        """SPEAR may lose slightly (paper: up to -6.2%) but never melts."""
        for wl in ("tr", "gzip", "fft", "field"):
            assert runner.speedup(wl, SPEAR_128, BASELINE) > 0.85


class TestCompilerHardwareContract:
    def test_compiled_dloads_trigger_in_hardware(self, runner):
        res = runner.run("mcf", SPEAR_128)
        art = runner.artifacts("mcf")
        assert len(art.binary.table) > 0
        assert res.stats.spear.triggers > 0
        assert res.stats.spear.pthread_instrs > 0

    def test_pthread_accesses_attributed(self, runner):
        res = runner.run("mcf", SPEAR_128)
        pt_stats = res.memory["threads"][1]
        assert pt_stats["accesses"] == res.stats.spear.pthread_loads + \
            (pt_stats["accesses"] - res.stats.spear.pthread_loads)
        assert pt_stats["accesses"] > 0

    def test_no_dloads_means_no_triggers(self, runner):
        res = runner.run("field", SPEAR_128)
        art = runner.artifacts("field")
        if len(art.binary.table) == 0:
            assert res.stats.spear.triggers == 0

    def test_binary_roundtrip_preserves_behaviour(self, runner, tmp_path):
        from repro.core import SpearBinary
        art = runner.artifacts("pointer")
        path = tmp_path / "pointer.spear.json"
        art.binary.save(path)
        again = SpearBinary.load(path)
        assert again.table.dload_pcs == art.binary.table.dload_pcs


class TestDeterminism:
    def test_same_run_twice_identical(self):
        r1 = ExperimentRunner(instruction_scale=0.2)
        r2 = ExperimentRunner(instruction_scale=0.2)
        a = r1.run("update", SPEAR_128)
        b = r2.run("update", SPEAR_128)
        assert a.stats.cycles == b.stats.cycles
        assert a.main_l1_misses == b.main_l1_misses
        assert a.stats.spear.triggers == b.stats.spear.triggers
