"""IntervalSampler delta accounting."""

import pytest

from repro.observe import IntervalSampler


class TestIntervalSampler:
    def test_differences_cumulative_counters(self):
        s = IntervalSampler(interval=100)
        s.take(100, 80, 500, 1000, 40, 30, 6)
        s.take(200, 240, 1500, 1800, 140, 90, 8)
        first, second = s.samples
        assert first["committed"] == 80 and first["ipc"] == 0.8
        assert second["committed"] == 160 and second["ipc"] == 1.6
        assert second["avg_ifq_occupancy"] == 10.0
        assert second["avg_ruu_occupancy"] == 8.0
        assert second["mode_residency"] == 1.0
        assert second["l1_accesses"] == 60
        assert second["l1_misses"] == 2
        assert second["l1_miss_rate"] == pytest.approx(2 / 60)

    def test_partial_tail_interval(self):
        s = IntervalSampler(interval=100)
        s.take(100, 50, 0, 0, 0, 0, 0)
        s.take(130, 80, 0, 0, 0, 0, 0)
        assert s.samples[-1]["cycles"] == 30
        assert s.samples[-1]["committed"] == 30
        assert s.samples[-1]["ipc"] == 1.0

    def test_duplicate_boundary_ignored(self):
        """A run ending exactly on a boundary takes the same cycle twice."""
        s = IntervalSampler(interval=100)
        s.take(100, 50, 0, 0, 0, 10, 1)
        s.take(100, 50, 0, 0, 0, 10, 1)
        assert len(s.samples) == 1

    def test_zero_access_interval_has_zero_miss_rate(self):
        s = IntervalSampler()
        s.take(1000, 10, 0, 0, 0, 0, 0)
        assert s.samples[0]["l1_miss_rate"] == 0.0

    def test_timeline_shape(self):
        s = IntervalSampler(interval=50)
        s.take(50, 10, 0, 0, 0, 0, 0)
        tl = s.timeline()
        assert tl["interval"] == 50
        assert len(tl["samples"]) == 1
        # timeline() copies: mutating it can't corrupt the sampler
        tl["samples"].clear()
        assert len(s.samples) == 1

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            IntervalSampler(interval=0)


class TestPerThread:
    def test_differences_per_thread_counters(self):
        s = IntervalSampler(interval=100)
        s.take(100, 50, 0, 0, 0, 10, 1,
               per_thread=((40, 60, 10, 1), (10, 20, 8, 4)))
        s.take(200, 150, 0, 0, 0, 30, 3,
               per_thread=((120, 140, 30, 3), (30, 60, 16, 8)))
        main, pthread = s.thread_samples
        assert [x["completed"] for x in main] == [40, 80]
        assert [x["completed"] for x in pthread] == [10, 20]
        assert main[1]["ipc"] == 0.8
        assert pthread[1]["issued"] == 40
        # issue share is of the interval's total issue, per interval
        assert main[0]["issue_share"] == pytest.approx(60 / 80)
        assert pthread[1]["issue_share"] == pytest.approx(40 / 120)
        assert pthread[0]["l1_miss_rate"] == pytest.approx(4 / 8)

    def test_per_thread_optional_and_backwards_compatible(self):
        s = IntervalSampler(interval=100)
        s.take(100, 50, 0, 0, 0, 0, 0)
        assert s.thread_samples == []
        assert "per_thread" not in s.timeline()

    def test_timeline_per_thread_shape(self):
        s = IntervalSampler(interval=100)
        s.take(100, 50, 0, 0, 0, 10, 1,
               per_thread=((40, 60, 10, 1), (10, 20, 8, 4)))
        tl = s.timeline()
        assert [t["thread"] for t in tl["per_thread"]] == [0, 1]
        assert [t["name"] for t in tl["per_thread"]] == ["main", "pthread"]
        # series parallel to the global one
        for t in tl["per_thread"]:
            assert len(t["samples"]) == len(tl["samples"])
            assert t["samples"][0]["cycle"] == tl["samples"][0]["cycle"]
        # timeline() copies the per-thread series too
        tl["per_thread"][1]["samples"].clear()
        assert len(s.thread_samples[1]) == 1

    def test_zero_issue_interval_share_is_zero(self):
        s = IntervalSampler(interval=100)
        s.take(100, 0, 0, 0, 0, 0, 0,
               per_thread=((0, 0, 0, 0), (0, 0, 0, 0)))
        for series in s.thread_samples:
            assert series[0]["issue_share"] == 0.0
            assert series[0]["l1_miss_rate"] == 0.0

    def test_duplicate_boundary_skips_threads_too(self):
        s = IntervalSampler(interval=100)
        s.take(100, 50, 0, 0, 0, 0, 0,
               per_thread=((40, 60, 10, 1), (10, 20, 8, 4)))
        s.take(100, 50, 0, 0, 0, 0, 0,
               per_thread=((40, 60, 10, 1), (10, 20, 8, 4)))
        assert len(s.thread_samples[0]) == 1
