"""IntervalSampler delta accounting."""

import pytest

from repro.observe import IntervalSampler


class TestIntervalSampler:
    def test_differences_cumulative_counters(self):
        s = IntervalSampler(interval=100)
        s.take(100, 80, 500, 1000, 40, 30, 6)
        s.take(200, 240, 1500, 1800, 140, 90, 8)
        first, second = s.samples
        assert first["committed"] == 80 and first["ipc"] == 0.8
        assert second["committed"] == 160 and second["ipc"] == 1.6
        assert second["avg_ifq_occupancy"] == 10.0
        assert second["avg_ruu_occupancy"] == 8.0
        assert second["mode_residency"] == 1.0
        assert second["l1_accesses"] == 60
        assert second["l1_misses"] == 2
        assert second["l1_miss_rate"] == pytest.approx(2 / 60)

    def test_partial_tail_interval(self):
        s = IntervalSampler(interval=100)
        s.take(100, 50, 0, 0, 0, 0, 0)
        s.take(130, 80, 0, 0, 0, 0, 0)
        assert s.samples[-1]["cycles"] == 30
        assert s.samples[-1]["committed"] == 30
        assert s.samples[-1]["ipc"] == 1.0

    def test_duplicate_boundary_ignored(self):
        """A run ending exactly on a boundary takes the same cycle twice."""
        s = IntervalSampler(interval=100)
        s.take(100, 50, 0, 0, 0, 10, 1)
        s.take(100, 50, 0, 0, 0, 10, 1)
        assert len(s.samples) == 1

    def test_zero_access_interval_has_zero_miss_rate(self):
        s = IntervalSampler()
        s.take(1000, 10, 0, 0, 0, 0, 0)
        assert s.samples[0]["l1_miss_rate"] == 0.0

    def test_timeline_shape(self):
        s = IntervalSampler(interval=50)
        s.take(50, 10, 0, 0, 0, 0, 0)
        tl = s.timeline()
        assert tl["interval"] == 50
        assert len(tl["samples"]) == 1
        # timeline() copies: mutating it can't corrupt the sampler
        tl["samples"].clear()
        assert len(s.samples) == 1

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            IntervalSampler(interval=0)
