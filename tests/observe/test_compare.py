"""Timeline diffing: alignment, interpolation, attribution, edge cases."""

import pytest

from repro.observe import (EXTRACT, FILL, PREFETCH, TimelineAlignmentError,
                           TraceEvent, count_pe_events, diff_timelines)


def timeline(interval, rows, per_thread=None):
    """Build a timeline dict from (cycles, committed) pairs."""
    samples = []
    cycle = 0
    for cycles, committed in rows:
        cycle += cycles
        samples.append({"cycle": cycle, "cycles": cycles,
                        "committed": committed,
                        "ipc": committed / cycles})
    tl = {"interval": interval, "samples": samples}
    if per_thread is not None:
        tl["per_thread"] = per_thread
    return tl


class TestAlignmentErrors:
    def test_interval_mismatch_raises(self):
        base = timeline(100, [(100, 50)])
        model = timeline(200, [(200, 50)])
        with pytest.raises(TimelineAlignmentError, match="intervals differ"):
            diff_timelines(base, model)

    def test_committed_total_mismatch_raises(self):
        base = timeline(100, [(100, 50), (100, 50)])
        model = timeline(100, [(100, 90)])
        with pytest.raises(TimelineAlignmentError,
                           match="different instruction totals"):
            diff_timelines(base, model)

    def test_mismatch_never_truncates_silently(self):
        """A shorter model run with a *different* committed total must
        raise, not be diffed against a truncated baseline."""
        base = timeline(100, [(100, 60), (100, 60), (100, 60)])
        model = timeline(100, [(100, 60), (100, 60)])
        with pytest.raises(TimelineAlignmentError):
            diff_timelines(base, model)


class TestUnequalLengths:
    def test_faster_model_fewer_intervals(self):
        """Different lengths with equal committed totals are the normal
        case; the final cumulative saving is exactly the cycle gap."""
        base = timeline(100, [(100, 40), (100, 40), (100, 40), (100, 40)])
        model = timeline(100, [(100, 80), (100, 80)])
        d = diff_timelines(base, model)
        assert len(d.rows) == 2
        assert d.base_cycles == 400 and d.model_cycles == 200
        assert d.total_cycles_saved == pytest.approx(
            d.base_cycles - d.model_cycles)
        assert d.base_tail_cycles == 200
        assert d.speedup == pytest.approx(2.0)

    def test_interpolation_inside_crossing_interval(self):
        # Model commits 60 by cycle 100; baseline commits 40 + 40, so the
        # 60th commit lands halfway through the second baseline interval.
        base = timeline(100, [(100, 40), (100, 40)])
        model = timeline(100, [(100, 60), (50, 20)])
        d = diff_timelines(base, model)
        assert d.rows[0]["base_cycles_at"] == pytest.approx(150.0)
        assert d.rows[0]["cycles_saved"] == pytest.approx(50.0)
        assert d.rows[1]["cycles_saved"] == pytest.approx(
            d.base_cycles - d.model_cycles)

    def test_ipc_grid_shares_index(self):
        base = timeline(100, [(100, 40), (100, 40)])
        model = timeline(100, [(100, 80)])
        d = diff_timelines(base, model)
        assert d.rows[0]["ipc_base"] == pytest.approx(0.4)
        assert d.rows[0]["ipc_model"] == pytest.approx(0.8)
        assert d.rows[0]["ipc_delta"] == pytest.approx(0.4)


class TestZeroDelta:
    def test_identical_runs_all_neutral(self):
        rows = [(100, 50), (100, 70), (100, 50)]
        d = diff_timelines(timeline(100, rows), timeline(100, rows))
        assert d.total_cycles_saved == pytest.approx(0.0)
        assert [r["attribution"] for r in d.rows] == ["neutral"] * 3
        assert d.attribution_summary()["neutral"] == 3
        assert d.attributed_fraction == 0.0
        assert all(abs(r["saved_delta"]) < 0.5 for r in d.rows)

    def test_empty_timelines(self):
        d = diff_timelines(timeline(100, []), timeline(100, []))
        assert d.rows == []
        assert d.total_cycles_saved == 0.0
        assert d.base_tail_cycles == 0


class TestAttribution:
    def test_win_with_pe_events_is_pre_execution(self):
        base = timeline(100, [(100, 40), (100, 40)])
        model = timeline(100, [(100, 80)])
        events = [TraceEvent(10, EXTRACT, thread=1),
                  TraceEvent(20, FILL)]
        d = diff_timelines(base, model, events)
        assert d.rows[0]["attribution"] == "pre-execution"
        assert d.rows[0]["extracts"] == 1
        assert d.rows[0]["fills"] == 1
        assert d.attributed_fraction == pytest.approx(1.0)

    def test_win_without_events_is_variance(self):
        base = timeline(100, [(100, 40), (100, 40)])
        model = timeline(100, [(100, 80)])
        d = diff_timelines(base, model, [])
        assert d.rows[0]["attribution"] == "variance"

    def test_prefetch_alone_does_not_attribute(self):
        """PREFETCH requests are counted but only extracts/fills witness
        pre-execution (a request that never fills moved no data)."""
        base = timeline(100, [(100, 40), (100, 40)])
        model = timeline(100, [(100, 80)])
        d = diff_timelines(base, model, [TraceEvent(10, PREFETCH)])
        assert d.rows[0]["prefetches"] == 1
        assert d.rows[0]["attribution"] == "variance"

    def test_losing_interval_is_regression(self):
        # Model is slower in its first interval (20 vs 40 committed),
        # then catches up.
        base = timeline(100, [(100, 40), (100, 40)])
        model = timeline(100, [(100, 20), (100, 60)])
        d = diff_timelines(base, model)
        assert d.rows[0]["attribution"] == "regression"
        assert d.rows[0]["cycles_saved"] < 0

    def test_pt_completed_from_per_thread_series(self):
        base = timeline(100, [(100, 40), (100, 40)])
        model = timeline(100, [(100, 80)], per_thread=[
            {"thread": 0, "name": "main", "samples": [{"completed": 75}]},
            {"thread": 1, "name": "pthread", "samples": [{"completed": 5}]},
        ])
        d = diff_timelines(base, model)
        assert d.rows[0]["pt_completed"] == 5


class TestCountPeEvents:
    def test_window_boundaries_inclusive(self):
        events = [TraceEvent(0, EXTRACT), TraceEvent(99, EXTRACT),
                  TraceEvent(100, FILL), TraceEvent(150, PREFETCH),
                  TraceEvent(999, EXTRACT)]
        counts = count_pe_events(events, [100, 200])
        # Window 0 covers cycles [0, 100); cycle-100 events land in
        # window 1 ((100, 200]); events past the last boundary drop.
        assert counts[0] == {"extracts": 2, "prefetches": 0, "fills": 0}
        assert counts[1] == {"extracts": 0, "prefetches": 1, "fills": 1}

    def test_non_pe_kinds_ignored(self):
        counts = count_pe_events([TraceEvent(5, "commit")], [100])
        assert counts[0] == {"extracts": 0, "prefetches": 0, "fills": 0}

    def test_empty_boundaries(self):
        assert count_pe_events([TraceEvent(5, EXTRACT)], []) == []


class TestDiffMetadata:
    def test_names_carried(self):
        rows = [(100, 50)]
        d = diff_timelines(timeline(100, rows), timeline(100, rows),
                           workload="ll4", base_name="baseline",
                           model_name="SPEAR-128")
        assert (d.workload, d.base_name, d.model_name) == \
            ("ll4", "baseline", "SPEAR-128")
        assert d.interval == 100
