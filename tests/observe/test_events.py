"""TraceEvent serialization and filtering."""

import json

import pytest

from repro.observe import (EVENT_KINDS, MODE_NAMES, TraceEvent, filter_events,
                           serialize_events)


class TestTraceEvent:
    def test_json_round_trip(self):
        e = TraceEvent(42, "issue", 1, 0x20, 137, "load:12")
        assert TraceEvent.from_json(e.to_json()) == e

    def test_to_json_is_valid_json(self):
        e = TraceEvent(0, "mode", info='IDLE->DRAIN "quoted"')
        d = json.loads(e.to_json())
        assert d == {"cycle": 0, "kind": "mode", "thread": -1, "pc": -1,
                     "trace_idx": -1, "info": 'IDLE->DRAIN "quoted"'}

    def test_defaults(self):
        e = TraceEvent(7, "commit")
        assert (e.thread, e.pc, e.trace_idx, e.info) == (-1, -1, -1, "")

    def test_canonical_bytes_stable(self):
        """The byte format is pinned: key order, no spaces."""
        assert TraceEvent(1, "fetch", 0, 2, 3, "x").to_json() == \
            '{"cycle":1,"kind":"fetch","thread":0,"pc":2,"trace_idx":3,' \
            '"info":"x"}'

    def test_kind_and_mode_vocabulary(self):
        assert len(EVENT_KINDS) == len(set(EVENT_KINDS)) == 11
        assert "policy-decision" in EVENT_KINDS
        assert MODE_NAMES == ("IDLE", "DRAIN", "COPY", "ACTIVE")


class TestSerializeEvents:
    def test_jsonl_with_trailing_newline(self):
        events = [TraceEvent(i, "commit") for i in range(3)]
        text = serialize_events(events)
        assert text.endswith("\n")
        lines = text.splitlines()
        assert len(lines) == 3
        assert [TraceEvent.from_json(ln) for ln in lines] == events

    def test_empty_stream(self):
        assert serialize_events([]) == ""


class TestFilterEvents:
    @pytest.fixture
    def stream(self):
        return [TraceEvent(0, "fetch", 0, 1, 0),
                TraceEvent(5, "issue", 0, 1, 0),
                TraceEvent(5, "issue", 1, 2, 3),
                TraceEvent(9, "commit", 0, 1, 0),
                TraceEvent(12, "mode")]

    def test_no_filters_keeps_all(self, stream):
        assert filter_events(stream) == stream

    def test_kind_filter(self, stream):
        out = filter_events(stream, kinds=["issue"])
        assert len(out) == 2 and all(e.kind == "issue" for e in out)

    def test_cycle_range_inclusive(self, stream):
        out = filter_events(stream, cycle_range=(5, 9))
        assert [e.cycle for e in out] == [5, 5, 9]

    def test_thread_filter(self, stream):
        out = filter_events(stream, thread=1)
        assert out == [TraceEvent(5, "issue", 1, 2, 3)]

    def test_filters_compose(self, stream):
        out = filter_events(stream, kinds=["issue", "commit"],
                            cycle_range=(0, 9), thread=0)
        assert [e.kind for e in out] == ["issue", "commit"]
