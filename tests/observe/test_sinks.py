"""Trace sinks: ring buffer semantics and JSONL streaming."""

import io

import pytest

from repro.observe import (JsonlStreamSink, RingBufferSink, TraceEvent,
                           TraceSink)


def events(n, kind="commit"):
    return [TraceEvent(i, kind) for i in range(n)]


class TestRingBufferSink:
    def test_satisfies_protocol(self):
        assert isinstance(RingBufferSink(), TraceSink)
        assert isinstance(JsonlStreamSink(io.StringIO()), TraceSink)

    def test_keeps_newest_on_overflow(self):
        sink = RingBufferSink(capacity=4)
        for e in events(10):
            sink.emit(e)
        assert [e.cycle for e in sink.events()] == [6, 7, 8, 9]
        assert sink.emitted == 10
        assert sink.dropped == 6
        assert len(sink) == 4

    def test_unbounded_capacity(self):
        sink = RingBufferSink(capacity=None)
        for e in events(100):
            sink.emit(e)
        assert len(sink) == 100 and sink.dropped == 0
        assert sink.capacity is None

    def test_kind_filter_applies_before_counting(self):
        sink = RingBufferSink(kinds=["mode"])
        sink.emit(TraceEvent(0, "commit"))
        sink.emit(TraceEvent(1, "mode"))
        assert sink.emitted == 1
        assert [e.kind for e in sink.events()] == ["mode"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_serialize_matches_events(self):
        sink = RingBufferSink()
        for e in events(3):
            sink.emit(e)
        assert sink.serialize() == "".join(e.to_json() + "\n"
                                           for e in sink.events())


class TestJsonlStreamSink:
    def test_writes_jsonl_to_stream(self):
        buf = io.StringIO()
        sink = JsonlStreamSink(buf)
        for e in events(3):
            sink.emit(e)
        sink.close()   # flushes, does not close a borrowed stream
        lines = buf.getvalue().splitlines()
        assert [TraceEvent.from_json(ln) for ln in lines] == events(3)
        assert sink.emitted == 3
        assert not buf.closed

    def test_owns_file_when_given_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlStreamSink(path)
        sink.emit(TraceEvent(0, "fetch", 0, 1, 2))
        sink.close()
        assert TraceEvent.from_json(path.read_text().strip()) == \
            TraceEvent(0, "fetch", 0, 1, 2)

    def test_kind_filter(self):
        buf = io.StringIO()
        sink = JsonlStreamSink(buf, kinds=["issue"])
        sink.emit(TraceEvent(0, "commit"))
        assert buf.getvalue() == "" and sink.emitted == 0
