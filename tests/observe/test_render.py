"""Renderers: sparkline mapping, SVG well-formedness and determinism."""

import pytest

from repro.observe import (EXTRACT, TraceEvent, diff_timelines,
                           render_diff_svg, render_diff_text, render_report,
                           render_timeline_svg, render_timeline_text,
                           sparkline)
from repro.observe.render import MAX_DIFF_ROWS, SPARK_CHARS


def sample(cycle, cycles, committed, **over):
    s = {"cycle": cycle, "cycles": cycles, "committed": committed,
         "ipc": committed / cycles, "avg_ifq_occupancy": 4.0,
         "avg_ruu_occupancy": 8.0, "mode_residency": 0.25,
         "l1_accesses": 30, "l1_misses": 3, "l1_miss_rate": 0.1}
    s.update(over)
    return s


def thread_sample(cycle, completed, issued, **over):
    s = {"cycle": cycle, "completed": completed,
         "ipc": completed / 100, "issued": issued, "issue_share": 0.5,
         "l1_accesses": 10, "l1_misses": 1, "l1_miss_rate": 0.1}
    s.update(over)
    return s


def make_timeline(n=4, per_thread=True):
    tl = {"interval": 100,
          "samples": [sample((i + 1) * 100, 100, 50 + 10 * i)
                      for i in range(n)]}
    if per_thread:
        tl["per_thread"] = [
            {"thread": 0, "name": "main",
             "samples": [thread_sample((i + 1) * 100, 45 + 10 * i, 60)
                         for i in range(n)]},
            {"thread": 1, "name": "pthread",
             "samples": [thread_sample((i + 1) * 100, 5, 10)
                         for i in range(n)]},
        ]
    return tl


def make_diff(n_base=4, n_model=2, events=True):
    base = {"interval": 100,
            "samples": [sample((i + 1) * 100, 100, 40)
                        for i in range(n_base)]}
    total = 40 * n_base
    per = total // n_model
    model = {"interval": 100,
             "samples": [sample((i + 1) * 100, 100, per)
                         for i in range(n_model)]}
    evs = [TraceEvent(10, EXTRACT, thread=1)] if events else []
    return diff_timelines(base, model, evs, workload="w",
                          base_name="base", model_name="model")


class TestSparkline:
    def test_full_ramp_uses_every_char(self):
        assert sparkline(list(range(8))) == SPARK_CHARS

    def test_flat_series_is_floor(self):
        assert sparkline([3.0, 3.0, 3.0]) == SPARK_CHARS[0] * 3

    def test_empty(self):
        assert sparkline([]) == ""

    def test_explicit_range_shared_scale(self):
        # With a shared [0, 10] scale, 5 maps to the middle of the ramp.
        out = sparkline([5.0], 0.0, 10.0)
        assert out == SPARK_CHARS[4]

    def test_values_clamped_to_range(self):
        out = sparkline([-5.0, 50.0], 0.0, 10.0)
        assert out == SPARK_CHARS[0] + SPARK_CHARS[-1]


class TestTextRenderers:
    def test_timeline_text_has_per_thread_rows(self):
        out = render_timeline_text(make_timeline(), "demo")
        assert "demo" in out and "ipc" in out
        assert "main ipc" in out and "pthread ipc" in out
        assert "pthread issue" in out

    def test_diff_text_marks_attribution(self):
        out = render_diff_text(make_diff())
        assert "base ipc" in out and "model ipc" in out
        assert "cycles saved" in out
        assert "#" in out   # the pre-execution interval mark

    def test_without_per_thread_no_thread_rows(self):
        out = render_timeline_text(make_timeline(per_thread=False))
        assert "pthread" not in out


class TestSvg:
    def test_timeline_svg_wellformed(self):
        svg = render_timeline_svg(make_timeline(), "demo")
        assert svg.startswith("<svg ")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<polyline") >= 4   # ipc, pthread ipc, mode, miss
        assert "demo" in svg

    def test_diff_svg_has_attribution_bars(self):
        svg = render_diff_svg(make_diff())
        assert svg.startswith("<svg ")
        assert "#2ca02c" in svg   # pre-execution fill colour
        assert svg.count("<rect") >= len(make_diff().rows)

    def test_svg_is_deterministic(self):
        a = render_timeline_svg(make_timeline(), "t")
        b = render_timeline_svg(make_timeline(), "t")
        assert a == b
        a = render_diff_svg(make_diff())
        b = render_diff_svg(make_diff())
        assert a == b

    def test_svg_self_contained(self):
        """No external references: the SVG must render offline as-is."""
        for svg in (render_timeline_svg(make_timeline()),
                    render_diff_svg(make_diff())):
            assert "http" not in svg.replace(
                "http://www.w3.org/2000/svg", "")
            assert "<script" not in svg and "@import" not in svg

    def test_single_sample_timeline(self):
        svg = render_timeline_svg(make_timeline(n=1))
        assert svg.startswith("<svg ")


class TestReport:
    def test_report_sections(self):
        diff = make_diff()
        fills = {"prefetcher": {"attempts": 5, "fills": 4, "timely": 3,
                                "late": 1, "unused": 0, "redundant": 1}}
        out = render_report(diff, make_timeline(), model_fills=fills,
                            base_ipc=0.4, model_ipc=0.8)
        assert out.startswith("# repro report — w: base vs model")
        assert "## Timelines" in out
        assert "## Per-interval attribution" in out
        assert "## Per-thread series" in out
        assert "## Fill timeliness" in out
        assert "## Figure" in out and "<svg " in out
        assert "prefetcher" in out and "75.0%" in out

    def test_report_deterministic(self):
        kw = dict(base_ipc=0.4, model_ipc=0.8)
        a = render_report(make_diff(), make_timeline(), **kw)
        b = render_report(make_diff(), make_timeline(), **kw)
        assert a == b

    def test_long_diff_elided(self):
        n = MAX_DIFF_ROWS + 36
        base = {"interval": 100,
                "samples": [sample((i + 1) * 100, 100, 40)
                            for i in range(n)]}
        model = {"interval": 100,
                 "samples": [sample((i + 1) * 100, 100, 40)
                             for i in range(n)]}
        diff = diff_timelines(base, model, workload="w",
                              base_name="b", model_name="m")
        out = render_report(diff, model)
        assert "middle intervals elided" in out
        # Table keeps head + tail, not all n rows.
        table_lines = [ln for ln in out.splitlines()
                       if ln.startswith("| ") and "attribution" not in ln]
        assert len(table_lines) < n

    def test_report_without_fills_or_threads(self):
        out = render_report(make_diff(), make_timeline(per_thread=False))
        assert "## Fill timeliness" not in out
        assert "## Per-thread series" not in out

    def test_no_fills_placeholder(self):
        fills = {"prefetcher": {"attempts": 0, "fills": 0, "timely": 0,
                                "late": 0, "unused": 0, "redundant": 0}}
        out = render_report(make_diff(), make_timeline(), model_fills=fills)
        assert "_no speculative fills in this run_" in out
