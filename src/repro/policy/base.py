"""Policy surface: names, the aggressiveness ladder, and the control law.

The paper fixes SPEAR's trigger at half-IFQ occupancy and leaves
chaining as a related-work aside.  PR 3's fill-attribution counters
(timely / late / unused / redundant) measure exactly what that choice
trades off — lead time against wasted pre-execution — so this module
closes the loop: a small *ladder* of operating points ordered by
aggressiveness, and a pure decision function :func:`propose` that maps
observed timeliness onto a ladder move.  Everything stateful (epoch
convergence, the in-run phase controller) builds on these two pieces;
see ``docs/adaptive-policy.md`` for the full specification.

Everything here is deterministic and side-effect-free: the same signals
always produce the same proposal, which is what makes adaptive runs
byte-reproducible across job counts, backends and crash/resume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

# ---------------------------------------------------------------------------
# Policy names
# ---------------------------------------------------------------------------

#: The policy used when none is requested — the paper's fixed half-IFQ
#: trigger, byte-identical to a run with no policy layer at all.
DEFAULT_POLICY = "fixed"

#: Names accepted wherever a policy knob appears (CLI, runner, cells).
POLICIES = ("fixed", "adaptive-epoch", "adaptive-phase")


def resolve_policy(name: str | None) -> str:
    """Validate a policy name (None means the default)."""
    if name is None:
        return DEFAULT_POLICY
    if name not in POLICIES:
        raise ValueError(f"unknown policy {name!r}; "
                         f"known: {', '.join(POLICIES)}")
    return name


# ---------------------------------------------------------------------------
# The aggressiveness ladder
# ---------------------------------------------------------------------------

#: Operating points ``(trigger_occupancy_fraction, chaining)`` ordered
#: from least to most aggressive.  L1 is the paper's default (half-IFQ
#: gate, no chaining) and the starting rung for the standard SPEAR
#: configs; L3/L4 add Collins-style chaining, which waives the occupancy
#: gate on retrigger and therefore buys coverage at the price of
#: possibly-wasted p-threads.
LEVELS: tuple[tuple[float, bool], ...] = (
    (0.75, False),   # L0: conservative — demand a deep queue
    (0.50, False),   # L1: the paper's empirical choice (start here)
    (0.25, False),   # L2: trigger earlier for more lead time
    (0.25, True),    # L3: + chaining retriggers
    (0.00, True),    # L4: maximal — trigger on any d-load, chain freely
)


def start_level(config) -> int:
    """The ladder rung closest to ``config``'s own operating point.

    An exact ``(fraction, chaining)`` match wins; otherwise the nearest
    fraction among rungs with the same chaining setting, falling back to
    plain nearest-fraction.  Deterministic ties resolve to the lower
    (less aggressive) rung.
    """
    point = (config.trigger_occupancy_fraction, config.chaining)
    for i, lvl in enumerate(LEVELS):
        if lvl == point:
            return i
    same_chain = [i for i, (_, c) in enumerate(LEVELS) if c == point[1]]
    candidates = same_chain or list(range(len(LEVELS)))
    return min(candidates, key=lambda i: (abs(LEVELS[i][0] - point[0]), i))


# ---------------------------------------------------------------------------
# Feedback signals
# ---------------------------------------------------------------------------

#: Minimum p-thread fills a window/epoch must carry before the counters
#: are considered signal rather than noise.  Below this the controller
#: holds — the "balanced counters fall back to fixed behaviour" rule.
MIN_FILLS = 8


@dataclass(frozen=True)
class PolicySignals:
    """One window's worth of p-thread fill attribution (PR 3 counters).

    ``timely`` fills fully hid their latency, ``late`` fills only
    shortened a miss, ``unused`` fills were evicted untouched and
    ``redundant`` attempts targeted already-resident/in-flight blocks.
    Mid-run windows under-count ``unused`` (it resolves at eviction);
    the control law only ever compares it against timely+late, so a
    late-resolving eviction can delay but never invert a de-escalation.
    """

    fills: int = 0
    timely: int = 0
    late: int = 0
    unused: int = 0
    redundant: int = 0

    @classmethod
    def from_fill_stats(cls, fs) -> "PolicySignals":
        """Snapshot a live ``FillStats`` counter block."""
        return cls(fills=fs.fills, timely=fs.timely, late=fs.late,
                   unused=fs.unused, redundant=fs.redundant)

    def window_since(self, prev: "PolicySignals") -> "PolicySignals":
        """The delta accumulated since an earlier snapshot."""
        return PolicySignals(fills=self.fills - prev.fills,
                             timely=self.timely - prev.timely,
                             late=self.late - prev.late,
                             unused=self.unused - prev.unused,
                             redundant=self.redundant - prev.redundant)


def propose(level: int, signals: PolicySignals) -> tuple[int, str]:
    """The control law: map one window's signals to a ladder move.

    Returns ``(next_level, reason)``.  The rules, in priority order:

    * **hold** when ``fills < MIN_FILLS`` — too little signal to act on;
      the controller stays at the config's own operating point, i.e.
      fixed behaviour (the no-regression fallback).
    * **de-escalate** when ``unused > timely + late`` — most speculative
      fills were never touched, so pre-execution is wasting bandwidth
      and cache space; back down one rung.
    * **escalate** when ``late > timely`` — speculation helps but fires
      too late to hide the full latency; a lower gate (or chaining)
      starts p-threads earlier.
    * **hold** otherwise — the counters are balanced.
    """
    if signals.fills < MIN_FILLS:
        return level, "hold:insufficient-signal"
    if signals.unused > signals.timely + signals.late:
        return max(level - 1, 0), "de-escalate:unused-heavy"
    if signals.late > signals.timely:
        return min(level + 1, len(LEVELS) - 1), "escalate:late-heavy"
    return level, "hold:balanced"


# ---------------------------------------------------------------------------
# The protocol every policy implements
# ---------------------------------------------------------------------------

@runtime_checkable
class PolicyProtocol(Protocol):
    """What the harness needs from a trigger policy.

    Policies act at one of two layers, so the protocol has one hook per
    layer and every implementation answers both (with ``None`` for the
    layer it does not use):

    * :meth:`make_controller` returns an in-run controller to attach to
      the simulator (``policy=`` on the kernel constructor), or ``None``
      when the run should execute exactly as a plain fixed run.
    * :meth:`converge` drives a harness-level epoch loop via ``run_fn``
      (a callable mapping a :class:`~repro.core.MachineConfig` to a
      :class:`~repro.pipeline.PipelineResult`), returning the final
      ``(result, summary)`` — or ``None`` when the policy does not
      operate at that layer.
    """

    #: registry name of the policy
    name: str

    def make_controller(self, config):
        """In-run phase controller for ``config``, or None."""

    def converge(self, run_fn, config):
        """Epoch-converged ``(result, summary)`` via ``run_fn``, or None."""
