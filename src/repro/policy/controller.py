"""In-run phase controller for the ``adaptive-phase`` policy.

The controller rides on the simulator's cycle loop: every ``interval``
cycles (the same grid the interval sampler uses) it reads the window's
p-thread fill attribution, asks :func:`~repro.policy.base.propose` for a
ladder move, and — because the counters can recommend a move that turns
out to hurt — wraps every move in a measured trial:

``HOLD``
    The steady state.  On a proposed move the controller applies the new
    operating point immediately, remembers the pre-move window's
    committed-instruction count, and enters ``TRIAL``.
``TRIAL``
    One window later the trial window's committed count is compared with
    the pre-move window's.  Equal or better → **adopt** (stay, return to
    ``HOLD``); worse → **revert** to the previous operating point.
    Either way a cooldown of ``cooldown`` windows suppresses further
    moves so the machine settles before the next decision.

All comparisons are exact integer comparisons of committed-instruction
deltas over equal-length windows — no floating-point thresholds — so the
controller is bit-deterministic and the fast-forward kernel (which never
skips past a decision boundary; see ``fastforward.py``) reproduces the
decision sequence exactly.

Decisions are recorded as a flat series (rendered by ``repro analyze
--timeline`` and attached to ``PipelineResult.timeline["policy"]``) and
emitted as ``policy-decision`` trace events when a tracer is attached.
"""

from __future__ import annotations

from .base import LEVELS, PolicySignals, propose, start_level

#: Windows to sit out after an adopt or revert before proposing again.
COOLDOWN_WINDOWS = 2

_HOLD = 0
_TRIAL = 1


class PhaseController:
    """Per-run trigger-policy state machine (one instance per simulation).

    The simulator consults :meth:`tick` at every ``interval`` boundary
    (cycle ``c`` with ``(c + 1) % interval == 0``); the controller
    mutates the simulator's live operating point (``_trigger_occ`` /
    ``_chaining``) and returns True when it did, so the run loop can
    refresh its hoisted locals.
    """

    def __init__(self, config, *, interval: int = 1000,
                 cooldown: int = COOLDOWN_WINDOWS):
        self.interval = interval
        self.cooldown = cooldown
        self.level = start_level(config)
        #: the *actual* operating point, which starts at the config's own
        #: (possibly off-ladder) values and only snaps to ladder rungs on
        #: the first adopted move — so a controller that never moves is
        #: exactly the fixed policy.
        self.point = (config.trigger_occupancy_fraction, config.chaining)
        self.decisions: list[dict] = []
        self._state = _HOLD
        self._cooldown_left = 0
        self._prev_level = self.level
        self._prev_point = self.point
        self._base_committed_delta = 0
        self._last_committed = 0
        self._last_fills = PolicySignals()
        self.trials = self.adopted = self.reverted = 0

    # -- simulator hooks --------------------------------------------------

    def attach(self, sim) -> None:
        """Bind to a freshly constructed simulator and record the start."""
        self._record(sim, 0, "start", "", self.level, self.point)

    def tick(self, sim, cycle: int) -> bool:
        """One decision boundary; returns True if the operating point
        changed (the run loop must refresh its hoisted locals)."""
        from ..memory.hierarchy import PTHREAD_FILL

        fills = PolicySignals.from_fill_stats(sim.mem.fill_stats[PTHREAD_FILL])
        window = fills.window_since(self._last_fills)
        committed_delta = sim._committed - self._last_committed
        self._last_fills = fills
        self._last_committed = sim._committed

        changed = False
        if self._state == _TRIAL:
            self._state = _HOLD
            self._cooldown_left = self.cooldown
            if committed_delta >= self._base_committed_delta:
                self.adopted += 1
                self._record(sim, cycle, "adopt",
                             f"window:{committed_delta}>="
                             f"{self._base_committed_delta}",
                             self.level, self.point)
            else:
                self.reverted += 1
                self.level = self._prev_level
                self.point = self._prev_point
                self._apply(sim)
                changed = True
                self._record(sim, cycle, "revert",
                             f"window:{committed_delta}<"
                             f"{self._base_committed_delta}",
                             self.level, self.point)
        elif self._cooldown_left > 0:
            self._cooldown_left -= 1
        else:
            nxt, reason = propose(self.level, window)
            if nxt != self.level:
                self.trials += 1
                self._prev_level = self.level
                self._prev_point = self.point
                self._base_committed_delta = committed_delta
                self.level = nxt
                self.point = LEVELS[nxt]
                self._apply(sim)
                changed = True
                self._state = _TRIAL
                self._record(sim, cycle, "trial", reason,
                             self.level, self.point)
        return changed

    # -- reporting --------------------------------------------------------

    def series(self) -> list[dict]:
        """The decision series for ``timeline["policy"]`` — flat dicts so
        the generic timeline renderer can tabulate them."""
        return list(self.decisions)

    def summary(self) -> dict:
        """Stable flat summary for ``PipelineResult.policy``."""
        frac, chain = self.point
        return {
            "name": "adaptive-phase",
            "interval": self.interval,
            "trials": self.trials,
            "adopted": self.adopted,
            "reverted": self.reverted,
            "final_level": self.level,
            "final_fraction": frac,
            "final_chaining": chain,
            "label": (f"adaptive-phase level=L{self.level} frac={frac:g} "
                      f"chain={'on' if chain else 'off'} "
                      f"trials={self.trials} adopted={self.adopted} "
                      f"reverted={self.reverted}"),
        }

    # -- internals --------------------------------------------------------

    def _apply(self, sim) -> None:
        frac, chain = self.point
        sim._trigger_occ = int(sim.config.ifq_size * frac)
        sim._chaining = chain

    def _record(self, sim, cycle: int, action: str, reason: str,
                level: int, point: tuple[float, bool]) -> None:
        frac, chain = point
        self.decisions.append({"cycle": cycle, "action": action,
                               "level": level, "fraction": frac,
                               "chaining": int(chain), "reason": reason})
        tracer = sim._tracer
        if tracer is not None:
            from ..observe.events import POLICY, TraceEvent
            tracer.emit(TraceEvent(
                cycle, POLICY,
                info=f"{action} level=L{level} frac={frac:g} "
                     f"chain={'on' if chain else 'off'}"
                     + (f" reason={reason}" if reason else "")))
