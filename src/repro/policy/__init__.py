"""Trigger policies: closing the loop from fill timeliness to the trigger.

The paper fixes SPEAR's trigger at half-IFQ occupancy (§3.2, chosen
"empirically") and mentions chaining only as related work.  This package
turns both knobs into a *policy* decided from the observe/ subsystem's
fill-attribution counters:

* :mod:`~repro.policy.base` — the policy registry, the aggressiveness
  ladder (:data:`LEVELS`), the feedback signals and the pure control law
  (:func:`propose`), plus :class:`PolicyProtocol`.
* :mod:`~repro.policy.controller` — the in-run :class:`PhaseController`
  state machine behind ``adaptive-phase``.
* :mod:`~repro.policy.adaptive` — the three implementations and the
  :func:`make_policy` factory.

Specification (state machine, determinism and cache-key contracts):
``docs/adaptive-policy.md``.
"""

from .adaptive import (MAX_EPOCHS, AdaptiveEpochPolicy, AdaptivePhasePolicy,
                       FixedPolicy, make_policy)
from .base import (DEFAULT_POLICY, LEVELS, MIN_FILLS, POLICIES,
                   PolicyProtocol, PolicySignals, propose, resolve_policy,
                   start_level)
from .controller import COOLDOWN_WINDOWS, PhaseController

__all__ = [
    "DEFAULT_POLICY", "POLICIES", "LEVELS", "MIN_FILLS", "MAX_EPOCHS",
    "COOLDOWN_WINDOWS",
    "PolicyProtocol", "PolicySignals", "propose", "resolve_policy",
    "start_level",
    "FixedPolicy", "AdaptiveEpochPolicy", "AdaptivePhasePolicy",
    "PhaseController", "make_policy",
]
