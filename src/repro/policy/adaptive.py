"""The three trigger policies: fixed, adaptive-epoch, adaptive-phase.

``fixed``
    The paper's static half-IFQ trigger.  No controller, no epoch loop;
    a fixed-policy run is *the same code path* as a run with no policy
    layer at all, which is what keeps it byte-identical to the pre-policy
    tree (and keeps its cache/journal keys unchanged).
``adaptive-epoch``
    Per-workload convergence: repeated whole-run epochs, each re-decided
    from the previous epoch's end-of-run fill attribution, with a
    measured guard — a move is adopted only if the epoch's IPC did not
    drop.  Epoch 0 *is* the fixed run, so the converged result can never
    be worse than fixed (the ablation's no-regression guarantee).
``adaptive-phase``
    Per-phase adaptation inside a single run via
    :class:`~repro.policy.controller.PhaseController`: the operating
    point is re-decided at interval-sampler boundaries from windowed
    counters, with trial/revert self-correction.

See ``docs/adaptive-policy.md`` for the full specification.
"""

from __future__ import annotations

import dataclasses

from .base import (DEFAULT_POLICY, LEVELS, PolicySignals, propose,
                   resolve_policy, start_level)
from .controller import PhaseController

#: Upper bound on adaptive-epoch convergence runs beyond the fixed one.
MAX_EPOCHS = 4


class FixedPolicy:
    """The paper's fixed trigger: no feedback, no state."""

    name = "fixed"

    def make_controller(self, config):
        return None

    def converge(self, run_fn, config):
        return None


class AdaptiveEpochPolicy:
    """Whole-run hill climb over the ladder with an IPC adoption guard."""

    name = "adaptive-epoch"

    def __init__(self, max_epochs: int = MAX_EPOCHS):
        self.max_epochs = max_epochs

    def make_controller(self, config):
        return None

    def converge(self, run_fn, config):
        """Run epochs until the control law holds, a move is rejected, a
        rung repeats, or the epoch budget runs out.

        ``run_fn(config) -> PipelineResult`` executes one plain fixed
        run (memoized by the harness, so epoch 0 shares the ordinary
        results cache).  Returns ``(result, summary)`` where ``result``
        is the best epoch's result tagged with the policy summary.
        """
        level = start_level(config)
        point = (config.trigger_occupancy_fraction, config.chaining)
        best = run_fn(config)
        baseline_ipc = best.ipc
        trajectory = [f"L{level}"]
        seen = {level}
        epochs = 1
        reason = "hold"
        while epochs <= self.max_epochs:
            fills = best.memory["fills"]["pthread"]
            signals = PolicySignals(fills=fills["fills"],
                                    timely=fills["timely"],
                                    late=fills["late"],
                                    unused=fills["unused"],
                                    redundant=fills["redundant"])
            nxt, reason = propose(level, signals)
            if nxt == level:
                break
            if nxt in seen:
                reason = "revisit"
                break
            seen.add(nxt)
            frac, chain = LEVELS[nxt]
            cand_cfg = dataclasses.replace(
                config, trigger_occupancy_fraction=frac, chaining=chain)
            cand = run_fn(cand_cfg)
            epochs += 1
            if cand.ipc >= best.ipc:
                best, level, point = cand, nxt, (frac, chain)
                trajectory.append(f"L{level}")
            else:
                reason = "rejected:ipc-drop"
                break
        frac, chain = point
        summary = {
            "name": self.name,
            "epochs": epochs,
            "final_level": level,
            "final_fraction": frac,
            "final_chaining": chain,
            "baseline_ipc": baseline_ipc,
            "final_ipc": best.ipc,
            "trajectory": "->".join(trajectory),
            "stop_reason": reason,
            "label": (f"adaptive-epoch level=L{level} frac={frac:g} "
                      f"chain={'on' if chain else 'off'} epochs={epochs} "
                      f"path={'->'.join(trajectory)}"),
        }
        return dataclasses.replace(best, policy=summary), summary


class AdaptivePhasePolicy:
    """In-run windowed adaptation via :class:`PhaseController`."""

    name = "adaptive-phase"

    def __init__(self, interval: int = 1000):
        self.interval = interval

    def make_controller(self, config):
        if not config.spear_enabled:
            return None
        return PhaseController(config, interval=self.interval)

    def converge(self, run_fn, config):
        return None


def make_policy(name: str | None):
    """Instantiate a policy by registry name (None means the default)."""
    name = resolve_policy(name)
    if name == "adaptive-epoch":
        return AdaptiveEpochPolicy()
    if name == "adaptive-phase":
        return AdaptivePhasePolicy()
    return FixedPolicy()
