"""The SPEAR binary: a program plus its p-thread annotation section.

This is what the paper's attaching tool (compiler module 4) produces and
what the hardware loads at program start.  The annotation is strictly
additive — the text segment is byte-identical to the original binary, and a
``SpearBinary`` with an empty table behaves exactly like the plain program.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..isa.program import DataSegment, Program
from .pthread import PThreadTable


@dataclass
class SpearBinary:
    """Program + p-thread table, serializable as one artifact."""

    program: Program
    table: PThreadTable

    def __post_init__(self) -> None:
        n = len(self.program)
        for pt in self.table:
            for pc in pt.slice_pcs:
                if not 0 <= pc < n:
                    raise ValueError(
                        f"p-thread pc {pc} outside text segment (size {n})")

    @property
    def name(self) -> str:
        return self.program.name

    def to_dict(self) -> dict:
        """Serialize, including the encoded text segment."""
        return {
            "name": self.program.name,
            "mem_bytes": self.program.mem_bytes,
            "text": [int(w) for w in self.program.encode()],
            "labels": dict(self.program.labels),
            "segments": [
                {"addr": seg.addr,
                 "dtype": str(seg.values.dtype),
                 "values": seg.values.tolist()}
                for seg in self.program.segments
            ],
            "pthread_table": self.table.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SpearBinary":
        segments = [
            DataSegment(s["addr"], np.array(s["values"], dtype=s["dtype"]))
            for s in d.get("segments", [])
        ]
        program = Program.from_words(
            np.array(d["text"], dtype=np.uint64),
            name=d.get("name", "program"),
            labels=d.get("labels", {}),
            segments=segments,
            mem_bytes=d.get("mem_bytes", 8 << 20))
        return cls(program, PThreadTable.from_dict(d["pthread_table"]))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "SpearBinary":
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def plain(cls, program: Program) -> "SpearBinary":
        """A SPEAR binary with no p-threads (baseline-equivalent)."""
        return cls(program, PThreadTable.empty())
