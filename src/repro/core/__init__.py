"""SPEAR core: p-thread descriptors, machine configs, the SPEAR binary."""

from .configs import (BASELINE, OP_LATENCY, PAPER_CONFIGS, SPEAR_128,
                      SPEAR_256, SPEAR_SF_128, SPEAR_SF_256, FUConfig,
                      MachineConfig)
from .pthread import PThread, PThreadTable
from .spear_binary import SpearBinary

__all__ = ["BASELINE", "OP_LATENCY", "PAPER_CONFIGS", "SPEAR_128",
           "SPEAR_256", "SPEAR_SF_128", "SPEAR_SF_256", "FUConfig",
           "MachineConfig", "PThread", "PThreadTable", "SpearBinary"]
