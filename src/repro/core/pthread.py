"""P-thread descriptors: the interface between compiler and hardware.

The SPEAR compiler identifies, per delinquent load, the set of static
instructions forming its backward slice (the *p-thread*), the registers
whose values must be copied from the main thread at trigger time
(*live-ins*), and bookkeeping about the region the slice was drawn from.
The attacher serializes this as the annotation section of a SPEAR binary;
the hardware's pre-decode stage loads it into the PD (delinquent-load
detector) and PT (p-thread indicator) tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PThread:
    """One delinquent load's prefetching thread.

    Attributes
    ----------
    dload_pc:
        Static address of the delinquent load.
    slice_pcs:
        Static addresses of every p-thread instruction (backward slice),
        *including* ``dload_pc`` itself.
    live_ins:
        Unified register ids read by the slice before being written by it,
        in ascending order.  Copying them costs one cycle each (paper §3.2).
    region_head:
        Header address of the loop region the slice was limited to
        (diagnostics only).
    d_cycle:
        Estimated cycles of one region iteration, from profiling.
    miss_count:
        Profile miss count that made this load delinquent.
    """

    dload_pc: int
    slice_pcs: frozenset[int]
    live_ins: tuple[int, ...]
    region_head: int = -1
    d_cycle: float = 0.0
    miss_count: int = 0

    def __post_init__(self) -> None:
        if self.dload_pc not in self.slice_pcs:
            raise ValueError(
                f"d-load pc {self.dload_pc} must be part of its own slice")
        if list(self.live_ins) != sorted(set(self.live_ins)):
            raise ValueError("live_ins must be sorted and unique")

    @property
    def size(self) -> int:
        """Number of static p-thread instructions."""
        return len(self.slice_pcs)

    def to_dict(self) -> dict:
        return {"dload_pc": self.dload_pc,
                "slice_pcs": sorted(self.slice_pcs),
                "live_ins": list(self.live_ins),
                "region_head": self.region_head,
                "d_cycle": self.d_cycle,
                "miss_count": self.miss_count}

    @classmethod
    def from_dict(cls, d: dict) -> "PThread":
        return cls(dload_pc=d["dload_pc"],
                   slice_pcs=frozenset(d["slice_pcs"]),
                   live_ins=tuple(d["live_ins"]),
                   region_head=d.get("region_head", -1),
                   d_cycle=d.get("d_cycle", 0.0),
                   miss_count=d.get("miss_count", 0))


@dataclass
class PThreadTable:
    """All p-threads of one SPEAR binary.

    Precomputes the two hardware lookup sets: ``dload_pcs`` feeds the PD
    (trigger detection) and ``marked_pcs`` feeds the PT (indicator marking
    at pre-decode).
    """

    pthreads: dict[int, PThread] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._rebuild()

    def _rebuild(self) -> None:
        self.dload_pcs: frozenset[int] = frozenset(self.pthreads)
        marked: set[int] = set()
        for pt in self.pthreads.values():
            marked |= pt.slice_pcs
        self.marked_pcs: frozenset[int] = frozenset(marked)

    def add(self, pthread: PThread) -> None:
        if pthread.dload_pc in self.pthreads:
            raise ValueError(f"duplicate p-thread for pc {pthread.dload_pc}")
        self.pthreads[pthread.dload_pc] = pthread
        self._rebuild()

    def __len__(self) -> int:
        return len(self.pthreads)

    def __contains__(self, pc: int) -> bool:
        return pc in self.pthreads

    def __getitem__(self, pc: int) -> PThread:
        return self.pthreads[pc]

    def __iter__(self):
        return iter(self.pthreads.values())

    @property
    def total_slice_size(self) -> int:
        return sum(p.size for p in self.pthreads.values())

    @property
    def mean_slice_size(self) -> float:
        return self.total_slice_size / len(self.pthreads) if self.pthreads else 0.0

    def to_dict(self) -> dict:
        return {"pthreads": [p.to_dict() for p in self.pthreads.values()]}

    @classmethod
    def from_dict(cls, d: dict) -> "PThreadTable":
        table = cls()
        for pd in d.get("pthreads", []):
            table.add(PThread.from_dict(pd))
        return table

    @classmethod
    def empty(cls) -> "PThreadTable":
        return cls()
