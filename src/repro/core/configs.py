"""Machine configurations, including the paper's five evaluated models.

Table 2 parameters are the defaults.  The five named configurations of the
evaluation are:

* ``BASELINE``      — superscalar, SPEAR hardware disabled
* ``SPEAR_128``     — SPEAR, 128-entry IFQ, shared functional units
* ``SPEAR_256``     — SPEAR, 256-entry IFQ, shared functional units
* ``SPEAR_SF_128``  — SPEAR, 128-entry IFQ, separate (dedicated) FUs
* ``SPEAR_SF_256``  — SPEAR, 256-entry IFQ, separate (dedicated) FUs
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..isa.opcodes import OpClass
from ..memory.hierarchy import LatencyConfig


@dataclass(frozen=True)
class FUConfig:
    """Functional-unit pool sizes (paper Table 2)."""

    int_alu: int = 4
    int_muldiv: int = 1
    fp_alu: int = 4
    fp_muldiv: int = 1
    mem_ports: int = 2


#: Execution latencies per operational class (cycles).  Memory classes are
#: resolved by the hierarchy instead.
OP_LATENCY: dict[int, int] = {
    int(OpClass.INT_ALU): 1,
    int(OpClass.INT_MUL): 3,
    int(OpClass.INT_DIV): 20,
    int(OpClass.FP_ALU): 2,
    int(OpClass.FP_MUL): 4,
    int(OpClass.FP_DIV): 12,
    int(OpClass.BRANCH): 1,
    int(OpClass.MISC): 1,
    int(OpClass.STORE): 1,   # store completes on port grant; cache updated then
    int(OpClass.LOAD): 0,    # placeholder: loads take the hierarchy latency
}


@dataclass(frozen=True)
class MachineConfig:
    """Complete parameterization of the timing model."""

    name: str = "machine"
    # Front end ---------------------------------------------------------
    fetch_width: int = 8
    decode_width: int = 8
    ifq_size: int = 128
    predictor: str = "bimodal"
    predictor_table_size: int = 2048
    mispredict_redirect_penalty: int = 3
    #: What fetch does between a mispredict and its resolution: "reconverge"
    #: keeps fetching real (reconverged) path entries that the PE may
    #: pre-execute but decode may not pass, squashed and re-fetched at
    #: resolution (models the short forward hammocks of the kernels); "bubbles"
    #: keeps fetching wrong-path placeholders that occupy the IFQ and decode
    #: bandwidth and are squashed at resolution (like real hardware);
    #: "stall" freezes fetch (classic trace-driven simplification, starves
    #: the IFQ and with it the trigger logic).
    wrong_path: str = "reconverge"
    #: In "reconverge" mode, how many real entries fetch may run past an
    #: unresolved mispredict before degrading to opaque bubbles.  Short
    #: forward hammocks reconverge within a few instructions; loop exits
    #: and other far-divergent wrong paths do not, so the window is kept
    #: near a hammock length.
    reconverge_window: int = 48
    #: Hardware prefetcher observing main-thread demand accesses:
    #: "none" (paper baseline), "nextline", or "stride".  Used by the
    #: motivation experiment contrasting traditional prefetching with
    #: pre-execution.
    prefetcher: str = "none"
    prefetch_degree: int = 2
    # Back end ----------------------------------------------------------
    issue_width: int = 8
    commit_width: int = 8
    ruu_size: int = 128
    fu: FUConfig = field(default_factory=FUConfig)
    latencies: LatencyConfig = field(default_factory=LatencyConfig)
    # SPEAR hardware ------------------------------------------------------
    spear_enabled: bool = False
    separate_fu: bool = False
    pthread_ruu_size: int = 64
    #: Fraction of the IFQ that must be occupied for a trigger (paper:
    #: half).  This is the *configured* operating point: under the
    #: default ``fixed`` trigger policy it holds for the whole run, but
    #: an adaptive policy (``--policy adaptive-epoch``/``adaptive-phase``)
    #: may override the live value the simulator consults — between runs
    #: (epoch) or at decision-interval boundaries inside one run (phase)
    #: — walking the documented level ladder.  The config itself is
    #: never mutated.  See docs/adaptive-policy.md.
    trigger_occupancy_fraction: float = 0.5
    #: Max p-thread instructions extracted per cycle (paper: issue_width/2).
    extract_width: int = 4
    #: Cycles per live-in register copy (paper: 1).
    livein_copy_cycles: int = 1
    #: What "deterministic state" to wait for before the live-in copy:
    #: "livein" (default) waits for the in-flight producers of the live-in
    #: registers to complete; "full" waits until everything decoded at
    #: trigger time has committed (the paper's literal wording — but with
    #: ROB size == IFQ size the main thread then always reaches the d-load
    #: before extraction can begin, see DESIGN.md §6); "none" skips the
    #: wait entirely.
    drain_policy: str = "livein"
    #: P-thread instructions get issue priority (paper §3.3).
    pthread_priority: bool = True
    #: Chaining triggers (Collins et al., discussed in the paper's related
    #: work): when a pre-execution mode ends, a dormant marked d-load may
    #: re-trigger immediately regardless of IFQ occupancy, letting one
    #: p-thread effectively spawn the next.  Off in the paper's SPEAR.
    #: Like ``trigger_occupancy_fraction`` this is a policy-controlled
    #: knob: the upper rungs of the adaptive level ladder switch the live
    #: value on when fills run persistently late (the config itself is
    #: never mutated).  See docs/adaptive-policy.md.
    chaining: bool = False
    # Safety ----------------------------------------------------------------
    max_cycles: int = 200_000_000

    def __post_init__(self) -> None:
        if self.extract_width > self.decode_width:
            raise ValueError("extract_width cannot exceed decode_width")
        if not 0.0 <= self.trigger_occupancy_fraction <= 1.0:
            raise ValueError("trigger_occupancy_fraction must be in [0, 1]")
        if self.drain_policy not in ("livein", "full", "none"):
            raise ValueError(f"unknown drain_policy {self.drain_policy!r}")
        if self.wrong_path not in ("reconverge", "bubbles", "stall"):
            raise ValueError(f"unknown wrong_path mode {self.wrong_path!r}")
        if self.prefetcher not in ("none", "nextline", "stride"):
            raise ValueError(f"unknown prefetcher {self.prefetcher!r}")
        if self.ifq_size < self.fetch_width:
            raise ValueError("IFQ must hold at least one fetch group")

    @property
    def trigger_occupancy(self) -> int:
        """Minimum IFQ entries required to trigger pre-execution."""
        return int(self.ifq_size * self.trigger_occupancy_fraction)

    def with_latencies(self, latencies: LatencyConfig) -> "MachineConfig":
        """Clone with different memory latencies (Figure 9 sweep)."""
        return replace(self, latencies=latencies)

    def renamed(self, name: str) -> "MachineConfig":
        return replace(self, name=name)

    def describe(self) -> dict:
        """Flat parameter dump (Table 2 regeneration)."""
        return {
            "name": self.name,
            "fetch/decode/issue/commit width": (
                f"{self.fetch_width}/{self.decode_width}/"
                f"{self.issue_width}/{self.commit_width}"),
            "IFQ size": self.ifq_size,
            "RUU (reorder buffer) size": self.ruu_size,
            "branch predictor": f"{self.predictor} ({self.predictor_table_size})",
            "int FUs": f"ALU x {self.fu.int_alu}, MUL/DIV x {self.fu.int_muldiv}",
            "fp FUs": f"ALU x {self.fu.fp_alu}, MUL/DIV x {self.fu.fp_muldiv}",
            "memory ports": self.fu.mem_ports,
            "L1 latency": self.latencies.l1,
            "L2 latency": self.latencies.l2,
            "memory latency": self.latencies.memory,
            "SPEAR": self.spear_enabled,
            "separate FUs": self.separate_fu,
            "p-thread RUU size": self.pthread_ruu_size,
            "trigger occupancy": self.trigger_occupancy,
            "extract width": self.extract_width,
            "hardware prefetcher": self.prefetcher,
        }


BASELINE = MachineConfig(name="baseline")
#: Traditional-prefetching baselines for the motivation experiment.
BASELINE_NEXTLINE = MachineConfig(name="baseline+nextline",
                                  prefetcher="nextline")
BASELINE_STRIDE = MachineConfig(name="baseline+stride", prefetcher="stride")
SPEAR_128 = MachineConfig(name="SPEAR-128", spear_enabled=True, ifq_size=128)
SPEAR_256 = MachineConfig(name="SPEAR-256", spear_enabled=True, ifq_size=256)
SPEAR_SF_128 = MachineConfig(name="SPEAR.sf-128", spear_enabled=True,
                             ifq_size=128, separate_fu=True)
SPEAR_SF_256 = MachineConfig(name="SPEAR.sf-256", spear_enabled=True,
                             ifq_size=256, separate_fu=True)

#: The evaluation's five models, keyed by the names used in the figures.
PAPER_CONFIGS: dict[str, MachineConfig] = {
    c.name: c for c in (BASELINE, SPEAR_128, SPEAR_256,
                        SPEAR_SF_128, SPEAR_SF_256)
}
