"""repro — a reproduction of SPEAR: A Hybrid Model for Speculative
Pre-Execution (Ro & Gaudiot, IPPS 2004).

The package implements, from scratch:

* ``repro.isa``        — SPISA, a PISA-like RISC ISA with assembler & builder
* ``repro.functional`` — an architectural simulator producing committed traces
* ``repro.memory``     — the L1/L2/DRAM hierarchy with in-flight fill merging
* ``repro.branch``     — bimodal (and friends) branch prediction
* ``repro.pipeline``   — the cycle-level SMT timing model with SPEAR hardware
* ``repro.compiler``   — the SPEAR post-compiler (CFG, profiler, slicer,
  attacher)
* ``repro.core``       — p-thread descriptors, machine configs, SPEAR binary
* ``repro.workloads``  — analogs of the paper's 15 evaluation benchmarks
* ``repro.harness``    — regeneration of every table and figure

Quick start::

    from repro import quick_run
    result = quick_run("mcf")           # compile + simulate one benchmark
    print(result["speedup_128"], result["speedup_256"])
"""

from .core.configs import (BASELINE, PAPER_CONFIGS, SPEAR_128, SPEAR_256,
                           SPEAR_SF_128, SPEAR_SF_256, MachineConfig)
from .core.pthread import PThread, PThreadTable
from .core.spear_binary import SpearBinary
from .harness.runner import ExperimentRunner

__version__ = "1.0.0"

__all__ = ["BASELINE", "PAPER_CONFIGS", "SPEAR_128", "SPEAR_256",
           "SPEAR_SF_128", "SPEAR_SF_256", "MachineConfig", "PThread",
           "PThreadTable", "SpearBinary", "ExperimentRunner", "quick_run"]


def quick_run(workload: str = "mcf") -> dict:
    """One-call demo: compile a workload with the SPEAR compiler and report
    the speedups of both IFQ sizes over the baseline superscalar."""
    runner = ExperimentRunner()
    base = runner.run(workload, BASELINE)
    r128 = runner.run(workload, SPEAR_128)
    r256 = runner.run(workload, SPEAR_256)
    return {
        "workload": workload,
        "ipc_baseline": base.ipc,
        "ipc_spear_128": r128.ipc,
        "ipc_spear_256": r256.ipc,
        "speedup_128": r128.ipc / base.ipc,
        "speedup_256": r256.ipc / base.ipc,
        "l1_miss_reduction_256": (
            (base.main_l1_misses - r256.main_l1_misses)
            / base.main_l1_misses if base.main_l1_misses else 0.0),
        "compile_report": runner.artifacts(workload).compile_report,
    }
