"""Hardware prefetchers — the "traditional prefetching" the paper argues
against.

The paper's motivation: "traditional prefetching methods strongly rely on
the predictability of memory access patterns and often fail when faced
with irregular patterns."  To let the repository *demonstrate* that claim
(benchmarks/test_motivation_prefetch.py), two classic hardware schemes are
provided as baseline extensions:

* :class:`NextLinePrefetcher` — one-block-lookahead on every demand miss;
* :class:`StridePrefetcher` — a PC-indexed reference prediction table
  (Chen & Baer style) with a two-state confidence scheme and configurable
  degree.

Both observe the main thread's demand accesses in the timing model and
issue fills through :meth:`MemoryHierarchy.prefetch`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PrefetcherStats:
    observed: int = 0       # demand accesses seen
    issued: int = 0         # prefetches sent to the hierarchy
    useful_hint: int = 0    # issued while the block was absent (accepted)

    def snapshot(self) -> dict:
        return dict(self.__dict__)


class Prefetcher:
    """Interface: observe a demand access, propose prefetch addresses."""

    def __init__(self) -> None:
        self.stats = PrefetcherStats()

    def observe(self, pc: int, addr: int, was_miss: bool) -> list[int]:
        raise NotImplementedError


class NoPrefetcher(Prefetcher):
    """Placeholder: never prefetches."""

    def observe(self, pc: int, addr: int, was_miss: bool) -> list[int]:
        return []


class NextLinePrefetcher(Prefetcher):
    """On every demand miss, fetch the next ``degree`` sequential blocks.

    Excellent on streams (art, field), useless on pointer chasing.
    """

    def __init__(self, block_bytes: int = 32, degree: int = 1):
        super().__init__()
        self.block_bytes = block_bytes
        self.degree = degree

    def observe(self, pc: int, addr: int, was_miss: bool) -> list[int]:
        self.stats.observed += 1
        if not was_miss:
            return []
        base = (addr // self.block_bytes + 1) * self.block_bytes
        out = [base + i * self.block_bytes for i in range(self.degree)]
        self.stats.issued += len(out)
        return out


class StridePrefetcher(Prefetcher):
    """PC-indexed stride detection (reference prediction table).

    Each static load gets an entry ``(last_addr, stride, confident)``;
    after two consecutive accesses with the same stride the entry turns
    confident and prefetches ``addr + stride * k`` for ``k = 1..degree``.
    Catches strided streams (matrix values, art weights, nbh rows) and
    fails on data-dependent gathers — exactly the paper's framing.
    """

    def __init__(self, table_size: int = 256, degree: int = 2,
                 distance: int = 16):
        super().__init__()
        if table_size <= 0 or table_size & (table_size - 1):
            raise ValueError("table size must be a power of two")
        self.table_size = table_size
        self.degree = degree
        #: lookahead multiplier: prefetch addr + stride*(distance+k).  A
        #: small-stride stream needs the target pushed several blocks out
        #: or the "prefetch" lands in the block being demand-fetched.
        self.distance = distance
        self._mask = table_size - 1
        # entry: [tag, last_addr, stride, confident]
        self._table: list[list[int]] = [[-1, 0, 0, 0]
                                        for _ in range(table_size)]

    def observe(self, pc: int, addr: int, was_miss: bool) -> list[int]:
        self.stats.observed += 1
        entry = self._table[pc & self._mask]
        tag, last, stride, confident = entry
        if tag != pc:
            self._table[pc & self._mask] = [pc, addr, 0, 0]
            return []
        new_stride = addr - last
        entry[1] = addr
        if new_stride == stride and stride != 0:
            entry[3] = 1
            out = [addr + stride * (self.distance + k)
                   for k in range(self.degree)]
            out = [a for a in out if a >= 0]
            self.stats.issued += len(out)
            return out
        entry[2] = new_stride
        entry[3] = 0
        return []


def make_prefetcher(kind: str, *, block_bytes: int = 32,
                    degree: int = 2) -> Prefetcher:
    """Factory used by machine configs: 'none', 'nextline', 'stride'."""
    if kind == "none":
        return NoPrefetcher()
    if kind == "nextline":
        return NextLinePrefetcher(block_bytes=block_bytes, degree=degree)
    if kind == "stride":
        return StridePrefetcher(degree=degree, distance=8 * degree)
    raise ValueError(f"unknown prefetcher kind {kind!r}")
