"""Set-associative cache with true-LRU replacement.

Models one level of the paper's hierarchy (Table 2: L1D = 256 sets x 32 B
blocks x 4-way; unified L2 = 1024 sets x 64 B x 4-way; both LRU).

The cache stores only tags — this repository's timing model never needs
cached *data* (values come from the oracle trace), so a tag store is exact
for hit/miss behaviour while staying fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _is_pow2(v: int) -> bool:
    return v > 0 and (v & (v - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    sets: int
    ways: int
    block_bytes: int

    def __post_init__(self) -> None:
        if not _is_pow2(self.sets):
            raise ValueError(f"{self.name}: sets must be a power of two")
        if not _is_pow2(self.block_bytes):
            raise ValueError(f"{self.name}: block size must be a power of two")
        if self.ways < 1:
            raise ValueError(f"{self.name}: ways must be >= 1")

    @property
    def capacity_bytes(self) -> int:
        return self.sets * self.ways * self.block_bytes

    @property
    def block_bits(self) -> int:
        return self.block_bytes.bit_length() - 1

    @property
    def set_mask(self) -> int:
        return self.sets - 1


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def snapshot(self) -> dict:
        return {"accesses": self.accesses, "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions,
                "writebacks": self.writebacks, "miss_rate": self.miss_rate}


class Cache:
    """One cache level.

    ``probe``/``install`` are split so the hierarchy can model non-inclusive
    fills; ``access`` is the common probe-then-fill path.
    """

    __slots__ = ("config", "_block_bits", "_set_mask", "_tags", "_stamp",
                 "_dirty", "_clock", "stats")

    def __init__(self, config: CacheConfig):
        self.config = config
        self._block_bits = config.block_bits
        self._set_mask = config.set_mask
        # Per-set way arrays.  Plain Python lists beat numpy for 4-way
        # scans (no per-access array overhead).
        self._tags: list[list[int]] = [[-1] * config.ways for _ in range(config.sets)]
        self._stamp: list[list[int]] = [[0] * config.ways for _ in range(config.sets)]
        self._dirty: list[list[bool]] = [[False] * config.ways for _ in range(config.sets)]
        self._clock = 0
        self.stats = CacheStats()

    def block_of(self, addr: int) -> int:
        """Global block id for an address."""
        return addr >> self._block_bits

    def reset(self) -> None:
        cfg = self.config
        self._tags = [[-1] * cfg.ways for _ in range(cfg.sets)]
        self._stamp = [[0] * cfg.ways for _ in range(cfg.sets)]
        self._dirty = [[False] * cfg.ways for _ in range(cfg.sets)]
        self._clock = 0
        self.stats = CacheStats()

    # -- core operations -----------------------------------------------------

    def probe(self, addr: int, *, is_write: bool = False,
              update_lru: bool = True, count: bool = True) -> bool:
        """Check for presence; touches LRU on hit.  Returns hit/miss.

        The way scan uses ``list.index`` — a C-level search that beats a
        Python ``enumerate`` loop for the 4-way sets of Table 2.
        """
        block = addr >> self._block_bits
        set_idx = block & self._set_mask
        tags = self._tags[set_idx]
        stats = self.stats
        if count:
            stats.accesses += 1
        try:
            way = tags.index(block)
        except ValueError:
            if count:
                stats.misses += 1
            return False
        if count:
            stats.hits += 1
        if update_lru:
            self._clock += 1
            self._stamp[set_idx][way] = self._clock
        if is_write:
            self._dirty[set_idx][way] = True
        return True

    def install(self, addr: int, *, is_write: bool = False) -> int:
        """Fill the block, evicting LRU if needed.

        Returns the evicted block id, or -1 when an invalid way was used.
        """
        block = addr >> self._block_bits
        set_idx = block & self._set_mask
        tags = self._tags[set_idx]
        stamps = self._stamp[set_idx]
        dirty = self._dirty[set_idx]
        self._clock += 1

        try:
            way = tags.index(block)  # already present (racing install)
        except ValueError:
            pass
        else:
            stamps[way] = self._clock
            if is_write:
                dirty[way] = True
            return -1
        try:
            victim = tags.index(-1)
        except ValueError:
            victim = min(range(len(stamps)), key=stamps.__getitem__)

        evicted = tags[victim]
        if evicted != -1:
            self.stats.evictions += 1
            if dirty[victim]:
                self.stats.writebacks += 1
        tags[victim] = block
        stamps[victim] = self._clock
        dirty[victim] = is_write
        return evicted

    def access(self, addr: int, *, is_write: bool = False) -> bool:
        """Probe and fill on miss.  Returns True on hit."""
        if self.probe(addr, is_write=is_write):
            return True
        self.install(addr, is_write=is_write)
        return False

    def contains(self, addr: int) -> bool:
        """Non-destructive presence check (no LRU update, no stats)."""
        return self.probe(addr, update_lru=False, count=False)

    def utilization(self) -> float:
        """Fraction of ways currently holding a valid block."""
        valid = sum(1 for s in self._tags for t in s if t != -1)
        return valid / (self.config.sets * self.config.ways)
