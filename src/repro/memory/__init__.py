"""Data-memory hierarchy: caches, L1/L2/DRAM timing, hardware prefetchers."""

from .cache import Cache, CacheConfig, CacheStats
from .hierarchy import (FIG9_LATENCIES, L1D_CONFIG, L2_CONFIG, LatencyConfig,
                        MemoryHierarchy, ThreadMemStats)
from .prefetcher import (NextLinePrefetcher, NoPrefetcher, Prefetcher,
                         PrefetcherStats, StridePrefetcher, make_prefetcher)

__all__ = ["Cache", "CacheConfig", "CacheStats", "FIG9_LATENCIES",
           "L1D_CONFIG", "L2_CONFIG", "LatencyConfig", "MemoryHierarchy",
           "ThreadMemStats", "NextLinePrefetcher", "NoPrefetcher",
           "Prefetcher", "PrefetcherStats", "StridePrefetcher",
           "make_prefetcher"]
