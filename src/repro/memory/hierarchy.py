"""Two-level data-memory hierarchy with in-flight fill tracking.

Reproduces the paper's Table 2 memory system: L1D (256 sets, 32 B blocks,
4-way, 1-cycle), unified L2 (1024 sets, 64 B, 4-way, 12-cycle) and DRAM
(120 cycles); all latencies are load-to-use and configurable for the
Figure 9 latency sweep.

In-flight fills matter for SPEAR: if the p-thread starts a miss at cycle T
and the main thread touches the same block at T+30 with a 120-cycle memory,
the main thread must pay the *remaining* 90 cycles — not 1, not 120.  The
hierarchy therefore records a ready-cycle per L1 block being filled and
reports such overlapping accesses as *delayed hits* (an MSHR-merge model).

Per-thread accounting distinguishes the main thread (0) from the p-thread
(1), which is what Figure 8's main-thread L1 miss reduction needs.

Timeliness attribution: every speculative fill — one initiated by a
p-thread access or by the hardware prefetcher — is classified by what the
main thread subsequently did with the block:

* **timely**    — the first main-thread touch was an L1 hit on the warmed
  block: the fill completely hid the miss latency;
* **late**      — the first main-thread touch merged into the fill while it
  was still in flight: latency was only partially hidden;
* **unused**    — the block was evicted (or the run ended) without any
  main-thread touch: wasted bandwidth, potential pollution;
* **redundant** — the speculative access found the block already present
  or already in flight: no fill was needed.

This is the per-event breakdown behind Figure 8 that the end-of-run
aggregates cannot express: the same miss-count reduction can come from
all-timely fills (real latency hiding) or mostly-late ones (marginal).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import Cache, CacheConfig

#: Paper Table 2 geometries.
L1D_CONFIG = CacheConfig("L1D", sets=256, ways=4, block_bytes=32)
L2_CONFIG = CacheConfig("L2", sets=1024, ways=4, block_bytes=64)

#: Speculative-fill source indices (``FillStats`` lives in a pair).
PTHREAD_FILL = 0
PREFETCH_FILL = 1
FILL_SOURCES = ("pthread", "prefetch")


@dataclass(frozen=True)
class LatencyConfig:
    """Load-to-use latencies for the three places data can come from."""

    l1: int = 1
    l2: int = 12
    memory: int = 120

    def __post_init__(self) -> None:
        if not (0 < self.l1 <= self.l2 <= self.memory):
            raise ValueError(
                f"latencies must satisfy 0 < l1 <= l2 <= memory, got "
                f"{self.l1}/{self.l2}/{self.memory}")


#: The latency points of the paper's Figure 9 sweep, shortest to longest.
FIG9_LATENCIES = [LatencyConfig(1, lat_l2, lat_mem)
                  for lat_l2, lat_mem in
                  [(4, 40), (8, 80), (12, 120), (16, 160), (20, 200)]]


@dataclass
class ThreadMemStats:
    """Per-thread view of hierarchy behaviour."""

    accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0        # primary misses (block absent, fill started)
    delayed_hits: int = 0     # merged into an in-flight fill
    l2_hits: int = 0
    l2_misses: int = 0
    total_latency: int = 0

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.accesses if self.accesses else 0.0

    @property
    def avg_latency(self) -> float:
        return self.total_latency / self.accesses if self.accesses else 0.0

    def snapshot(self) -> dict:
        return {"accesses": self.accesses, "l1_hits": self.l1_hits,
                "l1_misses": self.l1_misses, "delayed_hits": self.delayed_hits,
                "l2_hits": self.l2_hits, "l2_misses": self.l2_misses,
                "l1_miss_rate": self.l1_miss_rate,
                "avg_latency": self.avg_latency}


@dataclass
class FillStats:
    """Timeliness classification of one source's speculative fills.

    ``timely + late + unused`` equals ``fills`` once every fill is
    resolved (evicted or still resident at end of run — the snapshot
    folds resident-untouched fills into ``unused``); ``redundant``
    counts the attempts that never started a fill.
    """

    fills: int = 0      # fills started (block absent and not in flight)
    redundant: int = 0  # attempts finding the block present or in flight
    timely: int = 0     # first main-thread touch hit the warmed block
    late: int = 0       # first main-thread touch merged into the fill
    unused: int = 0     # evicted without any main-thread touch

    def snapshot(self) -> dict:
        return dict(self.__dict__)


class MemoryHierarchy:
    """L1D + unified L2 + DRAM with MSHR-style fill merging.

    ``access(addr, is_write, thread, now)`` returns the load-to-use latency
    in cycles and updates cache state.  ``now`` is the current pipeline
    cycle; pass 0 if timing is irrelevant (e.g. profiling).
    """

    __slots__ = ("l1", "l2", "latencies", "_pending", "thread_stats",
                 "prefetch_fills", "fill_stats", "_fill_owner",
                 "prefetch_l2_hits", "prefetch_l2_misses")

    def __init__(self, *, l1_config: CacheConfig = L1D_CONFIG,
                 l2_config: CacheConfig = L2_CONFIG,
                 latencies: LatencyConfig = LatencyConfig(),
                 num_threads: int = 2):
        self.l1 = Cache(l1_config)
        self.l2 = Cache(l2_config)
        self.latencies = latencies
        #: L1 block id -> cycle at which its in-flight fill completes.
        self._pending: dict[int, int] = {}
        self.thread_stats = [ThreadMemStats() for _ in range(num_threads)]
        #: fills started by a hardware prefetcher (see :meth:`prefetch`)
        self.prefetch_fills = 0
        #: timeliness accounting, indexed by PTHREAD_FILL / PREFETCH_FILL
        self.fill_stats = (FillStats(), FillStats())
        #: L1 block id -> source index of every speculative fill not yet
        #: classified; consumed by first main-thread touch or eviction.
        self._fill_owner: dict[int, int] = {}
        #: L2 traffic initiated by prefetch probes — counted apart from
        #: the demand hit/miss statistics the Figure 9 analyses consume.
        self.prefetch_l2_hits = 0
        self.prefetch_l2_misses = 0

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        self._pending.clear()
        self.thread_stats = [ThreadMemStats() for _ in self.thread_stats]
        self._reset_fill_accounting()

    def _reset_fill_accounting(self) -> None:
        self.prefetch_fills = 0
        self.fill_stats = (FillStats(), FillStats())
        self._fill_owner.clear()
        self.prefetch_l2_hits = 0
        self.prefetch_l2_misses = 0

    def warm(self, addr: int, *, is_write: bool = False) -> None:
        """Touch the hierarchy during warmup (no latency bookkeeping)."""
        if not self.l1.probe(addr, is_write=is_write, count=False):
            self.l2.access(addr, is_write=is_write)
            self.l1.install(addr, is_write=is_write)

    def finish_warmup(self) -> None:
        """Drop in-flight state and zero statistics after a warmup replay,
        keeping cache contents (the paper's 'skipped instructions')."""
        self._pending.clear()
        self.l1.stats = type(self.l1.stats)()
        self.l2.stats = type(self.l2.stats)()
        self.thread_stats = [ThreadMemStats() for _ in self.thread_stats]
        self._reset_fill_accounting()

    def access(self, addr: int, *, is_write: bool = False, thread: int = 0,
               now: int = 0) -> int:
        """Perform one data access; returns its latency in cycles."""
        ts = self.thread_stats[thread]
        ts.accesses += 1
        lat = self.latencies
        block = self.l1.block_of(addr)

        ready = self._pending.get(block)
        if ready is not None:
            if now < ready:
                # Merge with the in-flight fill started by an earlier access
                # (possibly by the other thread): pay the remaining latency.
                ts.delayed_hits += 1
                latency = ready - now
                ts.total_latency += latency
                # Keep LRU warm; the block was already installed at fill start.
                self.l1.probe(addr, is_write=is_write, count=False)
                if thread:
                    # A p-thread access that would have started this very
                    # fill: the block is already on its way.
                    self.fill_stats[PTHREAD_FILL].redundant += 1
                else:
                    # First main-thread touch classifies the speculative
                    # fill once; the owner record is consumed by it.
                    src = self._fill_owner.pop(block, None)
                    if src is not None:
                        self.fill_stats[src].late += 1
                return latency
            del self._pending[block]

        if self.l1.probe(addr, is_write=is_write):
            ts.l1_hits += 1
            ts.total_latency += lat.l1
            if thread:
                self.fill_stats[PTHREAD_FILL].redundant += 1
            else:
                owner = self._fill_owner
                if owner:
                    src = owner.pop(block, None)
                    if src is not None:
                        self.fill_stats[src].timely += 1
            return lat.l1

        ts.l1_misses += 1
        if self.l2.access(addr, is_write=is_write):
            ts.l2_hits += 1
            latency = lat.l2
        else:
            ts.l2_misses += 1
            latency = lat.memory
        evicted = self.l1.install(addr, is_write=is_write)
        owner = self._fill_owner
        if owner and evicted >= 0:
            self._resolve_eviction(evicted)
        if thread:
            owner[block] = PTHREAD_FILL
            self.fill_stats[PTHREAD_FILL].fills += 1
        if latency > lat.l1:
            self._pending[block] = now + latency
        ts.total_latency += latency
        return latency

    def prefetch(self, addr: int, *, now: int = 0) -> bool:
        """Hardware-prefetch a block: start a fill without demand stats.

        Returns True when a fill was actually started (block absent and
        not already in flight).  Prefetch fills may evict useful lines —
        pollution is modeled, as real prefetchers suffer it.
        """
        stats = self.fill_stats[PREFETCH_FILL]
        block = self.l1.block_of(addr)
        if block in self._pending:
            stats.redundant += 1
            return False
        if self.l1.probe(addr, count=False):
            stats.redundant += 1
            return False
        # Prefetch probes must not inflate the *demand* L2 hit/miss
        # statistics (snapshots, the Figure 9 sweep read them): probe
        # uncounted, install on miss, and account the traffic apart.
        if self.l2.probe(addr, count=False):
            self.prefetch_l2_hits += 1
            latency = self.latencies.l2
        else:
            self.l2.install(addr)
            self.prefetch_l2_misses += 1
            latency = self.latencies.memory
        evicted = self.l1.install(addr)
        if self._fill_owner and evicted >= 0:
            self._resolve_eviction(evicted)
        self._fill_owner[block] = PREFETCH_FILL
        self._pending[block] = now + latency
        self.prefetch_fills += 1
        stats.fills += 1
        return True

    def _resolve_eviction(self, block: int) -> None:
        """An L1 eviction finalizes the classification of a speculative
        fill that was never touched by the main thread: unused."""
        src = self._fill_owner.pop(block, None)
        if src is not None:
            self.fill_stats[src].unused += 1

    def peek_latency(self, addr: int, *, now: int = 0) -> int:
        """Latency this access *would* take, without changing any state."""
        block = self.l1.block_of(addr)
        ready = self._pending.get(block)
        if ready is not None and now < ready:
            return ready - now
        if self.l1.contains(addr):
            return self.latencies.l1
        if self.l2.contains(addr):
            return self.latencies.l2
        return self.latencies.memory

    # -- reporting -----------------------------------------------------------

    def main_thread_l1_misses(self) -> int:
        """Figure 8's metric: primary L1 misses suffered by the main thread."""
        return self.thread_stats[0].l1_misses

    def fill_snapshot(self) -> dict:
        """Timeliness classification per source, with still-resident
        untouched fills folded into ``unused`` so the categories always
        sum to the fills started.  Non-mutating (safe to call mid-run)."""
        resident = [0, 0]
        for src in self._fill_owner.values():
            resident[src] += 1
        out = {}
        for idx, name in enumerate(FILL_SOURCES):
            s = self.fill_stats[idx]
            d = s.snapshot()
            d["unused"] += resident[idx]
            d["attempts"] = s.fills + s.redundant
            out[name] = d
        return out

    def snapshot(self) -> dict:
        return {
            "l1": self.l1.stats.snapshot(),
            "l2": self.l2.stats.snapshot(),
            "threads": [t.snapshot() for t in self.thread_stats],
            "latencies": {"l1": self.latencies.l1, "l2": self.latencies.l2,
                          "memory": self.latencies.memory},
            "prefetch_fills": self.prefetch_fills,
            "prefetch_l2_hits": self.prefetch_l2_hits,
            "prefetch_l2_misses": self.prefetch_l2_misses,
            "fills": self.fill_snapshot(),
        }
