"""Branch direction predictors.

The paper's configuration (Table 2) is a bimodal predictor with a
2048-entry table of 2-bit saturating counters.  Gshare and two static
schemes are provided for ablation studies; all share one interface:

``predict(pc) -> bool`` followed by ``update(pc, taken)``.

Targets are not predicted: the timing model replays the committed path, so
a correctly predicted *direction* implies a correct next fetch address
(i.e. a perfect BTB is assumed — documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PredictorStats:
    """Accuracy accounting (conditional branches only)."""

    lookups: int = 0
    correct: int = 0

    @property
    def hit_ratio(self) -> float:
        """The paper's Table 3 'branch hit ratio'."""
        return self.correct / self.lookups if self.lookups else 1.0

    def record(self, was_correct: bool) -> None:
        self.lookups += 1
        if was_correct:
            self.correct += 1


class BranchPredictor:
    """Interface for direction predictors."""

    __slots__ = ("stats",)

    def __init__(self) -> None:
        self.stats = PredictorStats()

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Convenience: predict, record accuracy, train.  Returns
        True when the prediction was correct."""
        correct = self.predict(pc) == taken
        self.stats.record(correct)
        self.update(pc, taken)
        return correct

    def reset(self) -> None:
        self.stats = PredictorStats()


class BimodalPredictor(BranchPredictor):
    """2-bit saturating-counter table indexed by the branch PC.

    Counters: 0/1 predict not-taken, 2/3 predict taken; initialized to
    weakly taken (2), matching SimpleScalar's bimodal default.
    """

    __slots__ = ("table_size", "_mask", "_table")

    def __init__(self, table_size: int = 2048):
        super().__init__()
        if table_size <= 0 or table_size & (table_size - 1):
            raise ValueError("table size must be a power of two")
        self.table_size = table_size
        self._mask = table_size - 1
        self._table = [2] * table_size

    def predict(self, pc: int) -> bool:
        return self._table[pc & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = pc & self._mask
        ctr = self._table[idx]
        if taken:
            if ctr < 3:
                self._table[idx] = ctr + 1
        elif ctr > 0:
            self._table[idx] = ctr - 1

    def reset(self) -> None:
        super().reset()
        self._table = [2] * self.table_size


class GsharePredictor(BranchPredictor):
    """Global-history XOR-indexed 2-bit counter table (ablation option)."""

    __slots__ = ("table_size", "history_bits", "_mask", "_hmask",
                 "_table", "_history")

    def __init__(self, table_size: int = 2048, history_bits: int = 8):
        super().__init__()
        if table_size <= 0 or table_size & (table_size - 1):
            raise ValueError("table size must be a power of two")
        self.table_size = table_size
        self.history_bits = history_bits
        self._mask = table_size - 1
        self._hmask = (1 << history_bits) - 1
        self._table = [2] * table_size
        self._history = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        ctr = self._table[idx]
        if taken:
            if ctr < 3:
                self._table[idx] = ctr + 1
        elif ctr > 0:
            self._table[idx] = ctr - 1
        self._history = ((self._history << 1) | int(taken)) & self._hmask

    def reset(self) -> None:
        super().reset()
        self._table = [2] * self.table_size
        self._history = 0


class AlwaysTakenPredictor(BranchPredictor):
    """Degenerate predictor: everything is taken."""

    __slots__ = ()

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


class StaticBTFNPredictor(BranchPredictor):
    """Backward-taken / forward-not-taken.

    Needs the branch target to classify direction, so ``predict`` consults
    a target map captured at construction.
    """

    __slots__ = ("_targets",)

    def __init__(self, targets: dict[int, int]):
        super().__init__()
        self._targets = targets

    def predict(self, pc: int) -> bool:
        target = self._targets.get(pc)
        return target is not None and target <= pc

    def update(self, pc: int, taken: bool) -> None:
        pass


def make_predictor(kind: str, *, table_size: int = 2048,
                   targets: dict[int, int] | None = None) -> BranchPredictor:
    """Factory used by machine configs: 'bimodal', 'gshare', 'taken', 'btfn'."""
    if kind == "bimodal":
        return BimodalPredictor(table_size)
    if kind == "gshare":
        return GsharePredictor(table_size)
    if kind == "taken":
        return AlwaysTakenPredictor()
    if kind == "btfn":
        return StaticBTFNPredictor(targets or {})
    raise ValueError(f"unknown predictor kind {kind!r}")
