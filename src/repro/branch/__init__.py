"""Branch direction prediction (bimodal default, per the paper's Table 2)."""

from .predictors import (AlwaysTakenPredictor, BimodalPredictor,
                         BranchPredictor, GsharePredictor, PredictorStats,
                         StaticBTFNPredictor, make_predictor)

__all__ = ["AlwaysTakenPredictor", "BimodalPredictor", "BranchPredictor",
           "GsharePredictor", "PredictorStats", "StaticBTFNPredictor",
           "make_predictor"]
