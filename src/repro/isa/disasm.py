"""Disassembler: render programs or encoded words back to readable text."""

from __future__ import annotations

import numpy as np

from . import encoding
from .program import Program


def disassemble(program: Program, *, addresses: bool = True) -> str:
    """Render a program's text segment as annotated assembly."""
    labels = program.address_to_label
    lines: list[str] = []
    for pc, ins in enumerate(program.instructions):
        if pc in labels:
            lines.append(f"{labels[pc]}:")
        text = ins.render(labels)
        if addresses:
            lines.append(f"  {pc:6d}: {text}")
        else:
            lines.append(f"  {text}")
    return "\n".join(lines)


def disassemble_words(words: np.ndarray) -> str:
    """Disassemble raw encoded instruction words."""
    instrs = encoding.decode_program(words)
    return "\n".join(f"  {pc:6d}: {ins.render()}" for pc, ins in enumerate(instrs))
