"""SPISA: the SPEAR Portable Instruction Set Architecture.

The instruction set, assembler, program builder and binary encoding that
every other subsystem (functional simulator, SPEAR compiler, timing model)
operates on.
"""

from .assembler import AssemblerError, assemble
from .builder import Label, ProgramBuilder
from .disasm import disassemble, disassemble_words
from .encoding import decode, decode_program, encode, encode_program
from .instruction import Instruction
from .opcodes import (FP_BASE, LINK_REG, NUM_FP_REGS, NUM_INT_REGS, NUM_REGS,
                      OP_INFO, ZERO_REG, Fmt, Op, OpClass, parse_reg, reg_name)
from .program import DEFAULT_MEM_BYTES, DataSegment, Program, WORD_SIZE

__all__ = [
    "AssemblerError", "assemble", "Label", "ProgramBuilder", "disassemble",
    "disassemble_words", "decode", "decode_program", "encode",
    "encode_program", "Instruction", "FP_BASE", "LINK_REG", "NUM_FP_REGS",
    "NUM_INT_REGS", "NUM_REGS", "OP_INFO", "ZERO_REG", "Fmt", "Op",
    "OpClass", "parse_reg", "reg_name", "DEFAULT_MEM_BYTES", "DataSegment",
    "Program", "WORD_SIZE",
]
