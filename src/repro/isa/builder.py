"""Typed program-construction API.

:class:`ProgramBuilder` is how the bundled workloads author SPISA programs
from Python: it offers one emit method per opcode, label management with
forward references, a bump allocator for data memory, and small structured
helpers (counted loops).  It produces exactly the same :class:`Program`
objects the text assembler does.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from .instruction import Instruction
from .opcodes import LINK_REG, Op, parse_reg
from .program import DataSegment, Program, WORD_SIZE

RegLike = int | str


def _r(reg: RegLike) -> int:
    """Accept registers as unified ids or as names like ``"r5"``/``"f2"``."""
    if isinstance(reg, str):
        return parse_reg(reg)
    return reg


class Label:
    """A (possibly not yet placed) branch target."""

    __slots__ = ("name", "addr")

    def __init__(self, name: str):
        self.name = name
        self.addr: int | None = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"Label({self.name!r}@{self.addr})"


class ProgramBuilder:
    """Incrementally build a :class:`Program`.

    Data memory layout is managed by a bump allocator starting at
    ``data_base``; each :meth:`alloc` returns the byte address of the
    region and records its initial contents as a data segment.
    """

    def __init__(self, name: str = "program", *, mem_bytes: int = 8 << 20,
                 data_base: int = 0x1000):
        self.name = name
        self.mem_bytes = mem_bytes
        self._instrs: list[Instruction] = []
        self._labels: dict[str, Label] = {}
        self._fixups: list[tuple[int, Label]] = []
        self._data_cursor = data_base
        self._segments: list[DataSegment] = []
        self._label_counter = 0

    # -- labels -------------------------------------------------------------

    def label(self, name: str | None = None) -> Label:
        """Create a label, optionally named; does not place it."""
        if name is None:
            name = f".L{self._label_counter}"
            self._label_counter += 1
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        lab = Label(name)
        self._labels[name] = lab
        return lab

    def place(self, label: Label) -> Label:
        """Bind a label to the current instruction address."""
        if label.addr is not None:
            raise ValueError(f"label {label.name!r} already placed")
        label.addr = len(self._instrs)
        return label

    def here(self, name: str | None = None) -> Label:
        """Create *and* place a label at the current address."""
        return self.place(self.label(name))

    # -- data ---------------------------------------------------------------

    def alloc(self, n_words: int, init: np.ndarray | list | None = None,
              *, dtype=np.int64, align: int = WORD_SIZE) -> int:
        """Reserve ``n_words`` 8-byte words of data memory.

        Returns the byte address of the region.  If ``init`` is given it
        becomes the region's initial contents (and fixes ``n_words``).
        """
        if init is not None:
            arr = np.asarray(init, dtype=dtype)
            if arr.ndim != 1:
                arr = arr.ravel()
            n_words = int(arr.size)
        if n_words <= 0:
            raise ValueError("allocation must be positive")
        addr = -(-self._data_cursor // align) * align
        self._data_cursor = addr + n_words * WORD_SIZE
        if self._data_cursor > self.mem_bytes:
            raise ValueError(
                f"data allocation overflows memory ({self._data_cursor:#x} "
                f"> {self.mem_bytes:#x}); raise mem_bytes")
        if init is not None:
            self._segments.append(DataSegment(addr, arr))
        return addr

    # -- raw emit -------------------------------------------------------------

    def emit(self, op: Op, rd: int = -1, rs1: int = -1, rs2: int = -1,
             imm: int = 0, target: Label | None = None) -> int:
        """Append one instruction; returns its address."""
        pc = len(self._instrs)
        label_name = target.name if target is not None else None
        self._instrs.append(Instruction(op, rd=rd, rs1=rs1, rs2=rs2,
                                        imm=imm, label=label_name))
        if target is not None:
            self._fixups.append((pc, target))
        return pc

    # -- integer ALU ---------------------------------------------------------

    def add(self, rd, rs1, rs2):
        return self.emit(Op.ADD, _r(rd), _r(rs1), _r(rs2))

    def sub(self, rd, rs1, rs2):
        return self.emit(Op.SUB, _r(rd), _r(rs1), _r(rs2))

    def and_(self, rd, rs1, rs2):
        return self.emit(Op.AND, _r(rd), _r(rs1), _r(rs2))

    def or_(self, rd, rs1, rs2):
        return self.emit(Op.OR, _r(rd), _r(rs1), _r(rs2))

    def xor(self, rd, rs1, rs2):
        return self.emit(Op.XOR, _r(rd), _r(rs1), _r(rs2))

    def sll(self, rd, rs1, rs2):
        return self.emit(Op.SLL, _r(rd), _r(rs1), _r(rs2))

    def srl(self, rd, rs1, rs2):
        return self.emit(Op.SRL, _r(rd), _r(rs1), _r(rs2))

    def sra(self, rd, rs1, rs2):
        return self.emit(Op.SRA, _r(rd), _r(rs1), _r(rs2))

    def slt(self, rd, rs1, rs2):
        return self.emit(Op.SLT, _r(rd), _r(rs1), _r(rs2))

    def sltu(self, rd, rs1, rs2):
        return self.emit(Op.SLTU, _r(rd), _r(rs1), _r(rs2))

    def addi(self, rd, rs1, imm):
        return self.emit(Op.ADDI, _r(rd), _r(rs1), imm=imm)

    def andi(self, rd, rs1, imm):
        return self.emit(Op.ANDI, _r(rd), _r(rs1), imm=imm)

    def ori(self, rd, rs1, imm):
        return self.emit(Op.ORI, _r(rd), _r(rs1), imm=imm)

    def xori(self, rd, rs1, imm):
        return self.emit(Op.XORI, _r(rd), _r(rs1), imm=imm)

    def slli(self, rd, rs1, imm):
        return self.emit(Op.SLLI, _r(rd), _r(rs1), imm=imm)

    def srli(self, rd, rs1, imm):
        return self.emit(Op.SRLI, _r(rd), _r(rs1), imm=imm)

    def srai(self, rd, rs1, imm):
        return self.emit(Op.SRAI, _r(rd), _r(rs1), imm=imm)

    def slti(self, rd, rs1, imm):
        return self.emit(Op.SLTI, _r(rd), _r(rs1), imm=imm)

    def li(self, rd, imm):
        return self.emit(Op.LI, _r(rd), imm=imm)

    def mov(self, rd, rs1):
        return self.emit(Op.MOV, _r(rd), _r(rs1))

    def mul(self, rd, rs1, rs2):
        return self.emit(Op.MUL, _r(rd), _r(rs1), _r(rs2))

    def div(self, rd, rs1, rs2):
        return self.emit(Op.DIV, _r(rd), _r(rs1), _r(rs2))

    def rem(self, rd, rs1, rs2):
        return self.emit(Op.REM, _r(rd), _r(rs1), _r(rs2))

    # -- memory ----------------------------------------------------------------

    def lw(self, rd, rs1, offset=0):
        return self.emit(Op.LW, _r(rd), _r(rs1), imm=offset)

    def sw(self, rsrc, rs1, offset=0):
        return self.emit(Op.SW, _r(rsrc), _r(rs1), imm=offset)

    def lb(self, rd, rs1, offset=0):
        return self.emit(Op.LB, _r(rd), _r(rs1), imm=offset)

    def sb(self, rsrc, rs1, offset=0):
        return self.emit(Op.SB, _r(rsrc), _r(rs1), imm=offset)

    def flw(self, fd, rs1, offset=0):
        return self.emit(Op.FLW, _r(fd), _r(rs1), imm=offset)

    def fsw(self, fsrc, rs1, offset=0):
        return self.emit(Op.FSW, _r(fsrc), _r(rs1), imm=offset)

    # -- floating point ----------------------------------------------------------

    def fadd(self, fd, fs1, fs2):
        return self.emit(Op.FADD, _r(fd), _r(fs1), _r(fs2))

    def fsub(self, fd, fs1, fs2):
        return self.emit(Op.FSUB, _r(fd), _r(fs1), _r(fs2))

    def fmul(self, fd, fs1, fs2):
        return self.emit(Op.FMUL, _r(fd), _r(fs1), _r(fs2))

    def fdiv(self, fd, fs1, fs2):
        return self.emit(Op.FDIV, _r(fd), _r(fs1), _r(fs2))

    def fsqrt(self, fd, fs1):
        return self.emit(Op.FSQRT, _r(fd), _r(fs1))

    def fneg(self, fd, fs1):
        return self.emit(Op.FNEG, _r(fd), _r(fs1))

    def fabs(self, fd, fs1):
        return self.emit(Op.FABS, _r(fd), _r(fs1))

    def fmin(self, fd, fs1, fs2):
        return self.emit(Op.FMIN, _r(fd), _r(fs1), _r(fs2))

    def fmax(self, fd, fs1, fs2):
        return self.emit(Op.FMAX, _r(fd), _r(fs1), _r(fs2))

    def flt(self, rd, fs1, fs2):
        return self.emit(Op.FLT, _r(rd), _r(fs1), _r(fs2))

    def fle(self, rd, fs1, fs2):
        return self.emit(Op.FLE, _r(rd), _r(fs1), _r(fs2))

    def feq(self, rd, fs1, fs2):
        return self.emit(Op.FEQ, _r(rd), _r(fs1), _r(fs2))

    def cvtif(self, fd, rs1):
        return self.emit(Op.CVTIF, _r(fd), _r(rs1))

    def cvtfi(self, rd, fs1):
        return self.emit(Op.CVTFI, _r(rd), _r(fs1))

    def fmov(self, fd, fs1):
        return self.emit(Op.FMOV, _r(fd), _r(fs1))

    # -- control -----------------------------------------------------------------

    def beq(self, rs1, rs2, target: Label):
        return self.emit(Op.BEQ, rs1=_r(rs1), rs2=_r(rs2), target=target)

    def bne(self, rs1, rs2, target: Label):
        return self.emit(Op.BNE, rs1=_r(rs1), rs2=_r(rs2), target=target)

    def blt(self, rs1, rs2, target: Label):
        return self.emit(Op.BLT, rs1=_r(rs1), rs2=_r(rs2), target=target)

    def bge(self, rs1, rs2, target: Label):
        return self.emit(Op.BGE, rs1=_r(rs1), rs2=_r(rs2), target=target)

    def bltz(self, rs1, target: Label):
        return self.emit(Op.BLTZ, rs1=_r(rs1), target=target)

    def bgez(self, rs1, target: Label):
        return self.emit(Op.BGEZ, rs1=_r(rs1), target=target)

    def bgtz(self, rs1, target: Label):
        return self.emit(Op.BGTZ, rs1=_r(rs1), target=target)

    def blez(self, rs1, target: Label):
        return self.emit(Op.BLEZ, rs1=_r(rs1), target=target)

    def j(self, target: Label):
        return self.emit(Op.J, target=target)

    def jal(self, target: Label):
        return self.emit(Op.JAL, rd=LINK_REG, target=target)

    def jr(self, rs1):
        return self.emit(Op.JR, rs1=_r(rs1))

    def jalr(self, rs1):
        return self.emit(Op.JALR, rd=LINK_REG, rs1=_r(rs1))

    def nop(self):
        return self.emit(Op.NOP)

    def halt(self):
        return self.emit(Op.HALT)

    # -- structured helpers --------------------------------------------------------

    @contextmanager
    def loop_counted(self, idx: RegLike, count_reg: RegLike):
        """Counted loop: ``for idx in range(count)``.

        ``idx`` is initialized to 0; ``count_reg`` must already hold the
        trip count.  The loop body is the ``with`` block; the increment and
        backward branch are emitted on exit.
        """
        idx = _r(idx)
        count_reg = _r(count_reg)
        self.li(idx, 0)
        top = self.here()
        yield top
        self.addi(idx, idx, 1)
        self.blt(idx, count_reg, top)

    @contextmanager
    def loop_down(self, counter: RegLike):
        """Count-down loop: iterate while ``counter > 0``.

        ``counter`` must be preloaded with the trip count; it is
        decremented at the bottom of the body.
        """
        counter = _r(counter)
        top = self.here()
        yield top
        self.addi(counter, counter, -1)
        self.bgtz(counter, top)

    # -- finish --------------------------------------------------------------------

    def build(self, *, validate: bool = True) -> Program:
        """Resolve all labels and produce the final :class:`Program`."""
        for pc, label in self._fixups:
            if label.addr is None:
                raise ValueError(f"label {label.name!r} never placed")
            old = self._instrs[pc]
            self._instrs[pc] = Instruction(old.op, rd=old.rd, rs1=old.rs1,
                                           rs2=old.rs2, imm=label.addr,
                                           label=label.name)
        labels = {lab.name: lab.addr for lab in self._labels.values()
                  if lab.addr is not None}
        prog = Program(list(self._instrs), labels=labels,
                       segments=list(self._segments),
                       mem_bytes=self.mem_bytes, name=self.name)
        if validate:
            prog.validate()
        return prog
