"""Opcode definitions for the SPISA instruction set.

SPISA (SPEAR Portable Instruction Set Architecture) is a small RISC ISA
modeled after SimpleScalar's PISA, which the SPEAR paper targets.  It is
register-based with 32 integer and 32 floating-point registers, a
byte-addressed data memory with 8-byte words, and instruction addresses in
units of one instruction.

Each opcode carries static metadata used by every downstream layer: its
operational class (which maps to a functional-unit class and an execution
latency in the timing model), its operand signature (used by the assembler
and the encoder), and semantic flags (load / store / branch / call).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.IntEnum):
    """Operational class of an instruction.

    The class determines which functional unit executes the instruction in
    the timing model and is also the unit of accounting in profiles and
    traces.
    """

    INT_ALU = 0
    INT_MUL = 1
    INT_DIV = 2
    FP_ALU = 3
    FP_MUL = 4
    FP_DIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8
    MISC = 9


class Fmt(enum.IntEnum):
    """Operand signature formats understood by the assembler/encoder.

    ``R``   three-register ALU form            op rd, rs1, rs2
    ``I``   register-immediate ALU form        op rd, rs1, imm
    ``LI``  load-immediate form                op rd, imm
    ``M``   memory form                        op rd, imm(rs1)
    ``B``   conditional branch form            op rs1, rs2, label
    ``BZ``  compare-against-zero branch form   op rs1, label
    ``J``   unconditional jump form            op label
    ``JR``  register jump form                 op rs1
    ``N``   no operands                        op
    """

    R = 0
    I = 1
    LI = 2
    M = 3
    B = 4
    BZ = 5
    J = 6
    JR = 7
    N = 8


@dataclass(frozen=True)
class OpInfo:
    """Static description of one opcode."""

    mnemonic: str
    code: int
    op_class: OpClass
    fmt: Fmt
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_call: bool = False
    is_return: bool = False
    is_conditional: bool = False
    fp_dest: bool = False
    fp_src: bool = False

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_control(self) -> bool:
        return self.is_branch


class Op(enum.IntEnum):
    """Every SPISA opcode.

    The numeric values are the binary encoding's opcode field and are part
    of the on-disk format; do not renumber.
    """

    # Integer ALU -------------------------------------------------------
    ADD = 1
    SUB = 2
    AND = 3
    OR = 4
    XOR = 5
    SLL = 6
    SRL = 7
    SRA = 8
    SLT = 9
    SLTU = 10
    ADDI = 11
    ANDI = 12
    ORI = 13
    XORI = 14
    SLLI = 15
    SRLI = 16
    SRAI = 17
    SLTI = 18
    LI = 19
    MOV = 20
    # Integer multiply / divide ----------------------------------------
    MUL = 21
    DIV = 22
    REM = 23
    # Memory ------------------------------------------------------------
    LW = 24
    SW = 25
    LB = 26
    SB = 27
    FLW = 28
    FSW = 29
    # Floating point ------------------------------------------------------
    FADD = 30
    FSUB = 31
    FMUL = 32
    FDIV = 33
    FSQRT = 34
    FNEG = 35
    FABS = 36
    FMIN = 37
    FMAX = 38
    FLT = 39   # int rd = (f rs1 < f rs2)
    FLE = 40   # int rd = (f rs1 <= f rs2)
    FEQ = 41   # int rd = (f rs1 == f rs2)
    CVTIF = 42  # f rd = float(int rs1)
    CVTFI = 43  # int rd = trunc(f rs1)
    FMOV = 44
    # Control -------------------------------------------------------------
    BEQ = 45
    BNE = 46
    BLT = 47
    BGE = 48
    BLTZ = 49
    BGEZ = 50
    BGTZ = 51
    BLEZ = 52
    J = 53
    JAL = 54
    JR = 55
    JALR = 56
    # Misc ----------------------------------------------------------------
    NOP = 57
    HALT = 58


def _op(mn, code, cls, fmt, **kw) -> OpInfo:
    return OpInfo(mn, code, cls, fmt, **kw)


#: Table of opcode metadata, indexed by :class:`Op`.
OP_INFO: dict[Op, OpInfo] = {
    Op.ADD: _op("add", Op.ADD, OpClass.INT_ALU, Fmt.R),
    Op.SUB: _op("sub", Op.SUB, OpClass.INT_ALU, Fmt.R),
    Op.AND: _op("and", Op.AND, OpClass.INT_ALU, Fmt.R),
    Op.OR: _op("or", Op.OR, OpClass.INT_ALU, Fmt.R),
    Op.XOR: _op("xor", Op.XOR, OpClass.INT_ALU, Fmt.R),
    Op.SLL: _op("sll", Op.SLL, OpClass.INT_ALU, Fmt.R),
    Op.SRL: _op("srl", Op.SRL, OpClass.INT_ALU, Fmt.R),
    Op.SRA: _op("sra", Op.SRA, OpClass.INT_ALU, Fmt.R),
    Op.SLT: _op("slt", Op.SLT, OpClass.INT_ALU, Fmt.R),
    Op.SLTU: _op("sltu", Op.SLTU, OpClass.INT_ALU, Fmt.R),
    Op.ADDI: _op("addi", Op.ADDI, OpClass.INT_ALU, Fmt.I),
    Op.ANDI: _op("andi", Op.ANDI, OpClass.INT_ALU, Fmt.I),
    Op.ORI: _op("ori", Op.ORI, OpClass.INT_ALU, Fmt.I),
    Op.XORI: _op("xori", Op.XORI, OpClass.INT_ALU, Fmt.I),
    Op.SLLI: _op("slli", Op.SLLI, OpClass.INT_ALU, Fmt.I),
    Op.SRLI: _op("srli", Op.SRLI, OpClass.INT_ALU, Fmt.I),
    Op.SRAI: _op("srai", Op.SRAI, OpClass.INT_ALU, Fmt.I),
    Op.SLTI: _op("slti", Op.SLTI, OpClass.INT_ALU, Fmt.I),
    Op.LI: _op("li", Op.LI, OpClass.INT_ALU, Fmt.LI),
    Op.MOV: _op("mov", Op.MOV, OpClass.INT_ALU, Fmt.JR),  # mov rd, rs1
    Op.MUL: _op("mul", Op.MUL, OpClass.INT_MUL, Fmt.R),
    Op.DIV: _op("div", Op.DIV, OpClass.INT_DIV, Fmt.R),
    Op.REM: _op("rem", Op.REM, OpClass.INT_DIV, Fmt.R),
    Op.LW: _op("lw", Op.LW, OpClass.LOAD, Fmt.M, is_load=True),
    Op.SW: _op("sw", Op.SW, OpClass.STORE, Fmt.M, is_store=True),
    Op.LB: _op("lb", Op.LB, OpClass.LOAD, Fmt.M, is_load=True),
    Op.SB: _op("sb", Op.SB, OpClass.STORE, Fmt.M, is_store=True),
    Op.FLW: _op("flw", Op.FLW, OpClass.LOAD, Fmt.M, is_load=True, fp_dest=True),
    Op.FSW: _op("fsw", Op.FSW, OpClass.STORE, Fmt.M, is_store=True, fp_src=True),
    Op.FADD: _op("fadd", Op.FADD, OpClass.FP_ALU, Fmt.R, fp_dest=True, fp_src=True),
    Op.FSUB: _op("fsub", Op.FSUB, OpClass.FP_ALU, Fmt.R, fp_dest=True, fp_src=True),
    Op.FMUL: _op("fmul", Op.FMUL, OpClass.FP_MUL, Fmt.R, fp_dest=True, fp_src=True),
    Op.FDIV: _op("fdiv", Op.FDIV, OpClass.FP_DIV, Fmt.R, fp_dest=True, fp_src=True),
    Op.FSQRT: _op("fsqrt", Op.FSQRT, OpClass.FP_DIV, Fmt.JR, fp_dest=True, fp_src=True),
    Op.FNEG: _op("fneg", Op.FNEG, OpClass.FP_ALU, Fmt.JR, fp_dest=True, fp_src=True),
    Op.FABS: _op("fabs", Op.FABS, OpClass.FP_ALU, Fmt.JR, fp_dest=True, fp_src=True),
    Op.FMIN: _op("fmin", Op.FMIN, OpClass.FP_ALU, Fmt.R, fp_dest=True, fp_src=True),
    Op.FMAX: _op("fmax", Op.FMAX, OpClass.FP_ALU, Fmt.R, fp_dest=True, fp_src=True),
    Op.FLT: _op("flt", Op.FLT, OpClass.FP_ALU, Fmt.R, fp_src=True),
    Op.FLE: _op("fle", Op.FLE, OpClass.FP_ALU, Fmt.R, fp_src=True),
    Op.FEQ: _op("feq", Op.FEQ, OpClass.FP_ALU, Fmt.R, fp_src=True),
    Op.CVTIF: _op("cvtif", Op.CVTIF, OpClass.FP_ALU, Fmt.JR, fp_dest=True),
    Op.CVTFI: _op("cvtfi", Op.CVTFI, OpClass.FP_ALU, Fmt.JR, fp_src=True),
    Op.FMOV: _op("fmov", Op.FMOV, OpClass.FP_ALU, Fmt.JR, fp_dest=True, fp_src=True),
    Op.BEQ: _op("beq", Op.BEQ, OpClass.BRANCH, Fmt.B, is_branch=True, is_conditional=True),
    Op.BNE: _op("bne", Op.BNE, OpClass.BRANCH, Fmt.B, is_branch=True, is_conditional=True),
    Op.BLT: _op("blt", Op.BLT, OpClass.BRANCH, Fmt.B, is_branch=True, is_conditional=True),
    Op.BGE: _op("bge", Op.BGE, OpClass.BRANCH, Fmt.B, is_branch=True, is_conditional=True),
    Op.BLTZ: _op("bltz", Op.BLTZ, OpClass.BRANCH, Fmt.BZ, is_branch=True, is_conditional=True),
    Op.BGEZ: _op("bgez", Op.BGEZ, OpClass.BRANCH, Fmt.BZ, is_branch=True, is_conditional=True),
    Op.BGTZ: _op("bgtz", Op.BGTZ, OpClass.BRANCH, Fmt.BZ, is_branch=True, is_conditional=True),
    Op.BLEZ: _op("blez", Op.BLEZ, OpClass.BRANCH, Fmt.BZ, is_branch=True, is_conditional=True),
    Op.J: _op("j", Op.J, OpClass.BRANCH, Fmt.J, is_branch=True),
    Op.JAL: _op("jal", Op.JAL, OpClass.BRANCH, Fmt.J, is_branch=True, is_call=True),
    Op.JR: _op("jr", Op.JR, OpClass.BRANCH, Fmt.JR, is_branch=True, is_return=True),
    Op.JALR: _op("jalr", Op.JALR, OpClass.BRANCH, Fmt.JR, is_branch=True, is_call=True),
    Op.NOP: _op("nop", Op.NOP, OpClass.MISC, Fmt.N),
    Op.HALT: _op("halt", Op.HALT, OpClass.MISC, Fmt.N),
}

#: Reverse map from assembler mnemonic to opcode.
MNEMONIC_TO_OP: dict[str, Op] = {info.mnemonic: op for op, info in OP_INFO.items()}

# Register name space ------------------------------------------------------

NUM_INT_REGS = 32
NUM_FP_REGS = 32
#: Floating point registers occupy ids [FP_BASE, FP_BASE + NUM_FP_REGS).
FP_BASE = 32
#: Total size of the unified architectural register id space.
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS
#: Integer register 0 is hardwired to zero (writes are discarded).
ZERO_REG = 0
#: Conventional link register for jal/jalr.
LINK_REG = 31


def reg_name(reg: int) -> str:
    """Render a unified register id as an assembly register name."""
    if reg < 0 or reg >= NUM_REGS:
        raise ValueError(f"register id out of range: {reg}")
    if reg >= FP_BASE:
        return f"f{reg - FP_BASE}"
    return f"r{reg}"


def parse_reg(name: str) -> int:
    """Parse an assembly register name (``r12`` / ``f3``) to a unified id."""
    name = name.strip().lower()
    if len(name) < 2 or name[0] not in "rf":
        raise ValueError(f"bad register name: {name!r}")
    try:
        idx = int(name[1:])
    except ValueError as exc:
        raise ValueError(f"bad register name: {name!r}") from exc
    limit = NUM_FP_REGS if name[0] == "f" else NUM_INT_REGS
    if not 0 <= idx < limit:
        raise ValueError(f"register index out of range: {name!r}")
    return idx + FP_BASE if name[0] == "f" else idx
