"""Binary encoding of SPISA instructions.

Each instruction encodes to a single 64-bit word:

=============  ======  =====================================
field          bits    contents
=============  ======  =====================================
opcode         8       :class:`~repro.isa.opcodes.Op` value
rd             7       destination register id + 1 (0 = none)
rs1            7       source register id + 1 (0 = none)
rs2            7       source register id + 1 (0 = none)
imm            35      signed immediate / resolved target
=============  ======  =====================================

The encoding exists so that programs round-trip through a genuine binary
representation (the SPEAR compiler operates on *binaries*, and tests assert
encode/decode round trips), not for compactness.
"""

from __future__ import annotations

import numpy as np

from .instruction import Instruction
from .opcodes import Op

_IMM_BITS = 35
_IMM_MIN = -(1 << (_IMM_BITS - 1))
_IMM_MAX = (1 << (_IMM_BITS - 1)) - 1
_IMM_MASK = (1 << _IMM_BITS) - 1


def encode(instr: Instruction) -> int:
    """Encode one instruction to its 64-bit word."""
    imm = instr.imm
    if not _IMM_MIN <= imm <= _IMM_MAX:
        raise ValueError(f"immediate out of encodable range: {imm}")
    word = int(instr.op) & 0xFF
    word |= ((instr.rd + 1) & 0x7F) << 8
    word |= ((instr.rs1 + 1) & 0x7F) << 15
    word |= ((instr.rs2 + 1) & 0x7F) << 22
    word |= (imm & _IMM_MASK) << 29
    return word


def decode(word: int) -> Instruction:
    """Decode a 64-bit word back to an :class:`Instruction`."""
    op = Op(word & 0xFF)
    rd = ((word >> 8) & 0x7F) - 1
    rs1 = ((word >> 15) & 0x7F) - 1
    rs2 = ((word >> 22) & 0x7F) - 1
    imm = (word >> 29) & _IMM_MASK
    if imm & (1 << (_IMM_BITS - 1)):  # sign extend
        imm -= 1 << _IMM_BITS
    return Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)


def encode_program(instructions: list[Instruction]) -> np.ndarray:
    """Encode a full instruction list to a ``uint64`` array."""
    return np.array([encode(i) for i in instructions], dtype=np.uint64)


def decode_program(words: np.ndarray) -> list[Instruction]:
    """Decode a ``uint64`` word array back to instructions."""
    return [decode(int(w)) for w in words]
