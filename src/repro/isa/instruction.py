"""The :class:`Instruction` object — one decoded SPISA instruction.

Instructions are immutable once constructed.  Source and destination
registers are precomputed at construction time so that the functional
simulator, the profiler and the timing model never need per-step decode
logic in their hot loops.
"""

from __future__ import annotations

from .opcodes import OP_INFO, Fmt, Op, OpClass, ZERO_REG, reg_name


class Instruction:
    """A single decoded instruction.

    Attributes
    ----------
    op:
        The :class:`~repro.isa.opcodes.Op` opcode.
    rd, rs1, rs2:
        Unified register ids (or ``-1`` when the slot is unused).
    imm:
        Immediate operand (also the branch/jump target, in instruction
        addresses, once labels have been resolved).
    srcs:
        Tuple of unified source register ids actually read.
    dst:
        Unified destination register id or ``-1``.
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm", "info", "srcs", "dst",
                 "op_class", "is_load", "is_store", "is_branch",
                 "is_conditional", "is_call", "is_return", "label")

    def __init__(self, op: Op, rd: int = -1, rs1: int = -1, rs2: int = -1,
                 imm: int = 0, label: str | None = None):
        info = OP_INFO[op]
        self.op = op
        self.info = info
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        #: Unresolved symbolic target, if the instruction was built from a
        #: label; ``imm`` holds the resolved address after linking.
        self.label = label

        self.op_class = info.op_class
        self.is_load = info.is_load
        self.is_store = info.is_store
        self.is_branch = info.is_branch
        self.is_conditional = info.is_conditional
        self.is_call = info.is_call
        self.is_return = info.is_return

        srcs = []
        if rs1 >= 0:
            srcs.append(rs1)
        if rs2 >= 0:
            srcs.append(rs2)
        # Stores read the value register (held in rd slot for Fmt.M stores).
        if info.is_store and rd >= 0:
            srcs.append(rd)
        # Reads of the hardwired zero register are not real dependencies.
        self.srcs = tuple(s for s in srcs if s != ZERO_REG)

        if info.is_store or (info.is_branch and not info.is_call):
            self.dst = -1
        else:
            self.dst = rd if rd != ZERO_REG else -1

    # -- niceties ----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instruction({self.render()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return (self.op, self.rd, self.rs1, self.rs2, self.imm) == (
            other.op, other.rd, other.rs1, other.rs2, other.imm)

    def __hash__(self) -> int:
        return hash((self.op, self.rd, self.rs1, self.rs2, self.imm))

    def render(self, labels: dict[int, str] | None = None) -> str:
        """Render back to assembly text.

        Parameters
        ----------
        labels:
            Optional map from instruction address to label name, used to
            render branch targets symbolically.
        """
        info = self.info
        mn = info.mnemonic

        def target() -> str:
            if labels and self.imm in labels:
                return labels[self.imm]
            if self.label is not None:
                return self.label
            return str(self.imm)

        fmt = info.fmt
        if fmt == Fmt.R:
            return f"{mn} {reg_name(self.rd)}, {reg_name(self.rs1)}, {reg_name(self.rs2)}"
        if fmt == Fmt.I:
            return f"{mn} {reg_name(self.rd)}, {reg_name(self.rs1)}, {self.imm}"
        if fmt == Fmt.LI:
            return f"{mn} {reg_name(self.rd)}, {self.imm}"
        if fmt == Fmt.M:
            return f"{mn} {reg_name(self.rd)}, {self.imm}({reg_name(self.rs1)})"
        if fmt == Fmt.B:
            return f"{mn} {reg_name(self.rs1)}, {reg_name(self.rs2)}, {target()}"
        if fmt == Fmt.BZ:
            return f"{mn} {reg_name(self.rs1)}, {target()}"
        if fmt == Fmt.J:
            return f"{mn} {target()}"
        if fmt == Fmt.JR:
            if self.rd >= 0:
                return f"{mn} {reg_name(self.rd)}, {reg_name(self.rs1)}"
            return f"{mn} {reg_name(self.rs1)}"
        return mn

    @property
    def is_direct_branch(self) -> bool:
        """True when the (taken) target is encoded in the instruction."""
        return self.is_branch and self.op not in (Op.JR, Op.JALR)
