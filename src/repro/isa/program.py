"""Program images: instructions + labels + data-segment initialization.

A :class:`Program` is the unit every tool in the repository consumes: the
functional simulator executes it, the SPEAR compiler analyses it, and the
timing model replays traces generated from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import encoding
from .instruction import Instruction

#: Size of one data word in bytes.  All word accesses must be 8-aligned.
WORD_SIZE = 8
#: Default data memory size (bytes).
DEFAULT_MEM_BYTES = 8 << 20


@dataclass
class DataSegment:
    """One initialized region of data memory.

    ``values`` may be an ``int64`` or ``float64`` numpy array; it is copied
    into memory word-by-word starting at ``addr`` (which must be 8-aligned).
    """

    addr: int
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.addr % WORD_SIZE != 0:
            raise ValueError(f"data segment at unaligned address {self.addr:#x}")
        if self.values.dtype not in (np.int64, np.float64):
            raise ValueError(f"unsupported segment dtype {self.values.dtype}")

    @property
    def nbytes(self) -> int:
        return int(self.values.size) * WORD_SIZE

    @property
    def end(self) -> int:
        return self.addr + self.nbytes


@dataclass
class Program:
    """A complete SPISA program image.

    Attributes
    ----------
    instructions:
        The text segment; instruction addresses are list indices.
    labels:
        Symbol table: label name → instruction address.
    segments:
        Initial contents of data memory.
    mem_bytes:
        Total data memory to allocate when running.
    name:
        Human-readable identifier (used in reports).
    """

    instructions: list[Instruction]
    labels: dict[str, int] = field(default_factory=dict)
    segments: list[DataSegment] = field(default_factory=list)
    mem_bytes: int = DEFAULT_MEM_BYTES
    name: str = "program"

    def __post_init__(self) -> None:
        for seg in self.segments:
            if seg.end > self.mem_bytes:
                raise ValueError(
                    f"segment [{seg.addr:#x}, {seg.end:#x}) exceeds memory "
                    f"size {self.mem_bytes:#x}")

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def address_to_label(self) -> dict[int, str]:
        """Inverse symbol table (first label wins per address)."""
        out: dict[int, str] = {}
        for name, addr in self.labels.items():
            out.setdefault(addr, name)
        return out

    def build_memory(self) -> np.ndarray:
        """Allocate and initialize the data memory byte buffer."""
        buf = np.zeros(self.mem_bytes, dtype=np.uint8)
        words = buf.view(np.int64)
        fwords = buf.view(np.float64)
        for seg in self.segments:
            w0 = seg.addr // WORD_SIZE
            if seg.values.dtype == np.int64:
                words[w0:w0 + seg.values.size] = seg.values
            else:
                fwords[w0:w0 + seg.values.size] = seg.values
        return buf

    def encode(self) -> np.ndarray:
        """Encode the text segment to binary words."""
        return encoding.encode_program(self.instructions)

    @classmethod
    def from_words(cls, words: np.ndarray, *, name: str = "program",
                   labels: dict[str, int] | None = None,
                   segments: list[DataSegment] | None = None,
                   mem_bytes: int = DEFAULT_MEM_BYTES) -> "Program":
        """Rebuild a program from encoded binary words."""
        return cls(encoding.decode_program(words), labels=labels or {},
                   segments=segments or [], mem_bytes=mem_bytes, name=name)

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on problems.

        * every direct branch target is a valid instruction address
        * labels point into the text segment
        * the program terminates in a ``halt`` on at least one path
          (approximated as: at least one halt instruction exists)
        """
        n = len(self.instructions)
        if n == 0:
            raise ValueError("empty program")
        for pc, ins in enumerate(self.instructions):
            if ins.is_direct_branch and ins.is_branch:
                tgt = ins.imm
                if not 0 <= tgt < n:
                    raise ValueError(
                        f"pc {pc}: branch target {tgt} outside text segment")
        for name, addr in self.labels.items():
            if not 0 <= addr <= n:
                raise ValueError(f"label {name!r} -> {addr} outside text segment")
        if not any(i.op.name == "HALT" for i in self.instructions):
            raise ValueError("program has no halt instruction")
