"""Two-pass text assembler for SPISA.

Syntax
------
* One instruction, label or directive per line; ``#`` starts a comment.
* Labels are ``name:`` on their own line or prefixing an instruction.
* Operand forms follow :class:`~repro.isa.opcodes.Fmt`, e.g.::

      loop:
          lw   r3, 0(r2)        # load word
          addi r2, r2, 8
          bne  r3, r0, loop
          halt

* Directives:

  - ``.name <str>`` — program name.
  - ``.mem <bytes>`` — data memory size.
  - ``.data <addr>`` — begin a data segment at byte address ``addr``;
    subsequent ``.word v1 v2 ...`` / ``.float v1 v2 ...`` lines append.
"""

from __future__ import annotations

import re

import numpy as np

from .instruction import Instruction
from .opcodes import Fmt, LINK_REG, MNEMONIC_TO_OP, OP_INFO, parse_reg
from .program import DataSegment, Program

_LABEL_RE = re.compile(r"^(\.?[A-Za-z_][\w.$]*):\s*(.*)$")
_MEM_RE = re.compile(r"^(-?\d+)\((\w+)\)$")


class AssemblerError(ValueError):
    """Raised on malformed assembly input, with line information."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _split_operands(rest: str) -> list[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [p.strip() for p in rest.split(",")]


def assemble(text: str, *, name: str = "program") -> Program:
    """Assemble SPISA source text into a :class:`Program`."""
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}
    segments: list[DataSegment] = []
    fixups: list[tuple[int, str, int]] = []  # (pc, label, lineno)
    mem_bytes: int | None = None

    cur_data_addr: int | None = None
    cur_data: list[float] = []
    cur_data_dtype: type | None = None

    def flush_data() -> None:
        nonlocal cur_data_addr, cur_data, cur_data_dtype
        if cur_data_addr is not None and cur_data:
            dtype = np.float64 if cur_data_dtype is float else np.int64
            segments.append(DataSegment(cur_data_addr, np.array(cur_data, dtype=dtype)))
        cur_data_addr = None
        cur_data = []
        cur_data_dtype = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        m = _LABEL_RE.match(line)
        if m:
            label, line = m.group(1), m.group(2).strip()
            if label in labels:
                raise AssemblerError(lineno, f"duplicate label {label!r}")
            labels[label] = len(instructions)
            if not line:
                continue

        if line.startswith("."):
            parts = line.split(None, 1)
            directive, arg = parts[0], (parts[1] if len(parts) > 1 else "")
            if directive == ".name":
                name = arg.strip()
            elif directive == ".mem":
                mem_bytes = int(arg, 0)
            elif directive == ".data":
                flush_data()
                cur_data_addr = int(arg, 0)
            elif directive in (".word", ".float"):
                if cur_data_addr is None:
                    raise AssemblerError(lineno, f"{directive} outside .data block")
                conv = int if directive == ".word" else float
                newtype = int if directive == ".word" else float
                if cur_data_dtype is None:
                    cur_data_dtype = newtype
                elif cur_data_dtype is not newtype:
                    raise AssemblerError(lineno, "mixed .word/.float in one .data block")
                try:
                    cur_data.extend(conv(v, 0) if conv is int else conv(v)
                                    for v in arg.split())
                except ValueError as exc:
                    raise AssemblerError(lineno, str(exc)) from exc
            else:
                raise AssemblerError(lineno, f"unknown directive {directive}")
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        op = MNEMONIC_TO_OP.get(mnemonic)
        if op is None:
            raise AssemblerError(lineno, f"unknown mnemonic {mnemonic!r}")
        info = OP_INFO[op]
        ops = _split_operands(rest)
        pc = len(instructions)

        try:
            instructions.append(
                _build(op, info.fmt, ops, pc, fixups, labels, lineno))
        except AssemblerError:
            raise
        except ValueError as exc:
            raise AssemblerError(lineno, str(exc)) from exc

    flush_data()

    # Second pass: resolve label fixups.
    for pc, label, lineno in fixups:
        if label not in labels:
            raise AssemblerError(lineno, f"undefined label {label!r}")
        old = instructions[pc]
        instructions[pc] = Instruction(old.op, rd=old.rd, rs1=old.rs1,
                                       rs2=old.rs2, imm=labels[label],
                                       label=label)

    prog = Program(instructions, labels=labels, segments=segments, name=name)
    if mem_bytes is not None:
        prog.mem_bytes = mem_bytes
    return prog


def _target(tok: str, pc: int, fixups: list, labels: dict, lineno: int) -> tuple[int, str | None]:
    """Resolve a branch target token: integer address or label."""
    try:
        return int(tok, 0), None
    except ValueError:
        fixups.append((pc, tok, lineno))
        return 0, tok


def _build(op, fmt: Fmt, ops: list[str], pc: int, fixups: list,
           labels: dict, lineno: int) -> Instruction:
    def need(n: int) -> None:
        if len(ops) != n:
            raise AssemblerError(lineno, f"expected {n} operands, got {len(ops)}")

    if fmt == Fmt.R:
        need(3)
        return Instruction(op, rd=parse_reg(ops[0]), rs1=parse_reg(ops[1]),
                           rs2=parse_reg(ops[2]))
    if fmt == Fmt.I:
        need(3)
        return Instruction(op, rd=parse_reg(ops[0]), rs1=parse_reg(ops[1]),
                           imm=int(ops[2], 0))
    if fmt == Fmt.LI:
        need(2)
        return Instruction(op, rd=parse_reg(ops[0]), imm=int(ops[1], 0))
    if fmt == Fmt.M:
        need(2)
        m = _MEM_RE.match(ops[1])
        if not m:
            raise AssemblerError(lineno, f"bad memory operand {ops[1]!r}")
        return Instruction(op, rd=parse_reg(ops[0]), rs1=parse_reg(m.group(2)),
                           imm=int(m.group(1), 0))
    if fmt == Fmt.B:
        need(3)
        imm, label = _target(ops[2], pc, fixups, labels, lineno)
        return Instruction(op, rs1=parse_reg(ops[0]), rs2=parse_reg(ops[1]),
                           imm=imm, label=label)
    if fmt == Fmt.BZ:
        need(2)
        imm, label = _target(ops[1], pc, fixups, labels, lineno)
        return Instruction(op, rs1=parse_reg(ops[0]), imm=imm, label=label)
    if fmt == Fmt.J:
        need(1)
        imm, label = _target(ops[0], pc, fixups, labels, lineno)
        rd = LINK_REG if OP_INFO[op].is_call else -1
        return Instruction(op, rd=rd, imm=imm, label=label)
    if fmt == Fmt.JR:
        # Unary register ops: "op rd, rs1"; jumps: "op rs1".
        if len(ops) == 2:
            return Instruction(op, rd=parse_reg(ops[0]), rs1=parse_reg(ops[1]))
        need(1)
        rd = LINK_REG if OP_INFO[op].is_call else -1
        return Instruction(op, rd=rd, rs1=parse_reg(ops[0]))
    if fmt == Fmt.N:
        need(0)
        return Instruction(op)
    raise AssemblerError(lineno, f"unhandled format {fmt}")
