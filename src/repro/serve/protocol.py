"""Wire protocol and job vocabulary of the ``repro serve`` daemon.

The protocol is deliberately boring: UTF-8 JSON, one object per line,
over a unix-domain (or TCP) stream socket.  A client writes one request
line, the server answers with one response line; connections may be
reused for further requests but carry no state.  Every response has an
``ok`` field; failures add ``error`` and an HTTP-flavoured ``code``
(400 malformed, 404 unknown job, 409 not ready, 429 queue full,
503 draining).

A *job* is one simulation request — ``(workload, config, latency
override, backend, trace spec)`` — described by :class:`JobSpec`.  Its
identity is the content-hash cache key of its result (exactly what
:func:`repro.harness.journal.cell_key` derives), which buys three
properties at once: duplicate submissions collapse onto one job, a
submission whose result already sits in the shared
:class:`~repro.harness.diskcache.DiskCache` completes without
simulating anything (read-through), and a job id stays valid across
daemon crashes and restarts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from ..core.configs import PAPER_CONFIGS, MachineConfig
from ..harness.diskcache import default_cache_dir
from ..harness.parallel import Cell
from ..harness.runner import SWEEP_BACKEND, TraceSpec

#: Maximum request/response line length (a spec is tiny; a status-all
#: response over a big job table is the sizing case).
MAX_LINE = 1 << 20

#: Forgiving shorthands for the paper's config names, shared with the
#: CLI (``--config spear`` means SPEAR-128 everywhere).
CONFIG_ALIASES = {
    "base": "baseline",
    "spear": "SPEAR-128",
    "spear-sf": "SPEAR.sf-128",
}


class ProtocolError(ValueError):
    """Malformed request, response or job spec."""


def encode(obj: dict) -> bytes:
    """One wire line: JSON + newline.

    Key order is *preserved*, not sorted: responses embed result
    summaries whose insertion order is part of the CLI's byte-exact
    output contract (``repro serve result`` must print what ``repro
    run`` prints).  Deterministic all the same — both sides build their
    dicts in deterministic order.
    """
    return json.dumps(obj, default=str).encode("utf-8") + b"\n"


def decode(line: bytes) -> dict:
    try:
        obj = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable wire line: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("wire line is not a JSON object")
    return obj


def resolve_config(name: str) -> MachineConfig | None:
    """A paper config by exact name or case-insensitive alias."""
    config = PAPER_CONFIGS.get(name)
    if config is not None:
        return config
    alias = CONFIG_ALIASES.get(name.lower(), name)
    for key, cfg in PAPER_CONFIGS.items():
        if key.lower() == alias.lower():
            return cfg
    return None


@dataclass(frozen=True)
class JobSpec:
    """One submittable simulation request.

    ``memory`` overrides the main-memory latency of the chosen config
    (the figure-9 axis); ``trace`` attaches observability, making the
    job's product a spilled
    :class:`~repro.harness.runner.TracedRun` instead of a plain
    ``PipelineResult``.
    """

    workload: str
    config: str = "SPEAR-128"
    memory: int | None = None
    backend: str | None = None
    trace: TraceSpec | None = None

    #: DiskCache kind the job's product lives under.
    @property
    def kind(self) -> str:
        return "traces" if self.trace is not None else "results"

    def validate(self) -> None:
        """Raise :class:`ProtocolError` on anything a worker would later
        choke on — submission is the cheap place to fail."""
        from ..pipeline import KERNEL_BACKENDS
        from ..workloads import all_workload_names
        if self.workload not in all_workload_names():
            raise ProtocolError(f"unknown workload {self.workload!r}")
        if resolve_config(self.config) is None:
            raise ProtocolError(
                f"unknown config {self.config!r} "
                f"(known: {sorted(PAPER_CONFIGS)})")
        if self.backend is not None and \
                self.backend not in list(KERNEL_BACKENDS) + [SWEEP_BACKEND]:
            raise ProtocolError(f"unknown backend {self.backend!r}")
        if self.memory is not None and self.memory <= 0:
            raise ProtocolError(f"memory latency must be positive, "
                                f"got {self.memory}")

    def cell(self) -> Cell:
        """The parallel-engine cell this spec describes (validates)."""
        self.validate()
        config = resolve_config(self.config)
        latencies = None
        if self.memory is not None:
            if self.memory < config.latencies.l2:
                raise ProtocolError(
                    f"memory latency {self.memory} below the config's L2 "
                    f"latency {config.latencies.l2}")
            latencies = replace(config.latencies, memory=self.memory)
        return Cell(self.workload, config, latencies, trace=self.trace,
                    backend=self.backend)

    def to_dict(self) -> dict:
        d = {"workload": self.workload, "config": self.config}
        if self.memory is not None:
            d["memory"] = self.memory
        if self.backend is not None:
            d["backend"] = self.backend
        if self.trace is not None:
            d["trace"] = self.trace.payload()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        if not isinstance(d, dict):
            raise ProtocolError("job spec must be a JSON object")
        unknown = set(d) - {"workload", "config", "memory", "backend",
                            "trace"}
        if unknown:
            raise ProtocolError(
                f"unknown job spec field(s): {', '.join(sorted(unknown))}")
        if "workload" not in d or not isinstance(d["workload"], str):
            raise ProtocolError("job spec needs a workload name")
        trace = None
        if d.get("trace") is not None:
            t = d["trace"]
            if not isinstance(t, dict):
                raise ProtocolError("trace spec must be a JSON object")
            try:
                kinds = t.get("kinds")
                trace = TraceSpec(
                    interval=int(t.get("interval", 1000)),
                    capacity=(None if t.get("capacity") in (None, 0)
                              else int(t["capacity"])),
                    kinds=tuple(kinds) if kinds else None)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"bad trace spec: {exc}") from None
        memory = d.get("memory")
        if memory is not None:
            try:
                memory = int(memory)
            except (TypeError, ValueError):
                raise ProtocolError(
                    f"bad memory latency {memory!r}") from None
        backend = d.get("backend")
        if backend is not None and not isinstance(backend, str):
            raise ProtocolError(f"bad backend {backend!r}")
        config = d.get("config", "SPEAR-128")
        if not isinstance(config, str):
            raise ProtocolError(f"bad config {config!r}")
        return cls(d["workload"], config, memory, backend, trace)


# -- addresses --------------------------------------------------------------

def default_state_dir(cache_dir: str | Path | None = None) -> Path:
    """Server state (journal, socket, server.json) lives next to the
    cache it serves: ``<cache-dir>/serve``."""
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return root / "serve"


def default_address(state_dir: str | Path | None = None,
                    cache_dir: str | Path | None = None) -> str:
    root = Path(state_dir) if state_dir is not None \
        else default_state_dir(cache_dir)
    return str(root / "serve.sock")


def parse_address(text: str) -> tuple:
    """``"tcp:HOST:PORT"`` → ``("tcp", host, port)``; anything else is a
    unix-socket path → ``("unix", path)``."""
    if text.startswith("tcp:"):
        rest = text[len("tcp:"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not host:
            raise ProtocolError(f"bad TCP address {text!r} "
                                f"(expected tcp:HOST:PORT)")
        try:
            return ("tcp", host, int(port))
        except ValueError:
            raise ProtocolError(f"bad TCP port in {text!r}") from None
    return ("unix", text)
