"""The ``repro serve`` daemon: a crash-tolerant simulation job service.

One long-lived process owning a :class:`~repro.harness.diskcache.DiskCache`
and a :class:`~repro.serve.fleet.WorkerFleet`, speaking the JSON-lines
protocol of :mod:`repro.serve.protocol` over a unix (or TCP) socket.

Durability model — every promise lives in exactly one place:

- *what was asked* and *where each job stands*: the append-only
  :class:`~repro.serve.state.ServerJournal` (each transition journaled
  before the daemon acts on it);
- *the answers*: the content-addressed cache, under the job id itself.

So a restarted daemon needs no handshake with anyone: it replays the
journal, re-verifies every ``DONE`` job against the cache, requeues
whatever was in flight, and carries on.  Clients poll with the same job
ids across the restart.

Flow control: at most ``max_jobs`` live (non-terminal) jobs are admitted
(submission past that is rejected with a 429-style error — the bounded
admission queue), and at most ``workers`` jobs are handed to the fleet
at once, so ``PENDING`` is an honest backpressure signal.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import socket
import time
from collections import deque
from pathlib import Path

from ..harness.diskcache import DiskCache, parse_bytes  # noqa: F401
from ..harness.journal import cell_key
from ..harness.parallel import ExecutionPolicy
from ..harness.runner import ExperimentRunner
from ..observe.events import (JOB_DONE, JOB_FAILED, JOB_PENDING, JOB_RUNNING,
                              JobEvent)
from . import protocol
from .fleet import WorkerFleet
from .protocol import MAX_LINE, JobSpec, ProtocolError, parse_address
from .state import JobRecord, ServerJournal, check_transition

#: Live (non-terminal) job states — what the admission cap counts.
_LIVE = (JOB_PENDING, JOB_RUNNING)


class ServeServer:
    """The daemon.  Construct, then ``asyncio.run(server.serve())``."""

    def __init__(self, runner: ExperimentRunner, state_dir: str | Path, *,
                 address: str | None = None, workers: int = 2,
                 policy: ExecutionPolicy | None = None, max_jobs: int = 64,
                 gc_budget: int | None = None):
        if runner.cache is None:
            raise ValueError("the serve daemon requires a DiskCache "
                             "(results live there, not in memory)")
        self.runner = runner
        self.cache: DiskCache = runner.cache
        self.state_dir = Path(state_dir)
        self.address = address if address is not None \
            else protocol.default_address(self.state_dir)
        self.workers = max(1, workers)
        self.max_jobs = max(1, max_jobs)
        self.gc_budget = gc_budget
        self.journal = ServerJournal(self.state_dir / "journal.jsonl")
        self.jobs: dict[str, JobRecord] = {}
        self.queue: deque[str] = deque()      # PENDING ids, oldest first
        self.inflight: set[str] = set()
        self.events: list[JobEvent] = []
        self._seq = 0
        self.draining = False
        self.started = time.time()
        self._stop = asyncio.Event()
        self._gc_running = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self.fleet = WorkerFleet(runner, workers=self.workers,
                                 policy=policy, on_done=self._fleet_done)

    # -- bookkeeping -------------------------------------------------------

    def _event(self, job: JobRecord, detail: str = "") -> None:
        self._seq += 1
        self.events.append(JobEvent(self._seq, job.id, job.state, detail))

    def _transition(self, job: JobRecord, new_state: str,
                    detail: str = "", *, spec: bool = False) -> None:
        """Move a job along a legal edge: validate, mutate, journal
        (durable before acted upon), then record the in-memory event."""
        if not spec:                    # first PENDING has no old state
            check_transition(job.state, new_state)
        job.state = new_state
        job.detail = detail
        job.updated = time.time()
        self.journal.record_job(job, spec=spec)
        self._event(job, detail)

    def _live_jobs(self) -> int:
        return sum(1 for j in self.jobs.values() if j.state in _LIVE)

    def _protected_refs(self) -> frozenset:
        """Cache addresses GC must never evict: every non-FAILED job's
        result (DONE entries are the promise; PENDING/RUNNING entries
        may be mid-write by a worker)."""
        refs = set()
        for job in self.jobs.values():
            if job.state != JOB_FAILED:
                kind = "traces" if job.spec.get("trace") is not None \
                    else "results"
                refs.add(f"{kind}/{job.id}")
        return frozenset(refs)

    # -- adoption (restart path) -------------------------------------------

    def adopt(self) -> dict:
        """Replay the journal and converge every job to a state the
        restarted daemon can honor.  Returns a small report."""
        self.jobs = self.journal.replay()
        report = {"jobs": len(self.jobs), "requeued": 0, "verified": 0,
                  "failed": 0}
        for job in sorted(self.jobs.values(), key=lambda j: j.submitted):
            if job.state == JOB_DONE:
                kind = "traces" if job.spec.get("trace") is not None \
                    else "results"
                if self.cache.entry_size(kind, job.id) is not None:
                    report["verified"] += 1
                    continue
                self._transition(job, JOB_PENDING,
                                 "re-adopted: cache entry lost")
                self.queue.append(job.id)
                report["requeued"] += 1
            elif job.state == JOB_RUNNING:
                self._transition(job, JOB_PENDING,
                                 "re-adopted after daemon restart")
                self.queue.append(job.id)
                report["requeued"] += 1
            elif job.state == JOB_PENDING:
                self.queue.append(job.id)
                report["requeued"] += 1
            else:
                report["failed"] += 1
        self.journal.record_server("adopt", **report)
        return report

    # -- fleet bridge ------------------------------------------------------

    def _pump(self) -> None:
        """Hand queued jobs to the fleet, up to the in-flight cap."""
        while self.queue and len(self.inflight) < self.workers:
            job_id = self.queue.popleft()
            job = self.jobs.get(job_id)
            if job is None or job.state != JOB_PENDING:
                continue
            try:
                cell = JobSpec.from_dict(job.spec).cell()
            except ProtocolError as exc:
                # A journal from an older vocabulary can replay a spec
                # this daemon no longer accepts; fail it, don't crash.
                job.error = f"unrunnable spec: {exc}"
                self._transition(job, JOB_FAILED, "spec rejected on requeue")
                continue
            self._transition(job, JOB_RUNNING)
            self.inflight.add(job_id)
            self.fleet.submit(job_id, cell)

    def _fleet_done(self, job_id, result, error, attempts, elapsed) -> None:
        """Fleet-thread callback; bridge onto the asyncio loop."""
        if self._loop is None or self._loop.is_closed():
            return
        self._loop.call_soon_threadsafe(self._job_done, job_id, result,
                                        error, attempts, elapsed)

    def _job_done(self, job_id, result, error, attempts, elapsed) -> None:
        job = self.jobs.get(job_id)
        self.inflight.discard(job_id)
        if job is not None and job.state == JOB_RUNNING:
            job.attempts += max(1, attempts)
            if error is not None:
                job.error = error
                self._transition(job, JOB_FAILED,
                                 f"after {attempts} attempt(s)")
            else:
                kind = "traces" if job.spec.get("trace") is not None \
                    else "results"
                job.ref = f"{kind}/{job_id}"
                job.payload_bytes = self.cache.entry_size(kind, job_id)
                self._transition(job, JOB_DONE, f"{elapsed:.3f}s")
                self._maybe_gc()
        self._pump()

    def _maybe_gc(self) -> None:
        """Opportunistic GC after completions (budget configured, one
        pass at a time, off the event loop)."""
        if self.gc_budget is None or self._gc_running:
            return
        self._gc_running = True

        async def _run():
            try:
                report = await asyncio.to_thread(
                    self.cache.gc, self.gc_budget,
                    protect=self._protected_refs())
                if report["removed"]:
                    self.journal.record_server("gc", **report)
            finally:
                self._gc_running = False

        asyncio.ensure_future(_run())

    # -- request handling --------------------------------------------------

    def handle(self, req: dict) -> dict:
        """One request → one response (pure dispatch, event-loop thread)."""
        op = req.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pid": os.getpid(),
                        "started": round(self.started, 3),
                        "uptime": round(time.time() - self.started, 3)}
            if op == "submit":
                return self._op_submit(req)
            if op == "status":
                return self._op_status(req)
            if op == "result":
                return self._op_result(req)
            if op == "retry":
                return self._op_retry(req)
            if op == "stats":
                return self._op_stats()
            if op == "events":
                return self._op_events(req)
            if op == "gc":
                return self._op_gc(req)
            if op in ("drain", "stop"):
                # handled asynchronously by the connection loop
                return {"ok": True, "op": op}
            return {"ok": False, "code": 400,
                    "error": f"unknown op {op!r}"}
        except ProtocolError as exc:
            return {"ok": False, "code": 400, "error": str(exc)}

    def _op_submit(self, req: dict) -> dict:
        spec = JobSpec.from_dict(req.get("spec"))
        cell = spec.cell()                       # validates, may raise 400
        job_id = cell_key(self.runner, cell)
        existing = self.jobs.get(job_id)
        if existing is not None and existing.state != JOB_FAILED:
            self._event(existing, "dedup: already submitted")
            out = existing.public()
            out.update(ok=True, deduped=True)
            return out
        if self.draining:
            return {"ok": False, "code": 503,
                    "error": "draining: not accepting new jobs"}
        if existing is None and self._live_jobs() >= self.max_jobs:
            return {"ok": False, "code": 429,
                    "error": f"admission queue full "
                             f"({self.max_jobs} live jobs)"}
        if existing is not None:                  # FAILED → explicit retry
            existing.error = None
            self._transition(existing, JOB_PENDING, "resubmitted")
            job = existing
        else:
            job = JobRecord(job_id, spec.to_dict())
            self.jobs[job_id] = job
            self._transition(job, JOB_PENDING, "submitted", spec=True)
        # Read-through: an answer already in the shared cache completes
        # the job without touching the fleet.
        if self.cache.entry_size(spec.kind, job_id) is not None:
            job.ref = f"{spec.kind}/{job_id}"
            job.payload_bytes = self.cache.entry_size(spec.kind, job_id)
            self._transition(job, JOB_DONE, "cache read-through")
        else:
            self.queue.append(job_id)
            self._pump()
        out = job.public()
        out.update(ok=True, deduped=False)
        return out

    def _op_status(self, req: dict) -> dict:
        job_id = req.get("id")
        if job_id is None:
            states: dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {"ok": True, "jobs": len(self.jobs), "states": states,
                    "queue": len(self.queue), "inflight": len(self.inflight),
                    "draining": self.draining,
                    "ids": {j.id: j.state for j in sorted(
                        self.jobs.values(), key=lambda j: j.submitted)}}
        job = self.jobs.get(job_id)
        if job is None:
            return {"ok": False, "code": 404,
                    "error": f"unknown job {job_id!r}"}
        out = job.public()
        out["ok"] = True
        return out

    def _op_result(self, req: dict) -> dict:
        job_id = req.get("id")
        job = self.jobs.get(job_id)
        if job is None:
            return {"ok": False, "code": 404,
                    "error": f"unknown job {job_id!r}"}
        if job.state == JOB_FAILED:
            return {"ok": False, "code": 500, "id": job_id,
                    "state": job.state, "error": job.error or "failed"}
        if job.state != JOB_DONE:
            return {"ok": False, "code": 409, "id": job_id,
                    "state": job.state,
                    "error": f"not ready (state {job.state})"}
        kind = "traces" if job.spec.get("trace") is not None else "results"
        value = self.cache.get_by_key(kind, job_id)
        if value is None:
            # The cache lost the entry under us (external rm, over-eager
            # GC): requeue rather than lie.
            self._transition(job, JOB_PENDING, "cache entry lost; requeued")
            self.queue.append(job_id)
            self._pump()
            return {"ok": False, "code": 409, "id": job_id,
                    "state": job.state,
                    "error": "result lost from cache; job requeued"}
        out = {"ok": True, "id": job_id, "state": job.state, "kind": kind,
               "ref": job.ref, "payload_bytes": job.payload_bytes}
        if kind == "results":
            if isinstance(value, list):     # a sweep cell's result list
                out["summary"] = [r.summary() for r in value]
            else:
                out["summary"] = value.summary()
        else:
            out["summary"] = value.result.summary()
            out["trace"] = {"events": len(value.events),
                            "emitted": value.emitted,
                            "dropped": value.dropped}
        return out

    def _op_retry(self, req: dict) -> dict:
        job_id = req.get("id")
        job = self.jobs.get(job_id)
        if job is None:
            return {"ok": False, "code": 404,
                    "error": f"unknown job {job_id!r}"}
        if job.state != JOB_FAILED:
            return {"ok": False, "code": 409, "id": job_id,
                    "error": f"only FAILED jobs can be retried "
                             f"(state {job.state})"}
        job.error = None
        self._transition(job, JOB_PENDING, "client retry")
        self.queue.append(job_id)
        self._pump()
        out = job.public()
        out["ok"] = True
        return out

    def _op_stats(self) -> dict:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {"ok": True, "jobs": states,
                "queue": len(self.queue), "inflight": len(self.inflight),
                "fleet": self.fleet.stats.snapshot(),
                "cache": self.cache.size_stats(),
                "counters": self.cache.stats(),
                "gc_budget": self.gc_budget,
                "draining": self.draining}

    def _op_events(self, req: dict) -> dict:
        after = req.get("after", 0)
        if not isinstance(after, int):
            raise ProtocolError(f"bad events cursor {after!r}")
        evs = [e for e in self.events if e.seq > after]
        return {"ok": True, "events": [json.loads(e.to_json()) for e in evs],
                "seq": self._seq}

    def _op_gc(self, req: dict) -> dict:
        budget = req.get("budget", self.gc_budget)
        if budget is None:
            raise ProtocolError("no GC budget configured or given")
        if not isinstance(budget, int) or budget < 0:
            raise ProtocolError(f"bad GC budget {budget!r}")
        report = self.cache.gc(budget, protect=self._protected_refs())
        self.journal.record_server("gc", **report)
        return {"ok": True, **report}

    # -- connection + lifecycle --------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break               # over-long or dropped
                if not line:
                    break
                try:
                    req = protocol.decode(line)
                except ProtocolError as exc:
                    resp = {"ok": False, "code": 400, "error": str(exc)}
                    writer.write(protocol.encode(resp))
                    await writer.drain()
                    continue
                op = req.get("op")
                if op == "drain":
                    await self._drain(writer)
                    continue
                if op == "stop":
                    writer.write(protocol.encode({"ok": True, "op": "stop"}))
                    await writer.drain()
                    self._stop.set()
                    continue
                writer.write(protocol.encode(self.handle(req)))
                await writer.drain()
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _drain(self, writer: asyncio.StreamWriter) -> None:
        """Stop admitting, wait out every live job, answer, then stop."""
        self.draining = True
        while self._live_jobs() > 0:
            self._pump()
            await asyncio.sleep(0.05)
        done = sum(1 for j in self.jobs.values() if j.state == JOB_DONE)
        failed = sum(1 for j in self.jobs.values()
                     if j.state == JOB_FAILED)
        writer.write(protocol.encode(
            {"ok": True, "op": "drain", "done": done, "failed": failed}))
        await writer.drain()
        self._stop.set()

    def _server_json(self) -> Path:
        return self.state_dir / "server.json"

    async def serve(self) -> None:
        """Run the daemon until stopped (``stop``/``drain`` op, SIGINT,
        SIGTERM)."""
        self._loop = asyncio.get_running_loop()
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.journal.record_server("start", pid=os.getpid(),
                                   address=self.address,
                                   workers=self.workers)
        self.adopt()
        addr = parse_address(self.address)
        if addr[0] == "tcp":
            server = await asyncio.start_server(
                self._handle_conn, addr[1], addr[2], limit=MAX_LINE)
            host, port = server.sockets[0].getsockname()[:2]
            bound = f"tcp:{host}:{port}"
        else:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(addr[1])
            server = await asyncio.start_unix_server(
                self._handle_conn, addr[1], limit=MAX_LINE)
            bound = addr[1]
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError,
                                     RuntimeError):
                self._loop.add_signal_handler(sig, self._stop.set)
        self._server_json().write_text(json.dumps(
            {"pid": os.getpid(), "address": bound,
             "started": round(self.started, 3)}, sort_keys=True) + "\n")
        self.fleet.start()
        try:
            async with server:
                self._pump()
                await self._stop.wait()
                await asyncio.sleep(0.02)   # let final responses flush
        finally:
            self.fleet.stop()
            self.journal.record_server("shutdown", pid=os.getpid())
            with contextlib.suppress(OSError):
                self._server_json().unlink()
            if addr[0] == "unix":
                with contextlib.suppress(OSError):
                    os.unlink(addr[1])


def read_server_json(state_dir: str | Path) -> dict | None:
    """The running daemon's coordinates, or ``None`` when absent/stale
    (stale = the recorded pid no longer exists)."""
    path = Path(state_dir) / "server.json"
    try:
        info = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    pid = info.get("pid")
    if isinstance(pid, int):
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return None
        except OSError:
            pass
    return info


def pick_free_port() -> int:
    """An OS-assigned free TCP port (tests bind the daemon to it)."""
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]
