"""Synchronous client for the ``repro serve`` daemon.

One JSON line per request over a stream socket; the client reconnects
per call when needed, so it survives daemon restarts transparently —
:meth:`ServeClient.wait_result` keeps polling the same (content-hash)
job id and the restarted daemon resumes answering for it.
"""

from __future__ import annotations

import socket
import time

from . import protocol
from .protocol import MAX_LINE, ProtocolError, parse_address


class ServeError(RuntimeError):
    """A failure response from the daemon (carries its wire code)."""

    def __init__(self, message: str, code: int = 0, response: dict | None
                 = None):
        super().__init__(message)
        self.code = code
        self.response = response or {}


class ServeClient:
    """Talks to one daemon address.  Usable as a context manager; a
    broken connection is dropped and re-dialed on the next request."""

    def __init__(self, address: str, *, timeout: float = 60.0):
        self.address = address
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._buf = b""

    # -- plumbing ----------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        addr = parse_address(self.address)
        if addr[0] == "tcp":
            sock = socket.create_connection((addr[1], addr[2]),
                                            timeout=self.timeout)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(addr[1])
        self._sock = sock
        self._buf = b""
        return sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buf = b""

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _readline(self, sock: socket.socket) -> bytes:
        while b"\n" not in self._buf:
            if len(self._buf) > MAX_LINE:
                raise ProtocolError("response line too long")
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self._buf += chunk
        line, self._buf = self._buf.split(b"\n", 1)
        return line + b"\n"

    def request(self, op: str, **fields) -> dict:
        """One request/response round trip.  Raises :class:`ServeError`
        on an ``ok: false`` response, ``OSError`` when the daemon is
        unreachable (callers that poll catch and retry)."""
        payload = {"op": op, **fields}
        try:
            sock = self._connect()
            sock.sendall(protocol.encode(payload))
            line = self._readline(sock)
        except (OSError, ConnectionError):
            self.close()
            raise
        resp = protocol.decode(line)
        if not resp.get("ok"):
            raise ServeError(resp.get("error", "request failed"),
                             code=int(resp.get("code", 0)), response=resp)
        return resp

    # -- the daemon's ops --------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def submit(self, spec: dict | protocol.JobSpec) -> dict:
        if isinstance(spec, protocol.JobSpec):
            spec = spec.to_dict()
        return self.request("submit", spec=spec)

    def status(self, job_id: str | None = None) -> dict:
        return self.request("status", **({} if job_id is None
                                         else {"id": job_id}))

    def result(self, job_id: str) -> dict:
        return self.request("result", id=job_id)

    def retry(self, job_id: str) -> dict:
        return self.request("retry", id=job_id)

    def stats(self) -> dict:
        return self.request("stats")

    def events(self, after: int = 0) -> dict:
        return self.request("events", after=after)

    def gc(self, budget: int | None = None) -> dict:
        return self.request("gc", **({} if budget is None
                                     else {"budget": budget}))

    def drain(self) -> dict:
        return self.request("drain")

    def stop(self) -> dict:
        return self.request("stop")

    # -- conveniences ------------------------------------------------------

    def wait_ready(self, timeout: float = 10.0, poll: float = 0.05) -> dict:
        """Ping until the daemon answers (it may still be binding).

        Each attempt uses a short socket timeout: a connect that lands
        in a dead listener's backlog (a crashed daemon's socket file the
        restart has not yet replaced) must give up and re-dial, not eat
        the whole readiness budget waiting on a reply that cannot come.
        """
        deadline = time.monotonic() + timeout
        saved = self.timeout
        while True:
            try:
                self.timeout = min(1.0, saved)
                resp = self.ping()
                if self._sock is not None:
                    self._sock.settimeout(saved)
                return resp
            except (OSError, ConnectionError, ProtocolError):
                self.close()
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"no daemon at {self.address} "
                        f"after {timeout:g}s") from None
                time.sleep(poll)
            finally:
                self.timeout = saved

    def wait_result(self, job_id: str, timeout: float = 300.0,
                    poll: float = 0.1) -> dict:
        """Poll until the job is DONE and return its ``result`` response.

        Robust across daemon crashes: connection errors and 409 (not
        ready / requeued) keep polling; FAILED (500) raises
        :class:`ServeError` immediately.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.result(job_id)
            except ServeError as exc:
                if exc.code not in (404, 409):
                    raise
                # 404: a restarted daemon may still be adopting; 409:
                # not finished yet.  Both mean "poll again".
            except (OSError, ConnectionError):
                pass                     # daemon down/restarting
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id[:16]} not done "
                                   f"after {timeout:g}s")
            time.sleep(poll)
