"""The ``repro serve`` subsystem: a crash-tolerant simulation job daemon.

A long-lived process that owns the shared
:class:`~repro.harness.diskcache.DiskCache` and answers simulation
requests over a JSON-lines socket protocol:

- :mod:`~repro.serve.protocol` — the wire format, :class:`JobSpec` and
  its content-hash job identity (dedup + cache read-through for free);
- :mod:`~repro.serve.state` — the PENDING→RUNNING→DONE/FAILED state
  machine and the append-only :class:`ServerJournal` that makes every
  promise durable across crashes;
- :mod:`~repro.serve.fleet` — the supervised worker pool (timeouts,
  retries, pool rebuilds, serial degradation — the
  :mod:`repro.harness.parallel` policies, applied continuously);
- :mod:`~repro.serve.server` — the asyncio daemon tying them together;
- :mod:`~repro.serve.client` — the synchronous poll-and-reconnect
  client the CLI (and tests) use.
"""

from .client import ServeClient, ServeError
from .fleet import FleetStats, WorkerFleet
from .protocol import (CONFIG_ALIASES, MAX_LINE, JobSpec, ProtocolError,
                       default_address, default_state_dir, parse_address,
                       resolve_config)
from .server import ServeServer, pick_free_port, read_server_json
from .state import (TRANSITIONS, InvalidTransitionError, JobRecord,
                    ServerJournal, check_transition)

__all__ = ["JobSpec", "ProtocolError", "CONFIG_ALIASES", "MAX_LINE",
           "resolve_config", "default_state_dir", "default_address",
           "parse_address",
           "JobRecord", "ServerJournal", "TRANSITIONS",
           "InvalidTransitionError", "check_transition",
           "WorkerFleet", "FleetStats",
           "ServeServer", "read_server_json", "pick_free_port",
           "ServeClient", "ServeError"]
