"""Supervised worker fleet: the serve daemon's execution engine.

A long-lived re-statement of the batch engine in
:mod:`repro.harness.parallel`, with the same fault policy
(:class:`~repro.harness.parallel.ExecutionPolicy`) applied continuously
instead of per run:

- each job attempt runs in a ``ProcessPoolExecutor`` worker sharing the
  daemon's :class:`~repro.harness.diskcache.DiskCache`;
- an attempt that raises is retried with exponential backoff up to
  ``policy.retries`` extra attempts, then reported failed;
- a dead worker (``BrokenProcessPool`` — e.g. an injected
  ``worker-kill``) costs only the in-flight attempts: the pool is
  rebuilt and they are resubmitted without charging any retry budget;
- an attempt overrunning ``policy.cell_timeout`` (measured from when it
  is observed executing) tears the pool down to reclaim the worker and
  charges the job a timeout attempt;
- after ``policy.max_pool_rebuilds`` rebuilds *without an intervening
  success*, the fleet degrades to in-process serial execution (any
  success re-arms the rebuild budget — a long-lived server must not be
  permanently degraded by one bad afternoon).

The supervisor runs on its own thread; completions are reported through
the ``on_done`` callback (the daemon bridges it onto the asyncio loop).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..harness import faults, parallel
from ..harness.parallel import Cell, ExecutionPolicy, compute_cell
from ..harness.runner import ExperimentRunner


def _fleet_run(cell: Cell, job_id: str, attempt: int):
    """Worker-side entry: job-level fault injection, then the shared
    cell dispatch (traced payloads spill to the cache, results write
    through it)."""
    faults.inject_job_faults(job_id, attempt)
    return compute_cell(parallel._WORKER_RUNNER, cell, spill=True)


@dataclass
class _Tracked:
    """Supervisor-side bookkeeping for one in-fleet job."""

    cell: Cell
    attempts: int = 0    #: completed attempts charged to the retry budget
    submits: int = 0     #: submissions, incl. ones lost to dead pools
    enqueued: float = field(default_factory=time.monotonic)


@dataclass
class _InFlight:
    job_id: str
    submitted: float
    #: set when first observed executing; the timeout clock starts here
    started: float | None = None


@dataclass
class FleetStats:
    """Monotonic counters surfaced by the ``stats`` op."""

    ok: int = 0
    failed: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False

    def snapshot(self) -> dict:
        return {"ok": self.ok, "failed": self.failed,
                "retries": self.retries, "timeouts": self.timeouts,
                "pool_rebuilds": self.pool_rebuilds,
                "degraded": self.degraded}


_STOP = object()


class WorkerFleet:
    """Continuously supervised process pool executing serve jobs.

    ``on_done(job_id, result, error, attempts, elapsed)`` is invoked on
    the supervisor thread for every terminal outcome — exactly one of
    ``result``/``error`` is set.  The caller owns thread-safety of the
    callback.
    """

    def __init__(self, runner: ExperimentRunner, *, workers: int = 2,
                 policy: ExecutionPolicy | None = None, on_done):
        self.runner = runner
        self.workers = max(1, workers)
        self.policy = policy or ExecutionPolicy()
        self.on_done = on_done
        self.stats = FleetStats()
        self._inbox: queue.SimpleQueue = queue.SimpleQueue()
        self._thread: threading.Thread | None = None
        self._pool = None
        #: rebuilds since the last success (the degradation window)
        self._rebuild_window = 0

    # -- public surface ----------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(target=self._supervise,
                                        name="repro-serve-fleet",
                                        daemon=True)
        self._thread.start()

    def submit(self, job_id: str, cell: Cell) -> None:
        self._inbox.put((job_id, cell))

    def stop(self, timeout: float | None = 30.0) -> None:
        """Stop the supervisor.  Jobs still in flight are abandoned —
        their journaled ``RUNNING`` state makes the next daemon start
        re-adopt and re-run them."""
        if self._thread is None:
            return
        self._inbox.put(_STOP)
        self._thread.join(timeout)
        self._thread = None

    @property
    def active(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- supervisor --------------------------------------------------------

    def _supervise(self) -> None:
        tracked: dict[str, _Tracked] = {}
        pending: dict[Future, _InFlight] = {}
        ready: list[str] = []          # awaiting (re)submission
        backoffs: dict[str, float] = {}
        try:
            while True:
                if not self._drain_inbox(tracked, ready):
                    return
                now = time.monotonic()
                for job_id in [j for j, t in backoffs.items() if t <= now]:
                    del backoffs[job_id]
                    ready.append(job_id)
                if self.stats.degraded:
                    self._run_degraded(tracked, ready, backoffs)
                    continue
                while ready and not self.stats.degraded:
                    self._submit_one(tracked, pending, ready, ready.pop(0))
                if not pending:
                    if backoffs:
                        time.sleep(min(0.05,
                                       max(0.0, min(backoffs.values())
                                           - time.monotonic())))
                    continue
                self._harvest(tracked, pending, ready, backoffs)
        finally:
            self._teardown_pool(wait_for=not pending)

    def _drain_inbox(self, tracked: dict, ready: list) -> bool:
        """Pull newly submitted jobs; blocks briefly when idle.  Returns
        False on the stop sentinel."""
        block = not tracked
        while True:
            try:
                item = self._inbox.get(timeout=0.05) if block \
                    else self._inbox.get_nowait()
            except queue.Empty:
                return True
            block = False
            if item is _STOP:
                return False
            job_id, cell = item
            if job_id not in tracked:
                tracked[job_id] = _Tracked(cell)
                ready.append(job_id)

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = parallel._pool(self.runner, self.workers)
        return self._pool

    def _teardown_pool(self, *, wait_for: bool = False) -> None:
        if self._pool is None:
            return
        if not wait_for:
            parallel._terminate(self._pool)
        self._pool.shutdown(wait=wait_for, cancel_futures=not wait_for)
        self._pool = None

    def _submit_one(self, tracked: dict, pending: dict, ready: list,
                    job_id: str) -> None:
        tr = tracked[job_id]
        tr.submits += 1
        try:
            fut = self._ensure_pool().submit(_fleet_run, tr.cell, job_id,
                                             tr.submits)
        except Exception:
            # Pool already broken at submission time: rebuild and retry
            # on the next pass without charging the job.
            ready.extend(self._rebuild(tracked, pending,
                                       extra=[job_id]))
            return
        pending[fut] = _InFlight(job_id, time.monotonic())

    def _rebuild(self, tracked: dict, pending: dict,
                 extra: list | None = None) -> list[str]:
        """Replace a broken/stuck pool.  Returns the job ids to requeue
        (every in-flight job, oldest first) — the incident charges the
        rebuild window, not any retry budget."""
        self.stats.pool_rebuilds += 1
        self._rebuild_window += 1
        requeue = {meta.job_id for meta in pending.values()}
        requeue.update(extra or [])
        pending.clear()
        self._teardown_pool()
        if self._rebuild_window > self.policy.max_pool_rebuilds:
            self.stats.degraded = True
        return sorted((j for j in requeue if j in tracked),
                      key=lambda j: tracked[j].enqueued)

    def _harvest(self, tracked: dict, pending: dict, ready: list,
                 backoffs: dict) -> None:
        poll = 0.05
        if self.policy.cell_timeout is not None:
            poll = max(0.01, min(poll, self.policy.cell_timeout / 4))
        done, _ = wait(list(pending), timeout=poll,
                       return_when=FIRST_COMPLETED)
        broken: list[str] = []   # jobs whose futures died with the pool
        for fut in done:
            meta = pending.pop(fut)
            job_id = meta.job_id
            tr = tracked.get(job_id)
            if tr is None:
                continue
            try:
                result = fut.result()
            except BrokenProcessPool:
                broken.append(job_id)
            except Exception as exc:
                tr.attempts += 1
                if tr.attempts <= self.policy.retries:
                    self.stats.retries += 1
                    backoffs[job_id] = (time.monotonic()
                                        + self.policy.backoff_for(
                                            tr.attempts + 1))
                else:
                    self._finish(tracked, job_id, None,
                                 f"{type(exc).__name__}: {exc}", meta)
            else:
                tr.attempts += 1
                self._finish(tracked, job_id, result, None, meta)
        if broken:
            ready.extend(self._rebuild(tracked, pending, extra=broken))
            return
        self._expire_timeouts(tracked, pending, ready, backoffs)

    def _expire_timeouts(self, tracked: dict, pending: dict, ready: list,
                         backoffs: dict) -> None:
        if self.policy.cell_timeout is None:
            return
        now = time.monotonic()
        expired = []
        for fut, meta in pending.items():
            if meta.started is None:
                if fut.running():
                    meta.started = now
            elif now - meta.started > self.policy.cell_timeout:
                expired.append(meta.job_id)
        if not expired:
            return
        # A stuck worker can only be reclaimed by pool teardown; the
        # collateral in-flight jobs are resubmitted uncharged.
        for job_id in expired:
            tr = tracked.get(job_id)
            if tr is None:
                continue
            tr.attempts += 1
            self.stats.timeouts += 1
            if tr.attempts <= self.policy.retries:
                self.stats.retries += 1
                backoffs[job_id] = (time.monotonic()
                                    + self.policy.backoff_for(
                                        tr.attempts + 1))
            else:
                self._finish(tracked, job_id, None,
                             f"timeout: exceeded "
                             f"{self.policy.cell_timeout:g}s", None)
        ready.extend(j for j in self._rebuild(tracked, pending)
                     if j not in backoffs)

    def _run_degraded(self, tracked: dict, ready: list,
                      backoffs: dict) -> None:
        """In-process serial fallback after the rebuild budget is spent.
        Correct but slow; any success re-arms the pooled path."""
        if not ready:
            time.sleep(0.01)
            return
        job_id = ready.pop(0)
        tr = tracked[job_id]
        tr.submits += 1
        t0 = time.monotonic()
        try:
            faults.inject_job_faults(job_id, tr.submits)
            result = compute_cell(self.runner, tr.cell, spill=True)
        except Exception as exc:
            tr.attempts += 1
            if tr.attempts <= self.policy.retries:
                self.stats.retries += 1
                backoffs[job_id] = (time.monotonic()
                                    + self.policy.backoff_for(
                                        tr.attempts + 1))
            else:
                self._finish(tracked, job_id, None,
                             f"{type(exc).__name__}: {exc}", None)
            return
        tr.attempts += 1
        meta = _InFlight(job_id, t0, t0)
        self._finish(tracked, job_id, result, None, meta)

    def _finish(self, tracked: dict, job_id: str, result, error,
                meta: _InFlight | None) -> None:
        tr = tracked.pop(job_id)
        if error is None:
            self.stats.ok += 1
            # A success proves the fleet is healthy again: re-arm the
            # rebuild budget (and leave degraded mode if we were in it).
            self._rebuild_window = 0
            if self.stats.degraded:
                self.stats.degraded = False
        else:
            self.stats.failed += 1
        elapsed = 0.0
        if meta is not None:
            t0 = meta.started if meta.started is not None else meta.submitted
            elapsed = time.monotonic() - t0
        self.on_done(job_id, result, error, tr.attempts, elapsed)
