"""Durable job state for the serve daemon: state machine + journal.

Every job the daemon accepts is treated as restartable speculative work
(the Prophet stance from the paper's lineage: any thread may be squashed
at any time and re-executed to the same architectural result).  The
*only* durable record of a job is the append-only JSONL server journal:
each state transition is appended (one line, flushed) before the daemon
acts on it, so after a crash — of a worker, of the daemon itself, even
mid-append — replaying the journal reconstructs exactly what was
promised to clients, and re-adoption converges every non-terminal job
back to ``PENDING`` for re-execution.  Results themselves live in the
content-addressed :class:`~repro.harness.diskcache.DiskCache` under the
job id, so ``DONE`` is only trusted when the cache still holds the
entry.

State machine::

    (new) ──▶ PENDING ──▶ RUNNING ──▶ DONE
                 │  ▲         │        │
                 │  └─────────┘        │   (requeue: worker lost /
                 │  ▲                  │    daemon restarted)
                 ▼  │                  │
               FAILED ◀────────────────┘-- (cache entry lost:
                 │  (retry budget      ▼    DONE ──▶ PENDING)
                 └───▶ PENDING          re-verified on restart
                  (explicit client retry)

``PENDING → DONE`` is also legal: the read-through path, when a
submission's result already sits in the shared cache.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..harness import faults
from ..harness.journal import read_jsonl
from ..observe.events import (JOB_DONE, JOB_FAILED, JOB_PENDING, JOB_RUNNING,
                              JOB_STATES)

#: Legal state transitions (see the module docstring's diagram).
TRANSITIONS: dict[str, tuple[str, ...]] = {
    JOB_PENDING: (JOB_RUNNING, JOB_DONE, JOB_FAILED),
    JOB_RUNNING: (JOB_DONE, JOB_FAILED, JOB_PENDING),
    JOB_DONE: (JOB_PENDING,),
    JOB_FAILED: (JOB_PENDING,),
}


class InvalidTransitionError(RuntimeError):
    """A job was asked to move along an edge the state machine lacks."""


def check_transition(old: str, new: str) -> None:
    if new not in TRANSITIONS.get(old, ()):
        raise InvalidTransitionError(f"illegal job transition "
                                     f"{old} -> {new}")


@dataclass
class JobRecord:
    """One job's current truth, reconstructed from / mirrored to the
    journal.  ``id`` is the content-hash cache key of the job's result;
    ``ref`` its ``kind/key`` cache address once the result exists."""

    id: str
    spec: dict
    state: str = JOB_PENDING
    attempts: int = 0
    error: str | None = None
    ref: str | None = None
    payload_bytes: int | None = None
    detail: str = ""
    submitted: float = field(default_factory=time.time)
    updated: float = field(default_factory=time.time)

    def public(self) -> dict:
        """The wire view of this job (status/result responses)."""
        out = {"id": self.id, "state": self.state, "spec": self.spec,
               "attempts": self.attempts,
               "submitted": round(self.submitted, 3),
               "updated": round(self.updated, 3)}
        if self.error is not None:
            out["error"] = self.error
        if self.ref is not None:
            out["ref"] = self.ref
        if self.payload_bytes is not None:
            out["payload_bytes"] = self.payload_bytes
        if self.detail:
            out["detail"] = self.detail
        return out


class ServerJournal:
    """The daemon's append-only JSONL event log.

    Record shapes: ``{"event": "job", "id", "state", ...}`` for job
    transitions (``spec`` rides on the first ``PENDING``), and
    ``{"event": "server", "kind": start|shutdown|adopt|gc, ...}`` for
    daemon lifecycle marks.  Torn final lines (crash mid-append) are
    skipped with a warning on read — see
    :func:`repro.harness.journal.read_jsonl`.

    Fault hooks (``$REPRO_FAULTS``): ``torn-journal`` truncates an
    append and hard-exits, ``daemon-crash`` hard-exits right *after* an
    append — both leave a journal that replay must recover from.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def _append(self, record: dict, *, transition: str | None = None,
                job_id: str = "") -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = (json.dumps(record, sort_keys=True, default=str) + "\n") \
            .encode("utf-8")
        if transition is not None:
            cut = faults.torn_journal_cut(transition, len(data))
            if cut is not None:
                with self.path.open("ab") as fh:
                    fh.write(data[:cut])
                    fh.flush()
                    os.fsync(fh.fileno())
                os._exit(23)
        with self.path.open("ab") as fh:
            fh.write(data)
            fh.flush()
        if transition is not None:
            faults.maybe_daemon_crash(transition, job_id)

    def record_job(self, job: JobRecord, *, spec: bool = False) -> None:
        """Append one job transition (call *after* mutating the record).
        ``spec`` inlines the job spec — exactly once, on first submit,
        so replay can rebuild the job from the journal alone."""
        rec = {"event": "job", "id": job.id, "state": job.state,
               "ts": round(time.time(), 3), "attempts": job.attempts}
        if spec:
            rec["spec"] = job.spec
        if job.error is not None:
            rec["error"] = job.error[:500]
        if job.ref is not None:
            rec["ref"] = job.ref
        if job.payload_bytes is not None:
            rec["payload_bytes"] = job.payload_bytes
        if job.detail:
            rec["detail"] = job.detail
        self._append(rec, transition=job.state, job_id=job.id)

    def record_server(self, kind: str, **info) -> None:
        self._append({"event": "server", "kind": kind,
                      "ts": round(time.time(), 3), **info})

    def entries(self) -> list[dict]:
        return read_jsonl(self.path, label=f"serve journal {self.path.name}")

    def replay(self) -> dict[str, JobRecord]:
        """Fold the journal into the latest known state of every job,
        in first-submission order.

        Replay is deliberately lenient where writing is strict: the
        journal is the ground truth even if a crash produced an odd
        suffix, so unknown states and spec-less first records are
        skipped rather than fatal, and transitions are applied as
        written without re-validation.
        """
        jobs: dict[str, JobRecord] = {}
        for rec in self.entries():
            if rec.get("event") != "job":
                continue
            job_id, state = rec.get("id"), rec.get("state")
            if not job_id or state not in JOB_STATES:
                continue
            job = jobs.get(job_id)
            if job is None:
                spec = rec.get("spec")
                if not isinstance(spec, dict):
                    # First sighting without a spec: the submit record
                    # was torn away; nothing to rebuild the job from.
                    continue
                job = jobs[job_id] = JobRecord(
                    job_id, spec, submitted=rec.get("ts", 0.0))
            job.state = state
            job.attempts = rec.get("attempts", job.attempts)
            job.error = rec.get("error")
            job.ref = rec.get("ref", job.ref)
            job.payload_bytes = rec.get("payload_bytes", job.payload_bytes)
            job.detail = rec.get("detail", "")
            job.updated = rec.get("ts", job.updated)
        return jobs
