"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list                 the registered workloads and their published character
compile WORKLOAD     run the SPEAR compiler, print the report
                     (``-o file`` saves the SPEAR binary as JSON)
disasm WORKLOAD      disassemble a workload's binary, annotating p-threads
run WORKLOAD         simulate one workload under one machine model
compare WORKLOAD     baseline vs all SPEAR models on one workload
analyze WORKLOAD     trigger-point timeliness analysis of the p-threads
                     (``--timeline`` renders the traced interval series
                     and fill-timeliness breakdown instead)
trace WORKLOAD       dump a run's event stream as JSONL (filter with
                     ``--kinds``, ``--cycles LO:HI``, ``--thread``;
                     ``--stream FILE`` writes events during the run
                     without buffering — full-length captures)
report WORKLOAD      baseline-vs-model timeline diff: per-thread series,
                     per-interval cycles-saved attribution, sparklines
                     and embedded SVG (``--baseline``/``--model`` pick
                     the configs, ``-o report.md`` writes the markdown,
                     ``--svg FILE`` also writes the standalone figure)
report --suite       the whole-suite report: every workload (or a named
                     subset) under baseline+model in parallel,
                     per-workload speedups plus geomean, one markdown
                     document and one small-multiples SVG grid
figure {6,7,8,9}     regenerate a figure of the paper
table {1,2,3}        regenerate a table of the paper
bench                time compile/trace/simulate phases, write BENCH json
journal show [RUN]   list run journals, or dump one run's JSONL events
serve start          run the job daemon (unix/TCP socket, shared cache,
                     supervised worker fleet, durable job journal)
serve submit WORKLOAD   submit one simulation job (``--wait`` polls and
                     prints the summary, byte-identical to ``run``)
serve status [ID]    one job's state, or the whole job table
serve result ID      fetch a finished job's summary (``--wait`` polls)
serve stats          daemon + fleet + cache statistics (JSON)
serve drain          finish every live job, then shut the daemon down
serve stop           stop now; in-flight jobs resume on next start
fuzz run             run a seeded differential-fuzzing campaign (triage
                     text on stdout is byte-deterministic at any --jobs;
                     --strict exits 1 on any divergence; --guided
                     schedules batches over dial/mutation arms by
                     coverage novelty)
fuzz triage          the same campaign's triage as JSON (cached verdicts
                     make this cheap after a run)
fuzz coverage        the campaign's behaviour-coverage map (per-dimension
                     bins; --coverage-out writes it as JSON)
fuzz distill         greedy set-cover of a campaign's coverage facets
                     into a minimal pinned corpus (--corpus-out FILE)
fuzz corpus FILE     re-evaluate a pinned corpus; --strict exits 1 on
                     any divergence or behaviour drift
fuzz shrink NAME     delta-debug one diverging kernel to a minimal spec
                     (``--spec FILE`` re-shrinks a checked-in reproducer)
fuzz show NAME       print a generated kernel's spec IR and sizes
cache stats          per-kind on-disk cache accounting
cache gc --budget N  LRU-evict entries until the cache fits the budget

``run``, ``compare``, ``analyze``, ``trace``, ``report``, ``figure`` and
``table`` accept ``--backend`` (timing kernel: ``reference``,
``fast-forward``, or ``batched`` which also batches latency sweeps —
every backend produces byte-identical results).  ``figure``, ``table``,
``compare`` and ``report`` accept ``--jobs N`` (parallel cell
fan-out over processes, default usable-CPU count),
``--cache-dir``/``--no-cache``
(persistent artifact cache, default ``~/.cache/repro`` or
``$REPRO_CACHE_DIR``), plus the fault-tolerance knobs ``--cell-timeout``,
``--retries``, ``--fail-fast``/``--keep-going`` and ``--resume`` (skip
cells the run journal already records as ok).  ``$REPRO_FAULTS`` injects
deterministic faults (see ``repro.harness.faults``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .core.configs import PAPER_CONFIGS, BASELINE
from .harness import (Cell, DiskCache, ExecutionPolicy, ExperimentRunner,
                      FatalCellError, RunJournal, RunReport, SWEEP_BACKEND,
                      build_artifacts, cells_for, default_jobs,
                      default_journal_dir, default_workloads, figure6,
                      figure7, figure8, figure9, list_journals, run_cells,
                      table1, table2, table3)
from .harness.faults import FAULTS_ENV, FaultSpecError, active_faults
from .observe import EVENT_KINDS, filter_events
from .workloads import all_workload_names, get_workload


def _add_scale(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", type=float, default=1.0,
                   help="scale every instruction budget (default 1.0)")


def _add_backend(p: argparse.ArgumentParser) -> None:
    from .pipeline import KERNEL_BACKENDS
    p.add_argument("--backend", default=None,
                   choices=list(KERNEL_BACKENDS) + [SWEEP_BACKEND],
                   help="timing kernel (default reference; every backend "
                        "is byte-identical to it — fast-forward skips "
                        "provably idle cycles, batched additionally runs "
                        "latency sweeps through one functional pass)")


def _add_policy(p: argparse.ArgumentParser) -> None:
    from .policy import POLICIES
    p.add_argument("--policy", default=None, choices=list(POLICIES),
                   help="trigger policy (default fixed = the paper's "
                        "operating point; adaptive-epoch converges across "
                        "repeated runs, adaptive-phase re-decides at "
                        "interval boundaries; see docs/adaptive-policy.md)")


def _add_cache(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cache-dir", default=None,
                   help="persistent artifact cache location "
                        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the persistent artifact cache")
    p.set_defaults(use_cache=True)


def _add_perf(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", "-j", type=int, default=None,
                   help="worker processes for the cell matrix "
                        "(default: CPU count; 1 = exact serial path)")
    _add_cache(p)
    p.add_argument("--cell-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="abandon and retry a cell attempt after this long "
                        "(pool mode only)")
    p.add_argument("--retries", type=int, default=2,
                   help="extra attempts per failing cell (default 2)")
    g = p.add_mutually_exclusive_group()
    g.add_argument("--fail-fast", action="store_true",
                   help="abort the run on the first terminal cell failure")
    g.add_argument("--keep-going", dest="fail_fast", action="store_false",
                   help="record failures and keep computing the rest "
                        "(default)")
    p.set_defaults(fail_fast=False)
    p.add_argument("--resume", action="store_true",
                   help="skip cells the run journal records as ok "
                        "(restored from the cache); recompute only the rest")


def _runner(args) -> ExperimentRunner:
    cache = None
    if getattr(args, "use_cache", False) and not getattr(args, "no_cache",
                                                         False):
        cache = DiskCache(getattr(args, "cache_dir", None))
    return ExperimentRunner(instruction_scale=args.scale, cache=cache,
                            backend=getattr(args, "backend", None),
                            policy=getattr(args, "policy", None))


def _jobs(args) -> int:
    jobs = getattr(args, "jobs", None)
    return default_jobs() if jobs is None else max(1, jobs)


def _policy(args) -> ExecutionPolicy:
    return ExecutionPolicy(
        cell_timeout=getattr(args, "cell_timeout", None),
        retries=getattr(args, "retries", 2),
        fail_fast=getattr(args, "fail_fast", False))


def _journal_dir(args) -> Path:
    cache_dir = getattr(args, "cache_dir", None)
    return Path(cache_dir) / "journal" if cache_dir else default_journal_dir()


def _run_matrix(runner: ExperimentRunner, experiment: str,
                workloads: list[str] | None, args) -> RunReport:
    """Fault-tolerant execution of one experiment's cell matrix, journaled
    under the run's content key."""
    cells = cells_for(experiment, workloads,
                      backend=getattr(args, "backend", None),
                      policy=getattr(args, "policy", None))
    journal = RunJournal.for_run(experiment, cells, runner,
                                 root=_journal_dir(args))
    return run_cells(runner, cells, _jobs(args), policy=_policy(args),
                     journal=journal, resume=getattr(args, "resume", False))


def _surviving_workloads(experiment: str, workloads: list[str] | None,
                         report: RunReport) -> list[str]:
    """Drop workloads with terminally-failed cells so rendering can't
    re-trip the failure in-process (keep-going semantics)."""
    names = workloads or default_workloads(experiment)
    bad = {f.cell.workload for f in report.failures}
    return [n for n in names if n not in bad]


def _fatal(exc: FatalCellError) -> int:
    print(f"fail-fast: {exc}", file=sys.stderr)
    print(exc.report.render(), file=sys.stderr)
    return 1


def cmd_list(args) -> int:
    print(f"{'name':9s} {'suite':11s} {'expect':6s} {'paper bhr':>9s} "
          f"{'paper IPB':>9s}  notes")
    for name in all_workload_names():
        w = get_workload(name)
        print(f"{name:9s} {w.suite:11s} {w.paper.expectation:6s} "
              f"{w.paper.branch_hit_ratio:9.4f} {w.paper.ipb:9.2f}  "
              f"{w.paper.notes}")
    return 0


def cmd_compile(args) -> int:
    runner = _runner(args)
    art = runner.artifacts(args.workload)
    print(art.compile_report.render())
    if args.output:
        art.binary.save(args.output)
        print(f"\nSPEAR binary written to {args.output}")
    return 0


def cmd_disasm(args) -> int:
    from .isa import disassemble
    runner = _runner(args)
    art = runner.artifacts(args.workload)
    table = art.binary.table
    lines = disassemble(art.binary.program).splitlines()
    print(f"# {args.workload}: {len(table)} p-thread(s); "
          f"marked instructions flagged with *, d-loads with D")
    for line in lines:
        try:
            pc = int(line.split(":", 1)[0])
        except ValueError:
            print(line)
            continue
        flag = ("D" if pc in table.dload_pcs
                else "*" if pc in table.marked_pcs else " ")
        print(f"{flag} {line}")
    return 0


def cmd_run(args) -> int:
    config = PAPER_CONFIGS.get(args.config)
    if config is None:
        print(f"unknown config {args.config!r}; known: "
              f"{sorted(PAPER_CONFIGS)}", file=sys.stderr)
        return 2
    runner = _runner(args)
    res = runner.run(args.workload, config)
    for key, value in res.summary().items():
        print(f"{key:18s} {value}")
    return 0


def cmd_compare(args) -> int:
    runner = _runner(args)
    try:
        report = _run_matrix(runner, "compare", [args.workload], args)
    except FatalCellError as exc:
        return _fatal(exc)
    if report.failures:
        print(report.render(), file=sys.stderr)
        return 1
    base = runner.run(args.workload, BASELINE)
    print(f"{'model':14s} {'IPC':>8s} {'speedup':>9s} {'L1 misses':>10s} "
          f"{'triggers':>9s}")
    for config in PAPER_CONFIGS.values():
        res = runner.run(args.workload, config)
        print(f"{config.name:14s} {res.ipc:8.3f} "
              f"{res.ipc / base.ipc:8.3f}x {res.main_l1_misses:10d} "
              f"{res.stats.spear.triggers:9d}")
    print()
    print(report.render())
    return 0


#: Forgiving shorthands for the paper's config names (``repro report
#: ll4 --baseline base --model spear``).
CONFIG_ALIASES = {
    "base": "baseline",
    "spear": "SPEAR-128",
    "spear-sf": "SPEAR.sf-128",
}


def _lookup_config(name: str):
    config = PAPER_CONFIGS.get(name)
    if config is None:
        alias = CONFIG_ALIASES.get(name.lower(), name)
        for key, cfg in PAPER_CONFIGS.items():
            if key.lower() == alias.lower():
                return cfg
        print(f"unknown config {name!r}; known: {sorted(PAPER_CONFIGS)} "
              f"(aliases: {sorted(CONFIG_ALIASES)})", file=sys.stderr)
    return config


def cmd_analyze(args) -> int:
    if args.timeline:
        return _analyze_timeline(args)
    from .compiler import (CFG, analyze_triggers, profile_trace,
                           render_trigger_analysis)
    from .functional import run_program
    runner = _runner(args)
    art = runner.artifacts(args.workload)
    cfg = CFG(art.binary.program)
    budget = int(art.workload.profile_instructions * args.scale)
    profile = profile_trace(
        run_program(art.binary.program, max_instructions=budget), cfg)
    print(render_trigger_analysis(
        analyze_triggers(cfg, profile, art.binary.table)))
    return 0


#: ``analyze --timeline`` keys with a dedicated rendering (the main
#: sample table).  Every *other* timeline key renders generically below,
#: so a new series (e.g. ``policy``) is never silently dropped.
_TIMELINE_KNOWN = ("interval", "samples")


def _series_tables(name: str, series) -> list:
    """Generic tables for one unrecognised timeline series.

    A flat list of dicts becomes one table whose columns are the union
    of the row keys in first-seen order.  A list of dicts whose values
    are themselves series (the ``per_thread`` shape) recurses one level:
    each nested list renders as its own table, titled with the parent
    row's scalar fields.  Anything else yields no tables (the caller
    prints a one-line summary instead)."""
    from .harness import TextTable
    if not (isinstance(series, list) and series
            and all(isinstance(row, dict) for row in series)):
        return []
    if any(isinstance(v, list) for row in series for v in row.values()):
        tables = []
        for row in series:
            scalars = ", ".join(
                f"{k}={v}" for k, v in row.items()
                if not isinstance(v, (list, dict)))
            for key, value in row.items():
                if isinstance(value, list):
                    tables.extend(
                        _series_tables(f"{name}[{scalars}].{key}", value))
        return tables
    columns: list[str] = []
    for row in series:
        for key in row:
            if key not in columns:
                columns.append(key)
    t = TextTable(f"timeline series {name!r}", columns)
    for row in series:
        t.add_row(*(row.get(c, "") for c in columns))
    return [t]


def _analyze_timeline(args) -> int:
    """``analyze --timeline``: traced interval series + fill timeliness."""
    from .harness import TextTable
    config = _lookup_config(args.config)
    if config is None:
        return 2
    runner = _runner(args)
    traced = runner.run_traced(args.workload, config, interval=args.interval)
    tl = traced.result.timeline
    t = TextTable(
        f"{args.workload} / {config.name} — per-{tl['interval']}-cycle "
        f"timeline",
        ["cycle", "ipc", "ifq", "ruu", "mode_pct", "l1_miss_pct"])
    for s in tl["samples"]:
        t.add_row(s["cycle"], round(s["ipc"], 3),
                  round(s["avg_ifq_occupancy"], 1),
                  round(s["avg_ruu_occupancy"], 1),
                  round(s["mode_residency"] * 100, 1),
                  round(s["l1_miss_rate"] * 100, 1))
    for source, f in traced.result.memory["fills"].items():
        if not f["attempts"]:
            continue
        t.add_footer(
            f"{source} fills: {f['fills']} "
            f"(timely {f['timely']}, late {f['late']}, "
            f"unused {f['unused']}; redundant attempts {f['redundant']})")
    t.add_footer(f"events: {traced.emitted} emitted, "
                 f"{traced.dropped} dropped by the ring buffer")
    print(t.render())
    for name in tl:
        if name in _TIMELINE_KNOWN:
            continue
        tables = _series_tables(name, tl[name])
        if tables:
            for table in tables:
                print()
                print(table.render())
        else:
            print()
            print(f"timeline series {name!r}: {tl[name]!r}")
    return 0


def cmd_report(args) -> int:
    """``repro report``: baseline-vs-model timeline diff document —
    one workload, or the whole suite with ``--suite``.

    Either way the traced cells run through the fault-tolerant parallel
    engine (journaled, resumable, ``--jobs N`` with byte-identical
    output to serial); rendering then reads the seeded memo and
    simulates nothing.  The run report goes to stderr so stdout stays
    byte-comparable across job counts.
    """
    from .harness import (build_report, build_suite_report, report_cells,
                          report_trace_spec, timeline_diff)
    from .harness.experiments import EVAL_WORKLOADS
    from .observe import render_diff_svg, render_suite_svg
    baseline = _lookup_config(args.baseline)
    model = _lookup_config(args.model)
    if baseline is None or model is None:
        return 2
    if not args.suite and len(args.workloads) != 1:
        print("report needs exactly one WORKLOAD (or --suite for the "
              "whole-suite report)", file=sys.stderr)
        return 2
    workloads = list(args.workloads) or list(EVAL_WORKLOADS)
    runner = _runner(args)
    spec = report_trace_spec(args.interval)
    cells = report_cells(workloads, [baseline, model], spec,
                         backend=getattr(args, "backend", None))
    experiment = "report-suite" if args.suite else "report"
    journal = RunJournal.for_run(experiment, cells, runner,
                                 root=_journal_dir(args))
    try:
        run_report = run_cells(runner, cells, _jobs(args),
                               policy=_policy(args), journal=journal,
                               resume=getattr(args, "resume", False))
    except FatalCellError as exc:
        return _fatal(exc)
    bad = {f.cell.workload for f in run_report.failures}
    keep = [w for w in workloads if w not in bad]
    if not keep:
        print("no workload completed; nothing to render", file=sys.stderr)
        print(run_report.render(), file=sys.stderr)
        return 1
    if args.suite:
        report, suite = build_suite_report(runner, keep, baseline, model,
                                           interval=args.interval)
        svg = render_suite_svg(suite) if args.svg else None
    else:
        report = build_report(runner, keep[0], baseline, model,
                              interval=args.interval)
        svg = None
        if args.svg:
            diff = timeline_diff(runner, keep[0], baseline, model,
                                 interval=args.interval)
            svg = render_diff_svg(diff)
    if svg is not None:
        Path(args.svg).write_text(svg, encoding="utf-8")
        print(f"SVG written to {args.svg}", file=sys.stderr)
    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
        print(f"report written to {args.output}", file=sys.stderr)
    else:
        print(report)
    print(run_report.render(), file=sys.stderr)
    return 0 if run_report.completed else 1


def cmd_trace(args) -> int:
    config = _lookup_config(args.config)
    if config is None:
        return 2
    kinds = None
    if args.kinds:
        kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
        bad = sorted(set(kinds) - set(EVENT_KINDS))
        if bad:
            print(f"unknown event kind(s) {', '.join(bad)}; known: "
                  f"{', '.join(EVENT_KINDS)}", file=sys.stderr)
            return 2
    cycle_range = None
    if args.cycles:
        try:
            lo, _, hi = args.cycles.partition(":")
            cycle_range = (int(lo or 0), int(hi) if hi else sys.maxsize)
        except ValueError:
            print(f"bad --cycles {args.cycles!r}; expected LO:HI",
                  file=sys.stderr)
            return 2
    runner = _runner(args)
    if args.stream:
        # Streaming path: events go to the file as the run produces them
        # (JsonlStreamSink) — nothing buffered, nothing cached, so
        # billion-cycle captures are bounded by disk, not memory.  Only
        # the kind filter applies at the sink; cycle/thread filtering of
        # a stream is a job for downstream tools (jq, grep).
        if args.cycles or args.thread is not None or args.output:
            print("--stream is incompatible with --cycles/--thread/-o "
                  "(filter the stream downstream instead)", file=sys.stderr)
            return 2
        _, emitted = runner.run_streamed(
            args.workload, config, args.stream, interval=args.interval,
            kinds=tuple(kinds) if kinds else None)
        print(f"{emitted} events streamed to {args.stream}",
              file=sys.stderr)
        return 0
    # Capture unfiltered so one cached trace serves every filter; the
    # view below narrows it for display.
    traced = runner.run_traced(args.workload, config, interval=args.interval,
                               capacity=args.capacity or None)
    events = filter_events(traced.events, kinds=kinds,
                           cycle_range=cycle_range, thread=args.thread)
    out = open(args.output, "w", encoding="utf-8") if args.output \
        else sys.stdout
    try:
        for e in events:
            out.write(e.to_json() + "\n")
    finally:
        if args.output:
            out.close()
    print(f"{len(events)} events shown of {len(traced.events)} retained "
          f"({traced.emitted} emitted, {traced.dropped} dropped by the "
          f"ring buffer)", file=sys.stderr)
    return 0


def cmd_figure(args) -> int:
    if args.number not in (6, 7, 8, 9):
        print("figures: 6, 7, 8, 9", file=sys.stderr)
        return 2
    runner = _runner(args)
    workloads = args.workloads or None
    experiment = f"figure{args.number}"
    try:
        report = _run_matrix(runner, experiment, workloads, args)
    except FatalCellError as exc:
        return _fatal(exc)
    keep = _surviving_workloads(experiment, workloads, report)
    if keep:
        if args.number == 6:
            print(figure6(runner, keep).table("Figure 6").render())
        elif args.number == 7:
            print(figure7(runner, keep).table("Figure 7").render())
        elif args.number == 8:
            print(figure8(runner, keep).table().render())
        else:
            print(figure9(runner, keep).table().render())
    else:
        print("no workload completed; nothing to render", file=sys.stderr)
    print()
    print(report.render())
    return 0 if report.completed else 1


def cmd_table(args) -> int:
    if args.number not in (1, 2, 3):
        print("tables: 1, 2, 3", file=sys.stderr)
        return 2
    runner = _runner(args)
    if args.number == 2:
        print(table2().render())
        return 0
    if args.number == 1:
        jobs = _jobs(args)
        if jobs > 1:
            from .harness.experiments import EVAL_WORKLOADS
            build_artifacts(runner, args.workloads or EVAL_WORKLOADS, jobs)
        print(table1(runner, args.workloads or None).render())
        return 0
    workloads = args.workloads or None
    try:
        report = _run_matrix(runner, "table3", workloads, args)
    except FatalCellError as exc:
        return _fatal(exc)
    keep = _surviving_workloads("table3", workloads, report)
    if keep:
        print(table3(runner, keep).render())
    else:
        print("no workload completed; nothing to render", file=sys.stderr)
    print()
    print(report.render())
    return 0 if report.completed else 1


def cmd_ablate_policy(args) -> int:
    """``repro ablate-policy``: fixed vs adaptive trigger-policy table.

    The cell matrix (baseline + one cell per workload × policy) runs
    through the fault-tolerant parallel engine; table assembly then
    reads the seeded memo and simulates nothing, so output is
    byte-identical across job counts.
    """
    from .harness import (ablate_policy, ablate_policy_cells,
                          policy_ablation_workloads)
    from .policy import POLICIES
    runner = _runner(args)
    workloads = args.workloads or policy_ablation_workloads()
    policies = tuple(args.policies) if args.policies else (
        "fixed", "adaptive-epoch", "adaptive-phase")
    bad_policies = sorted(set(policies) - set(POLICIES))
    if bad_policies:
        print(f"unknown polic{'ies' if len(bad_policies) > 1 else 'y'} "
              f"{', '.join(bad_policies)}; known: {', '.join(POLICIES)}",
              file=sys.stderr)
        return 2
    cells = ablate_policy_cells(workloads, policies=policies,
                                backend=getattr(args, "backend", None))
    journal = RunJournal.for_run("ablate-policy", cells, runner,
                                 root=_journal_dir(args))
    try:
        report = run_cells(runner, cells, _jobs(args), policy=_policy(args),
                           journal=journal,
                           resume=getattr(args, "resume", False))
    except FatalCellError as exc:
        return _fatal(exc)
    bad = {f.cell.workload for f in report.failures}
    keep = [w for w in workloads if w not in bad]
    if keep:
        print(ablate_policy(runner, workloads=keep,
                            policies=policies).table().render())
    else:
        print("no workload completed; nothing to render", file=sys.stderr)
    print()
    print(report.render())
    return 0 if report.completed else 1


def cmd_bench(args) -> int:
    import json

    from .harness.bench import render_report, run_bench
    reference = None
    if args.reference:
        reference = json.loads(Path(args.reference).read_text())
    report = run_bench(scale=args.scale, jobs=getattr(args, "jobs", None),
                       cache_dir=getattr(args, "cache_dir", None),
                       workloads=args.workloads or None,
                       output=args.output, quick=args.quick,
                       reference=reference)
    print(render_report(report))
    print(f"\nreport written to {args.output}")
    return 0


def cmd_journal_show(args) -> int:
    root = Path(args.journal_dir) if args.journal_dir else \
        default_journal_dir()
    journals = list_journals(root)
    if not args.run:
        if not journals:
            print(f"no run journals under {root}")
            return 0
        print(f"{'run':16s} {'experiment':10s} {'events':>7s} {'ok':>5s} "
              f"{'failed':>7s}")
        for j in journals:
            records = j.entries()
            cells = [r for r in records if r.get("event") == "cell"]
            experiment = next(
                (r.get("experiment") for r in records
                 if r.get("event") == "start" and r.get("experiment")), "?")
            ok = sum(1 for r in cells if r.get("status") == "ok")
            failed = sum(1 for r in cells if r.get("status") == "failed")
            print(f"{j.run_id[:16]:16s} {str(experiment):10s} "
                  f"{len(records):7d} {ok:5d} {failed:7d}")
        return 0
    matches = [j for j in journals if j.run_id.startswith(args.run)]
    if not matches:
        print(f"no journal matching {args.run!r} under {root}",
              file=sys.stderr)
        return 2
    if len(matches) > 1:
        print(f"ambiguous run prefix {args.run!r}: "
              f"{', '.join(j.run_id[:16] for j in matches)}", file=sys.stderr)
        return 2
    for record in matches[0].entries():
        print(json.dumps(record, sort_keys=True))
    return 0


# -- serve ------------------------------------------------------------------

def _serve_state_dir(args) -> Path:
    from .serve import default_state_dir
    if getattr(args, "state_dir", None):
        return Path(args.state_dir)
    return default_state_dir(getattr(args, "cache_dir", None))


def _serve_address(args) -> str:
    """The daemon address a client command should dial: explicit
    ``--address``, else the running daemon's ``server.json``, else the
    default socket path under the state dir."""
    if getattr(args, "address", None):
        return args.address
    from .serve import default_address, read_server_json
    state_dir = _serve_state_dir(args)
    info = read_server_json(state_dir)
    if info and info.get("address"):
        return info["address"]
    return default_address(state_dir)


def _serve_client(args):
    from .serve import ServeClient
    return ServeClient(_serve_address(args),
                       timeout=getattr(args, "timeout", 60.0))


def _print_job(resp: dict) -> None:
    print(f"job    {resp['id']}")
    bits = resp["state"]
    if resp.get("deduped"):
        bits += "  (deduped)"
    if resp.get("detail"):
        bits += f"  [{resp['detail']}]"
    print(f"state  {bits}")


def _print_result_response(resp: dict) -> None:
    """Render a ``result`` response exactly like ``repro run`` renders a
    summary (JSON float round-tripping is exact, so the bytes match)."""
    summary = resp.get("summary")
    rows = summary if isinstance(summary, list) else [summary]
    for i, row in enumerate(rows):
        if i:
            print()
        for key, value in row.items():
            print(f"{key:18s} {value}")
    trace = resp.get("trace")
    if trace:
        print(f"{'trace_events':18s} {trace['events']}")
        print(f"{'trace_emitted':18s} {trace['emitted']}")
        print(f"{'trace_dropped':18s} {trace['dropped']}")


def cmd_serve_start(args) -> int:
    import asyncio

    from .serve import ServeServer
    if getattr(args, "no_cache", False):
        print("serve needs the disk cache (results live there); "
              "drop --no-cache", file=sys.stderr)
        return 2
    from .harness.diskcache import parse_bytes
    budget = None
    if args.gc_budget:
        try:
            budget = parse_bytes(args.gc_budget)
        except ValueError as exc:
            print(f"bad --gc-budget: {exc}", file=sys.stderr)
            return 2
    runner = _runner(args)
    state_dir = _serve_state_dir(args)
    server = ServeServer(runner, state_dir, address=args.address,
                         workers=_jobs(args), policy=_policy(args),
                         max_jobs=args.max_jobs, gc_budget=budget)
    print(f"serving on {server.address}  (state {state_dir})", flush=True)
    asyncio.run(server.serve())
    return 0


def cmd_serve_submit(args) -> int:
    from .serve import ServeError
    spec: dict = {"workload": args.workload, "config": args.config}
    if args.memory is not None:
        spec["memory"] = args.memory
    if getattr(args, "backend", None):
        spec["backend"] = args.backend
    if args.trace:
        spec["trace"] = {"interval": args.interval,
                         "capacity": args.capacity or None}
    client = _serve_client(args)
    try:
        resp = client.submit(spec)
    except ServeError as exc:
        print(f"submit rejected ({exc.code}): {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"no daemon at {client.address}: {exc}", file=sys.stderr)
        return 1
    if not args.wait:
        _print_job(resp)
        return 0
    return _wait_and_print(client, resp["id"], args.timeout)


def _wait_and_print(client, job_id: str, timeout: float) -> int:
    from .serve import ServeError
    try:
        result = client.wait_result(job_id, timeout=timeout)
    except ServeError as exc:
        print(f"job failed ({exc.code}): {exc}", file=sys.stderr)
        return 1
    except TimeoutError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    _print_result_response(result)
    return 0


def cmd_serve_status(args) -> int:
    from .serve import ServeError
    client = _serve_client(args)
    try:
        resp = client.status(args.id)
    except ServeError as exc:
        print(f"status failed ({exc.code}): {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"no daemon at {client.address}: {exc}", file=sys.stderr)
        return 1
    if args.id is not None:
        resp.pop("ok", None)
        print(json.dumps(resp, sort_keys=True, indent=2))
        return 0
    print(f"jobs {resp['jobs']}  queue {resp['queue']}  "
          f"inflight {resp['inflight']}"
          + ("  (draining)" if resp.get("draining") else ""))
    for job_id, state in resp.get("ids", {}).items():
        print(f"{state:8s} {job_id}")
    return 0


def cmd_serve_result(args) -> int:
    from .serve import ServeError
    client = _serve_client(args)
    if args.wait:
        return _wait_and_print(client, args.id, args.timeout)
    try:
        resp = client.result(args.id)
    except ServeError as exc:
        print(f"result unavailable ({exc.code}): {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"no daemon at {client.address}: {exc}", file=sys.stderr)
        return 1
    _print_result_response(resp)
    return 0


def cmd_serve_stats(args) -> int:
    from .serve import ServeError
    client = _serve_client(args)
    try:
        resp = client.stats()
    except (ServeError, OSError) as exc:
        print(f"stats failed: {exc}", file=sys.stderr)
        return 1
    resp.pop("ok", None)
    print(json.dumps(resp, sort_keys=True, indent=2))
    return 0


def cmd_serve_drain(args) -> int:
    from .serve import ServeError
    client = _serve_client(args)
    client.timeout = max(client.timeout, args.timeout)
    try:
        resp = client.drain()
    except (ServeError, OSError) as exc:
        print(f"drain failed: {exc}", file=sys.stderr)
        return 1
    print(f"drained: {resp.get('done', 0)} done, "
          f"{resp.get('failed', 0)} failed")
    return 0


def cmd_serve_stop(args) -> int:
    from .serve import ServeError
    client = _serve_client(args)
    try:
        client.stop()
    except (ServeError, OSError) as exc:
        print(f"stop failed: {exc}", file=sys.stderr)
        return 1
    print("stopped")
    return 0


# -- fuzz -------------------------------------------------------------------

def _parse_dials(text: str | None):
    """``k=v;k=v`` generator-dial overrides (see KernelDials fields)."""
    from dataclasses import replace
    from .fuzz.generator import DEFAULT_DIALS
    if not text:
        return DEFAULT_DIALS
    kw = {}
    for item in text.split(";"):
        k, sep, v = item.partition("=")
        if not sep or not hasattr(DEFAULT_DIALS, k):
            raise SystemExit(f"bad --dials entry {item!r}")
        kw[k] = type(getattr(DEFAULT_DIALS, k))(
            float(v) if "." in v or "e" in v else v)
    return replace(DEFAULT_DIALS, **kw)


def _campaign(args):
    runner = _runner(args)
    if getattr(args, "guided", False):
        from .fuzz import GuidedCampaignSpec, run_guided_campaign
        if args.dials:
            raise SystemExit("--dials applies to blind campaigns; "
                             "--guided arms carry their own dials")
        spec = GuidedCampaignSpec(seed=args.seed, count=args.count,
                                  batch=args.batch,
                                  sweep_every=args.sweep_every)
        return run_guided_campaign(spec, runner, jobs=_jobs(args),
                                   policy=_policy(args),
                                   journal_root=_journal_dir(args),
                                   resume=getattr(args, "resume", False))
    from .fuzz import CampaignSpec, run_campaign
    spec = CampaignSpec(seed=args.seed, count=args.count,
                        dials=_parse_dials(args.dials),
                        sweep_every=args.sweep_every)
    result = run_campaign(spec, runner, jobs=_jobs(args),
                          policy=_policy(args),
                          journal_root=_journal_dir(args),
                          resume=getattr(args, "resume", False))
    return result


def _campaign_coverage(result):
    """The campaign's coverage map (guided carries one, blind derives)."""
    from .fuzz import coverage_map
    return getattr(result, "coverage", None) or coverage_map(result.verdicts)


def _campaign_exit(args, result) -> int:
    reports = getattr(result, "run_reports", None)
    if reports is None:
        reports = [result.run_report]
    for report in reports:
        print(report.render(), file=sys.stderr)
    for name in result.failed:
        print(f"  NO VERDICT (evaluator failed): {name}", file=sys.stderr)
    if getattr(args, "coverage_out", None):
        Path(args.coverage_out).write_text(
            _campaign_coverage(result).to_json() + "\n")
        print(f"wrote {args.coverage_out}", file=sys.stderr)
    if getattr(args, "output", None):
        Path(args.output).write_text(result.report.to_json() + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    completed = (result.completed if hasattr(result, "completed")
                 else result.run_report.completed)
    if args.strict and (result.report.counts["divergence"]
                        or result.failed
                        or not completed):
        return 1
    return 0


def cmd_fuzz_run(args) -> int:
    """Run a campaign; the triage text on stdout is byte-deterministic
    for a given seed/count/dials at any ``--jobs`` (wall-clock and cache
    chatter go to stderr)."""
    try:
        result = _campaign(args)
    except FatalCellError as exc:
        return _fatal(exc)
    print(result.report.render())
    if hasattr(result, "render_allocations"):
        print(result.render_allocations())
    return _campaign_exit(args, result)


def cmd_fuzz_triage(args) -> int:
    """Re-triage a campaign as JSON (cached verdicts make this cheap)."""
    try:
        result = _campaign(args)
    except FatalCellError as exc:
        return _fatal(exc)
    print(result.report.to_json())
    return _campaign_exit(args, result)


def cmd_fuzz_coverage(args) -> int:
    """Render a campaign's behaviour-coverage map (byte-deterministic;
    cheap on a warm cache since verdicts replay from the disk cache)."""
    try:
        result = _campaign(args)
    except FatalCellError as exc:
        return _fatal(exc)
    print(_campaign_coverage(result).render())
    return _campaign_exit(args, result)


def cmd_fuzz_distill(args) -> int:
    """Distill a campaign into a minimal pinned corpus (greedy facet
    set-cover over the clean verdicts; see ``repro.fuzz.distill``)."""
    from .fuzz import corpus_to_json, distill
    try:
        result = _campaign(args)
    except FatalCellError as exc:
        return _fatal(exc)
    entries = distill(result.verdicts)
    source = {"experiment": result.spec.experiment, "seed": args.seed,
              "count": args.count,
              "guided": getattr(args, "guided", False)}
    text = corpus_to_json(entries, source=source)
    if args.corpus_out:
        Path(args.corpus_out).write_text(text + "\n")
        print(f"wrote {args.corpus_out} ({len(entries)} entries)",
              file=sys.stderr)
    else:
        print(text)
    return _campaign_exit(args, result)


def cmd_fuzz_corpus(args) -> int:
    """Re-evaluate a pinned corpus entry-by-entry in strict differential
    mode; ``--strict`` turns divergence or behaviour drift into exit 1."""
    from .fuzz import check_corpus, corpus_from_json
    entries, _doc = corpus_from_json(Path(args.file).read_text())
    checks = check_corpus(entries, scale=args.scale)
    for c in checks:
        print(c.describe())
    bad = sum(1 for c in checks if not c.ok)
    print(f"corpus: {len(entries)} entries, {bad} failing")
    if bad and args.strict:
        return 1
    return 0


def cmd_fuzz_shrink(args) -> int:
    from .fuzz import FuzzCheckSpec, evaluate_workload, shrink
    from .fuzz.generator import SpecWorkload, spec_from_json, spec_to_json
    if args.spec:
        doc = json.loads(Path(args.spec).read_text())
        workload = SpecWorkload(
            spec_from_json(json.dumps(doc["spec"])), doc["name"])
    elif args.name:
        workload = get_workload(args.name)
    else:
        print("fuzz shrink needs a workload name or --spec FILE",
              file=sys.stderr)
        return 2
    check = FuzzCheckSpec()
    base = evaluate_workload(workload, check, scale=args.scale)
    if not base.diverged:
        print(f"{workload.name}: verdict is {base.classification!r} — "
              f"nothing to shrink", file=sys.stderr)
        return 1
    # Shrinking keeps the original workload *name*: the name seeds the
    # data rng, so renaming would change the inputs under the spec.
    labels = {d.split(":", 1)[0] for d in base.divergences}
    evals = 0

    def still_fails(spec) -> bool:
        nonlocal evals
        evals += 1
        v = evaluate_workload(SpecWorkload(spec, workload.name), check,
                              scale=args.scale)
        return any(d.split(":", 1)[0] in labels for d in v.divergences)

    reduced = shrink(workload.spec, still_fails, max_evals=args.max_evals)
    final = evaluate_workload(SpecWorkload(reduced, workload.name), check,
                              scale=args.scale)
    doc = {"name": workload.name,
           "divergences": list(final.divergences),
           "spec": json.loads(spec_to_json(reduced))}
    text = json.dumps(doc, sort_keys=True, indent=2)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    print(text)
    print(f"shrunk {workload.spec.size()} -> {reduced.size()} statement(s) "
          f"in {evals} evaluation(s)", file=sys.stderr)
    return 0


def cmd_fuzz_show(args) -> int:
    from .fuzz.generator import spec_to_json
    workload = get_workload(args.name)
    program = workload.program("eval")
    spec = workload.spec
    print(f"{workload.name}: {spec.size()} statement(s), "
          f"{len(spec.loops)} loop(s), {spec.mem_words} words/array, "
          f"~{spec.dynamic_estimate()} dynamic instructions, "
          f"{len(program.instructions)} static instructions")
    print(spec_to_json(spec))
    return 0


# -- cache ------------------------------------------------------------------

def cmd_cache_stats(args) -> int:
    cache = DiskCache(getattr(args, "cache_dir", None))
    stats = cache.size_stats()
    print(f"cache {cache.root}")
    print(f"{'kind':12s} {'entries':>8s} {'bytes':>14s}")
    for kind in sorted(k for k in stats if k != "total"):
        row = stats[kind]
        print(f"{kind:12s} {row['entries']:8d} {row['bytes']:14d}")
    total = stats.get("total", {"entries": 0, "bytes": 0})
    print(f"{'total':12s} {total['entries']:8d} {total['bytes']:14d}")
    return 0


def cmd_cache_gc(args) -> int:
    from .harness.diskcache import parse_bytes
    try:
        budget = parse_bytes(args.budget)
    except ValueError as exc:
        print(f"bad --budget: {exc}", file=sys.stderr)
        return 2
    cache = DiskCache(getattr(args, "cache_dir", None))
    report = cache.gc(budget)
    print(f"budget {report['budget']}  examined {report['examined']}  "
          f"removed {report['removed']}  freed {report['freed_bytes']}  "
          f"kept {report['kept_entries']} ({report['kept_bytes']} bytes)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPEAR reproduction (Ro & Gaudiot, IPPS 2004)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads").set_defaults(fn=cmd_list)

    p = sub.add_parser("compile", help="run the SPEAR compiler")
    p.add_argument("workload")
    p.add_argument("-o", "--output", help="save the SPEAR binary (JSON)")
    _add_scale(p)
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("disasm", help="disassemble with p-thread annotations")
    p.add_argument("workload")
    _add_scale(p)
    p.set_defaults(fn=cmd_disasm)

    p = sub.add_parser("run", help="simulate one workload")
    p.add_argument("workload")
    p.add_argument("--config", default="SPEAR-128",
                   help="machine model (default SPEAR-128)")
    _add_scale(p)
    _add_backend(p)
    _add_policy(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("compare", help="baseline vs all SPEAR models")
    p.add_argument("workload")
    _add_scale(p)
    _add_backend(p)
    _add_policy(p)
    _add_perf(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("analyze", help="trigger-point timeliness analysis")
    p.add_argument("workload")
    p.add_argument("--timeline", action="store_true",
                   help="render the traced interval time series and fill "
                        "timeliness instead of the trigger-point analysis")
    p.add_argument("--config", default="SPEAR-128",
                   help="machine model for --timeline (default SPEAR-128)")
    p.add_argument("--interval", type=int, default=1000,
                   help="sampling interval in cycles for --timeline "
                        "(default 1000)")
    _add_scale(p)
    _add_backend(p)
    _add_policy(p)
    _add_cache(p)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "trace", help="dump one traced run's event stream as JSONL")
    p.add_argument("workload")
    p.add_argument("--config", default="SPEAR-128",
                   help="machine model (default SPEAR-128)")
    p.add_argument("--kinds", default=None,
                   help="comma-separated event kinds to keep "
                        f"({', '.join(EVENT_KINDS)})")
    p.add_argument("--cycles", default=None, metavar="LO:HI",
                   help="inclusive cycle range to keep (either end optional)")
    p.add_argument("--thread", type=int, default=None,
                   help="keep one thread only (0 = main, 1 = p-thread)")
    p.add_argument("--interval", type=int, default=1000,
                   help="timeline sampling interval (default 1000)")
    p.add_argument("--capacity", type=int, default=0,
                   help="ring-buffer capacity in events; 0 keeps everything "
                        "(default: keep everything, so filters see the "
                        "whole run)")
    p.add_argument("-o", "--output", default=None,
                   help="write the JSONL here instead of stdout")
    p.add_argument("--stream", default=None, metavar="FILE",
                   help="write every event to FILE during the run "
                        "(unbounded capture, no in-memory buffering; "
                        "only --kinds applies)")
    _add_scale(p)
    _add_backend(p)
    _add_policy(p)
    _add_cache(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "report", help="baseline-vs-model timeline diff report")
    p.add_argument("workloads", nargs="*", metavar="WORKLOAD",
                   help="one workload for the single report; with --suite "
                        "an optional subset (default: all 15)")
    p.add_argument("--suite", action="store_true",
                   help="whole-suite report: every workload under baseline"
                        "+model, per-workload speedups + geomean, and a "
                        "small-multiples SVG grid with --svg")
    p.add_argument("--baseline", default="baseline",
                   help="reference machine model (default baseline; "
                        "'base' works too)")
    p.add_argument("--model", default="SPEAR-128",
                   help="candidate machine model (default SPEAR-128; "
                        "'spear' works too)")
    p.add_argument("--interval", type=int, default=1000,
                   help="timeline sampling interval in cycles "
                        "(default 1000)")
    p.add_argument("-o", "--output", default=None,
                   help="write the markdown report here instead of stdout")
    p.add_argument("--svg", default=None, metavar="FILE",
                   help="also write the standalone figure SVG here "
                        "(diff panels, or the suite grid with --suite)")
    _add_scale(p)
    _add_backend(p)
    _add_policy(p)
    _add_perf(p)
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", type=int)
    p.add_argument("workloads", nargs="*")
    _add_scale(p)
    _add_backend(p)
    _add_policy(p)
    _add_perf(p)
    p.set_defaults(fn=cmd_figure)

    p = sub.add_parser(
        "ablate-policy",
        help="fixed vs adaptive trigger-policy ablation table")
    p.add_argument("workloads", nargs="*",
                   help="workload subset (default: the 15 evaluated "
                        "benchmarks plus the promoted fz* fuzz finds)")
    p.add_argument("--policies", nargs="*", default=None,
                   metavar="POLICY",
                   help="policy columns (default: fixed adaptive-epoch "
                        "adaptive-phase)")
    _add_scale(p)
    _add_backend(p)
    _add_perf(p)
    p.set_defaults(fn=cmd_ablate_policy)

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", type=int)
    p.add_argument("workloads", nargs="*")
    _add_scale(p)
    _add_backend(p)
    _add_perf(p)
    p.set_defaults(fn=cmd_table)

    p = sub.add_parser("journal", help="inspect run journals")
    jsub = p.add_subparsers(dest="action", required=True)
    pj = jsub.add_parser(
        "show", help="list run journals, or dump one run's JSONL events")
    pj.add_argument("run", nargs="?",
                    help="run key (prefix ok); omit to list all journals")
    pj.add_argument("--journal-dir", default=None,
                    help="journal location (default: <cache-dir>/journal)")
    pj.set_defaults(fn=cmd_journal_show)

    p = sub.add_parser("serve", help="the simulation job daemon")
    ssub = p.add_subparsers(dest="action", required=True)

    def _add_serve_addr(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--address", default=None,
                        help="daemon address: a unix socket path or "
                             "tcp:HOST:PORT (default: the running "
                             "daemon's, via server.json)")
        sp.add_argument("--state-dir", default=None,
                        help="daemon state location "
                             "(default: <cache-dir>/serve)")
        sp.add_argument("--cache-dir", default=None,
                        help="cache the daemon serves (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
        sp.add_argument("--timeout", type=float, default=300.0,
                        help="client-side wait budget in seconds "
                             "(default 300)")

    ps = ssub.add_parser("start", help="run the daemon (foreground)")
    _add_scale(ps)
    _add_backend(ps)
    _add_perf(ps)
    ps.add_argument("--address", default=None,
                    help="bind address: unix socket path or tcp:HOST:PORT "
                         "(default: <state-dir>/serve.sock)")
    ps.add_argument("--state-dir", default=None,
                    help="journal + socket + server.json location "
                         "(default: <cache-dir>/serve)")
    ps.add_argument("--max-jobs", type=int, default=64,
                    help="bounded admission queue: max live jobs before "
                         "submissions are rejected 429-style (default 64)")
    ps.add_argument("--gc-budget", default=None, metavar="BYTES",
                    help="cache byte budget; LRU GC runs after completions "
                         "(suffixes K/M/G; default: no automatic GC)")
    ps.set_defaults(fn=cmd_serve_start)

    ps = ssub.add_parser("submit", help="submit one simulation job")
    ps.add_argument("workload")
    ps.add_argument("--config", default="SPEAR-128",
                    help="machine model (default SPEAR-128; aliases like "
                         "'spear' work)")
    ps.add_argument("--memory", type=int, default=None,
                    help="override main-memory latency (cycles)")
    ps.add_argument("--trace", action="store_true",
                    help="traced run: attach the event tracer/sampler")
    ps.add_argument("--interval", type=int, default=1000,
                    help="trace sampling interval (default 1000)")
    ps.add_argument("--capacity", type=int, default=0,
                    help="trace ring capacity; 0 keeps everything")
    ps.add_argument("--wait", action="store_true",
                    help="poll until done and print the summary "
                         "(byte-identical to `repro run`)")
    _add_backend(ps)
    _add_serve_addr(ps)
    ps.set_defaults(fn=cmd_serve_submit)

    ps = ssub.add_parser("status", help="job state (one job or the table)")
    ps.add_argument("id", nargs="?", default=None)
    _add_serve_addr(ps)
    ps.set_defaults(fn=cmd_serve_status)

    ps = ssub.add_parser("result", help="fetch a finished job's summary")
    ps.add_argument("id")
    ps.add_argument("--wait", action="store_true",
                    help="poll until the job finishes")
    _add_serve_addr(ps)
    ps.set_defaults(fn=cmd_serve_result)

    ps = ssub.add_parser("stats", help="daemon/fleet/cache statistics")
    _add_serve_addr(ps)
    ps.set_defaults(fn=cmd_serve_stats)

    ps = ssub.add_parser("drain", help="finish live jobs, then shut down")
    _add_serve_addr(ps)
    ps.set_defaults(fn=cmd_serve_drain)

    ps = ssub.add_parser("stop", help="stop now (in-flight jobs resume "
                                      "on next start)")
    _add_serve_addr(ps)
    ps.set_defaults(fn=cmd_serve_stop)

    p = sub.add_parser("fuzz", help="differential fuzzing campaigns")
    fsub = p.add_subparsers(dest="action", required=True)

    def _add_campaign(pf):
        pf.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
        pf.add_argument("--count", type=int, default=1000,
                        help="programs in the campaign (default 1000)")
        pf.add_argument("--dials", default=None, metavar="K=V;K=V",
                        help="generator dial overrides "
                             "(e.g. mem_words=4096;fp_weight=0)")
        pf.add_argument("--guided", action="store_true",
                        help="coverage-guided campaign: batches "
                             "apportioned over dial/mutation arms by "
                             "coverage novelty (see docs/fuzzing.md)")
        pf.add_argument("--batch", type=int, default=25,
                        help="programs per guided scheduling round "
                             "(default 25)")
        pf.add_argument("--sweep-every", type=int, default=50,
                        help="every Nth program also cross-checks the "
                             "batched latency sweep (0 disables; "
                             "default 50)")
        pf.add_argument("--strict", action="store_true",
                        help="exit 1 on any divergence or failed cell")
        pf.add_argument("-o", "--output", default=None,
                        help="also write the triage report as JSON")
        pf.add_argument("--coverage-out", default=None, metavar="FILE",
                        help="also write the behaviour-coverage map "
                             "as JSON")
        _add_scale(pf)
        _add_perf(pf)

    pf = fsub.add_parser(
        "run", help="run a seeded campaign (deterministic triage on stdout)")
    _add_campaign(pf)
    pf.set_defaults(fn=cmd_fuzz_run)

    pf = fsub.add_parser(
        "triage", help="campaign triage as JSON (cheap on a warm cache)")
    _add_campaign(pf)
    pf.set_defaults(fn=cmd_fuzz_triage)

    pf = fsub.add_parser(
        "coverage", help="render a campaign's behaviour-coverage map")
    _add_campaign(pf)
    pf.set_defaults(fn=cmd_fuzz_coverage)

    pf = fsub.add_parser(
        "distill", help="distill a campaign into a minimal pinned corpus")
    _add_campaign(pf)
    pf.add_argument("--corpus-out", default=None, metavar="FILE",
                    help="write the corpus JSON here (default stdout)")
    pf.set_defaults(fn=cmd_fuzz_distill)

    pf = fsub.add_parser(
        "corpus", help="re-run a pinned corpus in strict differential mode")
    pf.add_argument("file", help="corpus JSON "
                                 "(e.g. tests/regress/corpus/corpus.json)")
    pf.add_argument("--strict", action="store_true",
                    help="exit 1 on any divergence or behaviour drift")
    _add_scale(pf)
    pf.set_defaults(fn=cmd_fuzz_corpus)

    pf = fsub.add_parser(
        "shrink", help="delta-debug a diverging kernel to a minimal spec")
    pf.add_argument("name", nargs="?", default=None,
                    help="fuzz workload name (fuzz:v1:SEED:INDEX[:dials])")
    pf.add_argument("--spec", default=None, metavar="FILE",
                    help="shrink a checked-in reproducer JSON instead")
    pf.add_argument("--max-evals", type=int, default=2000,
                    help="predicate-evaluation budget (default 2000)")
    pf.add_argument("-o", "--output", default=None,
                    help="write the shrunk reproducer JSON here")
    _add_scale(pf)
    pf.set_defaults(fn=cmd_fuzz_shrink)

    pf = fsub.add_parser("show", help="print one generated kernel's spec")
    pf.add_argument("name")
    pf.set_defaults(fn=cmd_fuzz_show)

    p = sub.add_parser("cache", help="inspect or collect the disk cache")
    csub = p.add_subparsers(dest="action", required=True)
    pc = csub.add_parser("stats", help="per-kind on-disk accounting")
    pc.add_argument("--cache-dir", default=None,
                    help="cache location (default: $REPRO_CACHE_DIR or "
                         "~/.cache/repro)")
    pc.set_defaults(fn=cmd_cache_stats)
    pc = csub.add_parser("gc", help="LRU-evict down to a byte budget")
    pc.add_argument("--budget", required=True, metavar="BYTES",
                    help="target cache size (suffixes K/M/G)")
    pc.add_argument("--cache-dir", default=None,
                    help="cache location (default: $REPRO_CACHE_DIR or "
                         "~/.cache/repro)")
    pc.set_defaults(fn=cmd_cache_gc)

    p = sub.add_parser(
        "bench", help="time compile/trace/simulate, write a BENCH json")
    p.add_argument("workloads", nargs="*")
    p.add_argument("--quick", action="store_true",
                   help="smoke mode: single workload, --scale capped "
                        "at 0.05 (<60 s)")
    p.add_argument("-o", "--output", default="BENCH_pr6.json",
                   help="report path (default BENCH_pr6.json)")
    p.add_argument("--reference",
                   help="JSON report from an older commit to compare against")
    _add_scale(p)
    _add_perf(p)
    p.set_defaults(fn=cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        active_faults()
    except FaultSpecError as exc:
        print(f"invalid {FAULTS_ENV}: {exc}", file=sys.stderr)
        return 2
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream reader (head, jq) closed the pipe early — routine
        # for stream-oriented commands like `trace`, not an error.  Point
        # stdout at devnull so the interpreter's shutdown flush doesn't
        # raise the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
