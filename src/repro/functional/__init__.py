"""Functional (architectural) simulation of SPISA programs."""

from .simulator import FunctionalSimulator, SimulationError, run_program
from .trace import Trace, TraceEntry

__all__ = ["FunctionalSimulator", "SimulationError", "run_program",
           "Trace", "TraceEntry"]
