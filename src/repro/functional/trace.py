"""Committed-path execution traces.

The functional simulator emits one :class:`TraceEntry` per architecturally
executed instruction.  Traces are the interchange format between the
functional layer and both consumers:

* the **profiler** (`repro.compiler.profiler`) replays a trace against a
  cache model to find delinquent loads and dynamic dependence edges;
* the **timing model** (`repro.pipeline`) replays a trace through the
  cycle-level SMT pipeline — the oracle-trace substitution documented in
  DESIGN.md §2.
"""

from __future__ import annotations

from ..isa.opcodes import OpClass


class TraceEntry:
    """One dynamic instruction on the committed path.

    Attributes are deliberately flat scalars/tuples — this object is
    allocated once per simulated instruction and read many times in the
    timing model's inner loop.
    """

    __slots__ = ("pc", "op_class", "srcs", "dst", "addr", "taken",
                 "is_load", "is_store", "is_branch", "is_cond")

    def __init__(self, pc: int, op_class: int, srcs: tuple, dst: int,
                 addr: int, taken: bool, is_load: bool, is_store: bool,
                 is_branch: bool, is_cond: bool):
        self.pc = pc
        self.op_class = op_class
        self.srcs = srcs
        self.dst = dst
        #: Byte address touched, or -1 for non-memory instructions.
        self.addr = addr
        self.taken = taken
        self.is_load = is_load
        self.is_store = is_store
        self.is_branch = is_branch
        self.is_cond = is_cond

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = ("L" if self.is_load else "S" if self.is_store else
                "B" if self.is_branch else ".")
        return f"<T pc={self.pc} {OpClass(self.op_class).name} {kind} addr={self.addr}>"


class Trace:
    """A complete committed-path trace plus summary statistics."""

    __slots__ = ("entries", "program_name", "halted", "instret")

    def __init__(self, entries: list[TraceEntry], *, program_name: str = "",
                 halted: bool = True):
        self.entries = entries
        self.program_name = program_name
        #: True when execution reached ``halt`` (vs. hitting the run limit).
        self.halted = halted
        self.instret = len(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, i):
        return self.entries[i]

    # -- summary statistics --------------------------------------------------

    def count_loads(self) -> int:
        return sum(1 for e in self.entries if e.is_load)

    def count_stores(self) -> int:
        return sum(1 for e in self.entries if e.is_store)

    def count_branches(self, conditional_only: bool = False) -> int:
        if conditional_only:
            return sum(1 for e in self.entries if e.is_cond)
        return sum(1 for e in self.entries if e.is_branch)

    def instructions_per_branch(self) -> float:
        """IPB as reported in the paper's Table 3."""
        nb = self.count_branches(conditional_only=True)
        return len(self.entries) / nb if nb else float("inf")

    def load_fraction(self) -> float:
        return self.count_loads() / len(self.entries) if self.entries else 0.0
