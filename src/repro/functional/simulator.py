"""Architectural (functional) simulator for SPISA programs.

Executes a :class:`~repro.isa.Program` instruction-by-instruction with full
architectural semantics: 32 int + 32 fp registers, byte-addressed memory
with 8-byte words, two's-complement 64-bit integer arithmetic.

The simulator is the repository's ground truth: the SPEAR compiler profiles
with it and the timing model replays traces produced by it.  The interpreter
loop is written as one flat dispatch chain — per the HPC guide, the hot loop
avoids per-step allocation and attribute lookups where practical.
"""

from __future__ import annotations

import math

import numpy as np

from ..isa.opcodes import FP_BASE, Op, ZERO_REG
from ..isa.program import Program, WORD_SIZE
from .trace import Trace, TraceEntry

_I64_MASK = (1 << 64) - 1
_I64_SIGN = 1 << 63
_I64_MAX = (1 << 63) - 1
_I64_MIN = -(1 << 63)
#: 2^63 as a float — the smallest magnitude at which CVTFI saturates.
_F_2P63 = float(1 << 63)
_NAN = float("nan")
_INF = float("inf")


def _wrap64(v: int) -> int:
    """Wrap a Python int to signed 64-bit two's complement."""
    v &= _I64_MASK
    return v - (1 << 64) if v & _I64_SIGN else v


class SimulationError(RuntimeError):
    """Raised on architectural faults (bad PC, unaligned/OOB access...)."""

    def __init__(self, message: str, pc: int = -1):
        super().__init__(f"pc={pc}: {message}" if pc >= 0 else message)
        self.pc = pc


class FunctionalSimulator:
    """Interprets SPISA programs and optionally records committed traces."""

    def __init__(self, program: Program):
        self.program = program
        self.instructions = program.instructions
        self.reset()

    def reset(self) -> None:
        """Reinitialize architectural state and reload data segments."""
        self.iregs: list[int] = [0] * 32
        self.fregs: list[float] = [0.0] * 32
        self.mem = self.program.build_memory()
        self.mem_words = self.mem.view(np.int64)
        self.mem_fwords = self.mem.view(np.float64)
        self.pc = 0
        self.halted = False
        self.instret = 0
        #: Per-static-pc execution counts (filled when ``count_pcs=True``).
        self.pc_counts: dict[int, int] = {}

    # -- architectural accessors (used by tests and tools) ---------------------

    def read_ireg(self, r: int) -> int:
        return self.iregs[r]

    def write_ireg(self, r: int, v: int) -> None:
        if r != ZERO_REG:
            self.iregs[r] = _wrap64(v)

    def read_freg(self, f: int) -> float:
        return self.fregs[f]

    def write_freg(self, f: int, v: float) -> None:
        self.fregs[f] = float(v)

    def read_word(self, addr: int) -> int:
        self._check_word(addr)
        return int(self.mem_words[addr >> 3])

    def read_fword(self, addr: int) -> float:
        self._check_word(addr)
        return float(self.mem_fwords[addr >> 3])

    def write_word(self, addr: int, value: int) -> None:
        self._check_word(addr)
        self.mem_words[addr >> 3] = _wrap64(value)

    def write_fword(self, addr: int, value: float) -> None:
        self._check_word(addr)
        self.mem_fwords[addr >> 3] = value

    def _check_word(self, addr: int) -> None:
        if addr % WORD_SIZE != 0:
            raise SimulationError(f"unaligned word access at {addr:#x}", self.pc)
        if not 0 <= addr < len(self.mem):
            raise SimulationError(f"out-of-bounds access at {addr:#x}", self.pc)

    # -- execution ---------------------------------------------------------------

    def run(self, max_instructions: int = 10_000_000, *, trace: bool = False,
            count_pcs: bool = False) -> Trace:
        """Run until ``halt`` or the instruction limit.

        Returns the committed-path :class:`Trace` (empty entries list when
        ``trace=False``).
        """
        entries: list[TraceEntry] = []
        instrs = self.instructions
        n_instrs = len(instrs)
        iregs = self.iregs
        fregs = self.fregs
        mem = self.mem
        mem_words = self.mem_words
        mem_fwords = self.mem_fwords
        mem_len = len(mem)
        pc = self.pc
        executed = 0
        pc_counts = self.pc_counts

        while executed < max_instructions:
            if not 0 <= pc < n_instrs:
                raise SimulationError("pc outside text segment", pc)
            ins = instrs[pc]
            op = ins.op
            next_pc = pc + 1
            addr = -1
            taken = False

            if op == Op.ADD:
                iregs[ins.rd] = _wrap64(iregs[ins.rs1] + iregs[ins.rs2])
            elif op == Op.ADDI:
                iregs[ins.rd] = _wrap64(iregs[ins.rs1] + ins.imm)
            elif op == Op.LW:
                addr = iregs[ins.rs1] + ins.imm
                if addr % 8 or not 0 <= addr < mem_len:
                    raise SimulationError(f"bad load address {addr:#x}", pc)
                iregs[ins.rd] = int(mem_words[addr >> 3])
            elif op == Op.SW:
                addr = iregs[ins.rs1] + ins.imm
                if addr % 8 or not 0 <= addr < mem_len:
                    raise SimulationError(f"bad store address {addr:#x}", pc)
                mem_words[addr >> 3] = iregs[ins.rd]
            elif op == Op.SUB:
                iregs[ins.rd] = _wrap64(iregs[ins.rs1] - iregs[ins.rs2])
            elif op == Op.LI:
                iregs[ins.rd] = _wrap64(ins.imm)
            elif op == Op.MOV:
                iregs[ins.rd] = iregs[ins.rs1]
            elif op == Op.SLLI:
                iregs[ins.rd] = _wrap64(iregs[ins.rs1] << (ins.imm & 63))
            elif op == Op.SRLI:
                # Logical shifts must land back in canonical signed form:
                # a zero-distance shift of a negative value would otherwise
                # leave an unsigned >= 2^63 in the register file, corrupting
                # every later signed comparison (and overflowing SW).
                iregs[ins.rd] = _wrap64(
                    (iregs[ins.rs1] & _I64_MASK) >> (ins.imm & 63))
            elif op == Op.SRAI:
                iregs[ins.rd] = iregs[ins.rs1] >> (ins.imm & 63)
            elif op == Op.ANDI:
                iregs[ins.rd] = iregs[ins.rs1] & ins.imm
            elif op == Op.ORI:
                iregs[ins.rd] = _wrap64(iregs[ins.rs1] | ins.imm)
            elif op == Op.XORI:
                iregs[ins.rd] = _wrap64(iregs[ins.rs1] ^ ins.imm)
            elif op == Op.AND:
                iregs[ins.rd] = iregs[ins.rs1] & iregs[ins.rs2]
            elif op == Op.OR:
                iregs[ins.rd] = iregs[ins.rs1] | iregs[ins.rs2]
            elif op == Op.XOR:
                iregs[ins.rd] = iregs[ins.rs1] ^ iregs[ins.rs2]
            elif op == Op.SLL:
                iregs[ins.rd] = _wrap64(iregs[ins.rs1] << (iregs[ins.rs2] & 63))
            elif op == Op.SRL:
                iregs[ins.rd] = _wrap64(
                    (iregs[ins.rs1] & _I64_MASK) >> (iregs[ins.rs2] & 63))
            elif op == Op.SRA:
                iregs[ins.rd] = iregs[ins.rs1] >> (iregs[ins.rs2] & 63)
            elif op == Op.SLT:
                iregs[ins.rd] = 1 if iregs[ins.rs1] < iregs[ins.rs2] else 0
            elif op == Op.SLTU:
                iregs[ins.rd] = 1 if (iregs[ins.rs1] & _I64_MASK) < (iregs[ins.rs2] & _I64_MASK) else 0
            elif op == Op.SLTI:
                iregs[ins.rd] = 1 if iregs[ins.rs1] < ins.imm else 0
            elif op == Op.MUL:
                iregs[ins.rd] = _wrap64(iregs[ins.rs1] * iregs[ins.rs2])
            elif op == Op.DIV:
                # RISC-V M semantics: truncated division, x/0 == -1 and
                # INT64_MIN / -1 wraps to INT64_MIN (no trap, no float
                # round-trip — exact for full-width operands).
                a = iregs[ins.rs1]
                d = iregs[ins.rs2]
                if d == 0:
                    iregs[ins.rd] = -1
                else:
                    q = abs(a) // abs(d)
                    iregs[ins.rd] = _wrap64(-q if (a < 0) != (d < 0) else q)
            elif op == Op.REM:
                # RISC-V M semantics: sign follows the dividend, x%0 == x
                # and INT64_MIN % -1 == 0.
                a = iregs[ins.rs1]
                d = iregs[ins.rs2]
                if d == 0:
                    iregs[ins.rd] = a
                else:
                    q = abs(a) // abs(d)
                    if (a < 0) != (d < 0):
                        q = -q
                    iregs[ins.rd] = _wrap64(a - q * d)
            elif op == Op.LB:
                addr = iregs[ins.rs1] + ins.imm
                if not 0 <= addr < mem_len:
                    raise SimulationError(f"bad load address {addr:#x}", pc)
                b = int(mem[addr])
                iregs[ins.rd] = b - 256 if b >= 128 else b
            elif op == Op.SB:
                addr = iregs[ins.rs1] + ins.imm
                if not 0 <= addr < mem_len:
                    raise SimulationError(f"bad store address {addr:#x}", pc)
                mem[addr] = iregs[ins.rd] & 0xFF
            elif op == Op.FLW:
                addr = iregs[ins.rs1] + ins.imm
                if addr % 8 or not 0 <= addr < mem_len:
                    raise SimulationError(f"bad load address {addr:#x}", pc)
                fregs[ins.rd - FP_BASE] = float(mem_fwords[addr >> 3])
            elif op == Op.FSW:
                addr = iregs[ins.rs1] + ins.imm
                if addr % 8 or not 0 <= addr < mem_len:
                    raise SimulationError(f"bad store address {addr:#x}", pc)
                mem_fwords[addr >> 3] = fregs[ins.rd - FP_BASE]
            elif op == Op.FADD:
                fregs[ins.rd - FP_BASE] = fregs[ins.rs1 - FP_BASE] + fregs[ins.rs2 - FP_BASE]
            elif op == Op.FSUB:
                fregs[ins.rd - FP_BASE] = fregs[ins.rs1 - FP_BASE] - fregs[ins.rs2 - FP_BASE]
            elif op == Op.FMUL:
                fregs[ins.rd - FP_BASE] = fregs[ins.rs1 - FP_BASE] * fregs[ins.rs2 - FP_BASE]
            elif op == Op.FDIV:
                # IEEE 754 default (non-trapping) semantics: x/±0 -> ±inf,
                # ±0/±0 and NaN operands -> NaN.
                a = fregs[ins.rs1 - FP_BASE]
                d = fregs[ins.rs2 - FP_BASE]
                if d == 0.0:
                    if a == 0.0 or a != a:
                        fregs[ins.rd - FP_BASE] = _NAN
                    else:
                        fregs[ins.rd - FP_BASE] = (
                            math.copysign(_INF, a) * math.copysign(1.0, d))
                else:
                    fregs[ins.rd - FP_BASE] = a / d
            elif op == Op.FSQRT:
                # IEEE 754: sqrt of a negative value is NaN, not a trap.
                v = fregs[ins.rs1 - FP_BASE]
                fregs[ins.rd - FP_BASE] = _NAN if v < 0.0 else v ** 0.5
            elif op == Op.FNEG:
                fregs[ins.rd - FP_BASE] = -fregs[ins.rs1 - FP_BASE]
            elif op == Op.FABS:
                fregs[ins.rd - FP_BASE] = abs(fregs[ins.rs1 - FP_BASE])
            elif op == Op.FMIN:
                fregs[ins.rd - FP_BASE] = min(fregs[ins.rs1 - FP_BASE], fregs[ins.rs2 - FP_BASE])
            elif op == Op.FMAX:
                fregs[ins.rd - FP_BASE] = max(fregs[ins.rs1 - FP_BASE], fregs[ins.rs2 - FP_BASE])
            elif op == Op.FLT:
                iregs[ins.rd] = 1 if fregs[ins.rs1 - FP_BASE] < fregs[ins.rs2 - FP_BASE] else 0
            elif op == Op.FLE:
                iregs[ins.rd] = 1 if fregs[ins.rs1 - FP_BASE] <= fregs[ins.rs2 - FP_BASE] else 0
            elif op == Op.FEQ:
                iregs[ins.rd] = 1 if fregs[ins.rs1 - FP_BASE] == fregs[ins.rs2 - FP_BASE] else 0
            elif op == Op.CVTIF:
                fregs[ins.rd - FP_BASE] = float(iregs[ins.rs1])
            elif op == Op.CVTFI:
                # RISC-V FCVT.L.D: truncate toward zero, saturate out-of-
                # range values, NaN -> INT64_MAX (never raises).
                v = fregs[ins.rs1 - FP_BASE]
                if v != v:
                    iregs[ins.rd] = _I64_MAX
                elif v >= _F_2P63:
                    iregs[ins.rd] = _I64_MAX
                elif v <= -_F_2P63:
                    iregs[ins.rd] = _I64_MIN
                else:
                    iregs[ins.rd] = int(v)
            elif op == Op.FMOV:
                fregs[ins.rd - FP_BASE] = fregs[ins.rs1 - FP_BASE]
            elif op == Op.BEQ:
                taken = iregs[ins.rs1] == iregs[ins.rs2]
                if taken:
                    next_pc = ins.imm
            elif op == Op.BNE:
                taken = iregs[ins.rs1] != iregs[ins.rs2]
                if taken:
                    next_pc = ins.imm
            elif op == Op.BLT:
                taken = iregs[ins.rs1] < iregs[ins.rs2]
                if taken:
                    next_pc = ins.imm
            elif op == Op.BGE:
                taken = iregs[ins.rs1] >= iregs[ins.rs2]
                if taken:
                    next_pc = ins.imm
            elif op == Op.BLTZ:
                taken = iregs[ins.rs1] < 0
                if taken:
                    next_pc = ins.imm
            elif op == Op.BGEZ:
                taken = iregs[ins.rs1] >= 0
                if taken:
                    next_pc = ins.imm
            elif op == Op.BGTZ:
                taken = iregs[ins.rs1] > 0
                if taken:
                    next_pc = ins.imm
            elif op == Op.BLEZ:
                taken = iregs[ins.rs1] <= 0
                if taken:
                    next_pc = ins.imm
            elif op == Op.J:
                taken = True
                next_pc = ins.imm
            elif op == Op.JAL:
                taken = True
                iregs[ins.rd] = pc + 1
                next_pc = ins.imm
            elif op == Op.JR:
                taken = True
                next_pc = iregs[ins.rs1]
            elif op == Op.JALR:
                taken = True
                target = iregs[ins.rs1]
                iregs[ins.rd] = pc + 1
                next_pc = target
            elif op == Op.NOP:
                pass
            elif op == Op.HALT:
                self.halted = True
                executed += 1
                if count_pcs:
                    pc_counts[pc] = pc_counts.get(pc, 0) + 1
                break
            else:  # pragma: no cover - every opcode is handled above
                raise SimulationError(f"unimplemented opcode {op.name}", pc)

            # The zero register is architecturally immutable.
            iregs[0] = 0

            if trace:
                entries.append(TraceEntry(
                    pc, int(ins.op_class), ins.srcs, ins.dst, addr, taken,
                    ins.is_load, ins.is_store, ins.is_branch,
                    ins.is_conditional))
            if count_pcs:
                pc_counts[pc] = pc_counts.get(pc, 0) + 1

            pc = next_pc
            executed += 1

        self.pc = pc
        self.instret += executed
        return Trace(entries, program_name=self.program.name,
                     halted=self.halted)


def run_program(program: Program, max_instructions: int = 10_000_000,
                *, trace: bool = True) -> Trace:
    """Convenience wrapper: execute ``program`` and return its trace."""
    return FunctionalSimulator(program).run(max_instructions, trace=trace)
