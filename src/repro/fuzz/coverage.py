"""Behaviour coverage: band verdict measurements into stable bins.

SPEAR's win lives in a narrow behavioural regime — delinquent loads
triggering p-threads whose fills land timely rather than late or unused
— and a blind campaign samples that regime rarely (PR 8's seed-0 run
put 578/1000 programs in the neutral bucket).  This module turns the
counters every verdict already carries into a *coverage signal*:

* :class:`BehaviorVector` — one program's behaviour, banded.  Each
  dimension (trigger fires, chaining depth, PE-mode residency, fill
  mix, L1/L2 miss bands, slice shape, divergence-check outcome,
  classification) collapses a raw counter into a small ordinal band, so
  the joint key is stable across runs, backends and job counts while
  still separating the regimes that matter.
* :class:`CoverageMap` — hit counts per joint key, content-hashed and
  byte-deterministically serialized.  The scheduler treats first-hit
  keys as novelty; the distiller covers the per-dimension *facets*.

Two granularities on purpose: joint keys (the full vector) are the
novelty signal — fine enough that steering toward unseen keys explores
real behaviour combinations — while facets (``dim=band`` pairs) are the
distillation target, coarse enough that a minimal covering corpus stays
CI-sized.

Everything here is pure integer/string arithmetic on verdict fields:
no floats are compared, no iteration order leaks, and the same verdicts
produce byte-identical maps in any order of accumulation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from .differential import BEHAVIOR_FIELDS, BEHAVIOR_VERSION, FuzzVerdict

#: Bumped whenever banding or the key format changes meaning: the
#: version prefixes every key and the map serialization, so maps from
#: different schemas never compare equal byte-wise.
COVERAGE_VERSION = 1

#: Dimension order of the vector (and of every key / facet list).
DIMENSIONS = ("cls", "gain", "trig", "chain", "mode", "fills", "mix",
              "l1", "l2", "slices", "slen", "div")

#: Band meaning "the evaluation died before this was measurable".
UNMEASURED = "x"

_RAW = {name: i for i, name in enumerate(BEHAVIOR_FIELDS)}


def _log_band(value: int, edges: tuple[int, ...]) -> str:
    """0 stays 0; otherwise 1 + index of the first edge >= value."""
    if value <= 0:
        return "0"
    for i, edge in enumerate(edges):
        if value <= edge:
            return str(i + 1)
    return str(len(edges) + 1)


def _ratio_band(num: int, den: int, permille: tuple[int, ...]) -> str:
    """Band ``num/den`` by permille thresholds using exact integer
    cross-multiplication (no float compares to drift on)."""
    if den <= 0:
        return "0"
    for i, edge in enumerate(permille):
        if num * 1000 < edge * den:
            return str(i)
    return str(len(permille))


@dataclass(frozen=True)
class BehaviorVector:
    """One program's banded behaviour — hashable, orderable by key."""

    bands: tuple[tuple[str, str], ...]   #: ((dim, band), ...) DIMENSIONS order

    @property
    def key(self) -> str:
        """The joint coverage bin, e.g. ``v1|cls=speedup|gain=4|...``."""
        return "|".join([f"v{COVERAGE_VERSION}"]
                        + [f"{d}={b}" for d, b in self.bands])

    def facets(self) -> tuple[str, ...]:
        """The per-dimension bins this program covers (distillation
        granularity).  Unmeasured dimensions cover nothing."""
        return tuple(f"{d}={b}" for d, b in self.bands if b != UNMEASURED)


def vector_of(verdict: FuzzVerdict) -> BehaviorVector:
    """Band one verdict.  Pure function of the verdict's fields."""
    cls = verdict.classification
    labels = sorted({d.split(":", 1)[0] for d in verdict.divergences})
    div = "+".join(labels) if labels else "-"
    ratio = verdict.speedup
    if ratio <= 0:
        gain = UNMEASURED
    else:
        # Promille thresholds on the SPEAR/baseline IPC ratio.
        m = int(round(ratio * 1000))
        gain = ("1" if m <= 950 else "2" if m < 1050 else
                "3" if m < 1250 else "4" if m < 1600 else "5")
    raw = verdict.behavior
    if raw is None:
        bands = dict.fromkeys(DIMENSIONS, UNMEASURED)
    else:
        g = lambda name: raw[_RAW[name]]  # noqa: E731
        fills = g("fills")
        if fills == 0:
            mix = "none"
        else:
            parts = [(g("timely"), "timely"), (g("late"), "late"),
                     (g("unused"), "unused")]
            # Dominant class; ties resolve timely > late > unused (the
            # listed order), deterministically.
            mix = max(parts, key=lambda p: p[0])[1]
        slices = g("n_slices")
        if slices == 0:
            slen = "0"
        else:
            mean = g("slice_total") // slices
            slen = "1" if mean <= 4 else "2" if mean <= 8 else \
                   "3" if mean <= 16 else "4"
        bands = {
            "trig": _log_band(g("triggers"), (8, 64, 512)),
            "chain": _log_band(g("retriggers"), (4, 32)),
            "mode": _ratio_band(g("cycles_in_mode"), g("cycles"),
                                (1, 100, 300, 600)),
            "fills": _log_band(fills, (8, 64)),
            "mix": mix,
            "l1": _ratio_band(g("l1_misses"), g("accesses"),
                              (10, 50, 150, 300)),
            # "-" = the main thread never reached the L2 at all,
            # distinct from reaching it and mostly hitting.
            "l2": "-" if g("l2_refs") == 0 else
                  _ratio_band(g("l2_misses"), g("l2_refs"), (100, 500)),
            "slices": _log_band(slices, (1, 4, 8)),
            "slen": slen,
        }
    bands["cls"] = cls
    bands["gain"] = gain
    bands["div"] = div
    return BehaviorVector(tuple((d, bands[d]) for d in DIMENSIONS))


@dataclass
class CoverageMap:
    """Hit counts per joint coverage bin, plus the derived facet view.

    Accumulation is order-independent (counts commute), serialization
    sorts keys, and the content hash covers exactly the serialized
    bytes — so two maps built from the same verdicts in any order are
    byte-identical and hash-identical.
    """

    bins: dict[str, int] = field(default_factory=dict)

    def add(self, key: str, count: int = 1) -> bool:
        """Accumulate one hit; True when the bin is new to this map."""
        fresh = key not in self.bins
        self.bins[key] = self.bins.get(key, 0) + count
        return fresh

    def add_verdict(self, verdict: FuzzVerdict) -> bool:
        return self.add(vector_of(verdict).key)

    def merge(self, other: "CoverageMap") -> None:
        for key, count in other.bins.items():
            self.add(key, count)

    @property
    def distinct(self) -> int:
        return len(self.bins)

    @property
    def total(self) -> int:
        return sum(self.bins.values())

    def facets(self) -> dict[str, int]:
        """Per-dimension bins hit, with hit counts (``div=`` facets of
        unmeasured bands excluded exactly as in
        :meth:`BehaviorVector.facets`)."""
        out: dict[str, int] = {}
        for key, count in self.bins.items():
            for facet in key.split("|")[1:]:
                if not facet.endswith(f"={UNMEASURED}"):
                    out[facet] = out.get(facet, 0) + count
        return out

    def content_hash(self) -> str:
        return hashlib.sha256(self._canonical().encode()).hexdigest()

    def _canonical(self) -> str:
        return json.dumps({"version": COVERAGE_VERSION,
                           "behavior": BEHAVIOR_VERSION,
                           "bins": self.bins}, sort_keys=True)

    def to_json(self) -> str:
        doc = {"version": COVERAGE_VERSION, "behavior": BEHAVIOR_VERSION,
               "distinct": self.distinct, "total": self.total,
               "sha256": self.content_hash(), "bins": self.bins}
        return json.dumps(doc, sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "CoverageMap":
        doc = json.loads(text)
        if doc.get("version") != COVERAGE_VERSION:
            raise ValueError(f"unsupported coverage version "
                             f"{doc.get('version')!r}")
        return cls(bins={str(k): int(v) for k, v in doc["bins"].items()})

    def render(self) -> str:
        """Deterministic one-glance summary (stdout-safe)."""
        facets = self.facets()
        lines = [f"coverage: {self.distinct} distinct bin(s) over "
                 f"{self.total} program(s), {len(facets)} facet(s), "
                 f"sha256 {self.content_hash()[:16]}"]
        by_dim: dict[str, list[str]] = {}
        for facet in facets:
            dim, _, band = facet.partition("=")
            by_dim.setdefault(dim, []).append(band)
        for dim in DIMENSIONS:
            bands = ", ".join(sorted(by_dim.get(dim, ())))
            lines.append(f"  {dim:<7} {{{bands}}}")
        return "\n".join(lines)


def coverage_map(verdicts: list[FuzzVerdict]) -> CoverageMap:
    """The campaign-level map: every verdict's joint bin, accumulated."""
    cmap = CoverageMap()
    for verdict in verdicts:
        cmap.add_verdict(verdict)
    return cmap
