"""Independent interpreter over the :class:`KernelSpec` IR.

Both timing configurations replay the *same* functional trace, so a
sim-vs-sim differential is blind to bugs in the functional simulator
itself — both sides would be wrong identically.  This oracle closes
that hole Revizor-style (model vs model): it executes the spec at the
statement level, never touching :mod:`repro.functional`, and produces
the expected final architectural state.  Any mismatch against the
functional simulator's final registers or memory is a confirmed
divergence in one of the two interpreters.

The arithmetic here intentionally re-states the ISA contract from
scratch: two's-complement 64-bit wrapping, RISC-V M total div/rem
(x/0 == -1, x%0 == x, INT64_MIN / -1 wraps), IEEE-754 non-trapping
fp (x/0 -> ±inf, 0/0 -> NaN, sqrt(<0) -> NaN) and saturating
float-to-int conversion.  This is precisely the surface where the
pre-campaign audit found the simulator drifting (float-precision
division, trapping edges, zero-extending ``lb``).
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from .generator import FP_SCRATCH, INT_SCRATCH, KernelSpec, spec_arrays

_MASK = (1 << 64) - 1
_SIGN = 1 << 63
_NAN = float("nan")
_INF = float("inf")
_F_2P63 = float(1 << 63)


def _w(v: int) -> int:
    v &= _MASK
    return v - (1 << 64) if v & _SIGN else v


class OracleState:
    """Expected final architectural state of one spec execution."""

    def __init__(self, spec: KernelSpec, arrays: dict):
        self.n = spec.mem_words
        self.ints = [_w(v) for v in spec.init]
        self.fps = [float(v) for v in spec.finit]
        self.data = np.array(arrays["data"], dtype=np.int64)
        self.cycle = np.array(arrays["cycle"], dtype=np.int64)
        self.fdata = np.array(arrays["fdata"], dtype=np.float64)
        self.bits = np.array(arrays["bits"], dtype=np.int64)
        self.stream_off = 0        # byte offset of the stream cursor

    def memory_digest(self) -> str:
        """Digest over the mutable arrays, as laid out in program memory
        (data, then fdata — cycle and bits are never stored to)."""
        h = hashlib.sha256()
        h.update(self.data.tobytes())
        h.update(self.fdata.tobytes())
        return h.hexdigest()

    def summary(self) -> dict:
        return {"ints": list(self.ints),
                "fps": [repr(f) for f in self.fps],
                "memory": self.memory_digest()}


def run_oracle(spec: KernelSpec, rng: np.random.Generator) -> OracleState:
    """Execute ``spec`` with data drawn from ``rng`` (the workload's
    variant rng) and return the expected final state."""
    state = OracleState(spec, spec_arrays(spec, rng))
    for trip, body in spec.loops:
        for _ in range(trip):
            for stmt in body:
                _exec(state, stmt)
    return state


def _exec(st: OracleState, s: tuple) -> None:
    kind = s[0]
    ints, fps = st.ints, st.fps
    mask = st.n - 1
    if kind == "alu":
        _, op, d, s1, s2, imm = s
        a, b = ints[s1], ints[s2]
        if op == "add":
            r = _w(a + b)
        elif op == "sub":
            r = _w(a - b)
        elif op == "xor":
            r = a ^ b
        elif op == "and":
            r = a & b
        elif op == "or":
            r = a | b
        elif op == "mul":
            r = _w(a * b)
        elif op == "sll":
            r = _w(a << (b & 63))
        elif op == "srl":
            # Wrap back to signed: srl by 0 of a negative must stay
            # negative (bit pattern unchanged), not become unsigned.
            r = _w((a & _MASK) >> (b & 63))
        elif op == "sra":
            r = a >> (b & 63)
        elif op == "slt":
            r = 1 if a < b else 0
        elif op == "sltu":
            r = 1 if (a & _MASK) < (b & _MASK) else 0
        elif op == "addi":
            r = _w(a + imm)
        elif op == "andi":
            r = a & imm
        elif op == "ori":
            r = _w(a | imm)
        elif op == "xori":
            r = _w(a ^ imm)
        elif op == "slli":
            r = _w(a << (imm & 63))
        elif op == "srli":
            r = _w((a & _MASK) >> (imm & 63))
        elif op == "srai":
            r = a >> (imm & 63)
        else:  # slti
            r = 1 if a < imm else 0
        ints[d] = r
    elif kind == "div":
        _, op, d, s1, s2 = s
        a, b = ints[s1], ints[s2]
        if b == 0:
            ints[d] = -1 if op == "div" else a
        else:
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            ints[d] = _w(q) if op == "div" else _w(a - q * b)
    elif kind == "chase":
        _, d, s1, depth = s
        cur = ints[s1]
        for _ in range(depth):
            cur = int(st.cycle[cur & mask])
        ints[d] = cur
    elif kind == "gather":
        _, d, s1, fan = s
        acc = 0
        base = ints[s1]
        for j in range(fan):
            acc = _w(acc + int(st.data[_w(base + j) & mask]))
        ints[d] = acc
    elif kind == "stream":
        _, d, stride = s
        ints[d] = int(st.data[st.stream_off >> 3])
        st.stream_off = (st.stream_off + stride * 8) & (mask * 8)
    elif kind == "store":
        _, src, idx = s
        st.data[ints[idx] & mask] = ints[src]
    elif kind == "bload":
        _, d, s1 = s
        b = int(st.data.view(np.uint8)[ints[s1] & (st.n * 8 - 1)])
        ints[d] = b - 256 if b >= 128 else b
    elif kind == "bstore":
        _, src, idx = s
        st.data.view(np.uint8)[ints[idx] & (st.n * 8 - 1)] = ints[src] & 0xFF
    elif kind == "fp":
        _, op, fd, f1, f2 = s
        a, b = fps[f1], fps[f2]
        if op == "fadd":
            r = a + b
        elif op == "fsub":
            r = a - b
        elif op == "fmul":
            r = a * b
        elif op == "fdiv":
            if b == 0.0:
                r = _NAN if (a == 0.0 or a != a) else (
                    math.copysign(_INF, a) * math.copysign(1.0, b))
            else:
                r = a / b
        elif op == "fmin":
            r = min(a, b)
        else:  # fmax
            r = max(a, b)
        fps[fd] = r
    elif kind == "fun":
        _, op, fd, f1 = s
        v = fps[f1]
        if op == "fsqrt":
            fps[fd] = _NAN if v < 0.0 else v ** 0.5
        elif op == "fneg":
            fps[fd] = -v
        elif op == "fabs":
            fps[fd] = abs(v)
        else:  # fmov
            fps[fd] = v
    elif kind == "fcmp":
        _, op, d, f1, f2 = s
        a, b = fps[f1], fps[f2]
        if op == "flt":
            ints[d] = 1 if a < b else 0
        elif op == "fle":
            ints[d] = 1 if a <= b else 0
        else:  # feq
            ints[d] = 1 if a == b else 0
    elif kind == "cvtif":
        _, fd, s1 = s
        fps[fd] = float(ints[s1])
    elif kind == "cvtfi":
        _, d, f1 = s
        v = fps[f1]
        if v != v or v >= _F_2P63:
            ints[d] = (1 << 63) - 1
        elif v <= -_F_2P63:
            ints[d] = -(1 << 63)
        else:
            ints[d] = int(v)
    elif kind == "fload":
        _, fd, s1 = s
        fps[fd] = float(st.fdata[ints[s1] & mask])
    elif kind == "fstore":
        _, fs, idx = s
        st.fdata[ints[idx] & mask] = fps[fs]
    elif kind == "hammock":
        _, cond, s1, s2, then, els = s
        a, b = ints[s1], ints[s2]
        if cond == "entropy":
            taken = int(st.bits[a & mask]) != 0
        elif cond == "beq":
            taken = a == b
        elif cond == "bne":
            taken = a != b
        elif cond == "blt":
            taken = a < b
        elif cond == "bge":
            taken = a >= b
        elif cond == "bltz":
            taken = a < 0
        else:  # bgez
            taken = a >= 0
        for sub in (then if taken else els):
            _exec(st, sub)
    else:  # pragma: no cover
        raise ValueError(f"unknown statement kind {kind!r}")


def functional_summary(sim, spec: KernelSpec, layout: dict) -> dict:
    """The functional simulator's final state, shaped like
    :meth:`OracleState.summary` for direct comparison."""
    n = spec.mem_words
    ints = [sim.read_ireg(int(r[1:])) for r in INT_SCRATCH]
    fps = [repr(sim.read_freg(int(f[1:]))) for f in FP_SCRATCH]
    h = hashlib.sha256()
    h.update(bytes(sim.mem[layout["data"]:layout["data"] + n * 8]))
    h.update(bytes(sim.mem[layout["fdata"]:layout["fdata"] + n * 8]))
    return {"ints": ints, "fps": fps, "memory": h.hexdigest()}
