"""Journaled, resumable fuzzing campaigns on the parallel engine.

A campaign is ``count`` generated programs from one seed, each evaluated
as a :class:`~repro.harness.parallel.Cell` with a
:class:`~repro.fuzz.differential.FuzzCheckSpec` attached.  Determinism
end to end:

* the corpus is a pure function of ``(seed, index, dials)``;
* every verdict is a pure function of its cell (each program is
  compiled, traced and simulated in isolation);
* the engine merges verdicts in submission order regardless of
  ``--jobs``, and triage preserves that order;

so the same seed yields byte-identical triage output at any job count,
and ``--resume`` after a kill restores journaled-ok verdicts from the
disk cache and completes to the same bytes.  Every ``sweep_every``-th
program additionally cross-checks the batched latency sweep against
independent runs (the check is by-index, hence deterministic too).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.configs import BASELINE
from ..harness.journal import RunJournal
from ..harness.parallel import Cell, ExecutionPolicy, RunReport, run_cells
from ..harness.runner import ExperimentRunner
from .differential import FuzzCheckSpec, FuzzVerdict
from .generator import DEFAULT_DIALS, KernelDials, encode_name
from .triage import TriageReport, triage


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign's identity: seed, size, dials and checks."""

    seed: int
    count: int
    dials: KernelDials = DEFAULT_DIALS
    check: FuzzCheckSpec = FuzzCheckSpec()
    #: every Nth program also runs the batched-sweep cross-check
    #: (0 disables); deterministic because it keys on the index
    sweep_every: int = 50
    #: latency points the sampled sweep check compares
    sweep_points: int = 2

    @property
    def experiment(self) -> str:
        """Journal identity (the cell keys pin everything else)."""
        return f"fuzz-{self.seed}-{self.count}"

    def check_for(self, index: int) -> FuzzCheckSpec:
        if self.sweep_every and index % self.sweep_every == 0:
            return replace(self.check, sweep_points=self.sweep_points)
        return self.check


def campaign_cells(spec: CampaignSpec) -> list[Cell]:
    """The campaign's cell list, index order (= submission order)."""
    return [Cell(encode_name(spec.seed, i, spec.dials), BASELINE,
                 fuzz=spec.check_for(i))
            for i in range(spec.count)]


@dataclass
class CampaignResult:
    """Everything a campaign run produced."""

    spec: CampaignSpec
    verdicts: list[FuzzVerdict]
    report: TriageReport
    run_report: RunReport
    journal: RunJournal | None = None
    #: names of cells that failed terminally (crashed evaluator — these
    #: have no verdict and are themselves campaign findings)
    failed: list = field(default_factory=list)


def run_campaign(spec: CampaignSpec, runner: ExperimentRunner, *,
                 jobs: int | None = None,
                 policy: ExecutionPolicy | None = None,
                 journal: RunJournal | None = None,
                 journaled: bool = True,
                 journal_root=None,
                 resume: bool = False) -> CampaignResult:
    """Run (or resume) one campaign and triage its verdicts.

    ``journaled`` derives a journal from the campaign identity when none
    is passed explicitly (requires the runner to have a cache for
    ``--resume`` to restore from; journaling itself works without one).
    """
    cells = campaign_cells(spec)
    if journal is None and journaled:
        journal = RunJournal.for_run(spec.experiment, cells, runner,
                                     root=journal_root)
    run_report = run_cells(runner, cells, jobs, policy=policy,
                           journal=journal, resume=resume)
    verdicts, failed = [], []
    for cell in cells:
        if runner.has_fuzz(cell.workload, cell.fuzz):
            verdicts.append(runner.run_fuzz(cell.workload, cell.fuzz))
        else:
            failed.append(cell.workload)
    return CampaignResult(spec=spec, verdicts=verdicts,
                          report=triage(verdicts, errored=failed),
                          run_report=run_report,
                          journal=journal, failed=failed)
