"""Per-program differential evaluation: one kernel, one verdict.

For each generated kernel the evaluator runs the full reproduction
pipeline and cross-checks every layer against an independent witness:

* **oracle**      — final architectural state (registers + memory) of
  the functional simulator vs the :mod:`~repro.fuzz.oracle` interpreter
  executing the spec IR directly;
* **halt**        — the program reaches its halt within budget (true by
  construction; a miss means the generator or simulator lost control
  flow);
* **slicer**      — every extracted p-thread names a real load as its
  trigger and stays inside the text segment;
* **commits**     — each timing run commits exactly the functional
  trace (no instruction duplicated or dropped), baseline and SPEAR;
* **backends**    — reference vs fast-forward produce byte-identical
  stats, memory and predictor state for every config;
* **sweep**       — (sampled) the batched latency sweep matches
  independently-run points;
* **fills**       — ``timely + late + unused == fills`` for every
  speculative-fill source.

Any failed check makes the verdict a **divergence**; otherwise the
kernel is classified speedup / neutral / regression from the
SPEAR-vs-baseline IPC ratio on the reference backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compiler.driver import compile_spear
from ..compiler.slicer import SlicerConfig
from ..core.configs import PAPER_CONFIGS, MachineConfig
from ..functional.simulator import FunctionalSimulator
from ..memory.hierarchy import FIG9_LATENCIES, MemoryHierarchy
from ..pipeline.kernel import make_simulator
from ..pipeline.stats import PipelineResult
from ..pipeline.sweep import BatchedSweepSimulator
from .generator import SpecWorkload, spec_layout
from .oracle import functional_summary, run_oracle


#: Version of the raw behaviour tuple measured below and attached to
#: every verdict (``FuzzVerdict.behavior``).  Folded into the check
#: payload, so verdicts cached by a build with a different — or no —
#: behaviour schema can never satisfy this one's cells.
BEHAVIOR_VERSION = 1

#: The raw tuple's field order.  All integers; SPEAR-side counters come
#: from the spear config on the primary backend, cache counters from the
#: *baseline* run (the memory character SPEAR reacts to), slice shape
#: from the compiled p-thread table.
BEHAVIOR_FIELDS = (
    "triggers",          # pre-execution modes entered (spear)
    "retriggers",        # dormant-d-load/chaining trigger hand-offs
    "modes_completed",   # trigger d-load instances retired in-mode
    "cycles_in_mode",    # cycles spent with the PE active (spear)
    "cycles",            # total cycles (spear)
    "fills",             # p-thread speculative fills started
    "timely", "late", "unused",   # the fill-timeliness partition
    "accesses",          # baseline main-thread L1 accesses
    "l1_misses",         # baseline main-thread primary L1 misses
    "l2_refs",           # baseline main-thread L2 references
    "l2_misses",         # baseline main-thread L2 misses
    "n_slices",          # p-threads in the compiled table
    "slice_total",       # statements across all slices
    "slice_max",         # longest single slice
)


@dataclass(frozen=True)
class FuzzCheckSpec:
    """What one fuzz cell checks — picklable, hashable, and folded into
    the cell's cache/journal key, so changing any knob re-verdicts."""

    #: (baseline, spear) config names from the paper's evaluated models
    configs: tuple[str, str] = ("baseline", "SPEAR-256")
    #: timing kernels cross-checked for byte drift
    backends: tuple[str, ...] = ("reference", "fast-forward")
    #: latency points for the batched-sweep-vs-independent check
    #: (0 disables; campaigns sample it on a subset of programs)
    sweep_points: int = 0
    #: IPC-ratio thresholds for speedup / regression classification
    speedup: float = 1.05
    regression: float = 0.95

    def payload(self) -> dict:
        return {"configs": list(self.configs),
                "backends": list(self.backends),
                "sweep_points": self.sweep_points,
                "speedup": self.speedup, "regression": self.regression,
                "behavior": BEHAVIOR_VERSION}

    def resolve_configs(self) -> tuple[MachineConfig, MachineConfig]:
        return PAPER_CONFIGS[self.configs[0]], PAPER_CONFIGS[self.configs[1]]


@dataclass(frozen=True)
class FuzzVerdict:
    """The (small, picklable) outcome of one program's evaluation."""

    name: str
    classification: str          #: speedup | neutral | regression | divergence
    speedup: float               #: SPEAR/baseline IPC ratio (reference)
    baseline_ipc: float
    spear_ipc: float
    commits: int                 #: baseline committed instructions
    trace_len: int               #: functional eval-trace length
    halted: bool
    triggers: int                #: SPEAR pre-execution modes entered
    spec_size: int               #: statement count (shrink metric)
    divergences: tuple[str, ...] = ()
    checks: tuple[str, ...] = ()
    #: raw behaviour measurements, :data:`BEHAVIOR_FIELDS` order; None
    #: when the evaluation died before the timing runs (the coverage
    #: layer bands those as unmeasured).  Defaulted, so verdicts pickled
    #: before the coverage engine still unpickle.
    behavior: tuple[int, ...] | None = None

    @property
    def diverged(self) -> bool:
        return bool(self.divergences)

    def to_dict(self) -> dict:
        return {"name": self.name, "classification": self.classification,
                "speedup": round(self.speedup, 6),
                "baseline_ipc": round(self.baseline_ipc, 6),
                "spear_ipc": round(self.spear_ipc, 6),
                "commits": self.commits, "trace_len": self.trace_len,
                "halted": self.halted, "triggers": self.triggers,
                "spec_size": self.spec_size,
                "divergences": list(self.divergences),
                "checks": list(self.checks),
                "behavior": (list(self.behavior)
                             if self.behavior is not None else None)}


def _result_state(result: PipelineResult) -> tuple:
    """Everything a backend could drift on, in comparable form."""
    return (result.stats, result.memory, result.predictor)


def _measure_behavior(base: PipelineResult | None,
                      spear: PipelineResult | None,
                      table) -> tuple[int, ...] | None:
    """The raw :data:`BEHAVIOR_FIELDS` tuple, or None when either timing
    run is missing (its divergence already tells the story)."""
    if base is None or spear is None:
        return None
    ss = spear.stats.spear
    fills = spear.memory["fills"]["pthread"]
    main = base.memory["threads"][0]
    slices = [len(pt.slice_pcs) for pt in table] if table is not None else []
    return (ss.triggers, ss.retriggers, ss.modes_completed,
            ss.cycles_in_mode, spear.stats.cycles,
            fills["fills"], fills["timely"], fills["late"], fills["unused"],
            main["accesses"], main["l1_misses"],
            main["l2_hits"] + main["l2_misses"], main["l2_misses"],
            len(slices), sum(slices), max(slices, default=0))


def evaluate_workload(workload: SpecWorkload,
                      check: FuzzCheckSpec = FuzzCheckSpec(), *,
                      slicer_config: SlicerConfig | None = None,
                      scale: float = 1.0) -> FuzzVerdict:
    """Run every differential check on one generated workload."""
    spec = workload.spec
    divergences: list[str] = []
    checks: list[str] = []

    def fail(label: str, detail: str) -> None:
        divergences.append(f"{label}: {detail}")

    # -- functional execution + IR oracle ---------------------------------
    # Either interpreter crashing on a never-faults-by-construction kernel
    # is itself a confirmed finding, so crashes become divergences rather
    # than killing the cell (which would hide them from triage).
    evalp = workload.program("eval")
    budget = int(workload.eval_instructions * scale)
    sim = FunctionalSimulator(evalp)
    checks.append("halt")
    trace = None
    try:
        trace = sim.run(budget, trace=True)
        if not sim.halted:
            fail("halt", f"no halt within {budget} instructions")
    except Exception as exc:
        fail("crash", f"functional: {type(exc).__name__}: {exc}")

    checks.append("oracle")
    try:
        oracle = run_oracle(spec, workload.variant_rng("eval"))
        expected = oracle.summary()
    except Exception as exc:
        expected = None
        fail("crash", f"oracle: {type(exc).__name__}: {exc}")
    if sim.halted and expected is not None:
        actual = functional_summary(sim, spec, spec_layout(spec))
        if expected != actual:
            for part in ("ints", "fps", "memory"):
                if expected[part] != actual[part]:
                    fail("oracle", f"{part}: functional={actual[part]!r} "
                                   f"oracle={expected[part]!r}")
    if trace is None:
        return FuzzVerdict(
            name=workload.name, classification="divergence", speedup=0.0,
            baseline_ipc=0.0, spear_ipc=0.0, commits=0, trace_len=0,
            halted=False, triggers=0, spec_size=spec.size(),
            divergences=tuple(divergences), checks=tuple(checks))

    # -- compile (slicer on generated control flow) -----------------------
    checks.append("slicer")
    table = None
    try:
        train = workload.program("train")
        binary, _, _ = compile_spear(
            train, evalp, slicer_config=slicer_config or SlicerConfig(),
            max_profile_instructions=int(
                workload.profile_instructions * scale))
        table = binary.table
        n_text = len(evalp.instructions)
        for pt in table:
            if not evalp.instructions[pt.dload_pc].is_load:
                fail("slicer", f"d-load pc {pt.dload_pc} is not a load")
            if any(not 0 <= pc < n_text for pc in pt.slice_pcs):
                fail("slicer", f"slice of {pt.dload_pc} leaves the text")
    except Exception as exc:  # a compiler crash is itself a finding
        fail("compile", f"{type(exc).__name__}: {exc}")

    # -- timing runs: configs x backends ----------------------------------
    base_cfg, spear_cfg = check.resolve_configs()
    results: dict[tuple[str, str], PipelineResult] = {}
    checks.extend(["commits", "backends", "fills"])
    for cfg in (base_cfg, spear_cfg):
        cfg_table = table if cfg.spear_enabled else None
        for backend in check.backends:
            try:
                res = make_simulator(
                    backend, trace, cfg, cfg_table,
                    MemoryHierarchy(latencies=cfg.latencies)).run()
            except Exception as exc:
                fail("timing", f"{cfg.name}/{backend}: "
                               f"{type(exc).__name__}: {exc}")
                continue
            results[(cfg.name, backend)] = res
            if res.stats.committed != len(trace):
                fail("commits",
                     f"{cfg.name}/{backend}: committed "
                     f"{res.stats.committed} != trace {len(trace)}")
            for source, f in res.memory["fills"].items():
                if f["timely"] + f["late"] + f["unused"] != f["fills"]:
                    fail("fills", f"{cfg.name}/{backend}/{source}: "
                                  f"{f['timely']}+{f['late']}+{f['unused']}"
                                  f" != {f['fills']}")
        ref = results.get((cfg.name, check.backends[0]))
        for backend in check.backends[1:]:
            other = results.get((cfg.name, backend))
            if ref is None or other is None:
                continue
            if _result_state(other) != _result_state(ref):
                fail("backends",
                     f"{cfg.name}: {backend} drifts from "
                     f"{check.backends[0]}")

    # -- batched sweep vs independent points (sampled) --------------------
    if check.sweep_points > 0 and table is not None:
        checks.append("sweep")
        step = max(1, len(FIG9_LATENCIES) // check.sweep_points)
        points = FIG9_LATENCIES[::step][:check.sweep_points]
        try:
            sweep = BatchedSweepSimulator(trace, spear_cfg, points, table)
            for lat, swept in zip(points, sweep.run()):
                solo = make_simulator(
                    sweep.kernel, trace,
                    spear_cfg.with_latencies(lat), table,
                    MemoryHierarchy(latencies=lat)).run()
                if _result_state(swept) != _result_state(solo):
                    fail("sweep", f"mem={lat.memory}: batched sweep "
                                  f"drifts from independent run")
        except Exception as exc:
            fail("sweep", f"{type(exc).__name__}: {exc}")

    # -- classification ----------------------------------------------------
    base = results.get((base_cfg.name, check.backends[0]))
    spear = results.get((spear_cfg.name, check.backends[0]))
    base_ipc = base.ipc if base is not None else 0.0
    spear_ipc = spear.ipc if spear is not None else 0.0
    ratio = spear_ipc / base_ipc if base_ipc else 0.0
    if divergences:
        cls = "divergence"
    elif ratio >= check.speedup:
        cls = "speedup"
    elif ratio <= check.regression:
        cls = "regression"
    else:
        cls = "neutral"
    return FuzzVerdict(
        name=workload.name, classification=cls, speedup=ratio,
        baseline_ipc=base_ipc, spear_ipc=spear_ipc,
        commits=base.stats.committed if base is not None else 0,
        trace_len=len(trace), halted=sim.halted,
        triggers=spear.stats.spear.triggers if spear is not None else 0,
        spec_size=spec.size(),
        divergences=tuple(divergences), checks=tuple(checks),
        behavior=_measure_behavior(base, spear, table))
