"""Differential fuzzing of the SPEAR pipeline over random kernels.

The campaign machinery has four layers:

* :mod:`~repro.fuzz.generator` — a seeded random-kernel generator on top
  of :class:`~repro.isa.builder.ProgramBuilder`: basic-block DAGs built
  from counted loops and forward hammocks, with dials for pointer-chase
  depth, gather fan-out, stream stride, memory footprint, branch entropy
  and the int/fp/div statement mix.  Programs are sampled as a
  serializable :class:`~repro.fuzz.generator.KernelSpec` IR and
  materialized deterministically, so every find can be replayed, shrunk
  and checked in.
* :mod:`~repro.fuzz.oracle` — an independent interpreter over the spec
  IR.  It computes the expected final architectural state without going
  through the functional simulator, so simulator bugs that affect both
  sides of a sim-vs-sim comparison equally are still caught.
* :mod:`~repro.fuzz.differential` — the per-program evaluator: oracle
  vs functional state, commit conservation, cross-backend byte drift,
  the fill-partition invariant and slicer sanity, folded into one
  picklable :class:`~repro.fuzz.differential.FuzzVerdict`.
* :mod:`~repro.fuzz.triage` / :mod:`~repro.fuzz.shrink` /
  :mod:`~repro.fuzz.campaign` — classification + deterministic
  reporting, delta-debugging reduction of failing specs, and the
  journaled, resumable campaign driver running verdict cells through
  the fault-tolerant parallel engine.
"""

from .campaign import (CampaignResult, CampaignSpec, campaign_cells,
                       run_campaign)
from .differential import FuzzCheckSpec, FuzzVerdict, evaluate_workload
from .generator import (KernelDials, KernelSpec, FuzzWorkload, SpecWorkload,
                        encode_name, fuzz_workload_from_name, materialize,
                        parse_name, sample_spec, spec_from_json, spec_to_json)
from .oracle import run_oracle
from .shrink import shrink
from .triage import TriageReport, triage

__all__ = [
    "CampaignResult", "CampaignSpec", "campaign_cells", "run_campaign",
    "FuzzCheckSpec", "FuzzVerdict", "evaluate_workload",
    "KernelDials", "KernelSpec", "FuzzWorkload", "SpecWorkload",
    "encode_name", "fuzz_workload_from_name", "materialize", "parse_name",
    "sample_spec", "spec_from_json", "spec_to_json",
    "run_oracle", "shrink", "TriageReport", "triage",
]
