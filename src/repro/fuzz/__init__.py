"""Differential fuzzing of the SPEAR pipeline over random kernels.

The campaign machinery has four layers:

* :mod:`~repro.fuzz.generator` — a seeded random-kernel generator on top
  of :class:`~repro.isa.builder.ProgramBuilder`: basic-block DAGs built
  from counted loops and forward hammocks, with dials for pointer-chase
  depth, gather fan-out, stream stride, memory footprint, branch entropy
  and the int/fp/div statement mix.  Programs are sampled as a
  serializable :class:`~repro.fuzz.generator.KernelSpec` IR and
  materialized deterministically, so every find can be replayed, shrunk
  and checked in.
* :mod:`~repro.fuzz.oracle` — an independent interpreter over the spec
  IR.  It computes the expected final architectural state without going
  through the functional simulator, so simulator bugs that affect both
  sides of a sim-vs-sim comparison equally are still caught.
* :mod:`~repro.fuzz.differential` — the per-program evaluator: oracle
  vs functional state, commit conservation, cross-backend byte drift,
  the fill-partition invariant and slicer sanity, folded into one
  picklable :class:`~repro.fuzz.differential.FuzzVerdict`.
* :mod:`~repro.fuzz.triage` / :mod:`~repro.fuzz.shrink` /
  :mod:`~repro.fuzz.campaign` — classification + deterministic
  reporting, delta-debugging reduction of failing specs, and the
  journaled, resumable campaign driver running verdict cells through
  the fault-tolerant parallel engine.
* :mod:`~repro.fuzz.coverage` / :mod:`~repro.fuzz.schedule` /
  :mod:`~repro.fuzz.distill` — the coverage-guided loop: every verdict
  bands into a :class:`~repro.fuzz.coverage.BehaviorVector` and a
  content-hashed :class:`~repro.fuzz.coverage.CoverageMap`; the guided
  campaign apportions each batch's budget over dial arms and spec-IR
  mutation arms by recent first-hit novelty (integer arithmetic, so
  byte-identical at any ``--jobs`` and across ``--resume``); and
  greedy set-cover distillation pins a minimal corpus under
  ``tests/regress/corpus/`` that CI re-checks strictly.
"""

from .campaign import (CampaignResult, CampaignSpec, campaign_cells,
                       run_campaign)
from .coverage import (BehaviorVector, CoverageMap, coverage_map, vector_of)
from .differential import FuzzCheckSpec, FuzzVerdict, evaluate_workload
from .distill import (CorpusEntry, check_corpus, corpus_from_json,
                      corpus_to_json, distill)
from .generator import (KernelDials, KernelSpec, FuzzWorkload, SpecWorkload,
                        encode_name, fuzz_workload_from_name, materialize,
                        parse_name, sample_spec, spec_from_json, spec_to_json)
from .oracle import run_oracle
from .schedule import (Arm, ArmScheduler, DEFAULT_ARMS, GuidedCampaignResult,
                       GuidedCampaignSpec, MutWorkload, encode_mut_name,
                       mut_workload_from_name, mutate_spec, parse_mut_name,
                       run_guided_campaign)
from .shrink import shrink
from .triage import TriageReport, triage

__all__ = [
    "CampaignResult", "CampaignSpec", "campaign_cells", "run_campaign",
    "BehaviorVector", "CoverageMap", "coverage_map", "vector_of",
    "FuzzCheckSpec", "FuzzVerdict", "evaluate_workload",
    "CorpusEntry", "check_corpus", "corpus_from_json", "corpus_to_json",
    "distill",
    "KernelDials", "KernelSpec", "FuzzWorkload", "SpecWorkload",
    "encode_name", "fuzz_workload_from_name", "materialize", "parse_name",
    "sample_spec", "spec_from_json", "spec_to_json",
    "run_oracle",
    "Arm", "ArmScheduler", "DEFAULT_ARMS", "GuidedCampaignResult",
    "GuidedCampaignSpec", "MutWorkload", "encode_mut_name",
    "mut_workload_from_name", "mutate_spec", "parse_mut_name",
    "run_guided_campaign",
    "shrink", "TriageReport", "triage",
]
