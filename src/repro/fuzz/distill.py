"""Corpus distillation: a minimal sub-suite covering a campaign's bins.

A campaign's verdicts span some set of behaviour *facets* (per-dimension
coverage bins, see :mod:`repro.fuzz.coverage`).  Distillation runs a
greedy set cover over them — each program covers its vector's facets —
then prunes redundant picks, yielding a small corpus that still touches
every trigger/PE/fill/memory regime the campaign reached.  The corpus
is emitted as pinned JSON under ``tests/regress/corpus/``: each entry
carries the program's full spec IR, its joint coverage key and its
classification, so CI can re-evaluate every entry in strict
differential mode and fail on any divergence *or* behaviour drift —
fuzz finds become a permanent tier-1-adjacent safety net.

Determinism: candidates are considered in submission order, greedy ties
break on (most new facets, highest |speedup - 1|, name), the prune pass
walks picks in reverse pick order — all byte-stable, so the distilled
corpus is identical at any ``--jobs`` and across crash+``--resume``.

Divergent verdicts are excluded: a diverging program is a bug to fix
(and shrink into ``tests/regress/*.json``), not a regression baseline.
Errored programs have no verdict and cannot be distilled.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .coverage import BEHAVIOR_VERSION, COVERAGE_VERSION, vector_of
from .differential import FuzzCheckSpec, FuzzVerdict, evaluate_workload
from .generator import (SpecWorkload, spec_from_json, spec_to_json)

#: Corpus file schema version.
CORPUS_VERSION = 1


@dataclass(frozen=True)
class CorpusEntry:
    """One distilled program, self-contained (spec travels along)."""

    name: str
    spec_json: str               #: canonical spec IR
    key: str                     #: pinned joint coverage bin
    facets: tuple[str, ...]      #: facets this entry covers
    classification: str
    speedup: float

    def workload(self) -> SpecWorkload:
        return SpecWorkload(spec_from_json(self.spec_json), self.name)


def distill(verdicts: list[FuzzVerdict]) -> list[CorpusEntry]:
    """Greedy facet set-cover over the clean verdicts, then pruned.

    Returns entries in pick order.  Invariants (pinned by tests): the
    union of entry facets equals the facets of the clean verdicts, and
    no entry is redundant — dropping any one loses some facet.
    """
    candidates = []
    for v in verdicts:
        if v.diverged or v.behavior is None:
            continue
        vec = vector_of(v)
        candidates.append((v, vec.key, frozenset(vec.facets())))
    uncovered = set()
    for _, _, facets in candidates:
        uncovered |= facets
    picks: list[tuple[FuzzVerdict, str, frozenset]] = []
    while uncovered:
        best = max(candidates,
                   key=lambda c: (len(c[2] & uncovered),
                                  abs(c[0].speedup - 1.0), c[0].name))
        if not best[2] & uncovered:        # pragma: no cover - safety
            break
        picks.append(best)
        uncovered -= best[2]
    # Prune: a later pick can subsume an earlier one's contribution.
    # Reverse pick order keeps the walk deterministic.
    pruned = list(picks)
    for cand in reversed(picks):
        others = set()
        for other in pruned:
            if other is not cand:
                others |= other[2]
        if cand[2] <= others:
            pruned.remove(cand)
    entries = []
    for v, key, facets in pruned:
        workload = _rebuild(v.name)
        entries.append(CorpusEntry(
            name=v.name, spec_json=spec_to_json(workload.spec), key=key,
            facets=tuple(sorted(facets)), classification=v.classification,
            speedup=round(v.speedup, 6)))
    return entries


def _rebuild(name: str) -> SpecWorkload:
    from ..workloads.base import get_workload
    workload = get_workload(name)
    if not isinstance(workload, SpecWorkload):
        raise ValueError(f"{name!r} is not a generated workload")
    return workload


def corpus_to_json(entries: list[CorpusEntry], *, source: dict) -> str:
    """Serialize a corpus document (sorted keys, trailing newline-free)."""
    facets = sorted({f for e in entries for f in e.facets})
    doc = {
        "version": CORPUS_VERSION,
        "coverage_version": COVERAGE_VERSION,
        "behavior_version": BEHAVIOR_VERSION,
        "source": source,
        "facets": facets,
        "entries": [{
            "name": e.name, "key": e.key, "facets": list(e.facets),
            "classification": e.classification, "speedup": e.speedup,
            "spec": json.loads(e.spec_json),
        } for e in entries],
    }
    return json.dumps(doc, sort_keys=True, indent=2)


def corpus_from_json(text: str) -> tuple[list[CorpusEntry], dict]:
    doc = json.loads(text)
    if doc.get("version") != CORPUS_VERSION:
        raise ValueError(f"unsupported corpus version {doc.get('version')!r}")
    if doc.get("coverage_version") != COVERAGE_VERSION \
            or doc.get("behavior_version") != BEHAVIOR_VERSION:
        raise ValueError(
            "corpus was distilled under a different coverage/behaviour "
            "schema — regenerate with `repro fuzz distill`")
    entries = [CorpusEntry(
        name=e["name"], spec_json=json.dumps(e["spec"], sort_keys=True),
        key=e["key"], facets=tuple(e["facets"]),
        classification=e["classification"], speedup=e["speedup"],
    ) for e in doc["entries"]]
    return entries, doc


@dataclass
class CorpusCheck:
    """Outcome of re-evaluating one corpus entry against this build."""

    name: str
    ok: bool
    divergences: tuple[str, ...]
    drift: str                    #: "" or what moved (key/classification)

    def describe(self) -> str:
        if self.ok:
            return f"ok       {self.name}"
        if self.divergences:
            return (f"DIVERGED {self.name}: "
                    + "; ".join(self.divergences))
        return f"DRIFT    {self.name}: {self.drift}"


def check_corpus(entries: list[CorpusEntry],
                 check: FuzzCheckSpec = FuzzCheckSpec(), *,
                 scale: float = 1.0) -> list[CorpusCheck]:
    """Strict differential re-run of a corpus: every entry must evaluate
    divergence-free *and* land in its pinned coverage bin.  Behaviour
    drift means the timing model legitimately changed — regenerate the
    corpus alongside the change, exactly like any golden."""
    out = []
    for e in entries:
        v = evaluate_workload(e.workload(), check, scale=scale)
        drift = ""
        if not v.diverged:
            key = vector_of(v).key
            if key != e.key:
                drift = f"coverage bin {e.key} -> {key}"
            elif v.classification != e.classification:
                drift = (f"classification {e.classification} -> "
                         f"{v.classification}")
        out.append(CorpusCheck(name=e.name,
                               ok=not v.diverged and not drift,
                               divergences=v.divergences, drift=drift))
    return out
