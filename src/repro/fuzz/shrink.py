"""Delta-debugging reduction of failing kernel specs.

Given a spec whose evaluation diverges and a predicate that re-checks a
candidate ("does this still reproduce the finding?"), :func:`shrink`
greedily applies structural reductions until none helps:

* drop a whole loop;
* drop a single statement (at any hammock nesting depth);
* collapse a hammock to one of its arms;
* halve a loop's trip count;
* halve the memory footprint;
* zero an initial scratch value (int or fp).

Reduction is **monotone** — a candidate is only accepted if the
predicate still holds and the candidate is strictly smaller under
:func:`_metric` — and **deterministic**: candidates are enumerated in a
fixed structural order and the first improvement is taken, so the same
(spec, predicate) pair always reduces to the same fixpoint.  The spec
IR is what makes this tractable: reductions are tuple surgery, and the
result can be serialized straight into ``tests/regress``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from .generator import KernelSpec


def _metric(spec: KernelSpec) -> tuple:
    """Shrink ordering: fewer statements first, then fewer dynamic
    instructions, smaller memory, simpler initial state."""
    return (spec.size(),
            sum(trip for trip, _ in spec.loops),
            spec.mem_words,
            sum(1 for v in spec.init if v != 0),
            sum(1 for v in spec.finit if v != 0.0))


def _body_variants(body: tuple) -> Iterator[tuple]:
    """Reduced versions of one statement tuple, structurally ordered."""
    for i, s in enumerate(body):
        rest = body[:i] + body[i + 1:]
        yield rest                                      # drop statement
        if s[0] == "hammock":
            _, cond, s1, s2, then, els = s
            yield body[:i] + then + body[i + 1:]        # inline then-arm
            if els:
                yield body[:i] + els + body[i + 1:]     # inline else-arm
            for tv in _body_variants(then):
                yield (body[:i]
                       + (("hammock", cond, s1, s2, tv, els),)
                       + body[i + 1:])
            for ev in _body_variants(els):
                yield (body[:i]
                       + (("hammock", cond, s1, s2, then, ev),)
                       + body[i + 1:])


def _candidates(spec: KernelSpec) -> Iterator[KernelSpec]:
    loops = spec.loops
    # 1. drop whole loops
    for i in range(len(loops)):
        yield replace(spec, loops=loops[:i] + loops[i + 1:])
    # 2. structural body reductions
    for i, (trip, body) in enumerate(loops):
        for variant in _body_variants(body):
            yield replace(spec, loops=(loops[:i] + ((trip, variant),)
                                       + loops[i + 1:]))
    # 3. halve trip counts
    for i, (trip, body) in enumerate(loops):
        if trip > 1:
            yield replace(spec, loops=(loops[:i] + ((trip // 2, body),)
                                       + loops[i + 1:]))
    # 4. halve the footprint (stays a power of two; floor keeps masks sane)
    if spec.mem_words > 8:
        yield replace(spec, mem_words=spec.mem_words // 2)
    # 5. zero initial scratch values
    for i, v in enumerate(spec.init):
        if v != 0:
            yield replace(spec, init=spec.init[:i] + (0,)
                          + spec.init[i + 1:])
    for i, v in enumerate(spec.finit):
        if v != 0.0:
            yield replace(spec, finit=spec.finit[:i] + (0.0,)
                          + spec.finit[i + 1:])


def shrink(spec: KernelSpec,
           still_fails: Callable[[KernelSpec], bool], *,
           max_evals: int = 2000) -> KernelSpec:
    """Reduce ``spec`` while ``still_fails`` keeps returning True.

    ``still_fails`` must return True for ``spec`` itself (the caller
    vouches the original reproduces the finding); it is then invoked on
    candidate reductions — typically by materializing the candidate and
    re-running :func:`~repro.fuzz.differential.evaluate_workload`.
    Stops at a fixpoint (no candidate improves) or after ``max_evals``
    predicate calls, whichever comes first, and returns the smallest
    spec that still fails.
    """
    current = spec
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for cand in _candidates(current):
            if _metric(cand) >= _metric(current):
                continue
            evals += 1
            if still_fails(cand):
                current = cand
                improved = True
                break               # greedy restart from the smaller spec
            if evals >= max_evals:
                break
    return current
