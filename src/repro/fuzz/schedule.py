"""Coverage-guided campaign scheduling: dial arms + spec mutation.

The blind PR 8 campaign draws every program from one ``KernelDials``
point; this module closes the Revizor-style loop.  A campaign becomes a
sequence of batches.  Each batch's generation budget is apportioned
over a palette of *arms* — preset dial points plus mutation arms that
perturb the KernelSpec IR exported by hand-built workloads
(``Workload.spec_of``) — and after every batch the scheduler re-scores
arms by the new or rare coverage bins their programs just hit
(:mod:`repro.fuzz.coverage`).

Everything is deterministic by construction, which is what keeps the
campaign byte-identical at any ``--jobs`` and across crash+``--resume``:

* a program's full identity lives in its cell name —
  ``fuzz:v1:<seed>:<i>[:<dials>]`` for generation arms,
  ``fuzzmut:v1:<seed>:<i>:<base>`` for mutation arms — so workers and
  caches rebuild it from the string alone;
* the scheduler is pure integer arithmetic (largest-remainder
  apportionment with fixed tie-breaks) over verdicts that merge in
  submission order;
* mutation is a seeded walk over the spec IR emitting only grammar the
  oracle and shrinker already interpret.

A crash mid-batch stops scheduling (later plans would depend on the
missing observations); ``--resume`` replays completed batches from the
journal + cache and re-derives the identical plan.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace

import numpy as np

from ..core.configs import BASELINE
from ..harness.journal import RunJournal
from ..harness.parallel import Cell, ExecutionPolicy, RunReport, run_cells
from ..harness.runner import ExperimentRunner
from .coverage import CoverageMap, coverage_map, vector_of
from .differential import FuzzCheckSpec, FuzzVerdict
from .generator import (DEFAULT_DIALS, INTERESTING_FLOATS, INTERESTING_INTS,
                        KernelDials, KernelSpec, SPEC_VERSION, SpecWorkload,
                        _sample_stmt, encode_name)
from .triage import TriageReport, triage

# -- spec mutation ----------------------------------------------------------

#: Seed-sequence tag separating mutation streams from generation streams.
_MUT_TAG = 0x4D5554  # "MUT"

#: Dynamic-size ceiling mutations are clamped under (trip halving), so a
#: chain of trip doublings cannot grow an unbounded kernel.
_MUT_DYNAMIC_CAP = 4 * DEFAULT_DIALS.target_instructions


def _mut_trip(spec, rng, dials):
    i = int(rng.integers(len(spec.loops)))
    trip, body = spec.loops[i]
    trip = max(1, trip * 2) if rng.random() < 0.5 else max(1, trip // 2)
    loops = spec.loops[:i] + ((trip, body),) + spec.loops[i + 1:]
    return replace(spec, loops=loops)


def _mut_mem(spec, rng, dials):
    n = spec.mem_words * 2 if rng.random() < 0.5 else spec.mem_words // 2
    return replace(spec, mem_words=max(64, min(dials.mem_words, n)))


def _mut_branch(spec, rng, dials):
    delta = float(rng.uniform(0.05, 0.3))
    p = spec.p_taken + (delta if rng.random() < 0.5 else -delta)
    return replace(spec, p_taken=float(np.round(min(0.98, max(0.02, p)), 4)))


def _pick_loop_stmt(spec, rng):
    i = int(rng.integers(len(spec.loops)))
    trip, body = spec.loops[i]
    j = int(rng.integers(len(body)))
    return i, trip, body, j


def _with_body(spec, i, trip, body):
    return replace(spec, loops=spec.loops[:i] + ((trip, body),)
                   + spec.loops[i + 1:])


def _mut_replace(spec, rng, dials):
    i, trip, body, j = _pick_loop_stmt(spec, rng)
    stmt = _sample_stmt(rng, dials, nest=0)
    return _with_body(spec, i, trip, body[:j] + (stmt,) + body[j + 1:])


def _mut_insert(spec, rng, dials):
    i, trip, body, j = _pick_loop_stmt(spec, rng)
    stmt = _sample_stmt(rng, dials, nest=0)
    return _with_body(spec, i, trip, body[:j] + (stmt,) + body[j:])


def _mut_drop(spec, rng, dials):
    i, trip, body, j = _pick_loop_stmt(spec, rng)
    if len(body) <= 1:
        return spec
    return _with_body(spec, i, trip, body[:j] + body[j + 1:])


def _mut_init(spec, rng, dials):
    i = int(rng.integers(len(spec.init)))
    v = int(INTERESTING_INTS[int(rng.integers(len(INTERESTING_INTS)))])
    return replace(spec, init=spec.init[:i] + (v,) + spec.init[i + 1:])


def _mut_finit(spec, rng, dials):
    i = int(rng.integers(len(spec.finit)))
    v = float(INTERESTING_FLOATS[int(rng.integers(len(INTERESTING_FLOATS)))])
    return replace(spec, finit=spec.finit[:i] + (v,) + spec.finit[i + 1:])


_MUTATIONS = (_mut_trip, _mut_mem, _mut_branch, _mut_replace, _mut_insert,
              _mut_drop, _mut_init, _mut_finit)


def _bound_dynamic(spec: KernelSpec) -> KernelSpec:
    """Halve the largest trip until the kernel fits the mutation budget
    (first-occurrence tie-break — deterministic)."""
    while spec.dynamic_estimate() > _MUT_DYNAMIC_CAP:
        trips = [trip for trip, _ in spec.loops]
        if max(trips) <= 1:
            break
        i = trips.index(max(trips))
        trip, body = spec.loops[i]
        spec = replace(spec, loops=spec.loops[:i]
                       + ((max(1, trip // 2), body),) + spec.loops[i + 1:])
    return spec


def mutate_spec(spec: KernelSpec, rng: np.random.Generator,
                dials: KernelDials = DEFAULT_DIALS) -> KernelSpec:
    """One seeded mutation walk: 1–3 operators, then the size clamp.

    Operators only emit grammar the sampler already produces (statement
    replacement/insertion draws through ``_sample_stmt``), so mutated
    specs stay halting, non-faulting, oracle-interpretable and
    shrinkable exactly like sampled ones.
    """
    for _ in range(int(rng.integers(1, 4))):
        op = _MUTATIONS[int(rng.integers(len(_MUTATIONS)))]
        spec = op(spec, rng, dials)
    return _bound_dynamic(spec)


# -- fuzzmut: names ---------------------------------------------------------

def encode_mut_name(campaign_seed: int, index: int, base: str) -> str:
    return f"fuzzmut:v{SPEC_VERSION}:{campaign_seed}:{index}:{base}"


def parse_mut_name(name: str) -> tuple[int, int, str]:
    """Inverse of :func:`encode_mut_name`; raises ``ValueError`` on junk."""
    parts = name.split(":")
    if len(parts) != 5 or parts[0] != "fuzzmut":
        raise ValueError(f"not a fuzzmut workload name: {name!r}")
    if parts[1] != f"v{SPEC_VERSION}":
        raise ValueError(
            f"fuzzmut name {name!r} is generator version {parts[1]}, this "
            f"build is v{SPEC_VERSION} — regenerate the corpus")
    return int(parts[2]), int(parts[3]), parts[4]


def mutated_spec(campaign_seed: int, index: int, base: str) -> KernelSpec:
    """The spec a ``fuzzmut:`` name encodes: the base workload's
    exported IR run through a seeded mutation walk."""
    from ..workloads.base import get_workload
    exported = get_workload(base).spec_of()
    if exported is None:
        raise ValueError(f"workload {base!r} has no spec_of() export")
    rng = np.random.default_rng(
        [_MUT_TAG, SPEC_VERSION, campaign_seed, index,
         zlib.crc32(base.encode())])
    return mutate_spec(exported, rng)


class MutWorkload(SpecWorkload):
    """Program ``index`` of a campaign's mutation arm over ``base``."""

    def __init__(self, campaign_seed: int, index: int, base: str):
        self.campaign_seed = campaign_seed
        self.index = index
        self.base = base
        super().__init__(mutated_spec(campaign_seed, index, base),
                         encode_mut_name(campaign_seed, index, base))


def mut_workload_from_name(name: str) -> MutWorkload:
    """Registry hook target (see ``repro.workloads.base.get_workload``)."""
    seed, index, base = parse_mut_name(name)
    return MutWorkload(seed, index, base)


# -- arms -------------------------------------------------------------------

@dataclass(frozen=True)
class Arm:
    """One source of programs: a dial point or a mutation base."""

    name: str
    dials: KernelDials | None = None    #: generation arm when set
    base: str | None = None             #: mutation arm when set

    def cell_name(self, campaign_seed: int, index: int) -> str:
        if self.base is not None:
            return encode_mut_name(campaign_seed, index, self.base)
        return encode_name(campaign_seed, index, self.dials)


#: Preset dial points, each aimed at a behavioural corner the default
#: dials under-sample (the coverage dimensions they chase in comments).
GEN_ARMS: tuple[tuple[str, KernelDials], ...] = (
    ("default", DEFAULT_DIALS),
    # L1-resident footprints: l1=0, the fzdrag regression regime
    ("tiny", replace(DEFAULT_DIALS, mem_words=256,
                     target_instructions=1200)),
    # deep serial chases: trig/chain/mode high, gathers out of the way
    ("deep-chase", replace(DEFAULT_DIALS, chase_depth=8, gather_fanout=1,
                           fp_weight=0.2)),
    # wide independent gathers: fills high, mix=timely, the MLP corner
    ("wide-gather", replace(DEFAULT_DIALS, gather_fanout=8, chase_depth=1)),
    # near-coin-flip hammocks: mispredict-bound, mode residency low
    ("branchy", replace(DEFAULT_DIALS, branch_entropy=0.96, max_body=10)),
    # store/byte pressure: written-block fills and RMW traffic
    ("stores", replace(DEFAULT_DIALS, store_weight=3.0, byte_weight=1.5)),
    # fp/div-heavy: long-latency non-memory producers in slices
    ("fp", replace(DEFAULT_DIALS, fp_weight=4.0, div_weight=2.0)),
    # 4x-long executions: the trig=3/chain=3/high-residency bands that
    # default-length programs cannot reach at any count
    ("marathon", replace(DEFAULT_DIALS, target_instructions=9000)),
)

#: Hand-built workloads with ``spec_of`` exports — the mutation bases.
MUT_BASES = ("pointer", "update", "matrix", "field", "ll4")

DEFAULT_ARMS: tuple[str, ...] = tuple(
    [name for name, _ in GEN_ARMS] + [f"mut:{b}" for b in MUT_BASES])

_GEN_BY_NAME = dict(GEN_ARMS)


def resolve_arm(name: str) -> Arm:
    if name.startswith("mut:"):
        return Arm(name=name, base=name[4:])
    try:
        return Arm(name=name, dials=_GEN_BY_NAME[name])
    except KeyError:
        raise ValueError(f"unknown arm {name!r}; known: "
                         f"{sorted(_GEN_BY_NAME)} + mut:<workload>") from None


# -- the scheduler ----------------------------------------------------------

class ArmScheduler:
    """Deterministic multi-armed budget apportionment.

    Scores are small integers derived from each arm's *recent novelty
    rate* — first-hit coverage bins over the arm's last ``WINDOW``
    programs: ``1 + (RATE_SCALE * hits) // window``.  Windowed rates
    track the moving frontier (an arm that exhausted its corner decays;
    an arm whose bins only open late keeps earning) and an arm skipped
    for a batch keeps its earned score, so "not scheduled" is never
    conflated with "not productive".

    Rates alone under-concentrate: with a dozen arms whose rates span
    maybe 2x, proportional apportionment is nearly an even split, and an
    even split over a palette where most arms re-hit the default arm's
    bins *loses* to spending the whole budget on default dials.  So the
    budget follows **rank**, not magnitude: once every arm has
    ``MIN_OBS`` observations, the top-ranked arms take the fixed
    ``SHARES`` weights and every other arm weight 1 — a hindsight-greedy
    shaped split (most of the batch on the frontier arms, a floor that
    keeps every rate measured and lets a recovering arm climb back).
    Until then the split is even: cold-start ranking would be ordering
    noise.  Largest-remainder apportionment with ties broken by arm
    order, integer arithmetic end to end — the plan is a pure function
    of the verdict sequence.
    """

    RATE_SCALE = 16
    WINDOW = 24      #: per-arm outcome window the rate is measured over
    MIN_OBS = 3      #: observations per arm before ranking kicks in
    SHARES = (14, 8, 4)  #: weights for the top-ranked arms (rest get 1)

    def __init__(self, arms: tuple[str, ...] = DEFAULT_ARMS):
        if not arms:
            raise ValueError("need at least one arm")
        self.arms = tuple(arms)
        self.resolved = tuple(resolve_arm(a) for a in self.arms)
        self.scores = {a: 1 for a in self.arms}
        self.seen = CoverageMap()
        self.allocated = {a: 0 for a in self.arms}
        self.observed = {a: 0 for a in self.arms}
        self.new_bins = {a: 0 for a in self.arms}
        self.recent = {a: () for a in self.arms}

    def _weights(self) -> list[int]:
        if min(self.observed[a] for a in self.arms) < self.MIN_OBS:
            return [1] * len(self.arms)
        ranked = sorted(range(len(self.arms)),
                        key=lambda i: (-self.scores[self.arms[i]], i))
        weights = [1] * len(self.arms)
        for share, i in zip(self.SHARES, ranked):
            weights[i] = share
        return weights

    def plan(self, budget: int) -> list[Arm]:
        """The next batch's arms, allocation-ordered (arm order, each
        arm's programs contiguous)."""
        weights = self._weights()
        total = sum(weights)
        shares = [budget * w for w in weights]
        counts = [s // total for s in shares]
        order = sorted(range(len(self.arms)),
                       key=lambda i: (-(shares[i] % total), i))
        for i in order[:budget - sum(counts)]:
            counts[i] += 1
        out: list[Arm] = []
        for arm, resolved, n in zip(self.arms, self.resolved, counts):
            self.allocated[arm] += n
            out.extend([resolved] * n)
        return out

    def observe(self, batch: list[tuple[str, FuzzVerdict]]) -> None:
        """Fold one completed batch (submission order) into the scores."""
        for arm, verdict in batch:
            self.observed[arm] += 1
            hit = 1 if self.seen.add(vector_of(verdict).key) else 0
            self.new_bins[arm] += hit
            self.recent[arm] = (self.recent[arm] + (hit,))[-self.WINDOW:]
        self.scores = {
            a: (1 if not self.recent[a]
                else 1 + (self.RATE_SCALE * sum(self.recent[a]))
                // len(self.recent[a]))
            for a in self.arms}


# -- the guided campaign driver ---------------------------------------------

@dataclass(frozen=True)
class GuidedCampaignSpec:
    """A coverage-guided campaign's identity."""

    seed: int
    count: int
    batch: int = 25                      #: programs per scheduling round
    arms: tuple[str, ...] = DEFAULT_ARMS
    check: FuzzCheckSpec = FuzzCheckSpec()
    sweep_every: int = 50                #: by *global* index, like blind
    sweep_points: int = 2

    @property
    def experiment(self) -> str:
        return f"fuzz-guided-{self.seed}-{self.count}"

    def check_for(self, index: int) -> FuzzCheckSpec:
        if self.sweep_every and index % self.sweep_every == 0:
            return replace(self.check, sweep_points=self.sweep_points)
        return self.check


@dataclass
class GuidedCampaignResult:
    """Everything a guided campaign produced."""

    spec: GuidedCampaignSpec
    verdicts: list[FuzzVerdict]
    report: TriageReport
    coverage: CoverageMap
    run_reports: list[RunReport] = field(default_factory=list)
    failed: list = field(default_factory=list)
    #: per-batch arm allocation, scheduling order
    allocations: list[dict] = field(default_factory=list)
    #: lifetime per-arm totals: programs allocated, first-hit bins
    arm_stats: dict = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return not self.failed and all(r.completed for r in self.run_reports)

    def render_allocations(self) -> str:
        """Deterministic arm table for stdout."""
        lines = [f"arm allocation — {len(self.allocations)} batch(es):"]
        for arm in self.spec.arms:
            s = self.arm_stats.get(arm, {"allocated": 0, "new_bins": 0})
            lines.append(f"  {arm:<12} {s['allocated']:5d} program(s)  "
                         f"{s['new_bins']:4d} first-hit bin(s)")
        return "\n".join(lines)


def run_guided_campaign(spec: GuidedCampaignSpec, runner: ExperimentRunner,
                        *, jobs: int | None = None,
                        policy: ExecutionPolicy | None = None,
                        journaled: bool = True,
                        journal_root=None,
                        resume: bool = False) -> GuidedCampaignResult:
    """Run (or resume) one coverage-guided campaign.

    Batches run sequentially through the parallel engine, each under its
    own journal (``<experiment>-b<k>``); within a batch cells run at
    ``--jobs`` parallelism.  The final coverage map is recomputed from
    the verdicts in submission order, never carried incrementally — so
    a resumed campaign converges to the clean run's bytes.
    """
    scheduler = ArmScheduler(spec.arms)
    verdicts: list[FuzzVerdict] = []
    failed: list = []
    run_reports: list[RunReport] = []
    allocations: list[dict] = []
    index = 0
    batch_no = 0
    remaining = spec.count
    while remaining > 0:
        plan = scheduler.plan(min(spec.batch, remaining))
        cells = []
        for arm in plan:
            cells.append(Cell(arm.cell_name(spec.seed, index), BASELINE,
                              fuzz=spec.check_for(index)))
            index += 1
        journal = None
        if journaled:
            journal = RunJournal.for_run(f"{spec.experiment}-b{batch_no}",
                                         cells, runner, root=journal_root)
        run_reports.append(run_cells(runner, cells, jobs, policy=policy,
                                     journal=journal, resume=resume))
        alloc: dict = {}
        batch: list[tuple[str, FuzzVerdict]] = []
        incomplete = False
        for cell, arm in zip(cells, plan):
            alloc[arm.name] = alloc.get(arm.name, 0) + 1
            if runner.has_fuzz(cell.workload, cell.fuzz):
                verdict = runner.run_fuzz(cell.workload, cell.fuzz)
                verdicts.append(verdict)
                batch.append((arm.name, verdict))
            else:
                failed.append(cell.workload)
                incomplete = True
        allocations.append(alloc)
        if incomplete:
            # Later plans would depend on the missing observations;
            # stop here so crash + --resume replays identically.
            break
        scheduler.observe(batch)
        remaining -= len(plan)
        batch_no += 1
    arm_stats = {a: {"allocated": scheduler.allocated[a],
                     "new_bins": scheduler.new_bins[a]}
                 for a in scheduler.arms}
    return GuidedCampaignResult(
        spec=spec, verdicts=verdicts,
        report=triage(verdicts, errored=failed),
        coverage=coverage_map(verdicts),
        run_reports=run_reports, failed=failed,
        allocations=allocations, arm_stats=arm_stats)
