"""Seeded random-kernel generator over a serializable spec IR.

Generation is two-stage, Revizor-style: a seed is first sampled into a
:class:`KernelSpec` — a JSON-serializable IR of counted loops whose
bodies are tagged statement tuples (ALU ops, pointer chases, gathers,
streams, stores, byte accesses, fp arithmetic, conversions and nested
forward hammocks) — and the spec is then *materialized* into a SPISA
program through :class:`~repro.isa.builder.ProgramBuilder`.  The split
is what makes finds actionable: the shrinker reduces specs, regression
tests check in specs, and the :mod:`~repro.fuzz.oracle` interprets
specs independently of the functional simulator.

Every program halts by construction (loops are counted, hammocks branch
forward, every memory access is masked into its array) and never
faults: with the RISC-V-style total div/rem/fp semantics there is no
input that traps.  Determinism: the spec depends only on
``(campaign_seed, index, dials)``; array *data* flows from the workload
variant rng exactly like the hand-built suite, so ``train``/``eval``
share text but not inputs — which is what the SPEAR compiler requires.

This module promotes and supersedes the straight-line embryo in
``tests/properties/generators.py``: that generator never emitted
stores, body branches, div/rem (division by zero, ``INT64_MIN / -1``),
``sra`` on negative values, byte accesses or any fp — all of which the
spec IR covers.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace

import numpy as np

from ..isa.builder import ProgramBuilder
from ..workloads.base import Workload

#: Bumped whenever sampling or materialization changes meaning: the
#: version is part of every generated workload's name, so cached
#: artifacts and journaled verdicts can never cross generator versions.
SPEC_VERSION = 1

#: Int scratch registers handed to generated statements (spec index 0-7).
INT_SCRATCH = ("r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11")
#: FP scratch registers (spec index 0-5).
FP_SCRATCH = ("f1", "f2", "f3", "f4", "f5", "f6")

# Registers the materializer reserves for itself:
#   r1  data base      r13 cycle base     r15 bits base    r17 gather accum
#   r2  address temp   r14 fdata base     r16 stream cursor
#   r3  loop counter

ALU_OPS = ("add", "sub", "xor", "and", "or", "mul", "sll", "srl", "sra",
           "slt", "sltu", "addi", "andi", "ori", "xori", "slli", "srli",
           "srai", "slti")
FP_BINOPS = ("fadd", "fsub", "fmul", "fdiv", "fmin", "fmax")
FP_UNOPS = ("fsqrt", "fneg", "fabs", "fmov")
FP_CMPS = ("flt", "fle", "feq")
HAMMOCK_CONDS = ("entropy", "beq", "bne", "blt", "bge", "bltz", "bgez")

#: Initial scratch values are drawn from this pool so the arithmetic
#: edge cases (INT64_MIN / -1, shifts of negatives, >2^53 division) are
#: reachable from the very first loop iteration.
INTERESTING_INTS = (0, 1, -1, 2, 7, -13, 255, 1 << 31, -(1 << 31),
                    (1 << 53) + 1, (1 << 62) + 3, -(1 << 63), (1 << 63) - 1)
INTERESTING_FLOATS = (0.0, 1.0, -1.0, 0.5, -2.5, 3.141592653589793,
                      1e300, -1e300, 1e-300)


@dataclass(frozen=True)
class KernelDials:
    """Generator dials.  Every field is a *ceiling* or a mix weight: the
    sampler draws each program's actual character under these bounds, so
    one dialed corpus still spans footprints and statement mixes."""

    chase_depth: int = 4        #: max pointer-chase hops per chase stmt
    gather_fanout: int = 4      #: max gathered loads per gather stmt
    stream_stride: int = 4      #: max streaming stride, in words
    mem_words: int = 16384      #: max per-array footprint (power of two)
    branch_entropy: float = 0.5  #: max P(taken) distance from certainty
    max_loops: int = 3          #: counted loops per program
    max_body: int = 8           #: statements per loop body
    max_nest: int = 1           #: hammock nesting depth
    target_instructions: int = 2200  #: dynamic budget trips are sized to
    #: statement-mix weights, relative to ALU weight 3.0
    div_weight: float = 1.0
    fp_weight: float = 1.5
    store_weight: float = 1.0
    byte_weight: float = 0.5

    def describe(self) -> dict:
        return asdict(self)


DEFAULT_DIALS = KernelDials()


@dataclass(frozen=True)
class KernelSpec:
    """One generated kernel, as data.

    ``loops`` is a tuple of ``(trip_count, statements)`` pairs executed
    in order; statements are tagged tuples (see the ``emit_*`` table in
    :func:`materialize`).  The spec fully determines program *text*;
    array *contents* come from the variant rng at materialization.
    """

    mem_words: int                        #: words per array (power of two)
    p_taken: float                        #: bits-array bias for hammocks
    init: tuple[int, ...]                 #: initial int scratch (len 8)
    finit: tuple[float, ...]              #: initial fp scratch (len 6)
    loops: tuple[tuple[int, tuple], ...]  #: ((trip, (stmt, ...)), ...)
    version: int = SPEC_VERSION

    def size(self) -> int:
        """Statement count, hammock bodies included — the shrink metric."""
        return sum(_stmts_size(body) for _, body in self.loops)

    def dynamic_estimate(self) -> int:
        """Rough dynamic instruction count of one full execution."""
        return sum(2 + trip * (2 + sum(_stmt_cost(s) for s in body))
                   for trip, body in self.loops)


def _stmts_size(stmts: tuple) -> int:
    total = 0
    for s in stmts:
        total += 1
        if s[0] == "hammock":
            total += _stmts_size(s[4]) + _stmts_size(s[5])
    return total


def _stmt_cost(s: tuple) -> int:
    """Static instructions one statement materializes to (hammocks use
    the longer arm — an upper bound on the dynamic cost)."""
    kind = s[0]
    if kind == "chase":
        return 4 * s[3]
    if kind == "gather":
        return 2 + 5 * s[3]
    if kind == "stream":
        return 5
    if kind == "store":
        return 4
    if kind in ("bload", "bstore"):
        return 3
    if kind in ("fload", "fstore"):
        return 4
    if kind == "hammock":
        then_c = sum(_stmt_cost(x) for x in s[4])
        else_c = sum(_stmt_cost(x) for x in s[5])
        cond_c = 5 if s[1] == "entropy" else 1
        return cond_c + 1 + max(then_c, else_c)
    return 1


# -- JSON round trip --------------------------------------------------------

def _untuple(obj):
    if isinstance(obj, tuple):
        return [_untuple(x) for x in obj]
    return obj


def _retuple(obj):
    if isinstance(obj, list):
        return tuple(_retuple(x) for x in obj)
    return obj


def spec_to_json(spec: KernelSpec) -> str:
    """Serialize a spec to deterministic (sorted, newline-free) JSON."""
    return json.dumps({
        "version": spec.version, "mem_words": spec.mem_words,
        "p_taken": spec.p_taken, "init": list(spec.init),
        "finit": list(spec.finit), "loops": _untuple(spec.loops),
    }, sort_keys=True)


def spec_from_json(text: str) -> KernelSpec:
    d = json.loads(text)
    if d.get("version") != SPEC_VERSION:
        raise ValueError(f"unsupported spec version {d.get('version')!r} "
                         f"(this generator is v{SPEC_VERSION})")
    return KernelSpec(mem_words=int(d["mem_words"]),
                      p_taken=float(d["p_taken"]),
                      init=tuple(int(v) for v in d["init"]),
                      finit=tuple(float(v) for v in d["finit"]),
                      loops=_retuple(d["loops"]),
                      version=int(d["version"]))


# -- sampling ---------------------------------------------------------------

def sample_spec(campaign_seed: int, index: int,
                dials: KernelDials = DEFAULT_DIALS) -> KernelSpec:
    """Draw program ``index`` of a campaign.  Identical inputs yield an
    identical spec on every platform and process (SeedSequence-based)."""
    rng = np.random.default_rng([SPEC_VERSION, campaign_seed, index])
    # Footprint: log-uniform over powers of two up to the dial ceiling,
    # floored at 64 words so the L1-resident corner stays represented.
    ceil_log = max(6, int(dials.mem_words).bit_length() - 1)
    n = 1 << int(rng.integers(6, ceil_log + 1))
    p_taken = float(np.round(0.5 + rng.uniform(-dials.branch_entropy / 2,
                                               dials.branch_entropy / 2), 4))
    init = tuple(
        int(INTERESTING_INTS[rng.integers(len(INTERESTING_INTS))])
        if rng.random() < 0.7
        else int(rng.integers(-(1 << 62), 1 << 62))
        for _ in INT_SCRATCH)
    finit = tuple(
        float(INTERESTING_FLOATS[rng.integers(len(INTERESTING_FLOATS))])
        if rng.random() < 0.7 else float(np.round(rng.normal() * 8, 6))
        for _ in FP_SCRATCH)

    n_loops = int(rng.integers(1, dials.max_loops + 1))
    bodies = [tuple(_sample_stmt(rng, dials, nest=0)
                    for _ in range(int(rng.integers(2, dials.max_body + 1))))
              for _ in range(n_loops)]
    # Size trips so the whole program lands near the dynamic budget,
    # split unevenly across loops for phase-like behaviour.
    shares = rng.dirichlet(np.ones(n_loops)) * dials.target_instructions
    loops = []
    for body, share in zip(bodies, shares):
        cost = 2 + sum(_stmt_cost(s) for s in body)
        loops.append((max(1, int(share // cost)), body))
    return KernelSpec(mem_words=n, p_taken=p_taken, init=init, finit=finit,
                      loops=tuple(loops))


def _sample_stmt(rng: np.random.Generator, dials: KernelDials,
                 nest: int) -> tuple:
    kinds = ["alu", "div", "chase", "gather", "stream", "store", "byte",
             "fp"]
    weights = [3.0, dials.div_weight, 1.5, 1.5, 1.0, dials.store_weight,
               dials.byte_weight, dials.fp_weight]
    if nest < dials.max_nest:
        kinds.append("hammock")
        weights.append(1.2)
    w = np.asarray(weights) / sum(weights)
    kind = kinds[int(rng.choice(len(kinds), p=w))]
    d = int(rng.integers(len(INT_SCRATCH)))
    s1 = int(rng.integers(len(INT_SCRATCH)))
    s2 = int(rng.integers(len(INT_SCRATCH)))
    if kind == "alu":
        op = ALU_OPS[int(rng.integers(len(ALU_OPS)))]
        if op in ("slli", "srli", "srai"):
            imm = int(rng.integers(0, 64))
        elif op == "andi":
            imm = int(rng.integers(-8, 256))
        else:
            imm = int(rng.integers(-64, 65))
        return ("alu", op, d, s1, s2, imm)
    if kind == "div":
        return ("div", "div" if rng.random() < 0.5 else "rem", d, s1, s2)
    if kind == "chase":
        return ("chase", d, s1, int(rng.integers(1, dials.chase_depth + 1)))
    if kind == "gather":
        return ("gather", d, s1, int(rng.integers(1, dials.gather_fanout + 1)))
    if kind == "stream":
        return ("stream", d, int(rng.integers(1, dials.stream_stride + 1)))
    if kind == "store":
        return ("store", s1, s2)
    if kind == "byte":
        if rng.random() < 0.5:
            return ("bload", d, s1)
        return ("bstore", s1, s2)
    if kind == "fp":
        f1 = int(rng.integers(len(FP_SCRATCH)))
        f2 = int(rng.integers(len(FP_SCRATCH)))
        fd = int(rng.integers(len(FP_SCRATCH)))
        roll = rng.random()
        if roll < 0.35:
            op = FP_BINOPS[int(rng.integers(len(FP_BINOPS)))]
            return ("fp", op, fd, f1, f2)
        if roll < 0.5:
            op = FP_UNOPS[int(rng.integers(len(FP_UNOPS)))]
            return ("fun", op, fd, f1)
        if roll < 0.62:
            op = FP_CMPS[int(rng.integers(len(FP_CMPS)))]
            return ("fcmp", op, d, f1, f2)
        if roll < 0.74:
            return ("cvtif", fd, s1)
        if roll < 0.86:
            return ("cvtfi", d, f1)
        if roll < 0.93:
            return ("fload", fd, s1)
        return ("fstore", f1, s1)
    # hammock
    cond = HAMMOCK_CONDS[int(rng.integers(len(HAMMOCK_CONDS)))]
    then_n = int(rng.integers(1, 4))
    else_n = int(rng.integers(0, 3))
    then = tuple(_sample_stmt(rng, dials, nest + 1) for _ in range(then_n))
    els = tuple(_sample_stmt(rng, dials, nest + 1) for _ in range(else_n))
    return ("hammock", cond, s1, s2, then, els)


# -- materialization --------------------------------------------------------

def spec_arrays(spec: KernelSpec, rng: np.random.Generator) -> dict:
    """The four backing arrays, drawn in a fixed order.

    Shared by the materializer (as segment initializers) and the oracle
    (as interpreter state), so both sides agree on inputs while
    computing outputs through entirely separate code paths.
    """
    n = spec.mem_words
    data = rng.integers(-(1 << 40), 1 << 40, size=n, dtype=np.int64)
    cycle = Workload.random_cycle(n, rng)
    fdata = np.round(rng.normal(size=n) * 100, 6)
    bits = Workload.biased_bits(n, spec.p_taken, rng)
    return {"data": data, "cycle": cycle, "fdata": fdata, "bits": bits}


def spec_layout(spec: KernelSpec, data_base: int = 0x1000) -> dict:
    """Byte addresses of the arrays — fixed by the allocation order in
    :func:`materialize` (data, cycle, fdata, bits, finit, iinit)."""
    n = spec.mem_words * 8
    return {"data": data_base, "cycle": data_base + n,
            "fdata": data_base + 2 * n, "bits": data_base + 3 * n,
            "finit": data_base + 4 * n,
            "iinit": data_base + 4 * n + 8 * len(FP_SCRATCH)}


def materialize(spec: KernelSpec, b: ProgramBuilder,
                rng: np.random.Generator) -> None:
    """Emit ``spec`` into ``b`` (everything but the final halt)."""
    arrays = spec_arrays(spec, rng)
    n = spec.mem_words
    data = b.alloc(n, init=arrays["data"])
    cycle = b.alloc(n, init=arrays["cycle"])
    b.alloc(n, init=arrays["fdata"], dtype=np.float64)
    bits = b.alloc(n, init=arrays["bits"])
    finit = b.alloc(len(spec.finit), init=np.array(spec.finit),
                    dtype=np.float64)
    # Initial int scratch comes from a data segment, not li: init values
    # span the full 64-bit range (INT64_MIN, 2^62+3, ...) while encoded
    # immediates are much narrower — li of those would not binary-encode.
    iinit = b.alloc(len(spec.init),
                    init=np.array(spec.init, dtype=np.int64))
    layout = spec_layout(spec)
    assert layout["data"] == data and layout["bits"] == bits  # fixed order
    assert layout["iinit"] == iinit

    b.li("r1", layout["data"])
    b.li("r13", layout["cycle"])
    b.li("r14", layout["fdata"])
    b.li("r15", layout["bits"])
    b.li("r16", layout["data"])          # stream cursor
    b.li("r2", iinit)
    for i, reg in enumerate(INT_SCRATCH):
        b.lw(reg, "r2", i * 8)
    b.li("r2", finit)
    for i, freg in enumerate(FP_SCRATCH):
        b.flw(freg, "r2", i * 8)

    for trip, body in spec.loops:
        b.li("r3", trip)
        with b.loop_down("r3"):
            for stmt in body:
                _emit_stmt(b, stmt, n)


_ALU_REG = {"add": "add", "sub": "sub", "xor": "xor", "and": "and_",
            "or": "or_", "mul": "mul", "sll": "sll", "srl": "srl",
            "sra": "sra", "slt": "slt", "sltu": "sltu"}
_ALU_IMM = {"addi": "addi", "andi": "andi", "ori": "ori", "xori": "xori",
            "slli": "slli", "srli": "srli", "srai": "srai", "slti": "slti"}


def _emit_stmt(b: ProgramBuilder, s: tuple, n: int) -> None:
    mask = n - 1
    bytemask = n * 8 - 1
    kind = s[0]
    if kind == "alu":
        _, op, d, s1, s2, imm = s
        rd, r1, r2 = INT_SCRATCH[d], INT_SCRATCH[s1], INT_SCRATCH[s2]
        if op in _ALU_REG:
            getattr(b, _ALU_REG[op])(rd, r1, r2)
        else:
            getattr(b, _ALU_IMM[op])(rd, r1, imm)
    elif kind == "div":
        _, op, d, s1, s2 = s
        getattr(b, op)(INT_SCRATCH[d], INT_SCRATCH[s1], INT_SCRATCH[s2])
    elif kind == "chase":
        _, d, s1, depth = s
        cur = INT_SCRATCH[s1]
        for _ in range(depth):
            b.andi("r2", cur, mask)
            b.slli("r2", "r2", 3)
            b.add("r2", "r2", "r13")
            b.lw(INT_SCRATCH[d], "r2", 0)
            cur = INT_SCRATCH[d]
    elif kind == "gather":
        _, d, s1, fan = s
        b.li("r17", 0)
        for j in range(fan):
            b.addi("r2", INT_SCRATCH[s1], j)
            b.andi("r2", "r2", mask)
            b.slli("r2", "r2", 3)
            b.add("r2", "r2", "r1")
            b.lw("r2", "r2", 0)
            b.add("r17", "r17", "r2")
        b.mov(INT_SCRATCH[d], "r17")
    elif kind == "stream":
        _, d, stride = s
        b.lw(INT_SCRATCH[d], "r16", 0)
        b.addi("r16", "r16", stride * 8)
        b.sub("r2", "r16", "r1")
        b.andi("r2", "r2", mask * 8)
        b.add("r16", "r1", "r2")
    elif kind == "store":
        _, src, idx = s
        b.andi("r2", INT_SCRATCH[idx], mask)
        b.slli("r2", "r2", 3)
        b.add("r2", "r2", "r1")
        b.sw(INT_SCRATCH[src], "r2", 0)
    elif kind == "bload":
        _, d, s1 = s
        b.andi("r2", INT_SCRATCH[s1], bytemask)
        b.add("r2", "r2", "r1")
        b.lb(INT_SCRATCH[d], "r2", 0)
    elif kind == "bstore":
        _, src, idx = s
        b.andi("r2", INT_SCRATCH[idx], bytemask)
        b.add("r2", "r2", "r1")
        b.sb(INT_SCRATCH[src], "r2", 0)
    elif kind == "fp":
        _, op, fd, f1, f2 = s
        getattr(b, op)(FP_SCRATCH[fd], FP_SCRATCH[f1], FP_SCRATCH[f2])
    elif kind == "fun":
        _, op, fd, f1 = s
        getattr(b, op)(FP_SCRATCH[fd], FP_SCRATCH[f1])
    elif kind == "fcmp":
        _, op, d, f1, f2 = s
        getattr(b, op)(INT_SCRATCH[d], FP_SCRATCH[f1], FP_SCRATCH[f2])
    elif kind == "cvtif":
        _, fd, s1 = s
        b.cvtif(FP_SCRATCH[fd], INT_SCRATCH[s1])
    elif kind == "cvtfi":
        _, d, f1 = s
        b.cvtfi(INT_SCRATCH[d], FP_SCRATCH[f1])
    elif kind == "fload":
        _, fd, s1 = s
        b.andi("r2", INT_SCRATCH[s1], mask)
        b.slli("r2", "r2", 3)
        b.add("r2", "r2", "r14")
        b.flw(FP_SCRATCH[fd], "r2", 0)
    elif kind == "fstore":
        _, fs, idx = s
        b.andi("r2", INT_SCRATCH[idx], mask)
        b.slli("r2", "r2", 3)
        b.add("r2", "r2", "r14")
        b.fsw(FP_SCRATCH[fs], "r2", 0)
    elif kind == "hammock":
        _, cond, s1, s2, then, els = s
        r1, r2 = INT_SCRATCH[s1], INT_SCRATCH[s2]
        skip = b.label()
        end = b.label() if els else skip
        # Branch *around* the then-arm when the condition is false.
        if cond == "entropy":
            b.andi("r2", r1, mask)
            b.slli("r2", "r2", 3)
            b.add("r2", "r2", "r15")
            b.lw("r2", "r2", 0)
            b.beq("r2", "r0", skip)
        elif cond == "beq":
            b.bne(r1, r2, skip)
        elif cond == "bne":
            b.beq(r1, r2, skip)
        elif cond == "blt":
            b.bge(r1, r2, skip)
        elif cond == "bge":
            b.blt(r1, r2, skip)
        elif cond == "bltz":
            b.bgez(r1, skip)
        else:  # bgez
            b.bltz(r1, skip)
        for sub in then:
            _emit_stmt(b, sub, n)
        if els:
            b.j(end)
            b.place(skip)
            for sub in els:
                _emit_stmt(b, sub, n)
            b.place(end)
        else:
            b.place(skip)
    else:  # pragma: no cover - sampler and shrinker only emit the above
        raise ValueError(f"unknown statement kind {kind!r}")


# -- workloads --------------------------------------------------------------

class SpecWorkload(Workload):
    """A workload wrapping an explicit :class:`KernelSpec` — the form the
    shrinker iterates on and ``tests/regress`` checks in."""

    suite = "fuzz"
    mem_bytes = 1 << 20

    def __init__(self, spec: KernelSpec, name: str):
        self.spec = spec
        self.name = name
        budget = spec.dynamic_estimate()
        # Generous ceilings — generated kernels halt by construction, so
        # the budgets only bound runaway estimates, never truncate.
        self.eval_instructions = 4 * budget + 2000
        self.profile_instructions = 4 * budget + 2000
        self.warmup_instructions = 0

    def build(self, b: ProgramBuilder, rng: np.random.Generator,
              variant: str) -> None:
        materialize(self.spec, b, rng)

    def variant_rng(self, variant: str) -> np.random.Generator:
        """The exact data rng :meth:`Workload.program` materializes with
        — the oracle replays array generation through this."""
        import zlib
        return np.random.default_rng(
            self._SEEDS[variant] ^ zlib.crc32(self.name.encode()))


class FuzzWorkload(SpecWorkload):
    """Program ``index`` of a seeded campaign.

    The name — ``fuzz:v<V>:<seed>:<index>[:k=v;k=v]`` — encodes the full
    generation identity, so parallel workers and cache keys reconstruct
    the exact program from the string alone."""

    def __init__(self, campaign_seed: int, index: int,
                 dials: KernelDials = DEFAULT_DIALS):
        self.campaign_seed = campaign_seed
        self.index = index
        self.dials = dials
        spec = sample_spec(campaign_seed, index, dials)
        super().__init__(spec, encode_name(campaign_seed, index, dials))


def encode_name(campaign_seed: int, index: int,
                dials: KernelDials = DEFAULT_DIALS) -> str:
    name = f"fuzz:v{SPEC_VERSION}:{campaign_seed}:{index}"
    overrides = {k: v for k, v in asdict(dials).items()
                 if getattr(DEFAULT_DIALS, k) != v}
    if overrides:
        name += ":" + ";".join(f"{k}={overrides[k]:g}"
                               if isinstance(overrides[k], float)
                               else f"{k}={overrides[k]}"
                               for k in sorted(overrides))
    return name


def parse_name(name: str) -> tuple[int, int, KernelDials]:
    """Inverse of :func:`encode_name`; raises ``ValueError`` on junk."""
    parts = name.split(":")
    if len(parts) not in (4, 5) or parts[0] != "fuzz":
        raise ValueError(f"not a fuzz workload name: {name!r}")
    if parts[1] != f"v{SPEC_VERSION}":
        raise ValueError(
            f"fuzz name {name!r} is generator version {parts[1]}, this "
            f"build is v{SPEC_VERSION} — regenerate the corpus")
    seed, index = int(parts[2]), int(parts[3])
    dials = DEFAULT_DIALS
    if len(parts) == 5 and parts[4]:
        fields = {f.name: f.type for f in
                  KernelDials.__dataclass_fields__.values()}
        kw = {}
        for item in parts[4].split(";"):
            k, _, v = item.partition("=")
            if k not in fields:
                raise ValueError(f"unknown dial {k!r} in {name!r}")
            default = getattr(DEFAULT_DIALS, k)
            kw[k] = type(default)(float(v) if "." in v or "e" in v else v)
        dials = replace(DEFAULT_DIALS, **kw)
    return seed, index, dials


def fuzz_workload_from_name(name: str) -> FuzzWorkload:
    """Registry hook target: rebuild the workload a fuzz name encodes."""
    seed, index, dials = parse_name(name)
    return FuzzWorkload(seed, index, dials)
