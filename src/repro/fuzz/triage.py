"""Campaign triage: fold per-program verdicts into one report.

The report is **byte-deterministic**: verdicts arrive from the parallel
engine in submission order (which the engine guarantees regardless of
``--jobs``), and every aggregate below is computed order-independently
or preserves that order, so two same-seed campaigns render identical
bytes — the property the CI determinism check diffs on.

Programs whose evaluator died terminally (crashed cell, exhausted
retries) have no verdict at all; they are surfaced as the explicit
``errored`` bucket rather than silently shrinking the campaign — a
partially journaled campaign re-triaged after a crash must account for
every program it was asked to run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .differential import FuzzVerdict

CLASSES = ("speedup", "neutral", "regression", "divergence")


@dataclass
class TriageReport:
    """Aggregated outcome of one campaign."""

    total: int = 0
    counts: dict = field(default_factory=lambda: {c: 0 for c in CLASSES})
    #: divergent verdicts, submission order — the campaign's work queue
    divergences: list = field(default_factory=list)
    #: strongest speedups/regressions (name, ratio), most extreme first
    top_speedups: list = field(default_factory=list)
    top_regressions: list = field(default_factory=list)
    mean_speedup: float = 0.0
    total_commits: int = 0
    #: names whose evaluation raised before classification (no verdict),
    #: submission order — these are findings, not omissions
    errored: list = field(default_factory=list)

    def to_dict(self) -> dict:
        counts = dict(self.counts)
        counts["errored"] = len(self.errored)
        return {"total": self.total, "counts": counts,
                "divergences": [v.to_dict() for v in self.divergences],
                "top_speedups": self.top_speedups,
                "top_regressions": self.top_regressions,
                "mean_speedup": self.mean_speedup,
                "total_commits": self.total_commits,
                "errored": list(self.errored)}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def render(self) -> str:
        lines = [f"fuzz triage — {self.total} program(s), "
                 f"{self.total_commits} instructions committed"]
        for c in CLASSES + ("errored",):
            n = len(self.errored) if c == "errored" else self.counts[c]
            pct = 100.0 * n / self.total if self.total else 0.0
            lines.append(f"  {c:<10} {n:6d}  ({pct:5.1f}%)")
        lines.append(f"  mean SPEAR/baseline IPC ratio: "
                     f"{self.mean_speedup:.4f}")
        if self.top_speedups:
            lines.append("  strongest speedups:")
            for name, ratio in self.top_speedups:
                lines.append(f"    {ratio:7.3f}x  {name}")
        if self.top_regressions:
            lines.append("  strongest regressions:")
            for name, ratio in self.top_regressions:
                lines.append(f"    {ratio:7.3f}x  {name}")
        if self.divergences:
            lines.append(f"  DIVERGENCES ({len(self.divergences)}):")
            for v in self.divergences:
                lines.append(f"    {v.name}")
                for d in v.divergences:
                    lines.append(f"      - {d}")
        else:
            lines.append("  no divergences.")
        if self.errored:
            lines.append(f"  ERRORED ({len(self.errored)}) — evaluator "
                         f"died before classification:")
            for name in self.errored:
                lines.append(f"    {name}")
        return "\n".join(lines)


def triage(verdicts: list[FuzzVerdict], *, top: int = 5,
           errored: list | None = None) -> TriageReport:
    """Classify a campaign's verdicts (submission order preserved).

    ``errored`` names programs that produced no verdict at all; they
    count toward ``total`` and get their own bucket.
    """
    errored = list(errored) if errored else []
    report = TriageReport(total=len(verdicts) + len(errored),
                          errored=errored)
    ratios = []
    for v in verdicts:
        report.counts[v.classification] += 1
        report.total_commits += v.commits
        if v.diverged:
            report.divergences.append(v)
        else:
            ratios.append(v.speedup)
    if ratios:
        report.mean_speedup = sum(ratios) / len(ratios)
    clean = [v for v in verdicts if not v.diverged]
    ups = sorted((v for v in clean if v.classification == "speedup"),
                 key=lambda v: (-v.speedup, v.name))
    downs = sorted((v for v in clean if v.classification == "regression"),
                   key=lambda v: (v.speedup, v.name))
    report.top_speedups = [(v.name, round(v.speedup, 6)) for v in ups[:top]]
    report.top_regressions = [(v.name, round(v.speedup, 6))
                              for v in downs[:top]]
    return report
