"""End-to-end SPEAR compilation driver.

Chains the four compiler modules of the paper's Figure 4:

    binary ─→ ① CFG drawing ─→ ③ program slicing ─→ ④ attaching ─→ SPEAR binary
          └─→ ② profiling  ─┘

Profiling deliberately runs on a *training* program variant (same text
segment, different input data) while the produced annotations are applied
to the evaluation variant — the paper's §4.1 methodology ("we intentionally
used different input data sets for profiling and benchmark simulation").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.spear_binary import SpearBinary
from ..functional.simulator import FunctionalSimulator
from ..isa.program import Program
from ..memory.hierarchy import LatencyConfig
from .attacher import attach
from .cfg import CFG
from .profiler import Profile, profile_trace
from .slicer import SlicerConfig, SlicerResult, build_pthreads


@dataclass
class CompileReport:
    """What the compiler did, for documentation and tests."""

    workload: str
    profile_instructions: int
    profile_l1_misses: int
    dloads: int
    mean_slice_size: float
    max_slice_size: int
    slices: list[dict] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"SPEAR compile report — {self.workload}",
                 f"  profiled {self.profile_instructions} instructions, "
                 f"{self.profile_l1_misses} L1 misses",
                 f"  {self.dloads} delinquent load(s); mean slice "
                 f"{self.mean_slice_size:.1f}, max {self.max_slice_size}"]
        for s in self.slices:
            lines.append(
                f"    d-load pc {s['dload_pc']:5d}  misses {s['misses']:7d}  "
                f"slice {s['slice_size']:4d}  live-ins {s['live_ins']}  "
                f"d-cycle {s['d_cycle']:.1f}")
        return "\n".join(lines)


def _check_same_text(a: Program, b: Program) -> None:
    if len(a) != len(b):
        raise ValueError(
            "training and evaluation binaries differ in length "
            f"({len(a)} vs {len(b)}); pc-based annotations would be invalid")
    for pc, (x, y) in enumerate(zip(a.instructions, b.instructions)):
        if x.op != y.op or x.rd != y.rd or x.rs1 != y.rs1 or x.rs2 != y.rs2:
            raise ValueError(
                f"training and evaluation binaries diverge at pc {pc}: "
                f"{x.render()} vs {y.render()}")


def compile_spear(train_program: Program, eval_program: Program | None = None,
                  *, slicer_config: SlicerConfig | None = None,
                  latencies: LatencyConfig = LatencyConfig(),
                  max_profile_instructions: int = 2_000_000
                  ) -> tuple[SpearBinary, CompileReport, SlicerResult]:
    """Compile a SPEAR binary.

    Parameters
    ----------
    train_program:
        Program with the profiling dataset baked into its data segments.
    eval_program:
        Program with the evaluation dataset; defaults to ``train_program``
        (with a methodology warning left to the caller).  Its text segment
        must match the training program instruction-for-instruction,
        immediates excepted (trip counts and base addresses may differ).
    """
    eval_program = eval_program or train_program
    _check_same_text(train_program, eval_program)

    cfg = CFG(train_program)
    sim = FunctionalSimulator(train_program)
    trace = sim.run(max_profile_instructions, trace=True)
    profile = profile_trace(trace, cfg, latencies=latencies)
    result = build_pthreads(cfg, profile, slicer_config, latencies)
    binary = attach(eval_program, result.table)

    sizes = [r.slice_size for r in result.accepted]
    report = CompileReport(
        workload=eval_program.name,
        profile_instructions=profile.total_instrs,
        profile_l1_misses=profile.total_l1_misses,
        dloads=len(result.table),
        mean_slice_size=sum(sizes) / len(sizes) if sizes else 0.0,
        max_slice_size=max(sizes, default=0),
        slices=[{"dload_pc": r.dload_pc, "misses": r.miss_count,
                 "slice_size": r.slice_size, "live_ins": list(r.live_ins),
                 "d_cycle": r.d_cycle}
                for r in result.accepted])
    return binary, report, result
