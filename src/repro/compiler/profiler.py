"""Profiling tool — compiler module ② of the paper (Figure 4).

Replays a committed-path trace (from the *profiling* input, which must be
distinct from the evaluation input, §4.1) against the cache geometry and
collects the dynamic information the slicer needs:

* per-static-load cache-miss counts → delinquent-load candidates;
* dynamic register-dependence edges with occurrence counts (consumer pc →
  producer pc), giving the *hybrid slicing* its dynamic filtering:
  majority-path producers keep high counts, cold paths don't (Figure 5);
* memory-dependence edges (load pc → store pc through the same word);
* per-loop iteration counts and estimated cycles per iteration (d-cycles,
  §4.2) for the region-based prefetching range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..functional.trace import Trace
from ..memory.cache import Cache
from ..memory.hierarchy import L1D_CONFIG, L2_CONFIG, LatencyConfig
from .cfg import CFG


@dataclass
class LoopProfile:
    """Dynamic statistics of one natural loop."""

    header: int
    iterations: int = 0
    dyn_instrs: int = 0
    l1_misses: int = 0

    def d_cycle(self, latencies: LatencyConfig) -> float:
        """Estimated cycles of one iteration (the paper's d-cycle).

        A simple cost model: one cycle per instruction plus the average
        L2-latency cost of its L1 misses.  The absolute scale only has to
        be commensurate with the slicer's budget (120 by default).
        """
        if not self.iterations:
            return 0.0
        return (self.dyn_instrs
                + self.l1_misses * latencies.l2) / self.iterations


@dataclass
class Profile:
    """Everything the profiling tool learned from one training run."""

    exec_counts: dict[int, int] = field(default_factory=dict)
    load_counts: dict[int, int] = field(default_factory=dict)
    miss_counts: dict[int, int] = field(default_factory=dict)
    #: consumer pc -> {producer pc: times observed}
    reg_edges: dict[int, dict[int, int]] = field(default_factory=dict)
    #: load pc -> {store pc: times observed} (same-word memory dependence)
    mem_edges: dict[int, dict[int, int]] = field(default_factory=dict)
    loops: dict[int, LoopProfile] = field(default_factory=dict)
    total_instrs: int = 0
    total_l1_misses: int = 0

    def miss_rate_of(self, pc: int) -> float:
        loads = self.load_counts.get(pc, 0)
        return self.miss_counts.get(pc, 0) / loads if loads else 0.0

    def top_misses(self, k: int = 10) -> list[tuple[int, int]]:
        """The k static loads with the most profile misses."""
        return sorted(self.miss_counts.items(), key=lambda kv: -kv[1])[:k]


def profile_trace(trace: Trace, cfg: CFG, *,
                  latencies: LatencyConfig = LatencyConfig()) -> Profile:
    """Run the profiling analysis over one training trace."""
    profile = Profile()
    l1 = Cache(L1D_CONFIG)
    l2 = Cache(L2_CONFIG)

    exec_counts = profile.exec_counts
    load_counts = profile.load_counts
    miss_counts = profile.miss_counts
    reg_edges = profile.reg_edges
    mem_edges = profile.mem_edges

    last_writer_pc: dict[int, int] = {}
    last_store_pc: dict[int, int] = {}

    # Loop accounting: map each pc to its innermost loop header once.
    header_of_pc: dict[int, int | None] = {}
    loop_profiles = profile.loops
    for header, loop in cfg.loops.items():
        loop_profiles[header] = LoopProfile(header)
    header_pcs = {h: cfg.blocks[h].start for h in cfg.loops}

    def innermost_header(pc: int) -> int | None:
        h = header_of_pc.get(pc, -2)
        if h == -2:
            loop = cfg.innermost_loop_of_pc(pc)
            h = loop.header if loop is not None else None
            header_of_pc[pc] = h
        return h

    for entry in trace:
        pc = entry.pc
        exec_counts[pc] = exec_counts.get(pc, 0) + 1
        profile.total_instrs += 1

        for src in entry.srcs:
            prod = last_writer_pc.get(src)
            if prod is not None:
                edges = reg_edges.get(pc)
                if edges is None:
                    edges = reg_edges[pc] = {}
                edges[prod] = edges.get(prod, 0) + 1

        missed = False
        if entry.is_load:
            load_counts[pc] = load_counts.get(pc, 0) + 1
            word = entry.addr >> 3
            st = last_store_pc.get(word)
            if st is not None:
                edges = mem_edges.get(pc)
                if edges is None:
                    edges = mem_edges[pc] = {}
                edges[st] = edges.get(st, 0) + 1
            if not l1.access(entry.addr):
                missed = True
                miss_counts[pc] = miss_counts.get(pc, 0) + 1
                profile.total_l1_misses += 1
                l2.access(entry.addr)
        elif entry.is_store:
            last_store_pc[entry.addr >> 3] = pc
            if not l1.access(entry.addr, is_write=True):
                l2.access(entry.addr, is_write=True)

        if entry.dst >= 0:
            last_writer_pc[entry.dst] = pc

        header = innermost_header(pc)
        if header is not None:
            lp = loop_profiles[header]
            lp.dyn_instrs += 1
            if missed:
                lp.l1_misses += 1
            if pc == header_pcs[header]:
                lp.iterations += 1
            # Outer loops accumulate inner work too.
            parent = cfg.loops[header].parent
            while parent is not None:
                plp = loop_profiles[parent]
                plp.dyn_instrs += 1
                if missed:
                    plp.l1_misses += 1
                if pc == header_pcs[parent]:
                    plp.iterations += 1
                parent = cfg.loops[parent].parent

    return profile
