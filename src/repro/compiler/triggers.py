"""Quantitative trigger-point analysis.

The paper (§2.1) notes that all prior work — itself included — places
triggers heuristically, and that "a more quantitative analysis of the
trigger point might improve the performance of the speculative
prefetching" (its reference [21]).  This module provides that analysis for
compiled p-threads:

* **slice critical path** — the longest dependence chain through the
  static slice, using the machine's operation latencies and a
  profile-weighted memory latency for each load in the slice;
* **expected trigger lead** — how many cycles ahead of the main thread
  the triggering d-load instance sits when pre-execution starts, derived
  from the trigger occupancy threshold and the profiled IPC estimate;
* **timeliness margin** — lead minus critical path.  A positive margin
  predicts the prefetch completes before the main thread arrives; a
  negative one predicts late (partial-latency) prefetches, fft-style.

The analysis is static-plus-profile — exactly the information the SPEAR
compiler already has — so it can be used as a compile-time filter
(``SlicerConfig`` consumers may drop untimely p-threads).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.configs import MachineConfig, OP_LATENCY, SPEAR_128
from ..core.pthread import PThread, PThreadTable
from ..memory.hierarchy import LatencyConfig
from .cfg import CFG
from .profiler import Profile


@dataclass
class TriggerReport:
    """Predicted timeliness of one p-thread."""

    dload_pc: int
    slice_size: int
    critical_path_cycles: float
    expected_lead_cycles: float
    livein_copy_cycles: int

    @property
    def margin(self) -> float:
        """Positive: the prefetch is expected to be timely."""
        return (self.expected_lead_cycles - self.livein_copy_cycles
                - self.critical_path_cycles)

    @property
    def timely(self) -> bool:
        return self.margin > 0

    def render(self) -> str:
        verdict = "timely" if self.timely else "LATE"
        return (f"d-load pc {self.dload_pc:5d}: slice {self.slice_size:4d}, "
                f"critical path {self.critical_path_cycles:7.1f} cy, "
                f"lead {self.expected_lead_cycles:7.1f} cy, "
                f"copy {self.livein_copy_cycles:2d} cy -> "
                f"margin {self.margin:+8.1f} ({verdict})")


def _expected_load_latency(pc: int, profile: Profile,
                           latencies: LatencyConfig) -> float:
    """Profile-weighted latency of one static load."""
    loads = profile.load_counts.get(pc, 0)
    if not loads:
        return latencies.l1
    miss_rate = profile.miss_counts.get(pc, 0) / loads
    # L1 misses mostly go to memory on the d-load paths that matter here;
    # weight between L2 and DRAM by how badly the load misses.
    miss_cost = latencies.l2 + (latencies.memory - latencies.l2) * miss_rate
    return latencies.l1 * (1 - miss_rate) + miss_cost * miss_rate


def slice_critical_path(cfg: CFG, pthread: PThread, profile: Profile,
                        latencies: LatencyConfig) -> float:
    """Longest dependence chain through the static slice, in cycles.

    Instructions are visited in pc order (the PE extracts in program
    order); each one completes after its latest producer in the slice plus
    its own latency.  Loads use the profile-weighted memory latency.
    """
    instrs = cfg.program.instructions
    ready_at: dict[int, float] = {}   # register -> cycles until value ready
    longest = 0.0
    for pc in sorted(pthread.slice_pcs):
        ins = instrs[pc]
        start = 0.0
        for r in ins.srcs:
            start = max(start, ready_at.get(r, 0.0))
        if ins.is_load:
            lat = _expected_load_latency(pc, profile, latencies)
        else:
            lat = float(OP_LATENCY[int(ins.op_class)])
        finish = start + lat
        if ins.dst >= 0:
            ready_at[ins.dst] = finish
        longest = max(longest, finish)
    return longest


def expected_lead(pthread: PThread, profile: Profile,
                  machine: MachineConfig) -> float:
    """Cycles between trigger and the main thread reaching the d-load.

    At trigger time the d-load instance has just entered the IFQ and the
    occupancy is at least the threshold, so the main thread must first
    decode/execute ~``trigger_occupancy`` instructions.  The main thread's
    pace is estimated from the profile: one cycle per instruction plus the
    L2-weighted cost of its L1 misses (the same cost model as the
    d-cycle).
    """
    instrs = max(1, profile.total_instrs)
    est_cpi = 1.0 + (profile.total_l1_misses / instrs) * machine.latencies.l2
    return machine.trigger_occupancy * est_cpi


def analyze_triggers(cfg: CFG, profile: Profile, table: PThreadTable,
                     machine: MachineConfig = SPEAR_128
                     ) -> list[TriggerReport]:
    """Predict the timeliness of every p-thread in the table."""
    out = []
    for pthread in table:
        out.append(TriggerReport(
            dload_pc=pthread.dload_pc,
            slice_size=pthread.size,
            critical_path_cycles=slice_critical_path(
                cfg, pthread, profile, machine.latencies),
            expected_lead_cycles=expected_lead(pthread, profile, machine),
            livein_copy_cycles=(len(pthread.live_ins)
                                * machine.livein_copy_cycles)))
    out.sort(key=lambda r: r.margin)
    return out


def render_trigger_analysis(reports: list[TriggerReport]) -> str:
    lines = ["Trigger-point analysis (margin = lead - copy - critical path)"]
    lines += [f"  {r.render()}" for r in reports]
    timely = sum(1 for r in reports if r.timely)
    lines.append(f"  {timely}/{len(reports)} p-thread(s) predicted timely")
    return "\n".join(lines)
