"""Hybrid program slicing — compiler module ③ of the paper (Figure 4).

Combines the static program structure (CFG + loop regions) with the
profiler's dynamic information:

* **Delinquent loads** are static loads whose profile miss count passes a
  threshold (§4.2: "when the number of cache misses is higher than some
  predetermined value").
* **Region-based prefetching range** (§4.2): the base region is the
  innermost loop containing the d-load; outer loops are added while the
  accumulated d-cycle stays within the budget (120 by default) and the
  region never grows across a function call.
* **Dynamic backward slicing** (Figure 5): the backward walk follows only
  dependence edges the profiler actually observed, and only the *dominant*
  ones — a producer on a cold path contributes few dynamic edges and is
  pruned, exactly the B2/B3 discrimination of the paper's example.
* **Live-ins**: registers the slice reads before writing, in program
  order; the hardware copies these at trigger time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.pthread import PThread, PThreadTable
from ..memory.hierarchy import LatencyConfig
from .cfg import CFG, Loop
from .profiler import Profile


@dataclass(frozen=True)
class SlicerConfig:
    """Tunables of the p-thread construction."""

    #: Minimum profile misses for a load to be delinquent.
    dload_miss_threshold: int = 64
    #: Alternatively, loads covering at least this fraction of all profile
    #: misses are delinquent even below the absolute threshold.
    dload_miss_fraction: float = 0.02
    #: At most this many d-loads per binary (the paper reports a "small
    #: number" of static d-loads per application).
    max_dloads: int = 16
    #: A producer edge is followed only if it accounts for at least this
    #: fraction of the consumer's dynamic executions (majority-path pruning).
    dominant_edge_fraction: float = 0.05
    #: Follow memory-dependence edges (store -> its backward slice) too.
    follow_memory_deps: bool = True
    #: Accumulated d-cycle budget for region growth (paper: 120).
    dcycle_budget: float = 120.0
    #: How the prefetching range grows from the innermost loop:
    #: "budget" (paper: grow while accumulated d-cycles stay within
    #: dcycle_budget), "innermost" (never grow), or "outermost" (grow as
    #: far as call-free nesting allows — the paper's future-work question
    #: of better region-selection algorithms).
    region_policy: str = "budget"
    #: Hard cap on slice size; 0 disables the cap (the paper kept fft's
    #: 1129-instruction slices and paid for it).
    max_slice_size: int = 0


    def __post_init__(self) -> None:
        if self.region_policy not in ("budget", "innermost", "outermost"):
            raise ValueError(f"unknown region_policy {self.region_policy!r}")


@dataclass
class SliceReport:
    """Diagnostics for one constructed (or rejected) p-thread."""

    dload_pc: int
    miss_count: int
    region_header: int
    region_depth: int
    d_cycle: float
    slice_size: int
    live_ins: tuple[int, ...]
    rejected: str = ""


@dataclass
class SlicerResult:
    table: PThreadTable
    reports: list[SliceReport] = field(default_factory=list)

    @property
    def accepted(self) -> list[SliceReport]:
        return [r for r in self.reports if not r.rejected]


def find_delinquent_loads(profile: Profile, config: SlicerConfig) -> list[int]:
    """Static load pcs that qualify as delinquent, worst first."""
    total = profile.total_l1_misses
    out: list[tuple[int, int]] = []
    for pc, misses in profile.miss_counts.items():
        if misses >= config.dload_miss_threshold or (
                total and misses / total >= config.dload_miss_fraction
                and misses >= 8):
            out.append((pc, misses))
    out.sort(key=lambda kv: -kv[1])
    return [pc for pc, _ in out[:config.max_dloads]]


def select_region(cfg: CFG, profile: Profile, dload_pc: int,
                  config: SlicerConfig,
                  latencies: LatencyConfig = LatencyConfig()
                  ) -> tuple[Loop | None, float]:
    """Region-based prefetching range: grow outward within the budget."""
    loop = cfg.innermost_loop_of_pc(dload_pc)
    if loop is None:
        return None, 0.0
    accumulated = profile.loops[loop.header].d_cycle(latencies)
    chosen = loop
    if config.region_policy == "innermost":
        return chosen, accumulated
    while True:
        parent_header = chosen.parent
        if parent_header is None:
            break
        parent = cfg.loops[parent_header]
        parent_dcycle = profile.loops[parent_header].d_cycle(latencies)
        if (config.region_policy == "budget"
                and accumulated + parent_dcycle > config.dcycle_budget):
            break
        if cfg.loop_contains_call(parent):
            break  # regions never cross function calls (§4.2)
        chosen = parent
        accumulated += parent_dcycle
    return chosen, accumulated


def backward_slice(cfg: CFG, profile: Profile, dload_pc: int,
                   region_pcs: set[int], config: SlicerConfig) -> set[int]:
    """Dynamic backward slice of one d-load, restricted to the region."""
    slice_pcs = {dload_pc}
    worklist = [dload_pc]
    exec_counts = profile.exec_counts
    frac = config.dominant_edge_fraction
    while worklist:
        pc = worklist.pop()
        execs = exec_counts.get(pc, 0)
        if not execs:
            continue
        min_count = max(1, int(execs * frac))
        producer_maps = [profile.reg_edges.get(pc)]
        if config.follow_memory_deps:
            producer_maps.append(profile.mem_edges.get(pc))
        for producers in producer_maps:
            if not producers:
                continue
            for producer_pc, count in producers.items():
                if count < min_count:
                    continue  # cold-path producer: prune (Figure 5)
                if producer_pc not in region_pcs:
                    continue  # outside the prefetching range
                if producer_pc not in slice_pcs:
                    if config.max_slice_size and \
                            len(slice_pcs) >= config.max_slice_size:
                        return slice_pcs
                    slice_pcs.add(producer_pc)
                    worklist.append(producer_pc)
    return slice_pcs


def compute_live_ins(cfg: CFG, slice_pcs: set[int]) -> tuple[int, ...]:
    """Registers read by the slice before any slice instruction writes them.

    The PE extracts in program order, so scanning the static slice in
    ascending pc order is the right approximation of first-use order.
    """
    instrs = cfg.program.instructions
    written: set[int] = set()
    live: set[int] = set()
    for pc in sorted(slice_pcs):
        ins = instrs[pc]
        for r in ins.srcs:
            if r not in written:
                live.add(r)
        if ins.dst >= 0:
            written.add(ins.dst)
    return tuple(sorted(live))


def build_pthreads(cfg: CFG, profile: Profile,
                   config: SlicerConfig | None = None,
                   latencies: LatencyConfig = LatencyConfig()) -> SlicerResult:
    """The full module-③ pipeline: d-loads → regions → slices → table."""
    config = config or SlicerConfig()
    table = PThreadTable()
    reports: list[SliceReport] = []

    for dload_pc in find_delinquent_loads(profile, config):
        misses = profile.miss_counts[dload_pc]
        region, d_cycle = select_region(cfg, profile, dload_pc, config,
                                        latencies)
        if region is None:
            reports.append(SliceReport(dload_pc, misses, -1, 0, 0.0, 0, (),
                                       rejected="not inside any loop"))
            continue
        region_pcs = cfg.loop_pcs(region)
        slice_pcs = backward_slice(cfg, profile, dload_pc, region_pcs, config)
        live_ins = compute_live_ins(cfg, slice_pcs)
        overlap = slice_pcs & table.marked_pcs
        pthread = PThread(dload_pc=dload_pc,
                          slice_pcs=frozenset(slice_pcs),
                          live_ins=live_ins,
                          region_head=cfg.blocks[region.header].start,
                          d_cycle=d_cycle,
                          miss_count=misses)
        table.add(pthread)
        reports.append(SliceReport(
            dload_pc, misses, region.header, region.depth, d_cycle,
            len(slice_pcs), live_ins,
            rejected=""))
        del overlap  # overlapping slices are fine: marking is a union
    return SlicerResult(table, reports)
