"""Control-flow graph construction from SPISA binaries.

This is compiler module ① of the paper (Figure 4): the "CFG drawing tool"
that identifies basic blocks, edges and loop regions directly from the
binary.  Dominators are computed with the iterative algorithm of Cooper,
Harvey & Kennedy; natural loops come from back edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.opcodes import Op
from ..isa.program import Program


@dataclass
class BasicBlock:
    """A maximal straight-line code sequence.

    ``start`` is inclusive, ``end`` exclusive; both are instruction
    addresses.
    """

    index: int
    start: int
    end: int
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return self.end - self.start

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end

    def pcs(self) -> range:
        return range(self.start, self.end)

    def __repr__(self) -> str:  # pragma: no cover
        return f"B{self.index}[{self.start},{self.end})"


@dataclass
class Loop:
    """One natural loop.

    ``header`` is the loop header block index; ``body`` contains block
    indices including the header; ``depth`` is 1 for outermost loops.
    """

    header: int
    body: frozenset[int]
    parent: int | None = None   # header block of the enclosing loop
    depth: int = 1

    def __contains__(self, block: int) -> bool:
        return block in self.body


class CFG:
    """Control-flow graph of one program."""

    def __init__(self, program: Program):
        self.program = program
        self.blocks: list[BasicBlock] = []
        #: instruction address -> block index
        self.block_of_pc: dict[int, int] = {}
        self._build()
        self.idom = self._dominators()
        self.loops = self._natural_loops()
        self._loop_of_block = self._innermost_map()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        instrs = self.program.instructions
        n = len(instrs)
        leaders: set[int] = {0}
        for pc, ins in enumerate(instrs):
            if ins.is_branch:
                if pc + 1 < n:
                    leaders.add(pc + 1)
                if ins.is_direct_branch and 0 <= ins.imm < n:
                    leaders.add(ins.imm)
            elif ins.op == Op.HALT and pc + 1 < n:
                leaders.add(pc + 1)
        starts = sorted(leaders)
        bounds = starts + [n]
        for i, start in enumerate(starts):
            block = BasicBlock(i, start, bounds[i + 1])
            self.blocks.append(block)
            for pc in block.pcs():
                self.block_of_pc[pc] = i

        for block in self.blocks:
            last = instrs[block.end - 1]
            if last.op == Op.HALT:
                continue
            if last.is_branch:
                if last.is_direct_branch:
                    tgt = self.block_of_pc.get(last.imm)
                    if tgt is not None:
                        self._edge(block.index, tgt)
                    if last.is_call and block.end < len(instrs):
                        # Calls return: fall-through edge keeps the
                        # intraprocedural analysis connected.
                        self._edge(block.index, self.block_of_pc[block.end])
                    elif last.is_conditional and block.end < len(instrs):
                        self._edge(block.index, self.block_of_pc[block.end])
                # Indirect jumps (jr/jalr): jr acts as a return — no edge;
                # jalr falls through like a call.
                elif last.is_call and block.end < len(instrs):
                    self._edge(block.index, self.block_of_pc[block.end])
            elif block.end < len(instrs):
                self._edge(block.index, self.block_of_pc[block.end])

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    # ------------------------------------------------------------------
    # Dominators (Cooper-Harvey-Kennedy iterative algorithm)
    # ------------------------------------------------------------------

    def _rpo(self) -> list[int]:
        seen = set()
        order: list[int] = []
        # Iterative post-order DFS from the entry block.
        stack: list[tuple[int, int]] = [(0, 0)]
        seen.add(0)
        while stack:
            node, child = stack[-1]
            succs = self.blocks[node].succs
            if child < len(succs):
                stack[-1] = (node, child + 1)
                nxt = succs[child]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(node)
        order.reverse()
        return order

    def _dominators(self) -> list[int]:
        n = len(self.blocks)
        idom = [-1] * n
        rpo = self._rpo()
        rpo_index = {b: i for i, b in enumerate(rpo)}
        idom[0] = 0

        def intersect(a: int, b: int) -> int:
            while a != b:
                while rpo_index.get(a, -1) > rpo_index.get(b, -1):
                    a = idom[a]
                while rpo_index.get(b, -1) > rpo_index.get(a, -1):
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for b in rpo:
                if b == 0:
                    continue
                new_idom = -1
                for p in self.blocks[b].preds:
                    if idom[p] != -1:
                        new_idom = p if new_idom == -1 else intersect(p, new_idom)
                if new_idom != -1 and idom[b] != new_idom:
                    idom[b] = new_idom
                    changed = True
        return idom

    def dominates(self, a: int, b: int) -> bool:
        """Does block ``a`` dominate block ``b``?  (Unreachable blocks are
        dominated by nothing.)"""
        if self.idom[b] == -1 and b != 0:
            return False
        while True:
            if a == b:
                return True
            if b == 0 or self.idom[b] == -1:
                return False
            nxt = self.idom[b]
            if nxt == b:
                return False
            b = nxt

    # ------------------------------------------------------------------
    # Natural loops
    # ------------------------------------------------------------------

    def _natural_loops(self) -> dict[int, Loop]:
        loops: dict[int, set[int]] = {}
        for block in self.blocks:
            for succ in block.succs:
                if self.dominates(succ, block.index):  # back edge
                    body = loops.setdefault(succ, {succ})
                    # Walk predecessors backwards from the latch.
                    stack = [block.index]
                    while stack:
                        node = stack.pop()
                        if node not in body:
                            body.add(node)
                            stack.extend(self.blocks[node].preds)
        result: dict[int, Loop] = {}
        for header, body in loops.items():
            result[header] = Loop(header, frozenset(body))
        # Nesting: parent is the smallest strictly-enclosing loop.
        for header, loop in result.items():
            best: int | None = None
            for other_header, other in result.items():
                if other_header == header:
                    continue
                if header in other.body and loop.body <= other.body:
                    if best is None or len(other.body) < len(result[best].body):
                        best = other_header
            result[header] = Loop(header, loop.body, parent=best)
        # Depths.
        for header in result:
            depth = 1
            p = result[header].parent
            while p is not None:
                depth += 1
                p = result[p].parent
            result[header] = Loop(result[header].header, result[header].body,
                                  parent=result[header].parent, depth=depth)
        return result

    def _innermost_map(self) -> dict[int, int]:
        """block index -> header of its innermost containing loop."""
        mapping: dict[int, int] = {}
        for header, loop in self.loops.items():
            for b in loop.body:
                cur = mapping.get(b)
                if cur is None or len(loop.body) < len(self.loops[cur].body):
                    mapping[b] = header
        return mapping

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def innermost_loop_of_pc(self, pc: int) -> Loop | None:
        block = self.block_of_pc.get(pc)
        if block is None:
            return None
        header = self._loop_of_block.get(block)
        return self.loops[header] if header is not None else None

    def loop_pcs(self, loop: Loop) -> set[int]:
        """All instruction addresses inside a loop body."""
        pcs: set[int] = set()
        for b in loop.body:
            pcs.update(self.blocks[b].pcs())
        return pcs

    def loop_contains_call(self, loop: Loop) -> bool:
        instrs = self.program.instructions
        return any(instrs[pc].is_call for pc in self.loop_pcs(loop))

    def summary(self) -> dict:
        return {"blocks": len(self.blocks),
                "edges": sum(len(b.succs) for b in self.blocks),
                "loops": len(self.loops),
                "max_loop_depth": max((l.depth for l in self.loops.values()),
                                      default=0)}
