"""Attaching tool — compiler module ④ of the paper (Figure 4).

Attaches the constructed p-thread table to the binary, producing the SPEAR
executable.  The text segment is untouched: the annotation is a separate
section the hardware loads into its PD/PT tables at program start.
"""

from __future__ import annotations

from ..core.pthread import PThreadTable
from ..core.spear_binary import SpearBinary
from ..isa.program import Program


def attach(program: Program, table: PThreadTable) -> SpearBinary:
    """Produce the SPEAR binary for ``program``.

    Raises ``ValueError`` when any annotation points outside the text
    segment or marks a non-load as a d-load — the attacher is the last
    line of defence before the "hardware" consumes the annotations.
    """
    n = len(program)
    instrs = program.instructions
    for pthread in table:
        if not 0 <= pthread.dload_pc < n:
            raise ValueError(f"d-load pc {pthread.dload_pc} out of range")
        if not instrs[pthread.dload_pc].is_load:
            raise ValueError(
                f"pc {pthread.dload_pc} is not a load instruction "
                f"({instrs[pthread.dload_pc].render()})")
        for pc in pthread.slice_pcs:
            if not 0 <= pc < n:
                raise ValueError(f"slice pc {pc} out of range")
    return SpearBinary(program, table)
