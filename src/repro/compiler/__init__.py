"""The SPEAR post-compiler: CFG, profiler, hybrid slicer, attacher."""

from .attacher import attach
from .cfg import CFG, BasicBlock, Loop
from .driver import CompileReport, compile_spear
from .profiler import LoopProfile, Profile, profile_trace
from .slicer import (SliceReport, SlicerConfig, SlicerResult, backward_slice,
                     build_pthreads, compute_live_ins, find_delinquent_loads,
                     select_region)
from .triggers import (TriggerReport, analyze_triggers,
                       render_trigger_analysis, slice_critical_path)

__all__ = ["attach", "CFG", "BasicBlock", "Loop", "CompileReport",
           "compile_spear", "LoopProfile", "Profile", "profile_trace",
           "SliceReport", "SlicerConfig", "SlicerResult", "backward_slice",
           "build_pthreads", "compute_live_ins", "find_delinquent_loads",
           "select_region", "TriggerReport", "analyze_triggers",
           "render_trigger_analysis", "slice_critical_path"]
