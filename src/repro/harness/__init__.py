"""Evaluation harness: runner, experiments (one per paper table/figure),
persistent artifact cache, fault-tolerant parallel engine, run journal,
fault injection and the phase-timing bench."""

from .bench import render_report, run_bench
from .diskcache import (CACHE_DIR_ENV, SCHEMA_VERSION, DiskCache,
                        default_cache_dir, parse_bytes)
from .experiments import (EVAL_WORKLOADS, FIG9_WORKLOADS, FUZZ_WORKLOADS,
                          IRREGULAR_WORKLOADS, LatencySweepResult,
                          MissReductionResult, PolicyAblationResult,
                          REGULAR_WORKLOADS, SpeedupResult, TimelinessResult,
                          ablate_policy, ablate_policy_cells, build_report,
                          build_suite_report, diff_table, figure6, figure7,
                          figure8, figure9, motivation, per_thread_table,
                          policy_ablation_workloads, report_trace_spec,
                          suite_diff, suite_table, table1, table2, table3,
                          timeline_diff, timeliness)
from .faults import (FAULTS_ENV, FaultClause, FaultSpecError, InjectedCrash,
                     InjectedFault, active_faults, parse_faults,
                     render_faults)
from .journal import (RunJournal, TornJournalWarning, default_journal_dir,
                      list_journals, read_jsonl)
from .parallel import (Cell, CellFailure, ExecutionPolicy, FatalCellError,
                       PayloadRef, PayloadResolutionError, RunReport,
                       build_artifacts, cells_for, compute_cell,
                       default_jobs, default_workloads, report_cells,
                       run_cells)
from .runner import (SWEEP_BACKEND, ExperimentRunner, TracedRun, TraceSpec,
                     WorkloadArtifacts)
from .tables import TextTable, arithmetic_mean, geometric_mean

__all__ = ["EVAL_WORKLOADS", "FIG9_WORKLOADS", "IRREGULAR_WORKLOADS",
           "REGULAR_WORKLOADS", "motivation", "LatencySweepResult",
           "MissReductionResult", "SpeedupResult", "figure6", "figure7",
           "figure8", "figure9", "table1", "table2", "table3",
           "timeliness", "TimelinessResult", "timeline_diff", "diff_table",
           "FUZZ_WORKLOADS", "PolicyAblationResult", "ablate_policy",
           "ablate_policy_cells", "policy_ablation_workloads",
           "per_thread_table", "build_report", "build_suite_report",
           "report_trace_spec", "suite_diff", "suite_table",
           "ExperimentRunner", "SWEEP_BACKEND", "TracedRun", "TraceSpec",
           "WorkloadArtifacts", "TextTable",
           "arithmetic_mean", "geometric_mean",
           "CACHE_DIR_ENV", "SCHEMA_VERSION", "DiskCache",
           "default_cache_dir", "parse_bytes", "Cell", "build_artifacts",
           "cells_for", "compute_cell",
           "default_jobs", "default_workloads", "report_cells", "run_cells",
           "PayloadRef", "PayloadResolutionError",
           "render_report", "run_bench",
           "CellFailure", "ExecutionPolicy", "FatalCellError", "RunReport",
           "RunJournal", "TornJournalWarning", "default_journal_dir",
           "list_journals", "read_jsonl",
           "FAULTS_ENV", "FaultClause", "FaultSpecError", "InjectedCrash",
           "InjectedFault", "active_faults", "parse_faults",
           "render_faults"]
