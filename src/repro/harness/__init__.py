"""Evaluation harness: runner, experiments (one per paper table/figure)."""

from .experiments import (EVAL_WORKLOADS, FIG9_WORKLOADS, IRREGULAR_WORKLOADS,
                          LatencySweepResult, MissReductionResult,
                          REGULAR_WORKLOADS, SpeedupResult, figure6, figure7,
                          figure8, figure9, motivation, table1, table2,
                          table3)
from .runner import ExperimentRunner, WorkloadArtifacts
from .tables import TextTable, arithmetic_mean, geometric_mean

__all__ = ["EVAL_WORKLOADS", "FIG9_WORKLOADS", "IRREGULAR_WORKLOADS",
           "REGULAR_WORKLOADS", "motivation", "LatencySweepResult",
           "MissReductionResult", "SpeedupResult", "figure6", "figure7",
           "figure8", "figure9", "table1", "table2", "table3",
           "ExperimentRunner", "WorkloadArtifacts", "TextTable",
           "arithmetic_mean", "geometric_mean"]
