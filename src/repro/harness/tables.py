"""Plain-text table rendering for experiment reports.

Every experiment renders the same rows/series the paper reports, as an
aligned text table plus CSV — no plotting dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TextTable:
    """A simple aligned text table with a title and optional footer lines."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    footers: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has "
                f"{len(self.columns)} columns")
        self.rows.append(list(values))

    def add_footer(self, line: str) -> None:
        self.footers.append(line)

    @staticmethod
    def _fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    def render(self) -> str:
        cells = [[self._fmt(v) for v in row] for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.footers:
            lines.append(sep)
            lines.extend(self.footers)
        return "\n".join(lines)

    def to_csv(self) -> str:
        out = [",".join(self.columns)]
        for row in self.rows:
            out.append(",".join(self._fmt(v) for v in row))
        return "\n".join(out)


def arithmetic_mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def geometric_mean(values: list[float]) -> float:
    if not values:
        return 0.0
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values))
