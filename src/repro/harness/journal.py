"""Append-only JSONL run journal: what happened to every cell of a run.

Each ``repro figure``/``table``/``compare`` invocation journals the
outcome of every cell attempt (ok / retried / timed-out / failed) to
``<cache-dir>/journal/<run-key>.jsonl``.  The run key is a content hash
over the experiment name and the cells' result keys — the same
derivation :class:`~repro.harness.diskcache.DiskCache` uses — so the
same invocation always appends to the same file, and an interrupted run
can be resumed with ``--resume``: cells the journal records as ``ok``
are restored from the disk cache and only the rest are recomputed.

The journal is crash-safe by construction: records are single lines
appended with a flush per record, and a torn final line (killed writer)
is simply skipped on read.
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path

from .diskcache import SCHEMA_VERSION, content_key, default_cache_dir


class TornJournalWarning(RuntimeWarning):
    """A journal line could not be decoded (crash mid-append) and was
    skipped.  Only ever data loss for the record being written when the
    writer died — every earlier record is intact by construction."""


def read_jsonl(path: Path, *, label: str | None = None) -> list[dict]:
    """Every intact JSONL record of ``path``, oldest first.

    The crash-safety contract of every journal in the system: records
    are appended line-at-a-time with a flush, so the only malformed
    line a crash can produce is a truncated final one.  Such a line is
    skipped with a :class:`TornJournalWarning` instead of raising, so a
    reader never fails over the torn tail of a killed writer.
    """
    if not path.is_file():
        return []
    out = []
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            warnings.warn(
                f"{label or path.name}: skipping torn journal line "
                f"{lineno} ({len(line)} bytes)", TornJournalWarning,
                stacklevel=2)
            continue
        if not isinstance(record, dict):
            warnings.warn(
                f"{label or path.name}: skipping non-record journal line "
                f"{lineno}", TornJournalWarning, stacklevel=2)
            continue
        out.append(record)
    return out


def default_journal_dir() -> Path:
    """Journals live next to the cache: ``<cache-dir>/journal``."""
    return default_cache_dir() / "journal"


def cell_key(runner, cell) -> str:
    """Stable identity of one cell's result — exactly the key the
    runner's cache stores it under, so a journaled ``ok`` always names
    the entry ``--resume`` verifies against (honoring a cache built with
    a non-default ``schema_version``).  A traced cell (``cell.trace``
    set) keys under the ``"traces"`` kind with the trace parameters
    folded in — the journal stores only this content-hash reference to
    the spilled payload, never the payload itself.  Without a cache,
    falls back to the same derivation at the global
    :data:`SCHEMA_VERSION`."""
    spec = getattr(cell, "trace", None)
    backend = getattr(cell, "backend", None)
    fuzz = getattr(cell, "fuzz", None)
    policy = getattr(cell, "policy", None)
    if fuzz is not None:
        kind = "fuzz"
        payload = runner.fuzz_payload(cell.workload, fuzz)
    elif isinstance(cell.latencies, tuple):
        # A batched-sweep cell's identity is the ordered set of its
        # per-point result keys — resume trusts it only when every
        # point's cache entry still exists.
        kind = "results"
        payload = {"sweep": [
            runner.result_payload(
                cell.workload, runner.normalize_config(cell.config, lat),
                backend, policy)
            for lat in cell.latencies]}
    else:
        config = runner.normalize_config(cell.config, cell.latencies)
        if spec is not None:
            kind = "traces"
            payload = runner.traced_payload(cell.workload, config, spec,
                                            backend, policy)
        else:
            kind = "results"
            payload = runner.result_payload(cell.workload, config, backend,
                                            policy)
    if getattr(runner, "cache", None) is not None:
        return runner.cache.key_for(kind, payload)
    return content_key({"schema": SCHEMA_VERSION, "kind": kind, **payload})


def run_key(experiment: str, cells, runner) -> str:
    """Content hash identifying one experiment invocation: experiment
    name plus the identity of every cell in its matrix."""
    return content_key({"kind": "journal", "experiment": experiment,
                        "cells": [cell_key(runner, c) for c in cells]})


class RunJournal:
    """One run's append-only JSONL event log."""

    def __init__(self, path: str | Path, experiment: str | None = None):
        self.path = Path(path)
        self.experiment = experiment

    @classmethod
    def for_run(cls, experiment: str, cells, runner,
                root: str | Path | None = None) -> "RunJournal":
        root = Path(root) if root is not None else default_journal_dir()
        return cls(root / f"{run_key(experiment, cells, runner)}.jsonl",
                   experiment)

    @property
    def run_id(self) -> str:
        return self.path.stem

    # -- writing -----------------------------------------------------------

    def _append(self, record: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()

    def record_start(self, total: int) -> None:
        self._append({"event": "start", "experiment": self.experiment,
                      "cells": total, "time": time.time()})

    def record_cell(self, *, index: int, key: str, workload: str,
                    config: str, status: str, attempts: int,
                    elapsed: float = 0.0, kind: str | None = None,
                    error: str | None = None, ref: str | None = None,
                    payload_bytes: int | None = None) -> None:
        """``ref``/``payload_bytes`` describe a spilled heavy payload
        (traced cells): ``ref`` is its ``kind/content-key`` address in
        the disk cache — the journal never inlines the payload."""
        rec = {"event": "cell", "index": index, "key": key,
               "workload": workload, "config": config, "status": status,
               "attempts": attempts, "elapsed": round(elapsed, 6)}
        if kind is not None:
            rec["kind"] = kind
        if error is not None:
            rec["error"] = error[:500]
        if ref is not None:
            rec["ref"] = ref
        if payload_bytes is not None:
            rec["payload_bytes"] = payload_bytes
        self._append(rec)

    def record_end(self, summary: dict) -> None:
        self._append({"event": "end", "time": time.time(),
                      "report": summary})

    # -- reading -----------------------------------------------------------

    def entries(self) -> list[dict]:
        """Every intact record, oldest first.  A torn final line (crash
        mid-append) is skipped with a :class:`TornJournalWarning`, never
        an error — ``--resume`` and ``journal show`` keep working on a
        journal whose writer died."""
        return read_jsonl(self.path, label=f"journal {self.run_id[:16]}")

    def completed_keys(self) -> set[str]:
        """Cell keys with at least one journaled ``ok`` — the set
        ``--resume`` may skip (after verifying the cache still holds
        each result)."""
        return {rec["key"] for rec in self.entries()
                if rec.get("event") == "cell" and rec.get("status") == "ok"
                and "key" in rec}


def list_journals(root: str | Path | None = None) -> list[RunJournal]:
    """All journals under ``root``, most recently touched first."""
    root = Path(root) if root is not None else default_journal_dir()
    if not root.is_dir():
        return []
    paths = sorted(root.glob("*.jsonl"), key=lambda p: p.stat().st_mtime,
                   reverse=True)
    return [RunJournal(p) for p in paths]
