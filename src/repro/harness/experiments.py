"""Regeneration of every table and figure in the paper's evaluation.

Each ``ExperimentX`` function takes an :class:`ExperimentRunner`, runs the
required (workload x configuration) matrix, and returns a result object
whose ``table()`` renders the same rows/series the paper reports.

Paper reference values are embedded so reports show paper-vs-measured side
by side (EXPERIMENTS.md is generated from these).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.configs import (BASELINE, BASELINE_NEXTLINE, BASELINE_STRIDE,
                            PAPER_CONFIGS, SPEAR_128, SPEAR_256,
                            SPEAR_SF_128, SPEAR_SF_256, MachineConfig)
from ..memory.hierarchy import FIG9_LATENCIES, LatencyConfig
from ..observe.compare import (PE_EVENT_KINDS, SuiteDiff, TimelineDiff,
                               diff_timelines)
from ..observe.render import render_report, render_suite_report
from ..workloads.base import all_workload_names, get_workload
from .runner import SWEEP_BACKEND, ExperimentRunner, TracedRun, TraceSpec
from .tables import TextTable, arithmetic_mean, geometric_mean

#: The 15 evaluated benchmarks, in Table 1 order (ll4 is excluded: it only
#: backs the Figure 1 walk-through).
EVAL_WORKLOADS = ["pointer", "update", "nbh", "tr", "matrix", "field",
                  "dm", "ray", "fft", "gzip", "mcf", "vpr", "bzip2",
                  "equake", "art"]

#: Paper Table 3: per-benchmark SPEAR-256/SPEAR-128 ratio, branch hit
#: ratio and instructions-per-branch.
PAPER_TABLE3 = {
    "pointer": (1.00, 0.9788, 7.08),
    "update": (0.94, 0.8865, 8.72),
    "nbh": (1.06, 0.9958, 15.21),
    "tr": (0.99, 0.8865, 22.55),
    "matrix": (1.45, 0.9942, 11.75),
    "field": (1.00, 0.9870, 39.30),
    "dm": (1.01, 0.8907, 4.92),
    "ray": (1.00, 0.9560, 7.21),
    "fft": (1.00, 0.9893, 10.32),
    "gzip": (1.00, 0.8986, 6.08),
    "mcf": (1.05, 0.9098, 3.45),
    "vpr": (1.00, 0.9005, 5.92),
    "bzip2": (1.04, 0.9425, 6.24),
    "equake": (1.15, 0.9018, 6.18),
    "art": (1.21, 0.9504, 6.43),
}

#: Paper headline numbers (mean speedup over baseline, in percent).
PAPER_MEANS = {"SPEAR-128": 12.7, "SPEAR-256": 20.1,
               "SPEAR.sf-128": 18.9, "SPEAR.sf-256": 26.3}

#: Figure 9's six benchmarks and the paper's end-to-end degradations.
FIG9_WORKLOADS = ["pointer", "update", "nbh", "dm", "mcf", "vpr"]
PAPER_FIG9_DEGRADATION = {"baseline": 48.5, "SPEAR-128": 39.7,
                          "SPEAR-256": 38.4}


# ---------------------------------------------------------------------------
# Table 1 — benchmark inventory
# ---------------------------------------------------------------------------

def table1(runner: ExperimentRunner,
           workloads: list[str] | None = None) -> TextTable:
    """Benchmark suite + simulated instruction counts (scaled analogs)."""
    t = TextTable("Table 1 — benchmark suite (scaled analogs)",
                  ["suite", "name", "text size", "trace instrs", "loads",
                   "IPB", "d-loads found"])
    for name in workloads or EVAL_WORKLOADS:
        art = runner.artifacts(name)
        trace = art.eval_trace
        t.add_row(art.workload.suite, name, len(art.binary.program),
                  len(trace), trace.count_loads(),
                  trace.instructions_per_branch(),
                  len(art.binary.table))
    return t


# ---------------------------------------------------------------------------
# Table 2 — simulation parameters
# ---------------------------------------------------------------------------

def table2(config: MachineConfig = SPEAR_128) -> TextTable:
    """Machine parameter dump, mirroring the paper's Table 2."""
    t = TextTable("Table 2 — simulation parameters", ["parameter", "value"])
    for key, value in config.describe().items():
        t.add_row(key, value)
    return t


# ---------------------------------------------------------------------------
# Figure 6 — normalized IPC, baseline vs SPEAR-128 vs SPEAR-256
# ---------------------------------------------------------------------------

@dataclass
class SpeedupResult:
    """Normalized-IPC comparison across configurations."""

    configs: list[MachineConfig]
    rows: list[dict] = field(default_factory=list)

    @property
    def mean_speedups(self) -> dict[str, float]:
        out = {}
        for cfg in self.configs[1:]:
            out[cfg.name] = arithmetic_mean(
                [r[cfg.name] for r in self.rows])
        return out

    @property
    def geomean_speedups(self) -> dict[str, float]:
        out = {}
        for cfg in self.configs[1:]:
            out[cfg.name] = geometric_mean([r[cfg.name] for r in self.rows])
        return out

    def best(self, config_name: str) -> tuple[str, float]:
        row = max(self.rows, key=lambda r: r[config_name])
        return row["workload"], row[config_name]

    def table(self, title: str) -> TextTable:
        cols = ["workload", "IPC base"] + [
            f"{c.name} (norm)" for c in self.configs[1:]]
        t = TextTable(title, cols)
        for r in self.rows:
            t.add_row(r["workload"], r["ipc_base"],
                      *[r[c.name] for c in self.configs[1:]])
        for cfg in self.configs[1:]:
            mean = self.mean_speedups[cfg.name]
            paper = PAPER_MEANS.get(cfg.name)
            note = f" (paper: +{paper}%)" if paper is not None else ""
            t.add_footer(f"mean {cfg.name}: {(mean - 1) * 100:+.1f}%{note}  "
                         f"geomean {(self.geomean_speedups[cfg.name] - 1) * 100:+.1f}%")
        return t


def figure6(runner: ExperimentRunner,
            workloads: list[str] | None = None) -> SpeedupResult:
    """Baseline vs SPEAR-128 vs SPEAR-256 (paper: +12.7% / +20.1% mean,
    mcf best at +87.6%, tr/field/fft/gzip between -1% and -6.2%)."""
    configs = [BASELINE, SPEAR_128, SPEAR_256]
    return _speedups(runner, configs, workloads or EVAL_WORKLOADS)


def figure7(runner: ExperimentRunner,
            workloads: list[str] | None = None) -> SpeedupResult:
    """Figure 6 plus the dedicated-FU models (paper: +18.9% / +26.3%)."""
    configs = [BASELINE, SPEAR_128, SPEAR_256, SPEAR_SF_128, SPEAR_SF_256]
    return _speedups(runner, configs, workloads or EVAL_WORKLOADS)


def _speedups(runner: ExperimentRunner, configs: list[MachineConfig],
              workloads: list[str]) -> SpeedupResult:
    result = SpeedupResult(configs)
    for name in workloads:
        base = runner.run(name, configs[0])
        row = {"workload": name, "ipc_base": base.ipc}
        for cfg in configs[1:]:
            row[cfg.name] = runner.run(name, cfg).ipc / base.ipc
        result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Table 3 — effect of a longer IFQ
# ---------------------------------------------------------------------------

def table3(runner: ExperimentRunner,
           workloads: list[str] | None = None) -> TextTable:
    """SPEAR-256/SPEAR-128 ratio, branch hit ratio, IPB — vs the paper."""
    t = TextTable(
        "Table 3 — performance enhancement with a longer IFQ",
        ["workload", "256/128", "paper", "branch hit", "paper",
         "IPB", "paper"])
    ratios = []
    for name in workloads or EVAL_WORKLOADS:
        r128 = runner.run(name, SPEAR_128)
        r256 = runner.run(name, SPEAR_256)
        ratio = r256.ipc / r128.ipc
        ratios.append(ratio)
        bhr = r128.stats.branch_hit_ratio
        ipb = runner.artifacts(name).eval_trace.instructions_per_branch()
        p_ratio, p_bhr, p_ipb = PAPER_TABLE3.get(name, ("-", "-", "-"))
        t.add_row(name, ratio, p_ratio, bhr, p_bhr, ipb, p_ipb)
    t.add_footer(f"mean 256/128 ratio: {arithmetic_mean(ratios):.3f}")
    return t


# ---------------------------------------------------------------------------
# Figure 8 — cache miss reduction
# ---------------------------------------------------------------------------

@dataclass
class MissReductionResult:
    rows: list[dict] = field(default_factory=list)

    def mean_reduction(self, config_name: str) -> float:
        return arithmetic_mean([r[config_name] for r in self.rows])

    def best(self, config_name: str) -> tuple[str, float]:
        row = max(self.rows, key=lambda r: r[config_name])
        return row["workload"], row[config_name]

    def table(self) -> TextTable:
        t = TextTable(
            "Figure 8 — L1-D miss reduction (main thread)",
            ["workload", "baseline misses", "SPEAR-128", "reduction %",
             "SPEAR-256", "reduction %"])
        for r in self.rows:
            t.add_row(r["workload"], r["base"], r["m128"],
                      r["SPEAR-128"] * 100, r["m256"], r["SPEAR-256"] * 100)
        t.add_footer(
            f"mean reduction SPEAR-128: "
            f"{self.mean_reduction('SPEAR-128') * 100:.1f}%   "
            f"SPEAR-256: {self.mean_reduction('SPEAR-256') * 100:.1f}% "
            f"(paper: 19.7% for SPEAR-256, best art -38.8%)")
        return t


def figure8(runner: ExperimentRunner,
            workloads: list[str] | None = None) -> MissReductionResult:
    """Main-thread L1 miss reduction under SPEAR (paper: avg 19.7% with
    SPEAR-256; best art at 38.8%)."""
    result = MissReductionResult()
    for name in workloads or EVAL_WORKLOADS:
        base = runner.run(name, BASELINE).main_l1_misses
        m128 = runner.run(name, SPEAR_128).main_l1_misses
        m256 = runner.run(name, SPEAR_256).main_l1_misses
        result.rows.append({
            "workload": name, "base": base, "m128": m128, "m256": m256,
            "SPEAR-128": (base - m128) / base if base else 0.0,
            "SPEAR-256": (base - m256) / base if base else 0.0,
        })
    return result


# ---------------------------------------------------------------------------
# Figure 9 — long latency tolerance
# ---------------------------------------------------------------------------

@dataclass
class LatencySweepResult:
    latencies: list[LatencyConfig]
    configs: list[MachineConfig]
    #: ipc[workload][config_name] -> list of IPCs, one per latency point
    ipc: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def degradation(self, config_name: str) -> float:
        """Mean IPC loss (%) at the longest latency vs the shortest."""
        losses = []
        for series in self.ipc.values():
            vals = series[config_name]
            losses.append((vals[0] - vals[-1]) / vals[0] * 100)
        return arithmetic_mean(losses)

    def table(self) -> TextTable:
        cols = ["workload", "config"] + [
            f"mem={l.memory}/L2={l.l2}" for l in self.latencies]
        t = TextTable("Figure 9 — IPC under varying memory latency", cols)
        for name, series in self.ipc.items():
            for cfg in self.configs:
                t.add_row(name, cfg.name, *series[cfg.name])
        for cfg in self.configs:
            paper = PAPER_FIG9_DEGRADATION.get(cfg.name)
            note = f" (paper: {paper}%)" if paper is not None else ""
            t.add_footer(f"{cfg.name}: loses {self.degradation(cfg.name):.1f}% "
                         f"at longest latency{note}")
        return t


def figure9(runner: ExperimentRunner,
            workloads: list[str] | None = None,
            latencies: list[LatencyConfig] | None = None) -> LatencySweepResult:
    """Latency sweep over the paper's six benchmarks (paper: baseline loses
    48.5%, SPEAR-128 39.7%, SPEAR-256 38.4% at the longest latency).

    On a runner whose backend is ``"batched"``, each (workload, config)
    row of the sweep goes through one
    :meth:`~repro.harness.runner.ExperimentRunner.run_sweep` batch —
    functional trace, flag walk and warmup paid once per row instead of
    once per latency point — with byte-identical IPC values.
    """
    latencies = latencies or FIG9_LATENCIES
    configs = [BASELINE, SPEAR_128, SPEAR_256]
    batched = runner.backend == SWEEP_BACKEND
    result = LatencySweepResult(latencies, configs)
    for name in workloads or FIG9_WORKLOADS:
        series: dict[str, list[float]] = {c.name: [] for c in configs}
        if batched:
            for cfg in configs:
                series[cfg.name] = [r.ipc for r in
                                    runner.run_sweep(name, cfg, latencies)]
        else:
            for lat in latencies:
                for cfg in configs:
                    series[cfg.name].append(runner.run(name, cfg, lat).ipc)
        result.ipc[name] = series
    return result


# ---------------------------------------------------------------------------
# Motivation experiment — traditional prefetching vs pre-execution
# ---------------------------------------------------------------------------

#: Benchmarks with regular (prefetcher-friendly) vs irregular access.
REGULAR_WORKLOADS = ["art", "matrix", "equake"]
IRREGULAR_WORKLOADS = ["pointer", "update", "mcf"]


def motivation(runner: ExperimentRunner,
               workloads: list[str] | None = None) -> SpeedupResult:
    """The paper's opening claim, measured: traditional prefetchers
    (next-line, stride) help regular streams but fail on irregular
    patterns, while pre-execution helps both."""
    configs = [BASELINE, BASELINE_NEXTLINE, BASELINE_STRIDE, SPEAR_128]
    return _speedups(runner, configs,
                     workloads or REGULAR_WORKLOADS + IRREGULAR_WORKLOADS)


# ---------------------------------------------------------------------------
# Fill timeliness — where the miss reductions actually come from
# ---------------------------------------------------------------------------

@dataclass
class TimelinessResult:
    """Per-(workload, config) timeliness of speculative fills.

    Complements Figure 8: the same miss-count reduction can come from
    all-timely fills (latency fully hidden) or mostly-late ones (partially
    hidden), and the paper's aggregate metrics cannot tell them apart."""

    rows: list[dict] = field(default_factory=list)

    def table(self) -> TextTable:
        t = TextTable(
            "Speculative fill timeliness (p-thread and prefetcher)",
            ["workload", "config", "source", "fills", "timely", "late",
             "unused", "redundant", "timely_pct"])
        for r in self.rows:
            t.add_row(r["workload"], r["config"], r["source"], r["fills"],
                      r["timely"], r["late"], r["unused"], r["redundant"],
                      r["timely_pct"])
        return t


# ---------------------------------------------------------------------------
# Timeline comparison — where in a run the speedup lives
# ---------------------------------------------------------------------------

def report_trace_spec(interval: int = 1000) -> TraceSpec:
    """The one trace spec every report path shares.

    Only the pre-execution event kinds are captured, unbounded:
    attribution must see the *whole* run (a ring buffer keeping the
    newest N would drop early extract events and misclassify early wins
    as variance), and the PE kinds are a small fraction of a full
    stream.  Centralized so a parallel pre-run (``run_cells`` over
    :func:`~repro.harness.parallel.report_cells`) seeds exactly the memo
    entries the diff below will look up.
    """
    return TraceSpec(interval=interval, capacity=None,
                     kinds=tuple(sorted(PE_EVENT_KINDS)))


def timeline_diff(runner: ExperimentRunner, workload: str,
                  baseline: MachineConfig = BASELINE,
                  model: MachineConfig = SPEAR_128, *,
                  interval: int = 1000) -> TimelineDiff:
    """Trace ``workload`` under both configs and diff the timelines.

    Both traced runs go through :meth:`ExperimentRunner.run_traced`, so
    they are memoized and disk-cached under the existing ``traces`` kind;
    a report re-render after a warm run simulates nothing.
    """
    spec = report_trace_spec(interval)
    base = runner.run_traced(workload, baseline, spec=spec)
    mod = runner.run_traced(workload, model, spec=spec)
    return diff_timelines(base.result.timeline, mod.result.timeline,
                          mod.events, workload=workload,
                          base_name=baseline.name, model_name=model.name)


def diff_table(diff: TimelineDiff) -> TextTable:
    """The per-interval attribution rows as an aligned text table."""
    t = TextTable(
        f"{diff.workload}: {diff.base_name} vs {diff.model_name} — "
        f"per-{diff.interval}-cycle cycles-saved attribution",
        ["cycle", "committed", "ipc base", "ipc model", "saved cum",
         "saved Δ", "extracts", "fills", "pt instrs", "attribution"])
    for r in diff.rows:
        t.add_row(r["cycle"], r["committed"], round(r["ipc_base"], 3),
                  round(r["ipc_model"], 3), round(r["cycles_saved"], 1),
                  round(r["saved_delta"], 1), r["extracts"], r["fills"],
                  r["pt_completed"], r["attribution"])
    s = diff.attribution_summary()
    t.add_footer(
        f"total cycles saved {diff.total_cycles_saved:.0f} "
        f"(speedup {diff.speedup:.3f}x); intervals: "
        f"{s['pre-execution']} pre-execution, {s['variance']} variance, "
        f"{s['regression']} regression, {s['neutral']} neutral")
    t.add_footer(f"{diff.attributed_fraction * 100:.1f}% of the win in "
                 f"pre-execution intervals")
    return t


def per_thread_table(traced: TracedRun, workload: str = "") -> TextTable:
    """The per-thread interval series of one traced run as a table."""
    tl = traced.result.timeline
    name = workload or traced.result.workload
    t = TextTable(
        f"{name} / {traced.result.config_name} — per-thread series "
        f"(interval {tl['interval']} cycles)",
        ["cycle", "thread", "completed", "ipc", "issued", "issue share",
         "l1 misses", "miss rate"])
    for thread in tl.get("per_thread", ()):
        for s in thread["samples"]:
            t.add_row(s["cycle"], thread["name"], s["completed"],
                      round(s["ipc"], 3), s["issued"],
                      round(s["issue_share"], 3), s["l1_misses"],
                      round(s["l1_miss_rate"], 3))
    return t


def build_report(runner: ExperimentRunner, workload: str,
                 baseline: MachineConfig = BASELINE,
                 model: MachineConfig = SPEAR_128, *,
                 interval: int = 1000) -> str:
    """The complete ``repro report`` markdown document for one workload."""
    spec = report_trace_spec(interval)
    base = runner.run_traced(workload, baseline, spec=spec)
    mod = runner.run_traced(workload, model, spec=spec)
    diff = diff_timelines(base.result.timeline, mod.result.timeline,
                          mod.events, workload=workload,
                          base_name=baseline.name, model_name=model.name)
    return render_report(diff, mod.result.timeline,
                         model_fills=mod.result.memory["fills"],
                         base_ipc=base.result.ipc, model_ipc=mod.result.ipc)


def suite_diff(runner: ExperimentRunner,
               workloads: list[str] | None = None,
               baseline: MachineConfig = BASELINE,
               model: MachineConfig = SPEAR_128, *,
               interval: int = 1000) -> SuiteDiff:
    """Diff baseline vs model for every workload and aggregate.

    Whole-run IPCs come from the traced results themselves, and the
    returned aggregate is validated — its geomean provably equals the
    product of the per-workload cycle ratios raised to ``1/n``.
    """
    spec = report_trace_spec(interval)
    names = list(workloads or EVAL_WORKLOADS)
    diffs, base_ipcs, model_ipcs = [], [], []
    for name in names:
        base = runner.run_traced(name, baseline, spec=spec)
        mod = runner.run_traced(name, model, spec=spec)
        diffs.append(diff_timelines(
            base.result.timeline, mod.result.timeline, mod.events,
            workload=name, base_name=baseline.name, model_name=model.name))
        base_ipcs.append(base.result.ipc)
        model_ipcs.append(mod.result.ipc)
    return SuiteDiff.from_diffs(diffs, base_ipcs, model_ipcs).validate()


def suite_table(suite: SuiteDiff) -> TextTable:
    """The suite aggregate as an aligned text table with geomean footer."""
    t = TextTable(
        f"suite: {suite.base_name} vs {suite.model_name} — per-workload "
        f"speedups ({len(suite.rows)} workloads)",
        ["workload", "base cycles", "model cycles", "base ipc",
         "model ipc", "speedup", "saved", "PE intervals", "attributed"])
    for r in suite.rows:
        t.add_row(r["workload"], r["base_cycles"], r["model_cycles"],
                  round(r["base_ipc"], 3), round(r["model_ipc"], 3),
                  f"{r['speedup']:.3f}x", r["cycles_saved"],
                  f"{r['pe_intervals']}/{r['intervals']}",
                  f"{r['attributed_fraction'] * 100:.1f}%")
    t.add_footer(f"geomean speedup {suite.geomean_speedup:.3f}x")
    return t


def build_suite_report(runner: ExperimentRunner,
                       workloads: list[str] | None = None,
                       baseline: MachineConfig = BASELINE,
                       model: MachineConfig = SPEAR_128, *,
                       interval: int = 1000) -> tuple[str, SuiteDiff]:
    """The ``repro report --suite`` markdown document plus its aggregate
    (callers render the SVG grid from the aggregate)."""
    suite = suite_diff(runner, workloads, baseline, model,
                       interval=interval)
    return render_suite_report(suite), suite


def timeliness(runner: ExperimentRunner,
               workloads: list[str] | None = None,
               configs: list[MachineConfig] | None = None
               ) -> TimelinessResult:
    """Classify every speculative fill of each (workload, config) cell.

    Reads the ``fills`` section the hierarchy snapshot attaches to every
    result, so cells already simulated for the figures are reused as-is."""
    result = TimelinessResult()
    for name in workloads or EVAL_WORKLOADS:
        for cfg in configs or [SPEAR_128, SPEAR_256]:
            fills = runner.run(name, cfg).memory["fills"]
            for source in ("pthread", "prefetch"):
                f = fills[source]
                if not f["attempts"]:
                    continue
                result.rows.append({
                    "workload": name, "config": cfg.name, "source": source,
                    "fills": f["fills"], "timely": f["timely"],
                    "late": f["late"], "unused": f["unused"],
                    "redundant": f["redundant"],
                    "timely_pct": (f["timely"] / f["fills"] * 100
                                   if f["fills"] else 0.0),
                })
    return result


# ---------------------------------------------------------------------------
# Policy ablation — fixed vs adaptive trigger policies
# ---------------------------------------------------------------------------

#: Fuzz-campaign finds promoted as workloads (PR 8) — included in the
#: policy ablation so the feedback controller is exercised on kernels the
#: hand-built suite does not cover.
FUZZ_WORKLOADS = ["fzgain", "fzmix", "fzdrag", "fzsrl"]


def policy_ablation_workloads() -> list[str]:
    """The policy ablation's default rows: the 15 evaluated benchmarks
    plus the promoted ``fz*`` fuzz finds."""
    return list(EVAL_WORKLOADS) + list(FUZZ_WORKLOADS)


@dataclass
class PolicyAblationResult:
    """Fixed vs adaptive speedups plus the timeliness movement behind
    them (``d_*`` columns are adaptive-epoch fill counts minus fixed)."""

    policies: list[str]
    config: MachineConfig
    rows: list[dict] = field(default_factory=list)

    def geomean(self, policy: str) -> float:
        return geometric_mean([r[policy] for r in self.rows])

    def table(self) -> TextTable:
        t = TextTable(
            f"Policy ablation — {self.config.name} trigger policy "
            f"(speedup vs baseline)",
            ["workload"] + list(self.policies)
            + ["epoch point", "d-timely", "d-late", "d-unused"])
        for r in self.rows:
            t.add_row(r["workload"], *[r[p] for p in self.policies],
                      r["epoch_point"], r["d_timely"], r["d_late"],
                      r["d_unused"])
        for p in self.policies:
            t.add_footer(f"geomean {p}: {self.geomean(p):.3f}")
        moved = sum(1 for r in self.rows if "(hold)" not in r["epoch_point"])
        t.add_footer(f"epoch controller moved off the paper's point on "
                     f"{moved}/{len(self.rows)} workloads; balanced "
                     f"counters hold the fixed behaviour on the rest")
        return t


def ablate_policy(runner: ExperimentRunner,
                  workloads: list[str] | None = None,
                  policies: tuple[str, ...] = ("fixed", "adaptive-epoch",
                                               "adaptive-phase"),
                  config: MachineConfig = SPEAR_128,
                  baseline: MachineConfig = BASELINE
                  ) -> PolicyAblationResult:
    """The headline policy experiment: per-workload speedup under each
    trigger policy, with the fill-timeliness delta that explains the
    adaptive-epoch movement.

    Adaptive-epoch can never fall below fixed by construction (epoch 0
    *is* the fixed run and moves are adopted only when IPC does not
    drop), so its geomean ≥ fixed geomean is an invariant the benchmark
    layer asserts, not a tuning outcome.
    """
    result = PolicyAblationResult(list(policies), config)
    for name in workloads or policy_ablation_workloads():
        base = runner.run(name, baseline)
        row = {"workload": name}
        by_policy = {}
        for p in policies:
            res = runner.run(name, config, policy=p)
            by_policy[p] = res
            row[p] = res.ipc / base.ipc
        fixed_fills = by_policy["fixed"].memory["fills"]["pthread"] \
            if "fixed" in by_policy else None
        epoch = by_policy.get("adaptive-epoch")
        if epoch is not None and fixed_fills is not None:
            pol = epoch.policy or {}
            lvl = pol.get("final_level")
            frac = pol.get("final_fraction")
            chain = pol.get("final_chaining")
            moved = "->" in pol.get("trajectory", "")
            row["epoch_point"] = (
                f"L{lvl} {frac:g}/{'chain' if chain else 'no-chain'}"
                if moved else f"L{lvl} (hold)")
            ef = epoch.memory["fills"]["pthread"]
            row["d_timely"] = ef["timely"] - fixed_fills["timely"]
            row["d_late"] = ef["late"] - fixed_fills["late"]
            row["d_unused"] = ef["unused"] - fixed_fills["unused"]
        else:
            row["epoch_point"] = "-"
            row["d_timely"] = row["d_late"] = row["d_unused"] = 0
        result.rows.append(row)
    return result


def ablate_policy_cells(workloads: list[str] | None = None,
                        policies: tuple[str, ...] = ("fixed",
                                                     "adaptive-epoch",
                                                     "adaptive-phase"),
                        config: MachineConfig = SPEAR_128,
                        baseline: MachineConfig = BASELINE,
                        backend: str | None = None) -> list:
    """The parallel-engine cell matrix behind :func:`ablate_policy`:
    one baseline cell per workload plus one cell per (workload, policy).
    Running these through ``run_cells`` warms exactly the memo entries
    the table assembly reads."""
    from .parallel import Cell
    names = workloads or policy_ablation_workloads()
    cells = []
    for n in names:
        cells.append(Cell(n, baseline, backend=backend))
        for p in policies:
            cells.append(Cell(n, config, backend=backend, policy=p))
    return cells
