"""Phase-timed benchmark: seeds and extends the ``BENCH_*.json`` trajectory.

``repro bench`` (or ``scripts/bench.py``) measures the three phases of the
evaluation pipeline — compile, trace, simulate — plus the end-to-end
figure-6 matrix twice through a dedicated cache: once cold (every cell
built and simulated) and once warm (everything read through the disk
cache).  The warm pass asserts, via the runner's build/simulation
counters, that no compile/trace/simulate work was repaid, and both passes
hash the rendered table to prove byte-identical output.

Since schema 3 the report also carries a ``backends`` section: every
registered timing kernel timed on the stall-heavy workloads at two
operating points — the paper's own SPEAR cell and a deep-stall
kilocycle-memory regime — with a byte-identity assertion against the
reference kernel, plus one batched figure-9 latency row timed end to end
(compile + trace once, all points through one pass) against the same
points produced by standalone reference runs.
"""

from __future__ import annotations

import gc
import hashlib
import json
import pickle
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter

from ..compiler.driver import compile_spear
from ..core.configs import BASELINE, SPEAR_128
from ..functional.simulator import FunctionalSimulator
from ..functional.trace import Trace
from ..memory.hierarchy import FIG9_LATENCIES, LatencyConfig, MemoryHierarchy
from ..observe import (IntervalSampler, RingBufferSink, render_suite_svg,
                       render_timeline_svg)
from ..pipeline.kernel import DEFAULT_BACKEND, KERNELS, make_simulator
from ..pipeline.smt import TimingSimulator
from ..pipeline.sweep import BatchedSweepSimulator
from ..workloads.base import get_workload
from .diskcache import DiskCache, default_cache_dir
from .experiments import (EVAL_WORKLOADS, build_suite_report, figure6,
                          report_trace_spec)
from .parallel import cells_for, default_jobs, report_cells, run_cells
from .runner import ExperimentRunner

#: Workload subset timed by the suite-report section (the full 15-way
#: suite is the figures' job; the bench only needs a stable wall-time
#: trend plus the byte-identity assertion).
SUITE_BENCH_WORKLOADS = 3

#: Workload used for the single-cell phase timings.
SINGLE_CELL_WORKLOAD = "pointer"

#: Stall-heavy workloads the backend comparison times (where the
#: fast-forward kernel's idle-skip has the most cycles to reclaim).
BACKEND_BENCH_WORKLOADS = ("pointer", "mcf")

#: Latency points of the bench's figure-9-style sweep row.
SWEEP_BENCH_POINTS = 3

#: Deep-stall operating point for the backend comparison: the baseline
#: (no-SPEAR) machine against kilocycle memory.  The paper's 2004-era
#: 120-cycle point keeps the pipeline busy enough that idle-skip only
#: buys ~1.1x there (recorded per workload as ``paper_point``); modern
#: cores see effective DRAM latencies of many hundreds of cycles, and in
#: that regime the reference kernel burns most of its wall-clock ticking
#: provably idle cycles one by one.
STRESS_LATENCY = LatencyConfig(l1=1, l2=20, memory=1000)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _figure6_pass(cache: DiskCache, scale: float, jobs: int,
                  workloads: list[str]) -> tuple[float, str, ExperimentRunner]:
    runner = ExperimentRunner(instruction_scale=scale, cache=cache)
    t0 = perf_counter()
    if jobs > 1:
        run_cells(runner, cells_for("figure6", workloads), jobs)
    table = figure6(runner, workloads).table("Figure 6").render()
    return perf_counter() - t0, _sha256(table), runner


def _suite_report_pass(cache: DiskCache, scale: float, jobs: int,
                       workloads: list[str]
                       ) -> tuple[float, str, ExperimentRunner]:
    """One `repro report --suite` equivalent: parallel traced cells
    through the engine, then the markdown + SVG grid render."""
    runner = ExperimentRunner(instruction_scale=scale, cache=cache)
    spec = report_trace_spec()
    t0 = perf_counter()
    run_cells(runner, report_cells(workloads, [BASELINE, SPEAR_128], spec),
              jobs)
    md, suite = build_suite_report(runner, workloads)
    svg = render_suite_svg(suite)
    return perf_counter() - t0, _sha256(md + svg), runner


def _prepare_cell(name: str, scale: float):
    """Compile and functionally trace one workload, uncached.

    Returns ``(binary, measured, warmup, compile_s, trace_s)`` — the raw
    inputs every simulate timing below feeds to a kernel directly.
    """
    workload = get_workload(name)
    train = workload.program("train")
    evalp = workload.program("eval")

    t0 = perf_counter()
    binary, _, _ = compile_spear(
        train, evalp,
        max_profile_instructions=int(workload.profile_instructions * scale))
    compile_s = perf_counter() - t0

    warm_budget = int(workload.warmup_instructions * scale)
    eval_budget = int(workload.eval_instructions * scale)
    t0 = perf_counter()
    full = FunctionalSimulator(evalp).run(warm_budget + eval_budget,
                                          trace=True)
    trace_s = perf_counter() - t0

    warm_budget = min(warm_budget, max(0, len(full.entries) - eval_budget))
    measured = Trace(full.entries[warm_budget:],
                     program_name=full.program_name, halted=full.halted)
    return binary, measured, full.entries[:warm_budget], compile_s, trace_s


def _timed_run(sim) -> tuple[float, object]:
    """One gc-paused timing sample (pyperf discipline) of ``sim.run()``."""
    gc.collect()
    gc.disable()
    try:
        t0 = perf_counter()
        result = sim.run()
        return perf_counter() - t0, result
    finally:
        gc.enable()


def _single_cell_phases(scale: float) -> dict:
    """Time compile / trace / simulate separately, uncached."""
    binary, measured, warmup, compile_s, trace_s = _prepare_cell(
        SINGLE_CELL_WORKLOAD, scale)
    # Best of five with the collector paused around each sample (pyperf
    # discipline): a single run is too noisy on a loaded box for the
    # throughput ratio this report exists to track, and gen-0 GC pauses
    # land randomly inside the cycle loop.
    simulate_s = None
    for _ in range(5):
        memory = MemoryHierarchy(latencies=SPEAR_128.latencies)
        sim = TimingSimulator(measured, SPEAR_128, binary.table, memory,
                              warmup=warmup)
        elapsed, result = _timed_run(sim)
        if simulate_s is None or elapsed < simulate_s:
            simulate_s = elapsed

    # Same cell with the observability layer attached, to keep the cost
    # of tracing itself on the record (the untraced number above is what
    # the tracer-is-None fast path must protect).  Since PR 4 the sampler
    # also collects the per-thread series, so this number covers the full
    # `repro report` capture cost.
    traced_s = None
    traced_result = None
    for _ in range(5):
        memory = MemoryHierarchy(latencies=SPEAR_128.latencies)
        sim = TimingSimulator(measured, SPEAR_128, binary.table, memory,
                              warmup=warmup,
                              tracer=RingBufferSink(65536),
                              sampler=IntervalSampler(1000))
        elapsed, traced_result = _timed_run(sim)
        if traced_s is None or elapsed < traced_s:
            traced_s = elapsed

    # Rendering is the new post-processing phase `repro report` adds on
    # top of a traced run; keep its cost visible (it must stay trivial
    # next to simulation).
    t0 = perf_counter()
    render_timeline_svg(traced_result.timeline, SINGLE_CELL_WORKLOAD)
    render_s = perf_counter() - t0

    return {
        "workload": SINGLE_CELL_WORKLOAD,
        "config": SPEAR_128.name,
        "backend": TimingSimulator.backend,
        "compile_s": compile_s,
        "trace_s": trace_s,
        "simulate_s": simulate_s,
        "simulate_traced_s": traced_s,
        "render_svg_s": render_s,
        "tracer_on_overhead": traced_s / simulate_s if simulate_s else 0.0,
        "trace_instructions": len(measured),
        "cycles": result.stats.cycles,
        "instr_per_s": len(measured) / simulate_s if simulate_s else 0.0,
        "cycles_per_s": result.stats.cycles / simulate_s if simulate_s else 0.0,
    }


def _time_backends(cell, config, latencies) -> dict:
    """Best-of-3 every registered kernel on one (cell, config, latency)
    point, asserting byte identity against the reference kernel (pickle
    equality — the equivalence gate, re-checked on the bench's own
    cells), so the recorded speedups are pure wall-clock."""
    binary, measured, warmup = cell
    reference_blob = None
    reference_s = None
    per_backend = {}
    cfg = config if latencies == config.latencies \
        else config.with_latencies(latencies)
    for backend in KERNELS:
        best = None
        result = None
        for _ in range(3):
            memory = MemoryHierarchy(latencies=latencies)
            sim = make_simulator(backend, measured, cfg, binary.table,
                                 memory, warmup=warmup)
            elapsed, result = _timed_run(sim)
            if best is None or elapsed < best:
                best = elapsed
        blob = pickle.dumps(result, pickle.HIGHEST_PROTOCOL)
        if backend == DEFAULT_BACKEND:
            reference_blob = blob
            reference_s = best
        per_backend[backend] = {
            "backend": backend,
            "config": cfg.name,
            "memory_latency": latencies.memory,
            "simulate_s": best,
            "instr_per_s": len(measured) / best if best else 0.0,
            "cycles": result.stats.cycles,
            "identical_to_reference": blob == reference_blob,
            "speedup_vs_reference": (reference_s / best
                                     if best else float("inf")),
        }
    return per_backend


def _backend_comparison(scale: float) -> dict:
    """Time every registered kernel on the stall-heavy workloads, plus one
    batched latency sweep against independent reference runs.

    Each workload is timed at two operating points: the paper's own cell
    (SPEAR @ 120-cycle memory, ``paper_point``) and the deep-stall
    :data:`STRESS_LATENCY` regime (``workloads``, the headline numbers)
    where idle-skip has room to matter.
    """
    section = {
        "stress_latency": {"l1": STRESS_LATENCY.l1, "l2": STRESS_LATENCY.l2,
                           "memory": STRESS_LATENCY.memory},
        "workloads": {},
        "paper_point": {},
    }
    for name in BACKEND_BENCH_WORKLOADS:
        binary, measured, warmup, _, _ = _prepare_cell(name, scale)
        cell = (binary, measured, warmup)
        section["workloads"][name] = _time_backends(
            cell, BASELINE, STRESS_LATENCY)
        section["paper_point"][name] = _time_backends(
            cell, SPEAR_128, SPEAR_128.latencies)

    # One figure-9 row (the baseline config's three longest-latency
    # points), end to end: the batched backend compiles and functionally
    # traces the workload once and runs every point through that single
    # pass, versus three standalone reference runs each repaying
    # compile + trace + warmup — exactly what three uncached
    # single-point `repro run` invocations cost.
    lats = list(FIG9_LATENCIES[-SWEEP_BENCH_POINTS:])
    t0 = perf_counter()
    binary, measured, warmup, _, _ = _prepare_cell(SINGLE_CELL_WORKLOAD,
                                                   scale)
    batched = BatchedSweepSimulator(measured, BASELINE, lats, binary.table,
                                    warmup=warmup).run()
    batched_s = perf_counter() - t0
    t0 = perf_counter()
    independent = []
    for lat in lats:
        binary, measured, warmup, _, _ = _prepare_cell(SINGLE_CELL_WORKLOAD,
                                                       scale)
        cfg = BASELINE if lat == BASELINE.latencies \
            else BASELINE.with_latencies(lat)
        memory = MemoryHierarchy(latencies=lat)
        independent.append(TimingSimulator(measured, cfg, binary.table,
                                           memory, warmup=warmup).run())
    independent_s = perf_counter() - t0
    section["sweep"] = {
        "workload": SINGLE_CELL_WORKLOAD,
        "config": BASELINE.name,
        "backend": BatchedSweepSimulator.backend,
        "points": len(lats),
        "memory_latencies": [lat.memory for lat in lats],
        "batched_s": batched_s,
        "independent_reference_s": independent_s,
        "wall_ratio": batched_s / independent_s if independent_s else 0.0,
        "identical_results": all(
            pickle.dumps(a, pickle.HIGHEST_PROTOCOL)
            == pickle.dumps(b, pickle.HIGHEST_PROTOCOL)
            for a, b in zip(batched, independent)),
        "ipc": [r.ipc for r in batched],
    }
    return section


def run_bench(*, scale: float = 1.0, jobs: int | None = None,
              cache_dir: str | Path | None = None,
              workloads: list[str] | None = None,
              output: str | Path | None = None,
              quick: bool = False,
              reference: dict | None = None) -> dict:
    """Run the benchmark; returns (and optionally writes) the report dict.

    ``quick`` runs a <60 s smoke: the instruction scale is capped at 0.05
    and the matrix passes cover a single workload.  ``reference`` (e.g.
    the same measurements taken on an older commit) is embedded verbatim
    under the ``"reference"`` key, with derived speedup ratios when it
    carries a comparable ``single_cell`` section.
    """
    workloads = workloads or EVAL_WORKLOADS
    if quick:
        scale = min(scale, 0.05)
        workloads = workloads[:1]
    jobs = default_jobs() if jobs is None else jobs
    cache_root = (Path(cache_dir) if cache_dir is not None
                  else default_cache_dir() / "bench")
    cache = DiskCache(cache_root)
    cache.clear()   # the cold pass must really be cold

    # Throughput first, while the box is coolest: the 40 s cold matrix
    # below depresses a subsequent timing measurement enough to drown the
    # few-percent tracer-off budget this report exists to police.  A
    # second sample after the matrix widens the window; the best draw of
    # the two estimates the noise floor on a contended box.
    single_cell = _single_cell_phases(scale)

    cold_s, cold_sha, cold_runner = _figure6_pass(cache, scale, jobs,
                                                  workloads)
    warm_s, warm_sha, warm_runner = _figure6_pass(cache, scale, jobs,
                                                  workloads)

    suite_workloads = workloads[:SUITE_BENCH_WORKLOADS]
    s_cold_s, s_cold_sha, s_cold_runner = _suite_report_pass(
        cache, scale, jobs, suite_workloads)
    s_warm_s, s_warm_sha, s_warm_runner = _suite_report_pass(
        cache, scale, jobs, suite_workloads)

    backends = _backend_comparison(scale)

    late = _single_cell_phases(scale)
    if late["simulate_s"] < single_cell["simulate_s"]:
        single_cell.update(
            simulate_s=late["simulate_s"], instr_per_s=late["instr_per_s"],
            cycles_per_s=late["cycles_per_s"])
    if late["simulate_traced_s"] < single_cell["simulate_traced_s"]:
        single_cell["simulate_traced_s"] = late["simulate_traced_s"]
    single_cell["tracer_on_overhead"] = (
        single_cell["simulate_traced_s"] / single_cell["simulate_s"]
        if single_cell["simulate_s"] else 0.0)

    report = {
        "bench": "pr6",
        "schema": 3,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        # Usable CPUs (affinity/cgroup aware), not the box's core count.
        "cpus": default_jobs(),
        "scale": scale,
        "jobs": jobs,
        "workloads": workloads,
        "figure6": {
            "backend": cold_runner.backend,
            "cells": len(cells_for("figure6", workloads)),
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": cold_s / warm_s if warm_s else float("inf"),
            "identical_output": cold_sha == warm_sha,
            "table_sha256": cold_sha,
            "cold_builds": cold_runner.builds,
            "cold_simulations": cold_runner.simulations,
            "warm_builds": warm_runner.builds,
            "warm_simulations": warm_runner.simulations,
        },
        "suite_report": {
            "backend": s_cold_runner.backend,
            "workloads": suite_workloads,
            "cells": len(suite_workloads) * 2,
            "cold_s": s_cold_s,
            "warm_s": s_warm_s,
            "speedup": s_cold_s / s_warm_s if s_warm_s else float("inf"),
            "identical_output": s_cold_sha == s_warm_sha,
            "report_sha256": s_cold_sha,
            "cold_simulations": s_cold_runner.simulations,
            "warm_simulations": s_warm_runner.simulations,
        },
        "single_cell": single_cell,
        "backends": backends,
        "cache": cache.stats(),
    }
    if reference is not None:
        report["reference"] = reference
        ref_sc = reference.get("single_cell")
        if ref_sc and ref_sc.get("cycles_per_s"):
            sc = report["single_cell"]
            speedup = sc["cycles_per_s"] / ref_sc["cycles_per_s"]
            report["vs_reference"] = {
                "simulate_speedup": speedup,
                # The untraced (tracer-is-None) path vs the reference
                # commit: >= 0.95 keeps the 5% observability budget.
                "tracer_off_within_5pct": speedup >= 0.95,
            }
    if output is not None:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    return report


def render_report(report: dict) -> str:
    f6 = report["figure6"]
    sc = report["single_cell"]
    lines = [
        f"repro bench — scale {report['scale']}, jobs {report['jobs']}, "
        f"{f6['cells']} figure-6 cells",
        f"  figure 6 cold: {f6['cold_s']:8.2f} s  "
        f"({f6['cold_builds']} builds, {f6['cold_simulations']} simulations)",
        f"  figure 6 warm: {f6['warm_s']:8.2f} s  "
        f"({f6['warm_builds']} builds, {f6['warm_simulations']} simulations)",
        f"  warm speedup:  {f6['speedup']:8.1f}x  "
        f"byte-identical output: {f6['identical_output']}",
        f"  single cell ({sc['workload']} × {sc['config']}): "
        f"compile {sc['compile_s']:.3f} s, trace {sc['trace_s']:.3f} s, "
        f"simulate {sc['simulate_s']:.3f} s",
        f"  simulation throughput: {sc['instr_per_s']:,.0f} instr/s "
        f"({sc['cycles_per_s']:,.0f} cycles/s)",
    ]
    sr = report.get("suite_report")
    if sr:
        lines.append(
            f"  suite report ({len(sr['workloads'])} workloads, "
            f"{sr['cells']} traced cells): cold {sr['cold_s']:.2f} s, "
            f"warm {sr['warm_s']:.2f} s  byte-identical output: "
            f"{sr['identical_output']}")
    if sc.get("simulate_traced_s") is not None:
        lines.append(
            f"  with tracer+sampler attached: {sc['simulate_traced_s']:.3f} s "
            f"({sc['tracer_on_overhead']:.2f}x the untraced run)")
    if sc.get("render_svg_s") is not None:
        lines.append(f"  timeline SVG render: {sc['render_svg_s']:.3f} s")
    bk = report.get("backends")
    if bk:
        for label, key in (("stall-stress", "workloads"),
                           ("paper-point", "paper_point")):
            for name, per_backend in bk.get(key, {}).items():
                for b in per_backend.values():
                    lines.append(
                        f"  backend {b['backend']:13s} on {name} "
                        f"[{label}, {b['config']} mem={b['memory_latency']}]: "
                        f"{b['instr_per_s']:,.0f} instr/s "
                        f"({b['speedup_vs_reference']:.2f}x reference, "
                        f"identical: {b['identical_to_reference']})")
        sw = bk.get("sweep")
        if sw:
            lines.append(
                f"  batched sweep ({sw['workload']}, {sw['points']} latency "
                f"points, end-to-end): {sw['batched_s']:.2f} s vs "
                f"{sw['independent_reference_s']:.2f} s independent "
                f"({sw['wall_ratio']:.2f}x, identical: "
                f"{sw['identical_results']})")
    vs = report.get("vs_reference")
    if vs:
        line = (f"  vs reference:  {vs['simulate_speedup']:8.2f}x "
                f"simulation throughput")
        if "tracer_off_within_5pct" in vs:
            line += (" (tracer-off within 5%: "
                     f"{vs['tracer_off_within_5pct']})")
        lines.append(line)
    return "\n".join(lines)
