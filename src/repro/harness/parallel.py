"""Parallel experiment engine: fan the evaluation matrix out over processes.

Every figure/table is a (workload × machine-config [× latency]) matrix of
independent cells — the same embarrassing parallelism Prophet exploits for
speculative threads.  This module enumerates those cells as picklable
:class:`Cell` descriptors (workload *name* plus frozen configs; artifacts
are rebuilt or cache-loaded inside each worker), computes them on a
``ProcessPoolExecutor``, and merges the results back into the parent
:class:`~repro.harness.runner.ExperimentRunner`'s memo **in submission
order**, so figures and tables render byte-identically regardless of job
count.  ``jobs=1`` bypasses the pool entirely and is the exact serial path.

Workers share the parent's :class:`~repro.harness.diskcache.DiskCache`
(when one is attached), so artifact compilation happens at most once per
workload across the whole fleet — and not at all on a warm cache.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..compiler.slicer import SlicerConfig
from ..core.configs import (BASELINE, BASELINE_NEXTLINE, BASELINE_STRIDE,
                            PAPER_CONFIGS, SPEAR_128, SPEAR_256, SPEAR_SF_128,
                            SPEAR_SF_256, MachineConfig)
from ..memory.hierarchy import FIG9_LATENCIES, LatencyConfig
from .diskcache import DiskCache
from .runner import ExperimentRunner


@dataclass(frozen=True)
class Cell:
    """One picklable unit of work: simulate ``workload`` under ``config``."""

    workload: str
    config: MachineConfig
    latencies: LatencyConfig | None = None


#: Config columns of each experiment's matrix (workload rows come from the
#: experiment's default list or the user's subset).
EXPERIMENT_CONFIGS: dict[str, list[MachineConfig]] = {
    "figure6": [BASELINE, SPEAR_128, SPEAR_256],
    "figure7": [BASELINE, SPEAR_128, SPEAR_256, SPEAR_SF_128, SPEAR_SF_256],
    "figure8": [BASELINE, SPEAR_128, SPEAR_256],
    "figure9": [BASELINE, SPEAR_128, SPEAR_256],
    "table3": [SPEAR_128, SPEAR_256],
    "motivation": [BASELINE, BASELINE_NEXTLINE, BASELINE_STRIDE, SPEAR_128],
    "compare": list(PAPER_CONFIGS.values()),
}


def cells_for(experiment: str,
              workloads: list[str] | None = None) -> list[Cell]:
    """Enumerate the cell matrix of one experiment, workload-major (so
    chunked submission keeps one workload's artifacts in one worker)."""
    from .experiments import EVAL_WORKLOADS, FIG9_WORKLOADS  # no cycle: experiments→runner only
    configs = EXPERIMENT_CONFIGS[experiment]
    if experiment == "figure9":
        names = workloads or FIG9_WORKLOADS
        return [Cell(n, c, lat)
                for n in names for lat in FIG9_LATENCIES for c in configs]
    if experiment == "motivation":
        from .experiments import IRREGULAR_WORKLOADS, REGULAR_WORKLOADS
        names = workloads or REGULAR_WORKLOADS + IRREGULAR_WORKLOADS
    else:
        names = workloads or EVAL_WORKLOADS
    return [Cell(n, c) for n in names for c in configs]


def default_jobs() -> int:
    return os.cpu_count() or 1


# -- worker side -----------------------------------------------------------

_WORKER_RUNNER: ExperimentRunner | None = None


def _init_worker(slicer_config: SlicerConfig, scale: float,
                 cache_dir: str | None) -> None:
    global _WORKER_RUNNER
    cache = DiskCache(cache_dir) if cache_dir is not None else None
    _WORKER_RUNNER = ExperimentRunner(slicer_config=slicer_config,
                                      instruction_scale=scale, cache=cache)


def _run_cell(cell: Cell):
    return _WORKER_RUNNER.run(cell.workload, cell.config, cell.latencies)


def _build_artifact(name: str):
    return _WORKER_RUNNER.artifacts(name)


# -- parent side -----------------------------------------------------------

def run_cells(runner: ExperimentRunner, cells: list[Cell],
              jobs: int | None = None) -> ExperimentRunner:
    """Compute ``cells`` with ``jobs`` workers, seeding ``runner``'s memo.

    Deterministic: cells are deduplicated preserving order and results are
    merged in that same order, and each cell's simulation is itself
    deterministic — so downstream rendering is byte-identical for any job
    count.  ``jobs=1`` (or a single cell) runs in-process on the exact
    serial path.
    """
    jobs = default_jobs() if jobs is None else jobs
    unique = [c for c in dict.fromkeys(cells)
              if (c.workload,
                  runner.normalize_config(c.config, c.latencies))
              not in runner._results]
    if not unique:
        return runner
    if jobs <= 1 or len(unique) == 1:
        for cell in unique:
            runner.run(cell.workload, cell.config, cell.latencies)
        return runner
    workers = min(jobs, len(unique))
    # Chunking keeps consecutive (same-workload) cells in one worker so its
    # in-memory artifact memo is reused even without a disk cache.
    chunksize = max(1, len(unique) // (workers * 4))
    with _pool(runner, workers) as pool:
        results = list(pool.map(_run_cell, unique, chunksize=chunksize))
    for cell, result in zip(unique, results):
        runner.seed_result(cell.workload, cell.config, cell.latencies, result)
    return runner


def build_artifacts(runner: ExperimentRunner, names: list[str],
                    jobs: int | None = None) -> ExperimentRunner:
    """Build several workloads' artifacts in parallel (table 1/3 prep)."""
    jobs = default_jobs() if jobs is None else jobs
    missing = [n for n in dict.fromkeys(names) if n not in runner._artifacts]
    if not missing:
        return runner
    if jobs <= 1 or len(missing) == 1:
        for name in missing:
            runner.artifacts(name)
        return runner
    with _pool(runner, min(jobs, len(missing))) as pool:
        arts = list(pool.map(_build_artifact, missing))
    for name, art in zip(missing, arts):
        runner._artifacts[name] = art
    return runner


def _pool(runner: ExperimentRunner, workers: int) -> ProcessPoolExecutor:
    cache_dir = str(runner.cache.root) if runner.cache is not None else None
    return ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker,
        initargs=(runner.slicer_config, runner.instruction_scale, cache_dir))
