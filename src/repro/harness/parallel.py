"""Fault-tolerant parallel experiment engine.

Every figure/table is a (workload × machine-config [× latency]) matrix of
independent cells — the same embarrassing parallelism Prophet exploits for
speculative threads, and the same fault model: a mis-speculated (crashed,
hung, failing) cell is squashed and re-executed alone, never at the cost
of the rest of the run.  This module enumerates those cells as picklable
:class:`Cell` descriptors, computes them on a ``ProcessPoolExecutor`` via
per-future submission, and merges the results back into the parent
:class:`~repro.harness.runner.ExperimentRunner`'s memo **in submission
order**, so figures and tables render byte-identically regardless of job
count.  ``jobs=1`` bypasses the pool entirely and is the exact serial
path (same retry/keep-going semantics, no per-cell timeout preemption).

Fault tolerance, governed by :class:`ExecutionPolicy`:

- a cell attempt that raises is retried with exponential backoff up to
  ``retries`` extra attempts, then recorded as a :class:`CellFailure`;
- a cell attempt running longer than ``cell_timeout`` seconds is
  abandoned (the pool is torn down to reclaim the stuck worker) and
  retried — the clock starts when the attempt is observed executing,
  so time queued behind a full worker fleet never counts against it;
- a dead worker (``BrokenProcessPool``) costs only the in-flight cells:
  the pool is rebuilt and outstanding cells resubmitted, charging the
  rebuild budget rather than any cell's retry budget, and degrading to
  in-process serial execution after ``max_pool_rebuilds`` rebuilds;
- with ``fail_fast`` a terminal failure raises :class:`FatalCellError`;
  otherwise (keep-going, the default) failures are collected on the
  returned :class:`RunReport` and every other cell still completes.

Attach a :class:`~repro.harness.journal.RunJournal` and every attempt is
journaled; pass ``resume=True`` and journaled-ok cells are restored from
the disk cache instead of recomputed.  Deterministic fault injection for
all of these paths lives in :mod:`repro.harness.faults`.

Workers share the parent's :class:`~repro.harness.diskcache.DiskCache`
(when one is attached), so artifact compilation happens at most once per
workload across the whole fleet — and not at all on a warm cache.
"""

from __future__ import annotations

import contextlib
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, \
    wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..compiler.slicer import SlicerConfig
from ..core.configs import (BASELINE, BASELINE_NEXTLINE, BASELINE_STRIDE,
                            PAPER_CONFIGS, SPEAR_128, SPEAR_256, SPEAR_SF_128,
                            SPEAR_SF_256, MachineConfig)
from ..memory.hierarchy import FIG9_LATENCIES, LatencyConfig
from . import faults
from .diskcache import DiskCache
from .journal import RunJournal, cell_key
from .runner import SWEEP_BACKEND, ExperimentRunner, TracedRun, TraceSpec


@dataclass(frozen=True)
class Cell:
    """One picklable unit of work: simulate ``workload`` under ``config``.

    With ``trace`` set the cell is a *traced* run: the worker attaches a
    ring-buffer tracer and interval sampler per the spec, and the result
    is a :class:`~repro.harness.runner.TracedRun` instead of a plain
    ``PipelineResult``.  ``backend`` picks the timing kernel (``None``
    defers to the executing runner's default).

    A *tuple* of latencies makes the cell a batched sweep: the worker
    runs every point through one
    :meth:`~repro.harness.runner.ExperimentRunner.run_sweep` pass and
    the result is the list of per-point ``PipelineResult``s, merged into
    the parent memo one latency at a time.

    With ``fuzz`` set the cell is a differential-fuzzing evaluation: the
    worker rebuilds the generated workload from its ``fuzz:`` name, runs
    :meth:`~repro.harness.runner.ExperimentRunner.run_fuzz` under the
    given check spec, and the result is one small picklable
    :class:`~repro.fuzz.differential.FuzzVerdict` (``config`` is unused
    — the check spec names the configs it compares).
    """

    workload: str
    config: MachineConfig
    latencies: LatencyConfig | tuple[LatencyConfig, ...] | None = None
    trace: TraceSpec | None = None
    backend: str | None = None
    fuzz: object | None = None
    #: trigger policy name (``None`` defers to the executing runner's
    #: default; see :data:`~repro.policy.POLICIES`)
    policy: str | None = None

    @property
    def is_sweep(self) -> bool:
        return isinstance(self.latencies, tuple)


@dataclass(frozen=True)
class PayloadRef:
    """Content-hash reference to a heavy payload spilled to the cache.

    Traced runs are orders of magnitude heavier than ``PipelineResult``s
    (they carry the retained event stream), so workers never ship them
    over the result pipe: the worker writes the payload through its
    cache view and returns this reference; the parent resolves it with
    :meth:`~repro.harness.diskcache.DiskCache.get_by_key`.  ``size`` is
    the on-disk byte count, journaled for observability.
    """

    kind: str
    key: str
    size: int | None = None

    @property
    def address(self) -> str:
        return f"{self.kind}/{self.key}"


class PayloadResolutionError(RuntimeError):
    """A spilled payload reference could not be resolved from the cache
    (evicted or corrupted between the worker's write and the parent's
    read).  Treated as a retryable cell failure — re-running the cell
    rewrites the entry."""


#: Config columns of each experiment's matrix (workload rows come from the
#: experiment's default list or the user's subset).
EXPERIMENT_CONFIGS: dict[str, list[MachineConfig]] = {
    "figure6": [BASELINE, SPEAR_128, SPEAR_256],
    "figure7": [BASELINE, SPEAR_128, SPEAR_256, SPEAR_SF_128, SPEAR_SF_256],
    "figure8": [BASELINE, SPEAR_128, SPEAR_256],
    "figure9": [BASELINE, SPEAR_128, SPEAR_256],
    "table3": [SPEAR_128, SPEAR_256],
    "motivation": [BASELINE, BASELINE_NEXTLINE, BASELINE_STRIDE, SPEAR_128],
    "compare": list(PAPER_CONFIGS.values()),
}


def default_workloads(experiment: str) -> list[str]:
    """The workload rows an experiment uses when none are requested."""
    from .experiments import (EVAL_WORKLOADS, FIG9_WORKLOADS,
                              IRREGULAR_WORKLOADS, REGULAR_WORKLOADS)
    if experiment == "figure9":
        return list(FIG9_WORKLOADS)
    if experiment == "motivation":
        return REGULAR_WORKLOADS + IRREGULAR_WORKLOADS
    return list(EVAL_WORKLOADS)


def cells_for(experiment: str,
              workloads: list[str] | None = None,
              backend: str | None = None,
              policy: str | None = None) -> list[Cell]:
    """Enumerate the cell matrix of one experiment, workload-major (so
    chunked submission keeps one workload's artifacts in one worker)."""
    configs = EXPERIMENT_CONFIGS[experiment]
    names = workloads or default_workloads(experiment)
    if experiment == "figure9":
        if backend == SWEEP_BACKEND:
            # One batched-sweep cell per matrix row: the worker pays the
            # trace/flag/warmup fixed costs once for all latency points.
            return [Cell(n, c, tuple(FIG9_LATENCIES), backend=backend,
                         policy=policy)
                    for n in names for c in configs]
        return [Cell(n, c, lat, backend=backend, policy=policy)
                for n in names for lat in FIG9_LATENCIES for c in configs]
    return [Cell(n, c, backend=backend, policy=policy)
            for n in names for c in configs]


def report_cells(workloads: list[str], configs: list[MachineConfig],
                 spec: TraceSpec, backend: str | None = None,
                 policy: str | None = None) -> list[Cell]:
    """Enumerate the traced-cell matrix of a (suite) report: every
    workload under every config, all captured under one trace spec."""
    return [Cell(n, c, trace=spec, backend=backend, policy=policy)
            for n in workloads for c in configs]


def default_jobs() -> int:
    """Usable worker count: CPUs this process may actually run on (the
    affinity mask / cgroup quota), not the machine's total core count."""
    count = getattr(os, "process_cpu_count", None)
    if count is not None:             # Python >= 3.13
        return count() or 1
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


# -- policy / outcome types -------------------------------------------------

@dataclass(frozen=True)
class ExecutionPolicy:
    """Knobs governing the fault-tolerant cell executor."""

    #: seconds one attempt may run before being abandoned (pool mode only;
    #: the in-process serial path cannot preempt a running cell)
    cell_timeout: float | None = None
    #: extra attempts after the first, per cell
    retries: int = 2
    #: base of the exponential retry backoff, in seconds
    backoff: float = 0.25
    #: abort the whole run on the first terminal failure
    fail_fast: bool = False
    #: pool rebuilds tolerated before degrading to serial execution
    max_pool_rebuilds: int = 2

    def backoff_for(self, attempt: int) -> float:
        """Sleep before ``attempt`` (attempt 2 = first retry)."""
        if self.backoff <= 0:
            return 0.0
        return self.backoff * (2 ** max(0, attempt - 2))


@dataclass
class CellFailure:
    """Terminal failure of one cell, after its retry budget ran out."""

    cell: Cell
    index: int
    attempts: int
    kind: str        #: ``"exception"`` or ``"timeout"``
    error: str

    def describe(self) -> str:
        if self.cell.is_sweep:
            lat = f" sweep[{len(self.cell.latencies)}]"
        elif self.cell.latencies is not None:
            lat = f" mem={self.cell.latencies.memory}"
        else:
            lat = ""
        return (f"{self.cell.workload}/{self.cell.config.name}{lat}: "
                f"{self.kind} after {self.attempts} attempt(s) — {self.error}")


@dataclass
class RunReport:
    """Outcome summary of one :func:`run_cells` invocation."""

    total: int = 0          #: unique cells not already memoized
    ok: int = 0             #: cells computed successfully this run
    resumed: int = 0        #: cells restored from journal + cache
    retried: int = 0        #: ok cells that needed more than one attempt
    timeouts: int = 0       #: attempts lost to the per-cell timeout
    pool_rebuilds: int = 0
    degraded: bool = False  #: fell back to in-process serial execution
    interrupted: bool = False  #: cut short by SIGINT/SIGTERM (clean exit)
    wall_time: float = 0.0
    failures: list[CellFailure] = field(default_factory=list)
    cache_stats: dict = field(default_factory=dict)

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def completed(self) -> bool:
        return not self.failures

    def summary(self) -> dict:
        return {"total": self.total, "ok": self.ok, "resumed": self.resumed,
                "retried": self.retried, "timeouts": self.timeouts,
                "failed": self.failed, "pool_rebuilds": self.pool_rebuilds,
                "degraded": self.degraded, "interrupted": self.interrupted,
                "wall_time": round(self.wall_time, 3),
                "failures": [f.describe() for f in self.failures],
                "cache": self.cache_stats}

    def render(self) -> str:
        bits = [f"{self.ok} ok"]
        if self.interrupted:
            bits.append("interrupted")
        if self.resumed:
            bits.append(f"{self.resumed} resumed")
        if self.retried:
            bits.append(f"{self.retried} retried")
        bits.append(f"{self.failed} failed")
        lines = [f"run report: {self.total} cell(s) — " + ", ".join(bits)
                 + f"; wall {self.wall_time:.1f}s"]
        if self.timeouts or self.pool_rebuilds or self.degraded:
            extra = [f"timeouts {self.timeouts}",
                     f"pool rebuilds {self.pool_rebuilds}"]
            if self.degraded:
                extra.append("degraded to serial")
            lines.append("  " + ", ".join(extra))
        for failure in self.failures:
            lines.append(f"  FAILED {failure.describe()}")
        for kind, c in sorted(self.cache_stats.items()):
            lines.append(
                f"  cache[{kind}]: {c['hits']} hits, {c['misses']} misses, "
                f"{c['stores']} stores, {c['errors']} errors, "
                f"{c.get('sweeps', 0)} tmp swept")
        return "\n".join(lines)


class FatalCellError(RuntimeError):
    """Raised under ``fail_fast`` when a cell exhausts its retries."""

    def __init__(self, failure: CellFailure, report: RunReport):
        super().__init__(failure.describe())
        self.failure = failure
        self.report = report


# -- worker side -----------------------------------------------------------

_WORKER_RUNNER: ExperimentRunner | None = None


def _init_worker(slicer_config: SlicerConfig, scale: float,
                 cache_dir: str | None,
                 backend: str | None = None,
                 policy: str | None = None) -> None:
    global _WORKER_RUNNER
    faults.mark_worker()
    # Forked workers inherit the parent's signal wiring.  Under the
    # serve daemon that includes asyncio's wakeup fd — a SIGTERM sent to
    # a worker (e.g. by the executor reaping a broken pool) would be
    # written into the *parent's* self-pipe and read back as a shutdown
    # request.  Detach and restore defaults so signals aimed at a worker
    # stay in the worker.
    signal.set_wakeup_fd(-1)
    for _sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(_sig, signal.SIG_DFL)
    # Die with the parent (Linux).  A crashed daemon must not leave
    # orphan workers holding its listening socket open: connects to the
    # stale socket file would be queued into a backlog nobody accepts,
    # hanging clients instead of failing fast into a retry.
    try:
        import ctypes
        PR_SET_PDEATHSIG = 1
        ctypes.CDLL(None, use_errno=True).prctl(
            PR_SET_PDEATHSIG, signal.SIGKILL, 0, 0, 0)
    except Exception:
        pass
    # The parent already swept stale tmp files; workers (respawned on
    # every pool rebuild) skip the cache-tree walk.
    cache = (DiskCache(cache_dir, sweep=False)
             if cache_dir is not None else None)
    _WORKER_RUNNER = ExperimentRunner(slicer_config=slicer_config,
                                      instruction_scale=scale, cache=cache,
                                      backend=backend, policy=policy)


def compute_cell(runner: ExperimentRunner, cell: Cell, *,
                 spill: bool = False):
    """Execute one cell's real work on ``runner`` (no fault injection):
    the single dispatch shared by the pool workers, the in-process
    serial path and the serve fleet.  With ``spill`` (cross-process
    callers) a traced payload is exchanged for its cache
    :class:`PayloadRef` instead of riding the result pipe."""
    if cell.fuzz is not None:
        return runner.run_fuzz(cell.workload, cell.fuzz)
    if cell.is_sweep:
        return runner.run_sweep(cell.workload, cell.config,
                                list(cell.latencies), policy=cell.policy)
    if cell.trace is None:
        return runner.run(cell.workload, cell.config, cell.latencies,
                          backend=cell.backend, policy=cell.policy)
    traced = runner.run_traced(cell.workload, cell.config, cell.latencies,
                               spec=cell.trace, backend=cell.backend,
                               policy=cell.policy)
    return _spill(runner, cell, traced) if spill else traced


def _run_cell(cell: Cell, index: int = 0, attempt: int = 1):
    faults.inject_cell_faults(index, attempt)
    return compute_cell(_WORKER_RUNNER, cell, spill=True)


def _spill(runner: ExperimentRunner, cell: Cell, traced: TracedRun):
    """Exchange a heavy traced payload for its cache reference.

    ``run_traced`` already wrote the payload through the worker's cache
    view (or read it from there), so the entry exists on disk; without a
    cache there is nowhere to spill and the payload ships inline — the
    degraded but correct path.
    """
    if runner.cache is None:
        return traced
    config = runner.normalize_config(cell.config, cell.latencies)
    payload = runner.traced_payload(cell.workload, config, cell.trace,
                                    cell.backend, cell.policy)
    key = runner.cache.key_for("traces", payload)
    return PayloadRef("traces", key, runner.cache.entry_size("traces", key))


def _resolve(runner: ExperimentRunner, value):
    """Parent-side inverse of :func:`_spill`: load the payload a worker
    referenced.  Raises :class:`PayloadResolutionError` (retryable) when
    the entry vanished between the worker's write and this read."""
    if not isinstance(value, PayloadRef):
        return value
    resolved = (runner.cache.get_by_key(value.kind, value.key)
                if runner.cache is not None else None)
    if resolved is None:
        raise PayloadResolutionError(
            f"spilled payload {value.address} missing from cache")
    return resolved


def _build_artifact(name: str):
    return _WORKER_RUNNER.artifacts(name)


# -- parent side -----------------------------------------------------------

def run_cells(runner: ExperimentRunner, cells: list[Cell],
              jobs: int | None = None, *,
              policy: ExecutionPolicy | None = None,
              journal: RunJournal | None = None,
              resume: bool = False) -> RunReport:
    """Compute ``cells`` fault-tolerantly, seeding ``runner``'s memo.

    Deterministic: cells are deduplicated preserving order and results are
    merged in that same order, and each cell's simulation is itself
    deterministic — so downstream rendering is byte-identical for any job
    count, retry history or resume split.  Returns a :class:`RunReport`;
    under ``policy.fail_fast`` a terminal cell failure raises
    :class:`FatalCellError` instead (completed cells are still merged).
    """
    policy = policy or ExecutionPolicy()
    jobs = default_jobs() if jobs is None else jobs
    started = time.monotonic()
    unique = [c for c in dict.fromkeys(cells) if not _memoized(runner, c)]
    report = RunReport(total=len(unique))
    if journal is not None and unique:
        journal.record_start(len(unique))
    if resume and journal is not None and unique:
        unique = _restore_resumed(runner, unique, journal, report)
    indexed = list(enumerate(unique))
    attempts = {i: 0 for i, _ in indexed}
    results: dict[int, object] = {}
    try:
        with _graceful_term():
            if not indexed:
                pass
            elif jobs <= 1 or len(indexed) == 1:
                _execute_serial(runner, indexed, attempts, policy, report,
                                journal, results)
            else:
                _execute_pool(runner, indexed, attempts, policy, report,
                              journal, results, jobs)
    except (KeyboardInterrupt, SystemExit):
        # Ctrl-C / SIGTERM: the pool was already torn down on the way
        # out (every generation's ``finally`` terminates an abandoned
        # pool), completed cells still merge below, and the journal's
        # ``end`` record says the run was interrupted — so ``--resume``
        # picks up exactly where the interrupt landed.
        report.interrupted = True
        raise
    finally:
        # Merge in submission order so rendering is order-independent.
        for i, cell in indexed:
            if i in results:
                if cell.fuzz is not None:
                    runner.seed_fuzz(cell.workload, cell.fuzz, results[i])
                elif cell.trace is not None:
                    runner.seed_traced(cell.workload, cell.config,
                                       cell.latencies, cell.trace, results[i],
                                       cell.backend, cell.policy)
                elif cell.is_sweep:
                    for lat, res in zip(cell.latencies, results[i]):
                        runner.seed_result(cell.workload, cell.config, lat,
                                           res, cell.backend, cell.policy)
                else:
                    runner.seed_result(cell.workload, cell.config,
                                       cell.latencies, results[i],
                                       cell.backend, cell.policy)
        report.wall_time = time.monotonic() - started
        if runner.cache is not None:
            report.cache_stats = runner.cache.stats()
        if journal is not None and report.total:
            journal.record_end(report.summary())
    return report


@contextlib.contextmanager
def _graceful_term():
    """Route SIGTERM through ``KeyboardInterrupt`` for the duration of a
    run, so a polite kill gets the same clean unwind as Ctrl-C: pool
    teardown, result merge, and a journaled ``interrupted`` end record.
    Outside the main thread (the serve fleet, test harnesses) signal
    handlers cannot be installed and the run proceeds unwrapped."""
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    def _raise(signum, frame):
        raise KeyboardInterrupt
    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except (ValueError, OSError):        # exotic embedding; run unwrapped
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _memoized(runner: ExperimentRunner, cell: Cell) -> bool:
    """Whether the runner's memo already holds this cell's payload."""
    if cell.fuzz is not None:
        return runner.has_fuzz(cell.workload, cell.fuzz)
    if cell.trace is not None:
        return runner.has_traced(cell.workload, cell.config, cell.latencies,
                                 cell.trace, cell.backend, cell.policy)
    if cell.is_sweep:
        return all(runner.has_result(cell.workload, cell.config, lat,
                                     cell.backend, cell.policy)
                   for lat in cell.latencies)
    return runner.has_result(cell.workload, cell.config, cell.latencies,
                             cell.backend, cell.policy)


def _restore_resumed(runner: ExperimentRunner, unique: list[Cell],
                     journal: RunJournal, report: RunReport) -> list[Cell]:
    """Seed journaled-ok cells from the disk cache; return the rest.

    A journaled ``ok`` is only trusted if the cache still holds the
    payload — anything evicted (or run without a cache) is recomputed.
    Traced cells restore from the ``"traces"`` kind under their
    spec-qualified key, plain cells from ``"results"``.
    """
    done = journal.completed_keys()
    if not done:
        return unique
    remaining = []
    for cell in unique:
        restored = None
        if cell_key(runner, cell) in done and runner.cache is not None:
            if cell.fuzz is not None:
                restored = runner.cache.get(
                    "fuzz", runner.fuzz_payload(cell.workload, cell.fuzz))
            elif cell.is_sweep:
                points = [runner.cache.get(
                    "results", runner.result_payload(
                        cell.workload,
                        runner.normalize_config(cell.config, lat),
                        cell.backend, cell.policy))
                    for lat in cell.latencies]
                restored = points if all(p is not None for p in points) \
                    else None   # any evicted point: recompute the sweep
            elif cell.trace is not None:
                config = runner.normalize_config(cell.config, cell.latencies)
                restored = runner.cache.get(
                    "traces",
                    runner.traced_payload(cell.workload, config, cell.trace,
                                          cell.backend, cell.policy))
            else:
                config = runner.normalize_config(cell.config, cell.latencies)
                restored = runner.cache.get(
                    "results", runner.result_payload(cell.workload, config,
                                                     cell.backend,
                                                     cell.policy))
        if restored is not None:
            if cell.fuzz is not None:
                runner.seed_fuzz(cell.workload, cell.fuzz, restored)
            elif cell.trace is not None:
                runner.seed_traced(cell.workload, cell.config, cell.latencies,
                                   cell.trace, restored, cell.backend,
                                   cell.policy)
            elif cell.is_sweep:
                for lat, res in zip(cell.latencies, restored):
                    runner.seed_result(cell.workload, cell.config, lat, res,
                                       cell.backend, cell.policy)
            else:
                runner.seed_result(cell.workload, cell.config, cell.latencies,
                                   restored, cell.backend, cell.policy)
            report.resumed += 1
        else:
            remaining.append(cell)
    return remaining


def _register_ok(runner, cell: Cell, i: int, attempts_used: int,
                 elapsed: float, result, results: dict, report: RunReport,
                 journal: RunJournal | None) -> None:
    results[i] = result
    report.ok += 1
    if attempts_used > 1:
        report.retried += 1
    if journal is not None:
        ref = size = None
        if cell.trace is not None and runner.cache is not None:
            # Journal the spilled payload by reference only — a traced
            # payload never appears inline in the JSONL stream.
            config = runner.normalize_config(cell.config, cell.latencies)
            key = runner.cache.key_for(
                "traces",
                runner.traced_payload(cell.workload, config, cell.trace,
                                      cell.backend, cell.policy))
            ref = f"traces/{key}"
            size = runner.cache.entry_size("traces", key)
        journal.record_cell(index=i, key=cell_key(runner, cell),
                            workload=cell.workload, config=cell.config.name,
                            status="ok", attempts=attempts_used,
                            elapsed=elapsed, ref=ref, payload_bytes=size)


def _register_failure(runner, cell: Cell, i: int, attempts_used: int,
                      kind: str, error, policy: ExecutionPolicy,
                      report: RunReport,
                      journal: RunJournal | None) -> bool:
    """Record one failed attempt.  Returns True if the cell may retry;
    on terminal failure appends a :class:`CellFailure` (and raises under
    ``fail_fast``)."""
    if kind == "timeout":
        report.timeouts += 1
    message = (error if isinstance(error, str)
               else f"{type(error).__name__}: {error}")
    retryable = attempts_used <= policy.retries
    if journal is not None:
        status = ("timed-out" if kind == "timeout" else "retried") \
            if retryable else "failed"
        journal.record_cell(index=i, key=cell_key(runner, cell),
                            workload=cell.workload, config=cell.config.name,
                            status=status, attempts=attempts_used,
                            kind=kind, error=message)
    if retryable:
        return True
    failure = CellFailure(cell, i, attempts_used, kind, message)
    report.failures.append(failure)
    if policy.fail_fast:
        raise FatalCellError(failure, report)
    return False


def _execute_serial(runner: ExperimentRunner, items, attempts: dict,
                    policy: ExecutionPolicy, report: RunReport,
                    journal: RunJournal | None, results: dict) -> None:
    """The in-process path: same retry/keep-going semantics, no pool.
    ``cell_timeout`` cannot preempt in-process work and is not enforced."""
    for i, cell in list(items):
        while True:
            attempts[i] += 1
            t0 = time.monotonic()
            try:
                faults.inject_cell_faults(i, attempts[i])
                result = compute_cell(runner, cell)
            except Exception as exc:
                if _register_failure(runner, cell, i, attempts[i],
                                     "exception", exc, policy, report,
                                     journal):
                    time.sleep(policy.backoff_for(attempts[i] + 1))
                    continue
                break
            _register_ok(runner, cell, i, attempts[i],
                         time.monotonic() - t0, result, results, report,
                         journal)
            break


def _execute_pool(runner: ExperimentRunner, indexed, attempts: dict,
                  policy: ExecutionPolicy, report: RunReport,
                  journal: RunJournal | None, results: dict,
                  jobs: int) -> None:
    """Pool generations: drain, rebuild on breakage/timeout, degrade to
    serial once the rebuild budget is spent."""
    outstanding = dict(indexed)
    # Worker-side attempt numbering: counts every submission (including
    # ones lost to a dead pool), so fault-injection ``times`` matching
    # stays monotonic even though crashes don't charge the retry budget.
    submits = {i: 0 for i in outstanding}
    workers = min(jobs, len(outstanding))
    while outstanding:
        abandoned = _drain_pool(runner, outstanding, attempts, submits,
                                results, workers, policy, report, journal)
        if not outstanding or not abandoned:
            return
        report.pool_rebuilds += 1
        if report.pool_rebuilds > policy.max_pool_rebuilds:
            report.degraded = True
            _execute_serial(runner, sorted(outstanding.items()), attempts,
                            policy, report, journal, results)
            return


@dataclass
class _InFlight:
    """Parent-side bookkeeping for one submitted cell attempt."""

    index: int
    submitted: float
    #: when the future was first observed executing (``fut.running()``).
    #: The ``cell_timeout`` clock starts here — a cell queued behind a
    #: full worker fleet accrues no wait time against its timeout.
    started: float | None = None


def _drain_pool(runner: ExperimentRunner, outstanding: dict, attempts: dict,
                submits: dict, results: dict, workers: int,
                policy: ExecutionPolicy, report: RunReport,
                journal: RunJournal | None) -> bool:
    """Run one pool generation over every outstanding cell.

    Submits each cell as its own future and harvests completions until
    the queue drains, a worker dies (``BrokenProcessPool``) or a cell
    overruns ``cell_timeout``.  Retries of plain worker exceptions are
    resubmitted once their backoff deadline passes, without blocking the
    harvest loop; the timeout clock starts when an attempt is first seen
    executing, never while it waits in the submission queue.  Returns
    True when the pool was abandoned and the caller should rebuild;
    completed/terminally-failed cells leave ``outstanding`` either way,
    so a rebuild resubmits only what is left.
    """
    pool = _pool(runner, min(workers, len(outstanding)))
    pending: dict[Future, _InFlight] = {}
    backoffs: dict[int, float] = {}   # index -> resubmit-not-before deadline
    abandon = True

    def submit(i: int) -> None:
        submits[i] += 1
        fut = pool.submit(_run_cell, outstanding[i], i, submits[i])
        pending[fut] = _InFlight(i, time.monotonic())

    try:
        for i in sorted(outstanding):
            submit(i)
        broken = False
        while pending or backoffs:
            now = time.monotonic()
            for i in [i for i, ready in backoffs.items() if ready <= now]:
                del backoffs[i]
                try:
                    submit(i)
                except Exception:
                    return True
            if not pending:
                # Every remaining cell is backing off; nothing can
                # complete until the earliest deadline.
                time.sleep(max(0.0, min(backoffs.values())
                               - time.monotonic()))
                continue
            poll = None
            if policy.cell_timeout is not None:
                poll = max(0.01, min(0.25, policy.cell_timeout / 4))
            if backoffs:
                until = max(0.001, min(backoffs.values()) - time.monotonic())
                poll = until if poll is None else min(poll, until)
            done, _ = wait(list(pending), timeout=poll,
                           return_when=FIRST_COMPLETED)
            for fut in done:
                meta = pending.pop(fut)
                i = meta.index
                cell = outstanding[i]
                try:
                    result = _resolve(runner, fut.result())
                except BrokenProcessPool:
                    # Collateral or culprit — indistinguishable, and
                    # neither finished a real attempt: the crash charges
                    # the rebuild budget, not the cell's retry budget.
                    broken = True
                except Exception as exc:
                    attempts[i] += 1
                    if _register_failure(runner, cell, i, attempts[i],
                                         "exception", exc, policy, report,
                                         journal):
                        backoffs[i] = (time.monotonic()
                                       + policy.backoff_for(attempts[i] + 1))
                    else:
                        del outstanding[i]
                else:
                    attempts[i] += 1
                    t0 = (meta.started if meta.started is not None
                          else meta.submitted)
                    _register_ok(runner, cell, i, attempts[i],
                                 time.monotonic() - t0, result,
                                 results, report, journal)
                    del outstanding[i]
            if broken:
                return True
            if policy.cell_timeout is None:
                continue
            now = time.monotonic()
            expired = []
            for fut, meta in pending.items():
                if meta.started is None:
                    if fut.running():
                        meta.started = now
                elif now - meta.started > policy.cell_timeout:
                    expired.append((fut, meta))
            if not expired:
                continue
            for fut, meta in expired:
                i = meta.index
                pending.pop(fut)
                fut.cancel()
                attempts[i] += 1
                if not _register_failure(runner, outstanding[i], i,
                                         attempts[i], "timeout",
                                         f"exceeded {policy.cell_timeout:g}s",
                                         policy, report, journal):
                    del outstanding[i]
            # A stuck worker can only be reclaimed by pool teardown.
            return True
        abandon = False
        return False
    finally:
        if abandon:
            _terminate(pool)
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True)


def _terminate(pool: ProcessPoolExecutor) -> None:
    """Kill a pool's workers outright (stuck or crashing generations)."""
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.terminate()
        except Exception:
            pass


def build_artifacts(runner: ExperimentRunner, names: list[str],
                    jobs: int | None = None) -> ExperimentRunner:
    """Build several workloads' artifacts in parallel (table 1/3 prep)."""
    jobs = default_jobs() if jobs is None else jobs
    missing = [n for n in dict.fromkeys(names) if not runner.has_artifact(n)]
    if not missing:
        return runner
    if jobs <= 1 or len(missing) == 1:
        for name in missing:
            runner.artifacts(name)
        return runner
    with _pool(runner, min(jobs, len(missing))) as pool:
        arts = list(pool.map(_build_artifact, missing))
    for name, art in zip(missing, arts):
        runner.seed_artifact(name, art)
    return runner


def _pool(runner: ExperimentRunner, workers: int) -> ProcessPoolExecutor:
    cache_dir = str(runner.cache.root) if runner.cache is not None else None
    return ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker,
        initargs=(runner.slicer_config, runner.instruction_scale, cache_dir,
                  runner.backend, runner.policy))
